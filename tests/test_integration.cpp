// Integration tests: the full Higgs pipeline (Section V protocol),
// network heads, distributed training parity, engine equivalence at the
// network level, and the in-situ visualization hook.

#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed.hpp"
#include "core/network.hpp"
#include "core/pipeline.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/roc.hpp"
#include "viz/catalyst.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sm = streambrain::metrics;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;
namespace sv = streambrain::viz;

namespace {

/// Small-but-real experiment config (a few seconds on one core).
sc::HiggsExperimentConfig small_experiment() {
  sc::HiggsExperimentConfig config;
  config.train_events = 1500;
  config.test_events = 500;
  config.network.bcpnn.hcus = 1;
  config.network.bcpnn.mcus = 50;
  config.network.bcpnn.receptive_field = 0.4;
  config.network.bcpnn.epochs = 6;
  config.network.bcpnn.head_epochs = 12;
  config.seed = 7;
  return config;
}

}  // namespace

TEST(Pipeline, BcpnnBeatsChanceOnHiggs) {
  const auto result = sc::run_higgs_experiment(small_experiment());
  EXPECT_GT(result.test_accuracy, 0.58);  // far above the 50% chance line
  EXPECT_GT(result.test_auc, 0.60);
  EXPECT_GT(result.train_seconds, 0.0);
  ASSERT_EQ(result.final_masks.size(), 1u);
  EXPECT_EQ(result.final_masks[0].size(), sd::kHiggsFeatures);
}

TEST(Pipeline, DeterministicForSeed) {
  const auto a = sc::run_higgs_experiment(small_experiment());
  const auto b = sc::run_higgs_experiment(small_experiment());
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc);
  EXPECT_EQ(a.final_masks, b.final_masks);
}

TEST(Pipeline, DifferentSeedsGiveDifferentRuns) {
  auto config = small_experiment();
  const auto a = sc::run_higgs_experiment(config);
  config.seed = 8;
  const auto b = sc::run_higgs_experiment(config);
  EXPECT_NE(a.test_accuracy, b.test_accuracy);
}

TEST(Pipeline, HybridHeadAtLeastComparable) {
  // Paper: BCPNN+SGD (69.15%) edges out pure BCPNN (68.58%). Tolerate
  // noise but demand the hybrid not collapse.
  auto config = small_experiment();
  const auto pure = sc::run_higgs_experiment(config);
  config.network.head = sc::HeadType::kSgd;
  const auto hybrid = sc::run_higgs_experiment(config);
  EXPECT_GT(hybrid.test_accuracy, pure.test_accuracy - 0.05);
}

TEST(Pipeline, RepeatedRunsVaryBySeed) {
  auto config = small_experiment();
  config.train_events = 800;
  config.test_events = 300;
  config.network.bcpnn.epochs = 3;
  config.network.bcpnn.head_epochs = 6;
  const auto results = sc::run_higgs_experiment_repeated(config, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].test_accuracy != results[1].test_accuracy ||
              results[1].test_accuracy != results[2].test_accuracy);
}

TEST(Pipeline, CatalystHookReceivesEveryEpoch) {
  sv::CatalystAdaptor adaptor;
  auto config = small_experiment();
  config.catalyst = &adaptor;
  (void)sc::run_higgs_experiment(config);
  EXPECT_EQ(adaptor.history().size(), config.network.bcpnn.epochs);
  // MI maps must accompany the masks.
  EXPECT_FALSE(adaptor.history().back().mi_scores.empty());
}

TEST(Pipeline, MasksRespectReceptiveFieldCardinality) {
  auto config = small_experiment();
  config.network.bcpnn.receptive_field = 0.25;
  const auto result = sc::run_higgs_experiment(config);
  const std::size_t expected = static_cast<std::size_t>(
      std::ceil(0.25 * static_cast<double>(sd::kHiggsFeatures)));
  std::size_t active = 0;
  for (bool bit : result.final_masks[0]) active += bit ? 1 : 0;
  EXPECT_EQ(active, expected);
}

// ---------------------------------------------------------- network API ----

TEST(Network, TransformShapeAndSimplex) {
  sc::NetworkConfig config;
  config.bcpnn.input_hypercolumns = 28;
  config.bcpnn.input_bins = 10;
  config.bcpnn.hcus = 2;
  config.bcpnn.mcus = 10;
  config.bcpnn.epochs = 2;
  sc::Network network(config);

  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(100);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);
  const auto hidden = network.transform(x);
  ASSERT_EQ(hidden.rows(), 100u);
  ASSERT_EQ(hidden.cols(), 20u);
  for (std::size_t r = 0; r < hidden.rows(); ++r) {
    for (std::size_t h = 0; h < 2; ++h) {
      float mass = 0.0f;
      for (std::size_t m = 0; m < 10; ++m) mass += hidden(r, h * 10 + m);
      EXPECT_NEAR(mass, 1.0f, 1e-4f);
    }
  }
}

TEST(Network, FitRejectsMismatchedLabels) {
  sc::NetworkConfig config;
  config.bcpnn.input_hypercolumns = 4;
  config.bcpnn.input_bins = 5;
  config.bcpnn.mcus = 5;
  sc::Network network(config);
  st::MatrixF x(10, 20, 0.0f);
  std::vector<int> labels(9, 0);
  EXPECT_THROW(network.fit(x, labels), std::invalid_argument);
}

TEST(Network, EngineChoiceDoesNotChangeQualityClass) {
  // Engines are numerically equivalent per-op; across a whole training
  // run small float differences compound, so assert agreement in outcome
  // quality, not bitwise equality.
  double auc[2];
  int index = 0;
  for (const std::string engine : {"naive", "simd"}) {
    auto config = small_experiment();
    config.network.bcpnn.mcus = 40;
    config.network.bcpnn.engine = engine;
    auc[index++] = sc::run_higgs_experiment(config).test_auc;
  }
  EXPECT_NEAR(auc[0], auc[1], 0.10);
  EXPECT_GT(auc[0], 0.58);
  EXPECT_GT(auc[1], 0.58);
}

// ----------------------------------------------------------- distributed ----

TEST(Distributed, SingleRankMatchesLocalTrainingShape) {
  sc::BcpnnConfig config;
  config.input_hypercolumns = 28;
  config.input_bins = 10;
  config.hcus = 1;
  config.mcus = 20;
  config.epochs = 3;
  config.batch_size = 32;
  config.seed = 11;

  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(600);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);

  auto engine = sp::make_engine("simd");
  su::Rng rng(config.seed);
  sc::BcpnnLayer layer(config, *engine, rng);
  const auto report = sc::distributed_unsupervised_fit(layer, x, 1);
  EXPECT_EQ(report.ranks, 1);
  EXPECT_GT(report.sync_count, 0u);
}

TEST(Distributed, MultiRankProducesUsableRepresentation) {
  sc::BcpnnConfig config;
  config.input_hypercolumns = 28;
  config.input_bins = 10;
  config.hcus = 1;
  config.mcus = 30;
  config.epochs = 4;
  config.batch_size = 32;
  config.seed = 13;

  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(1200);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);

  auto engine = sp::make_engine("simd");
  su::Rng rng(config.seed);
  sc::BcpnnLayer layer(config, *engine, rng);
  const auto report = sc::distributed_unsupervised_fit(layer, x, 4);
  EXPECT_EQ(report.ranks, 4);
  EXPECT_GT(report.bytes_per_rank, 0u);

  // Train a supervised head on the distributed-trained representation and
  // check it classifies above chance.
  auto head_engine = sp::make_engine("simd");
  sc::BcpnnClassifier head(config.hidden_units(), config.hcus, 2,
                           *head_engine, 0.1f);
  st::MatrixF hidden;
  layer.forward(x, hidden);
  const auto targets = sd::one_hot_labels(dataset.labels, 2);
  for (int epoch = 0; epoch < 10; ++epoch) head.train_batch(hidden, targets);
  const auto scores = head.predict_scores(hidden);
  EXPECT_GT(sm::auc(scores, dataset.labels), 0.60);
}

TEST(Distributed, RankCountsAgreeOnResult) {
  // Deterministic allreduce means 2-rank and 4-rank runs both produce
  // valid (not necessarily identical) models; check both beat chance and
  // communication volume grows with rank count.
  sc::BcpnnConfig config;
  config.input_hypercolumns = 28;
  config.input_bins = 10;
  config.mcus = 20;
  config.epochs = 2;
  config.batch_size = 64;
  config.seed = 17;

  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(800);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);

  std::uint64_t bytes2 = 0;
  std::uint64_t bytes4 = 0;
  {
    auto engine = sp::make_engine("simd");
    su::Rng rng(config.seed);
    sc::BcpnnLayer layer(config, *engine, rng);
    bytes2 = sc::distributed_unsupervised_fit(layer, x, 2).total_bytes;
  }
  {
    auto engine = sp::make_engine("simd");
    su::Rng rng(config.seed);
    sc::BcpnnLayer layer(config, *engine, rng);
    bytes4 = sc::distributed_unsupervised_fit(layer, x, 4).total_bytes;
  }
  EXPECT_GT(bytes2, 0u);
  EXPECT_GT(bytes4, bytes2);  // more ranks -> more total traffic
}
