// Estimator conformance suite: every model in the repo — the BCPNN Model
// facade (shallow with both heads, deep) and the four baselines — must
// honor the same contract: fit learns above chance, predict/predict_scores
// agree in shape and threshold, evaluate matches accuracy(predict), and
// save/load (where supported) reproduces predictions bit-for-bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/estimator.hpp"
#include "baselines/logistic.hpp"
#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/classification.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace st = streambrain::tensor;

namespace {

struct Split {
  st::MatrixF x_train;
  st::MatrixF x_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
};

/// Raw synthetic Higgs features (what the baselines consume).
Split raw_higgs(std::size_t train, std::size_t test) {
  sd::SyntheticHiggsGenerator generator;
  const auto train_set = generator.generate(train);
  sd::HiggsGeneratorOptions opts;
  opts.seed = 4242;
  sd::SyntheticHiggsGenerator test_generator(opts);
  const auto test_set = test_generator.generate(test);
  return {train_set.features, test_set.features, train_set.labels,
          test_set.labels};
}

/// One-hot encoded split (what the BCPNN models consume).
Split encoded_higgs(std::size_t train, std::size_t test) {
  Split raw = raw_higgs(train, test);
  streambrain::encode::OneHotEncoder encoder(10);
  return {encoder.fit_transform(raw.x_train), encoder.transform(raw.x_test),
          std::move(raw.y_train), std::move(raw.y_test)};
}

struct Candidate {
  std::string label;                 // test-name-friendly tag
  bool encoded;                      // expects one-hot input
  double min_accuracy;               // conformance floor on the test split
  std::function<std::unique_ptr<streambrain::Estimator>()> make;
};

std::unique_ptr<streambrain::Estimator> make_model(std::size_t depth,
                                                   sc::HeadType head) {
  auto model = std::make_unique<sc::Model>();
  model->input(28, 10);
  if (depth == 1) {
    model->hidden(1, 40, 0.4);
    model->set_option("epochs", 4).set_option("head_epochs", 8);
  } else {
    // The greedy deep stack needs a longer unsupervised schedule to beat
    // chance on this data budget.
    model->hidden(2, 40, 0.4).hidden(1, 40, 1.0);
    model->set_option("epochs", 8).set_option("head_epochs", 16);
  }
  model->classifier(2, head).compile("simd", 42);
  return model;
}

std::vector<Candidate> candidates() {
  return {
      {"bcpnn_shallow_bcpnn_head", true, 0.55,
       [] { return make_model(1, sc::HeadType::kBcpnn); }},
      {"bcpnn_shallow_sgd_head", true, 0.55,
       [] { return make_model(1, sc::HeadType::kSgd); }},
      {"bcpnn_deep", true, 0.52,
       [] { return make_model(2, sc::HeadType::kBcpnn); }},
      {"logistic", false, 0.55,
       [] { return streambrain::make_baseline_estimator("logistic"); }},
      {"mlp", false, 0.55,
       [] { return streambrain::make_baseline_estimator("mlp"); }},
      {"naive_bayes", false, 0.55,
       [] { return streambrain::make_baseline_estimator("naive_bayes"); }},
      {"adaboost", false, 0.55,
       [] { return streambrain::make_baseline_estimator("adaboost"); }},
  };
}

class EstimatorConformance : public ::testing::TestWithParam<Candidate> {};

}  // namespace

TEST_P(EstimatorConformance, HonorsTheContract) {
  const Candidate& candidate = GetParam();
  const Split data = candidate.encoded ? encoded_higgs(1500, 300)
                                       : raw_higgs(1500, 300);
  auto estimator = candidate.make();

  EXPECT_FALSE(estimator->name().empty());

  estimator->fit(data.x_train, data.y_train);

  const std::vector<int> labels = estimator->predict(data.x_test);
  ASSERT_EQ(labels.size(), data.x_test.rows());
  for (const int label : labels) {
    EXPECT_TRUE(label == 0 || label == 1) << "label " << label;
  }

  const std::vector<double> scores = estimator->predict_scores(data.x_test);
  ASSERT_EQ(scores.size(), data.x_test.rows());
  for (const double score : scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }

  const double accuracy = estimator->evaluate(data.x_test, data.y_test);
  EXPECT_DOUBLE_EQ(accuracy,
                   streambrain::metrics::accuracy(labels, data.y_test));
  EXPECT_GT(accuracy, candidate.min_accuracy) << candidate.label;
}

TEST_P(EstimatorConformance, SaveLoadContract) {
  const Candidate& candidate = GetParam();
  auto estimator = candidate.make();
  if (!estimator->supports_save()) {
    EXPECT_THROW(estimator->save("/tmp/unsupported.sbrn"), std::runtime_error);
    EXPECT_THROW(estimator->load("/tmp/unsupported.sbrn"), std::runtime_error);
    return;
  }

  const Split data = candidate.encoded ? encoded_higgs(600, 200)
                                       : raw_higgs(600, 200);
  estimator->fit(data.x_train, data.y_train);
  const std::string path =
      ::testing::TempDir() + "estimator_" + candidate.label + ".sbrn";
  estimator->save(path);

  // A Model checkpoint restores into a brand-new un-compiled Model and
  // must reproduce predictions and scores bit-for-bit.
  auto restored = std::make_unique<sc::Model>();
  restored->load(path);
  EXPECT_EQ(restored->predict(data.x_test), estimator->predict(data.x_test));
  EXPECT_EQ(restored->predict_scores(data.x_test),
            estimator->predict_scores(data.x_test));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EstimatorConformance, ::testing::ValuesIn(candidates()),
    [](const ::testing::TestParamInfo<Candidate>& info) {
      return info.param.label;
    });

TEST(BaselineEstimatorFactory, KnowsAllFourBaselines) {
  const auto& names = streambrain::baseline_estimator_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    EXPECT_NE(streambrain::make_baseline_estimator(name), nullptr);
  }
  EXPECT_THROW(streambrain::make_baseline_estimator("svm"),
               std::invalid_argument);
}

TEST(BaselineEstimatorFactory, WrapsCustomConfiguredBaseline) {
  streambrain::baselines::LogisticConfig config;
  config.epochs = 5;
  auto estimator = streambrain::wrap_baseline(
      std::make_unique<streambrain::baselines::LogisticRegression>(config));
  EXPECT_EQ(estimator->name(), "logistic_regression");
}
