// Tests for the logging facility: level filtering and level names.

#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace su = streambrain::util;

namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  su::LogLevel saved = su::Log::level();
  ~LevelGuard() { su::Log::set_level(saved); }
};

}  // namespace

TEST(Log, LevelRoundTrip) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kWarn);
  EXPECT_EQ(su::Log::level(), su::LogLevel::kWarn);
  su::Log::set_level(su::LogLevel::kTrace);
  EXPECT_EQ(su::Log::level(), su::LogLevel::kTrace);
}

TEST(Log, LevelOrdering) {
  EXPECT_LT(su::LogLevel::kTrace, su::LogLevel::kDebug);
  EXPECT_LT(su::LogLevel::kDebug, su::LogLevel::kInfo);
  EXPECT_LT(su::LogLevel::kInfo, su::LogLevel::kWarn);
  EXPECT_LT(su::LogLevel::kWarn, su::LogLevel::kError);
  EXPECT_LT(su::LogLevel::kError, su::LogLevel::kOff);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(su::Log::level_name(su::LogLevel::kError), "ERROR");
  EXPECT_STREQ(su::Log::level_name(su::LogLevel::kTrace), "TRACE");
}

TEST(Log, FilteredMacroDoesNotEvaluateArguments) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  SB_LOG_DEBUG() << expensive();
  EXPECT_EQ(evaluations, 0);  // short-circuited by the level check
  su::Log::set_level(su::LogLevel::kTrace);
  SB_LOG_ERROR() << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, WriteDoesNotThrow) {
  EXPECT_NO_THROW(su::Log::write(su::LogLevel::kInfo, "test message"));
}

TEST(ScopedTimer, ReportsWithoutCrashing) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kOff);
  {
    su::ScopedTimer timer("unit-test scope");
    EXPECT_GE(timer.seconds(), 0.0);
  }
  SUCCEED();
}
