// Tests for the logging facility: level filtering and level names.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace su = streambrain::util;

namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  su::LogLevel saved = su::Log::level();
  ~LevelGuard() { su::Log::set_level(saved); }
};

}  // namespace

TEST(Log, LevelRoundTrip) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kWarn);
  EXPECT_EQ(su::Log::level(), su::LogLevel::kWarn);
  su::Log::set_level(su::LogLevel::kTrace);
  EXPECT_EQ(su::Log::level(), su::LogLevel::kTrace);
}

TEST(Log, LevelOrdering) {
  EXPECT_LT(su::LogLevel::kTrace, su::LogLevel::kDebug);
  EXPECT_LT(su::LogLevel::kDebug, su::LogLevel::kInfo);
  EXPECT_LT(su::LogLevel::kInfo, su::LogLevel::kWarn);
  EXPECT_LT(su::LogLevel::kWarn, su::LogLevel::kError);
  EXPECT_LT(su::LogLevel::kError, su::LogLevel::kOff);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(su::Log::level_name(su::LogLevel::kError), "ERROR");
  EXPECT_STREQ(su::Log::level_name(su::LogLevel::kTrace), "TRACE");
}

TEST(Log, FilteredMacroDoesNotEvaluateArguments) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  SB_LOG_DEBUG() << expensive();
  EXPECT_EQ(evaluations, 0);  // short-circuited by the level check
  su::Log::set_level(su::LogLevel::kTrace);
  SB_LOG_ERROR() << expensive();
  EXPECT_EQ(evaluations, 1);
}

// Regression for the data race the thread-safety rollout uncovered:
// `Log::level_` was a plain static read by every SB_LOG site while
// set_level() wrote it from other threads. Now it is a relaxed atomic;
// under TSan (the CI tsan job runs this suite) the old code fails here.
TEST(Log, ConcurrentSetLevelAndFilterIsRaceFree) {
  LevelGuard guard;
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      su::Log::set_level(su::LogLevel::kOff);
      su::Log::set_level(su::LogLevel::kError);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&stop] {
      std::uint64_t filtered = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // The macro's level check is the hot-path read under test; with
        // the level at kOff/kError nothing is ever printed.
        SB_LOG_DEBUG() << "never emitted";
        const su::LogLevel level = su::Log::level();
        filtered += (level == su::LogLevel::kOff ||
                     level == su::LogLevel::kError)
                        ? 1
                        : 0;
      }
      EXPECT_GT(filtered, 0u);  // only ever saw the two written levels
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (auto& reader : readers) reader.join();
}

TEST(Log, WriteDoesNotThrow) {
  EXPECT_NO_THROW(su::Log::write(su::LogLevel::kInfo, "test message"));
}

TEST(ScopedTimer, ReportsWithoutCrashing) {
  LevelGuard guard;
  su::Log::set_level(su::LogLevel::kOff);
  {
    su::ScopedTimer timer("unit-test scope");
    EXPECT_GE(timer.seconds(), 0.0);
  }
  SUCCEED();
}
