// Serving bit-equivalence for the sparse inference form: an
// AsyncPredictor serving SPARSIFIED shard replicas must match the masked
// dense model bitwise at the scalar dispatch tier — across shard counts
// (1 vs 4), with the ScoreCache enabled, under concurrent submitters,
// and through the legacy Predictor and raw ShardPool paths. This suite
// runs in the TSan CI job: the sparse path adds a new read-only data
// structure (CsrMatrix) shared across dispatcher, pool workers, and
// shard replicas, and any hidden mutation of it is a race TSan can see.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/async_predictor.hpp"
#include "api/predictor.hpp"
#include "core/model.hpp"
#include "core/pruning.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "serve/shard_pool.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace sv = streambrain::serve;
namespace st = streambrain::tensor;

using streambrain::AsyncPredictor;
using streambrain::AsyncPredictorOptions;
using streambrain::Predictor;
using streambrain::PredictorOptions;
using streambrain::testing::ScopedDispatch;

namespace {

struct SparseServing {
  std::shared_ptr<sc::Model> dense;   // pruned, still dense (the reference)
  std::shared_ptr<sc::Model> sparse;  // sparsify() of `dense`
  st::MatrixF x_test;
  std::vector<int> reference_labels;    // dense model, serial, scalar tier
  std::vector<double> reference_scores;
};

/// One fixture per head type; everything (training, reference inference)
/// runs pinned to the scalar tier so comparisons can be exact.
const SparseServing& fixture(sc::HeadType head) {
  static const SparseServing instances[2] = {
      [] {
        const ScopedDispatch pin(st::DispatchLevel::kScalar);
        return [] {
          streambrain::data::SyntheticHiggsGenerator generator;
          const auto train = generator.generate(600);
          streambrain::data::HiggsGeneratorOptions opts;
          opts.seed = 555;
          streambrain::data::SyntheticHiggsGenerator test_generator(opts);
          const auto test = test_generator.generate(160);
          streambrain::encode::OneHotEncoder encoder(10);

          SparseServing s;
          s.dense = std::make_shared<sc::Model>();
          s.dense->input(28, 10)
              .hidden(1, 32, 0.4)
              .classifier(2, sc::HeadType::kBcpnn)
              .set_option("epochs", 3)
              .compile("simd", 42);
          s.dense->fit(encoder.fit_transform(train.features), train.labels);
          sc::prune_model(*s.dense, 0.1);
          s.sparse = std::make_shared<sc::Model>(s.dense->sparsify());
          s.x_test = encoder.transform(test.features);
          s.reference_labels = s.dense->predict(s.x_test);
          s.reference_scores = s.dense->predict_scores(s.x_test);
          return s;
        }();
      }(),
      [] {
        const ScopedDispatch pin(st::DispatchLevel::kScalar);
        return [] {
          streambrain::data::SyntheticHiggsGenerator generator;
          const auto train = generator.generate(600);
          streambrain::data::HiggsGeneratorOptions opts;
          opts.seed = 556;
          streambrain::data::SyntheticHiggsGenerator test_generator(opts);
          const auto test = test_generator.generate(160);
          streambrain::encode::OneHotEncoder encoder(10);

          SparseServing s;
          s.dense = std::make_shared<sc::Model>();
          s.dense->input(28, 10)
              .hidden(1, 32, 0.4)
              .classifier(2, sc::HeadType::kSgd)
              .set_option("epochs", 3)
              .compile("simd", 43);
          s.dense->fit(encoder.fit_transform(train.features), train.labels);
          sc::prune_model(*s.dense, 0.1);
          s.sparse = std::make_shared<sc::Model>(s.dense->sparsify());
          s.x_test = encoder.transform(test.features);
          s.reference_labels = s.dense->predict(s.x_test);
          s.reference_scores = s.dense->predict_scores(s.x_test);
          return s;
        }();
      }()};
  return instances[head == sc::HeadType::kBcpnn ? 0 : 1];
}

void expect_bitwise(const std::vector<int>& labels,
                    const std::vector<double>& scores,
                    const SparseServing& s, const char* where) {
  EXPECT_EQ(labels, s.reference_labels) << where;
  ASSERT_EQ(scores.size(), s.reference_scores.size()) << where;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ASSERT_EQ(scores[i], s.reference_scores[i]) << where << " row " << i;
  }
}

}  // namespace

TEST(SparseServing, AsyncPredictorSingleShardMatchesMaskedDenseBitwise) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    const SparseServing& s = fixture(head);
    AsyncPredictorOptions options;
    options.shards = 1;
    options.max_batch_rows = 32;
    options.score_cache_rows = 64;
    AsyncPredictor server(s.sparse, options);
    expect_bitwise(server.predict(s.x_test),
                   server.predict_scores(s.x_test), s,
                   head == sc::HeadType::kBcpnn ? "bcpnn/shard1"
                                                : "sgd/shard1");
  }
}

TEST(SparseServing, AsyncPredictorFourShardsMatchesMaskedDenseBitwise) {
  // Four sparsified replicas (cloned through the v3 sparse checkpoint
  // round-trip) serving concurrent traffic: every result must still be
  // bitwise the serial masked-dense reference.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    const SparseServing& s = fixture(head);
    AsyncPredictorOptions options;
    options.shards = 4;
    options.max_batch_rows = 16;  // force multi-batch splits
    AsyncPredictor server(s.sparse, options);

    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    std::vector<std::vector<int>> labels(kThreads);
    std::vector<std::vector<double>> scores(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        labels[t] = server.predict(s.x_test);
        scores[t] = server.predict_scores(s.x_test);
      });
    }
    for (auto& worker : workers) worker.join();
    for (int t = 0; t < kThreads; ++t) {
      expect_bitwise(labels[t], scores[t], s, "shard4 worker");
    }
  }
}

TEST(SparseServing, ScoreCacheHitsStayBitIdenticalOnSparseReplicas) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const SparseServing& s = fixture(sc::HeadType::kSgd);
  AsyncPredictorOptions options;
  options.shards = 2;
  options.score_cache_rows = 4096;  // large enough to hold the test set
  AsyncPredictor server(s.sparse, options);

  // First pass populates the cache, second pass must serve hits that are
  // bitwise what the sparse model produced (== the dense reference).
  expect_bitwise(server.predict(s.x_test), server.predict_scores(s.x_test),
                 s, "cache cold");
  expect_bitwise(server.predict(s.x_test), server.predict_scores(s.x_test),
                 s, "cache warm");
  const auto stats = server.stats();
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(SparseServing, LegacyPredictorServesSparseModelBitwise) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const SparseServing& s = fixture(sc::HeadType::kBcpnn);
  PredictorOptions options;
  options.max_batch_rows = 24;
  Predictor predictor(s.sparse, options);
  expect_bitwise(predictor.predict(s.x_test),
                 predictor.predict_scores(s.x_test), s, "legacy predictor");
}

TEST(SparseServing, ShardPoolReplicasOfSparseModelAreSparseAndBitwise) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const SparseServing& s = fixture(sc::HeadType::kSgd);
  sv::ShardPool pool(s.sparse, 3);
  ASSERT_EQ(pool.size(), 3u);
  for (std::size_t shard = 0; shard < pool.size(); ++shard) {
    const sv::ShardPool::Lease lease = pool.acquire_shard(shard);
    auto* replica = dynamic_cast<sc::Model*>(&lease.model());
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->sparse()) << "replica " << shard
                                   << " lost the sparse form in cloning";
    expect_bitwise(replica->predict(s.x_test),
                   replica->predict_scores(s.x_test), s, "pool replica");
  }
}

TEST(SparseServing, SparseModelRejectsTrainingThroughServingStack) {
  // The read-only contract holds behind the serving facade too: the
  // underlying estimator refuses fit() while predictions keep flowing.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const SparseServing& s = fixture(sc::HeadType::kBcpnn);
  EXPECT_THROW(s.sparse->fit(s.x_test, s.reference_labels),
               std::logic_error);
  expect_bitwise(s.sparse->predict(s.x_test),
                 s.sparse->predict_scores(s.x_test), s, "post-throw");
}
