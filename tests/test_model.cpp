// Tests for the Keras-style Model facade (StreamBrain's API design).

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/roc.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace st = streambrain::tensor;

namespace {

struct Encoded {
  st::MatrixF x_train;
  st::MatrixF x_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
};

Encoded higgs_data(std::size_t train, std::size_t test) {
  sd::SyntheticHiggsGenerator generator;
  const auto train_set = generator.generate(train);
  sd::HiggsGeneratorOptions opts;
  opts.seed = 4242;
  sd::SyntheticHiggsGenerator test_generator(opts);
  const auto test_set = test_generator.generate(test);
  streambrain::encode::OneHotEncoder encoder(10);
  return {encoder.fit_transform(train_set.features),
          encoder.transform(test_set.features), train_set.labels,
          test_set.labels};
}

}  // namespace

TEST(Model, BuilderLifecycleGuards) {
  sc::Model model;
  st::MatrixF x(1, 10);
  EXPECT_THROW(model.fit(x, {0}), std::logic_error);       // before compile
  EXPECT_THROW(model.predict(x), std::logic_error);
  EXPECT_THROW(model.compile(), std::logic_error);          // no input()
  model.input(28, 10);
  EXPECT_THROW(model.compile(), std::logic_error);          // no hidden()
  model.hidden(1, 20, 0.4).classifier(2);
  model.compile();
  EXPECT_TRUE(model.compiled());
  EXPECT_THROW(model.compile(), std::logic_error);          // double compile
  EXPECT_THROW(model.hidden(1, 5, 0.5), std::logic_error);  // mutate after
}

TEST(Model, ThreeLayerPaperTopologyTrains) {
  const auto data = higgs_data(1200, 400);
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 50, 0.40)
      .classifier(2, sc::HeadType::kBcpnn)
      .set_option("epochs", 5)
      .compile("simd", 42);
  model.fit(data.x_train, data.y_train);
  EXPECT_GT(model.evaluate(data.x_test, data.y_test), 0.57);
}

TEST(Model, HybridSgdHead) {
  const auto data = higgs_data(1200, 400);
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 50, 0.40)
      .classifier(2, sc::HeadType::kSgd)
      .set_option("epochs", 5)
      .compile("simd", 42);
  model.fit(data.x_train, data.y_train);
  const double auc =
      streambrain::metrics::auc(model.predict_scores(data.x_test),
                                data.y_test);
  EXPECT_GT(auc, 0.60);
}

TEST(Model, DeepStackViaRepeatedHidden) {
  const auto data = higgs_data(1500, 300);
  sc::Model model;
  model.input(28, 10)
      .hidden(2, 40, 0.40)
      .hidden(1, 40, 1.0)
      .classifier(2)
      .set_option("epochs", 8)
      .compile("simd", 5);
  model.fit(data.x_train, data.y_train);
  EXPECT_GT(model.evaluate(data.x_test, data.y_test), 0.53);
}

TEST(Model, DeepStackRejectsSgdHead) {
  sc::Model model;
  model.input(28, 10).hidden(2, 20, 0.4).hidden(1, 20, 1.0).classifier(
      2, sc::HeadType::kSgd);
  EXPECT_THROW(model.compile(), std::invalid_argument);
}

TEST(Model, SummaryDescribesTopology) {
  sc::Model model;
  model.input(28, 10).hidden(2, 300, 0.30).classifier(2);
  const std::string summary = model.summary();
  EXPECT_NE(summary.find("28 hypercolumns x 10 units"), std::string::npos);
  EXPECT_NE(summary.find("2 HCUs x 300 MCUs"), std::string::npos);
  EXPECT_NE(summary.find("receptive field 30%"), std::string::npos);
  EXPECT_NE(summary.find("BCPNN head"), std::string::npos);
}

TEST(Model, OptionsReachTheNetworkConfig) {
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2)
      .set_option("epochs", 3)
      .set_option("batch_size", 32)
      .compile("naive", 7);
  const auto& config = model.network().config().bcpnn;
  EXPECT_EQ(config.epochs, 3u);
  EXPECT_EQ(config.batch_size, 32u);
  EXPECT_EQ(config.engine, "naive");
  EXPECT_EQ(config.seed, 7u);
}

TEST(Model, NetworkAccessorGuards) {
  sc::Model model;
  EXPECT_THROW((void)model.network(), std::logic_error);
  model.input(28, 10).hidden(2, 10, 0.4).hidden(1, 10, 1.0).classifier(2);
  model.compile();
  EXPECT_THROW((void)model.network(), std::logic_error);  // deep model
}

TEST(Model, SetOptionRejectsUnknownKeys) {
  sc::Model model;
  model.input(28, 10).hidden(1, 20, 0.4).classifier(2);
  try {
    model.set_option("learning_rate", 0.1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("learning_rate"), std::string::npos);
    EXPECT_NE(message.find("epochs"), std::string::npos)
        << "message should list the recognized keys: " << message;
  }
  // The post-compile guard still applies, and takes precedence.
  model.compile("naive", 1);
  EXPECT_THROW(model.set_option("alpha", 0.1), std::logic_error);
}

TEST(Model, NameDescribesTopologyAndHead) {
  sc::Model model;
  model.input(28, 10).hidden(2, 20, 0.4).hidden(1, 20, 1.0).classifier(2);
  EXPECT_EQ(model.name(), "bcpnn(depth=2,head=bcpnn)");
  sc::Model hybrid;
  hybrid.input(28, 10).hidden(1, 20, 0.4).classifier(2, sc::HeadType::kSgd);
  EXPECT_EQ(hybrid.name(), "bcpnn(depth=1,head=sgd)");
}

TEST(Model, DeepCompileRejectsShallowOnlyOptions) {
  sc::Model model;
  model.input(28, 10)
      .hidden(2, 10, 0.4)
      .hidden(1, 10, 1.0)
      .classifier(2)
      .set_option("k_beta", 2.0);  // recognized, but shallow-only
  try {
    model.compile();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("k_beta"), std::string::npos);
  }
  EXPECT_FALSE(model.compiled());
}
