// NEGATIVE-COMPILE CASE — must FAIL under clang -Werror=thread-safety
// with -Wthread-safety-beta (lock-order analysis lives behind the beta
// flag). Third contract: a declared ACQUIRED_BEFORE ordering cannot be
// inverted — the static analogue of the deadlock TSan can only catch
// when the interleaving actually happens.

#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sb = streambrain::sb;

class TwoLocks {
 public:
  void ordered() {
    const sb::MutexLock first(stats_mutex_);
    const sb::MutexLock second(inflight_mutex_);  // OK: declared order
  }

  void inverted() {
    const sb::MutexLock first(inflight_mutex_);
    const sb::MutexLock second(stats_mutex_);  // BAD: order inversion
  }

 private:
  sb::Mutex stats_mutex_ ACQUIRED_BEFORE(inflight_mutex_);
  sb::Mutex inflight_mutex_;
};

int main() {
  TwoLocks locks;
  locks.ordered();
  locks.inverted();
  return 0;
}
