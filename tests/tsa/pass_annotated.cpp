// POSITIVE CONTROL — this file must compile CLEAN under clang
// -Werror=thread-safety -Wthread-safety-beta. It pulls in the real
// annotated concurrency surface (serving queue, shard pool, thread
// pool, registry, async predictor) so any annotation in those headers
// that misstates its contract breaks this test, and exercises every
// sb:: primitive pattern the rollout uses: scoped locking, early
// unlock, CondVar waits in explicit loops, and REQUIRES helpers.

#include <cstddef>

#include "api/async_predictor.hpp"
#include "api/predictor.hpp"
#include "parallel/engine_registry.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/request_queue.hpp"
#include "serve/score_cache.hpp"
#include "serve/shard_pool.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sb = streambrain::sb;

class Buffer {
 public:
  void put(int value) {
    const sb::MutexLock lock(mutex_);
    while (full_) not_full_.wait(mutex_);
    item_ = value;
    full_ = true;
    not_empty_.notify_one();
  }

  int take() {
    sb::MutexLock lock(mutex_);
    while (!full_) not_empty_.wait(mutex_);
    const int value = item_;
    full_ = false;
    // Early-unlock-then-notify, as the serving queue does.
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  int size_locked() REQUIRES(mutex_) { return full_ ? 1 : 0; }

  int size() {
    const sb::MutexLock lock(mutex_);
    return size_locked();
  }

 private:
  sb::Mutex mutex_;
  sb::CondVar not_empty_;
  sb::CondVar not_full_;
  int item_ GUARDED_BY(mutex_) = 0;
  bool full_ GUARDED_BY(mutex_) = false;
};

int main() {
  Buffer buffer;
  buffer.put(1);
  return buffer.take() - 1 + buffer.size();
}
