// NEGATIVE-COMPILE CASE — this file must FAIL to compile under
// clang -Werror=thread-safety (and compile cleanly without it; the
// paired _control test checks that, so a stray syntax error cannot
// fake a pass). It demonstrates the first contract the annotation
// rollout enforces: a GUARDED_BY field cannot be touched without its
// mutex held.

#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sb = streambrain::sb;

class Counter {
 public:
  void bump_locked() {
    const sb::MutexLock lock(mutex_);
    ++count_;  // OK: lock held
  }

  void bump_unlocked() {
    ++count_;  // BAD: writing a GUARDED_BY field with no lock held
  }

 private:
  sb::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

int main() {
  Counter counter;
  counter.bump_locked();
  counter.bump_unlocked();
  return 0;
}
