// NEGATIVE-COMPILE CASE — must FAIL under clang -Werror=thread-safety.
// Second contract: a REQUIRES(mutex) method — the `*_locked()` helper
// convention used by Predictor::run_pending_locked and
// EngineRegistry::known_names_locked — cannot be called without the
// caller holding the mutex.

#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace sb = streambrain::sb;

class Registry {
 public:
  int count() {
    const sb::MutexLock lock(mutex_);
    return count_locked();  // OK: capability held
  }

  int count_unguarded() {
    return count_locked();  // BAD: REQUIRES(mutex_) with no lock held
  }

 private:
  int count_locked() REQUIRES(mutex_) { return entries_; }

  sb::Mutex mutex_;
  int entries_ GUARDED_BY(mutex_) = 0;
};

int main() {
  Registry registry;
  return registry.count() + registry.count_unguarded();
}
