// Checkpoint fuzzing: structured mutations of REAL checkpoint bytes in
// every readable format version — v1 / v2 layer files (down-converted
// from real current-version bytes the same way test_serialization keeps
// the compat path honest), dense / sparse model files, and v4 QUANTIZED
// model files (quant-dense and prune -> sparsify -> quantize) — must
// always end in a clean std::exception (or a successful load), never a
// crash, hang, or runaway allocation. The asan/ubsan CI job runs this
// suite, so an out-of-bounds read or overflow in the parser fails
// loudly.
//
// Mutation classes:
//   - truncation at many prefix lengths (torn writes, short downloads)
//   - 4-byte 0xFF / 0x00 stomps at every aligned offset (flipped or
//     overflowed u32/u64 count and geometry fields)
//   - seeded random single-byte flips (bit rot)

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pruning.hpp"
#include "core/serialization.hpp"
#include "parallel/engine.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

// Small but real: every section type present, a few KB of bytes so the
// aligned-stomp sweep touches every field class quickly even under asan.
constexpr std::size_t kInputHc = 6;
constexpr std::size_t kBins = 4;
constexpr std::size_t kMcus = 8;

sc::BcpnnConfig layer_config() {
  sc::BcpnnConfig config;
  config.input_hypercolumns = kInputHc;
  config.input_bins = kBins;
  config.hcus = 1;
  config.mcus = kMcus;
  config.receptive_field = 0.5;
  config.epochs = 2;
  config.seed = 11;
  return config;
}

st::MatrixF encoded_events(std::size_t rows, std::uint64_t seed) {
  su::Rng rng(seed);
  st::MatrixF x(rows, kInputHc * kBins, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t h = 0; h < kInputHc; ++h) {
      const auto bin = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<long long>(kBins) - 1));
      x(r, h * kBins + bin) = 1.0f;
    }
  }
  return x;
}

// Layer bytes at the current writer version. The layer payload has been
// byte-identical since v3 (v4 only added model-level quantized section
// tags), so the v2/v1 down-converters below stay valid.
std::string current_layer_bytes(bool pruned) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  sc::BcpnnLayer layer(config, *engine, rng);
  const auto x = encoded_events(60, 5);
  for (int step = 0; step < 4; ++step) layer.train_batch(x, 1.0f);
  if (pruned) layer.prune_to_density(0.2);
  std::ostringstream out(std::ios::binary);
  // save_layer has no stream overload; route through a temp file.
  const std::string path = ::testing::TempDir() + "fuzz_corpus_layer.ckpt";
  sc::save_layer(path, layer);
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// v3 -> v2 layer bytes: drop the trailing prune-mask field (one 0 flag
/// byte for an unpruned layer) and patch the version word.
std::string downconvert_layer_to_v2(std::string bytes) {
  bytes.pop_back();
  const std::uint32_t version = 2;
  std::memcpy(bytes.data() + 4, &version, sizeof(version));
  return bytes;
}

/// v2 -> v1 layer bytes: float-array counts u64 -> u32 (mirrors the
/// down-converter in test_serialization).
std::string downconvert_layer_to_v1(const std::string& bytes) {
  auto read_u64_at = [&](std::size_t pos) {
    std::uint64_t value = 0;
    std::memcpy(&value, bytes.data() + pos, sizeof(value));
    return value;
  };
  std::string v1;
  auto append_u32 = [&](std::uint32_t value) {
    v1.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  v1.append(bytes, 0, 4);  // magic
  append_u32(1);           // version
  std::size_t pos = 8;
  v1.append(bytes, pos, 20);  // section tag + 4 geometry fields
  pos += 20;
  for (int array = 0; array < 3; ++array) {  // pi, pj, pij
    const std::uint64_t count = read_u64_at(pos);
    pos += sizeof(std::uint64_t);
    append_u32(static_cast<std::uint32_t>(count));
    v1.append(bytes, pos, count * sizeof(float));
    pos += count * sizeof(float);
  }
  v1.append(bytes, pos, std::string::npos);  // masks
  return v1;
}

sc::Model trained_model(sc::HeadType head) {
  sc::Model model;
  model.input(kInputHc, kBins)
      .hidden(1, kMcus, 0.5)
      .classifier(2, head)
      .set_option("epochs", 2)
      .compile("simd", /*seed=*/11);
  const auto x = encoded_events(60, 5);
  std::vector<int> labels(x.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 2);
  }
  model.fit(x, labels);
  sc::prune_model(model, 0.3);
  return model;
}

std::string model_bytes(const sc::Model& model) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, model);
  return buffer.str();
}

/// Offset of the first u64 pair (a, b) in `bytes` — locates a payload
/// header (rows directly followed by cols) for targeted field stomps.
std::size_t find_u64_pair(const std::string& bytes, std::uint64_t a,
                          std::uint64_t b) {
  for (std::size_t i = 0; i + 16 <= bytes.size(); ++i) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::memcpy(&lo, bytes.data() + i, 8);
    std::memcpy(&hi, bytes.data() + i + 8, 8);
    if (lo == a && hi == b) return i;
  }
  return std::string::npos;
}

enum class Kind { kLayer, kModel };

/// The property under test: any mutation either loads cleanly or throws
/// a std::exception — never crashes (the sanitizer jobs catch the UB
/// class of failure) and never wedges on a runaway loop or allocation.
void try_load(Kind kind, const std::string& bytes) {
  std::stringstream in(std::string(bytes.data(), bytes.size()),
                       std::ios::in | std::ios::binary);
  try {
    if (kind == Kind::kModel) {
      sc::Model target;
      sc::load_model(in, target);
    } else {
      const auto config = layer_config();
      auto engine = sp::make_engine("simd");
      su::Rng rng(3);
      sc::BcpnnLayer target(config, *engine, rng);
      const std::string path =
          ::testing::TempDir() + "fuzz_mutated_layer.ckpt";
      {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      }
      sc::load_layer(path, target);
    }
  } catch (const std::exception&) {
    // Clean rejection — the expected outcome for most mutations.
  }
}

void fuzz_corpus(Kind kind, const std::string& bytes,
                 const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_GT(bytes.size(), 16u);

  // Truncations: every prefix for small files, ~128 sampled otherwise.
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 128);
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    try_load(kind, bytes.substr(0, len));
  }

  // Aligned 4-byte stomps: force every count/geometry field through its
  // overflow and zero paths.
  for (const unsigned char fill : {0xFFu, 0x00u}) {
    for (std::size_t offset = 0; offset + 4 <= bytes.size(); offset += 4) {
      std::string mutated = bytes;
      std::memset(mutated.data() + offset, static_cast<int>(fill), 4);
      try_load(kind, mutated);
    }
  }

  // Seeded random single-byte flips.
  su::Rng rng(0xF002 + bytes.size());
  for (int i = 0; i < 400; ++i) {
    std::string mutated = bytes;
    const auto offset = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<long long>(bytes.size()) - 1));
    mutated[offset] = static_cast<char>(rng.uniform_int(0, 255));
    try_load(kind, mutated);
  }
}

}  // namespace

TEST(CheckpointFuzz, PristineCorporaLoadCleanly) {
  // Sanity: the unmutated corpus bytes are real, loadable checkpoints.
  {
    std::stringstream in(model_bytes(trained_model(sc::HeadType::kSgd)),
                         std::ios::in | std::ios::binary);
    sc::Model target;
    sc::load_model(in, target);
    EXPECT_TRUE(target.compiled());
  }
  {
    sc::Model sparse = trained_model(sc::HeadType::kBcpnn).sparsify();
    std::stringstream in(model_bytes(sparse),
                         std::ios::in | std::ios::binary);
    sc::Model target;
    sc::load_model(in, target);
    EXPECT_TRUE(target.sparse());
  }
  {
    sc::Model quant = trained_model(sc::HeadType::kSgd).quantize();
    std::stringstream in(model_bytes(quant),
                         std::ios::in | std::ios::binary);
    sc::Model target;
    sc::load_model(in, target);
    EXPECT_TRUE(target.quantized());
  }
  {
    sc::Model quant_sparse =
        trained_model(sc::HeadType::kBcpnn).sparsify().quantize();
    std::stringstream in(model_bytes(quant_sparse),
                         std::ios::in | std::ios::binary);
    sc::Model target;
    sc::load_model(in, target);
    EXPECT_TRUE(target.quantized());
    EXPECT_TRUE(target.sparse());
  }
}

TEST(CheckpointFuzz, V1LayerBytesNeverCrash) {
  fuzz_corpus(Kind::kLayer,
              downconvert_layer_to_v1(
                  downconvert_layer_to_v2(current_layer_bytes(false))),
              "layer v1");
}

TEST(CheckpointFuzz, V2LayerBytesNeverCrash) {
  fuzz_corpus(Kind::kLayer, downconvert_layer_to_v2(current_layer_bytes(false)),
              "layer v2");
}

TEST(CheckpointFuzz, CurrentPrunedLayerBytesNeverCrash) {
  fuzz_corpus(Kind::kLayer, current_layer_bytes(true), "layer current pruned");
}

TEST(CheckpointFuzz, DenseModelBytesNeverCrash) {
  fuzz_corpus(Kind::kModel, model_bytes(trained_model(sc::HeadType::kSgd)),
              "model dense sgd");
  fuzz_corpus(Kind::kModel, model_bytes(trained_model(sc::HeadType::kBcpnn)),
              "model dense bcpnn");
}

TEST(CheckpointFuzz, SparseModelBytesNeverCrash) {
  sc::Model sparse = trained_model(sc::HeadType::kSgd).sparsify();
  fuzz_corpus(Kind::kModel, model_bytes(sparse), "model sparse");
}

TEST(CheckpointFuzz, V4QuantDenseModelBytesNeverCrash) {
  fuzz_corpus(Kind::kModel,
              model_bytes(trained_model(sc::HeadType::kSgd).quantize()),
              "model v4 quant dense sgd");
  fuzz_corpus(Kind::kModel,
              model_bytes(trained_model(sc::HeadType::kBcpnn).quantize()),
              "model v4 quant dense bcpnn");
}

TEST(CheckpointFuzz, V4QuantSparseModelBytesNeverCrash) {
  sc::Model quant_sparse =
      trained_model(sc::HeadType::kSgd).sparsify().quantize();
  fuzz_corpus(Kind::kModel, model_bytes(quant_sparse),
              "model v4 quant sparse");
}

TEST(CheckpointFuzz, TargetedQuantFieldMutationsAreRejected) {
  // Surgical quantized-payload mutations: an implausible block_size and
  // a blown-up quant-CSR nnz must both be rejected before the reader
  // sizes any allocation from them.
  const std::uint64_t rows = kMcus;
  const std::uint64_t cols = kInputHc * kBins;

  // Quant-dense payload header is u64 rows|cols|block_size.
  {
    std::string bytes =
        model_bytes(trained_model(sc::HeadType::kSgd).quantize());
    const std::size_t pos = find_u64_pair(bytes, rows, cols);
    ASSERT_NE(pos, std::string::npos) << "quant header not found";
    const std::uint64_t huge_block = ~std::uint64_t{0} / 2;
    std::memcpy(bytes.data() + pos + 16, &huge_block, sizeof(huge_block));
    std::stringstream in(bytes, std::ios::in | std::ios::binary);
    sc::Model target;
    EXPECT_THROW(sc::load_model(in, target), std::runtime_error);
  }
  // Quant-sparse payload header is u64 rows|cols|nnz; nnz past
  // rows*cols is structurally impossible.
  {
    std::string bytes = model_bytes(
        trained_model(sc::HeadType::kSgd).sparsify().quantize());
    const std::size_t pos = find_u64_pair(bytes, rows, cols);
    ASSERT_NE(pos, std::string::npos) << "quant CSR header not found";
    const std::uint64_t huge_nnz = ~std::uint64_t{0} / 2;
    std::memcpy(bytes.data() + pos + 16, &huge_nnz, sizeof(huge_nnz));
    std::stringstream in(bytes, std::ios::in | std::ios::binary);
    sc::Model target;
    EXPECT_THROW(sc::load_model(in, target), std::runtime_error);
  }
}

TEST(CheckpointFuzz, TargetedCountOverflowsAreRejected) {
  // Surgical versions of the historical failure modes: huge u64 float
  // counts, huge sparse nnz, oversized depth/options. Each must throw.
  const std::string bytes = model_bytes(trained_model(sc::HeadType::kSgd));

  // Version word -> unsupported.
  {
    std::string mutated = bytes;
    const std::uint32_t version = 99;
    std::memcpy(mutated.data() + 4, &version, sizeof(version));
    std::stringstream in(mutated, std::ios::in | std::ios::binary);
    sc::Model target;
    EXPECT_THROW(sc::load_model(in, target), std::runtime_error);
  }
  // Geometry field (input hypercolumns, right after the model tag) ->
  // implausibly huge: must be rejected before any allocation.
  {
    std::string mutated = bytes;
    const std::uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(mutated.data() + 12, &huge, sizeof(huge));
    std::stringstream in(mutated, std::ios::in | std::ios::binary);
    sc::Model target;
    EXPECT_THROW(sc::load_model(in, target), std::runtime_error);
  }
  // Sparse nnz blown up past rows*cols.
  {
    sc::Model sparse = trained_model(sc::HeadType::kSgd).sparsify();
    std::string sbytes = model_bytes(sparse);
    // Find the layer CSR header: rows == hidden units as a u64 directly
    // followed by cols == input units.
    const std::uint64_t rows = kMcus;
    const std::uint64_t cols = kInputHc * kBins;
    std::size_t pos = std::string::npos;
    for (std::size_t i = 0; i + 24 <= sbytes.size(); ++i) {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      std::memcpy(&a, sbytes.data() + i, 8);
      std::memcpy(&b, sbytes.data() + i + 8, 8);
      if (a == rows && b == cols) {
        pos = i;
        break;
      }
    }
    ASSERT_NE(pos, std::string::npos) << "CSR header not found";
    const std::uint64_t huge_nnz = ~std::uint64_t{0} / 2;
    std::memcpy(sbytes.data() + pos + 16, &huge_nnz, sizeof(huge_nnz));
    std::stringstream in(sbytes, std::ios::in | std::ios::binary);
    sc::Model target;
    EXPECT_THROW(sc::load_model(in, target), std::runtime_error);
  }
}
