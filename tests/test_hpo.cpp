// Tests for the hyper-parameter search module: space sampling laws,
// Latin-hypercube stratification, mutation clipping, optimizer progress.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hpo/search.hpp"
#include "hpo/space.hpp"

namespace sh = streambrain::hpo;
namespace su = streambrain::util;

namespace {

sh::ParameterSpace demo_space() {
  sh::ParameterSpace space;
  space.add_continuous("alpha", 0.001, 1.0, /*log_scale=*/true);
  space.add_integer("mcus", 10, 1000, /*log_scale=*/true);
  space.add_continuous("rf", 0.05, 0.95);
  space.add_categorical("engine", {"naive", "openmp", "simd"});
  return space;
}

}  // namespace

// --------------------------------------------------------------- space ----

TEST(ParameterSpace, RejectsDegenerateDomains) {
  sh::ParameterSpace space;
  EXPECT_THROW(space.add_continuous("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(space.add_continuous("x", -1.0, 1.0, true),
               std::invalid_argument);
  EXPECT_THROW(space.add_integer("n", 5, 4), std::invalid_argument);
  EXPECT_THROW(space.add_categorical("c", {}), std::invalid_argument);
}

TEST(ParameterSpace, SamplesStayInBounds) {
  const auto space = demo_space();
  su::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto sample = space.sample(rng);
    const double alpha = sample.get_double("alpha", -1.0);
    EXPECT_GE(alpha, 0.001);
    EXPECT_LE(alpha, 1.0);
    const long long mcus = sample.get_int("mcus", -1);
    EXPECT_GE(mcus, 10);
    EXPECT_LE(mcus, 1000);
    const double rf = sample.get_double("rf", -1.0);
    EXPECT_GE(rf, 0.05);
    EXPECT_LE(rf, 0.95);
    const std::string engine = sample.get_string("engine", "");
    EXPECT_TRUE(engine == "naive" || engine == "openmp" || engine == "simd");
  }
}

TEST(ParameterSpace, LogScaleSamplesSpreadAcrossDecades) {
  sh::ParameterSpace space;
  space.add_continuous("x", 1e-4, 1.0, /*log_scale=*/true);
  su::Rng rng(2);
  int tiny = 0;
  int small = 0;
  int large = 0;
  for (int i = 0; i < 3000; ++i) {
    const double x = space.sample(rng).get_double("x", 0.0);
    if (x < 1e-3) {
      ++tiny;
    } else if (x < 1e-2) {
      ++small;
    } else if (x > 1e-1) {
      ++large;
    }
  }
  // Log-uniform: each decade gets ~25% of the samples.
  EXPECT_NEAR(tiny, 750, 120);
  EXPECT_NEAR(small, 750, 120);
  EXPECT_NEAR(large, 750, 120);
}

TEST(ParameterSpace, LatinHypercubeStratifiesEveryDimension) {
  sh::ParameterSpace space;
  space.add_continuous("u", 0.0, 1.0);
  su::Rng rng(3);
  const auto batch = space.latin_hypercube(10, rng);
  ASSERT_EQ(batch.size(), 10u);
  // Exactly one sample per decile stratum.
  std::set<int> strata;
  for (const auto& config : batch) {
    strata.insert(
        static_cast<int>(config.get_double("u", 0.0) * 10.0));
  }
  EXPECT_EQ(strata.size(), 10u);
}

TEST(ParameterSpace, MutationStaysInBounds) {
  const auto space = demo_space();
  su::Rng rng(4);
  auto base = space.sample(rng);
  for (int i = 0; i < 300; ++i) {
    base = space.mutate(base, 0.5, rng);
    const double alpha = base.get_double("alpha", -1.0);
    EXPECT_GE(alpha, 0.001);
    EXPECT_LE(alpha, 1.0);
    const long long mcus = base.get_int("mcus", -1);
    EXPECT_GE(mcus, 10);
    EXPECT_LE(mcus, 1000);
  }
}

TEST(ParameterSpace, ZeroSigmaMutationIsNearIdentity) {
  const auto space = demo_space();
  su::Rng rng(5);
  const auto base = space.sample(rng);
  const auto mutated = space.mutate(base, 0.0, rng);
  EXPECT_NEAR(mutated.get_double("alpha", 0.0), base.get_double("alpha", 1.0),
              1e-9);
  EXPECT_EQ(mutated.get_int("mcus", 0), base.get_int("mcus", 1));
  EXPECT_EQ(mutated.get_string("engine", "a"), base.get_string("engine", "b"));
}

// ---------------------------------------------------------- optimizers ----

namespace {

/// Smooth unimodal objective with maximum at (alpha=0.1, rf=0.5).
double quadratic_objective(const su::Config& params) {
  const double alpha = params.get_double("alpha", 0.0);
  const double rf = params.get_double("rf", 0.0);
  const double da = std::log10(alpha) - std::log10(0.1);
  const double dr = rf - 0.5;
  return 1.0 - da * da - 4.0 * dr * dr;
}

}  // namespace

TEST(RandomSearch, FindsReasonableOptimum) {
  sh::RandomSearch search(demo_space(), 6);
  const auto result = search.optimize(quadratic_objective, 200);
  EXPECT_EQ(result.history.size(), 200u);
  EXPECT_GT(result.best.objective, 0.8);
}

TEST(RandomSearch, BestMatchesHistoryMaximum) {
  sh::RandomSearch search(demo_space(), 7);
  const auto result = search.optimize(quadratic_objective, 50);
  double best = -1e300;
  for (const auto& trial : result.history) {
    best = std::max(best, trial.objective);
  }
  EXPECT_DOUBLE_EQ(result.best.objective, best);
}

TEST(RandomSearch, ZeroBudgetThrows) {
  sh::RandomSearch search(demo_space(), 8);
  EXPECT_THROW(search.optimize(quadratic_objective, 0), std::invalid_argument);
}

TEST(LatinHypercubeSearch, CoversAndOptimizes) {
  sh::LatinHypercubeSearch search(demo_space(), 9);
  const auto result = search.optimize(quadratic_objective, 100);
  EXPECT_EQ(result.history.size(), 100u);
  EXPECT_GT(result.best.objective, 0.7);
}

TEST(EvolutionStrategy, ImprovesOverGenerations) {
  sh::EvolutionStrategyConfig config;
  config.lambda = 6;
  config.seed = 10;
  sh::EvolutionStrategy search(demo_space(), config);
  const auto result = search.optimize(quadratic_objective, 120);
  EXPECT_EQ(result.history.size(), 120u);
  // The elite must be at least as good as the first sample (monotone
  // (1+lambda) selection) and should actually get close to the optimum.
  EXPECT_GE(result.best.objective, result.history.front().objective);
  EXPECT_GT(result.best.objective, 0.85);
}

TEST(SuccessiveHalving, HighFidelityWinnersSurvive) {
  // Objective improves with fidelity; the halving schedule must evaluate
  // the survivors at max_fidelity and the best trial must come from the
  // top of the population.
  sh::SuccessiveHalvingConfig config;
  config.initial_population = 8;
  config.min_fidelity = 1;
  config.max_fidelity = 4;
  config.seed = 11;
  sh::SuccessiveHalving search(demo_space(), config);
  std::size_t max_seen_fidelity = 0;
  const auto result = search.optimize(
      [&](const su::Config& params, std::size_t fidelity) {
        max_seen_fidelity = std::max(max_seen_fidelity, fidelity);
        return quadratic_objective(params) +
               0.01 * static_cast<double>(fidelity);
      });
  EXPECT_EQ(max_seen_fidelity, 4u);
  EXPECT_FALSE(result.history.empty());
}

TEST(SuccessiveHalving, BadConfigThrows) {
  sh::SuccessiveHalvingConfig config;
  config.eta = 1;
  sh::SuccessiveHalving search(demo_space(), config);
  EXPECT_THROW(
      search.optimize([](const su::Config&, std::size_t) { return 0.0; }),
      std::invalid_argument);
}

TEST(Optimizers, DeterministicForSeed) {
  sh::RandomSearch a(demo_space(), 42);
  sh::RandomSearch b(demo_space(), 42);
  const auto ra = a.optimize(quadratic_objective, 30);
  const auto rb = b.optimize(quadratic_objective, 30);
  EXPECT_DOUBLE_EQ(ra.best.objective, rb.best.objective);
  EXPECT_EQ(ra.best.params.to_string(), rb.best.params.to_string());
}
