// Conformance / property suite for the comm substrate, parameterized
// over every transport backend (in-process mailboxes, POSIX shared
// memory, TCP loopback): every collective over randomized counts
// (including 0 and 1), float and double, world sizes 1–8; rank-order
// determinism of the flat allreduce (bitwise equal to a serial
// left-to-right reduction), flat-vs-ring agreement (exact for min/max,
// tight tolerance for float sums), nonblocking iallreduce equivalence,
// the byte-accounting invariants of every operation, and the fault
// contract: a rank failure mid-collective must surface as comm::CommError
// on every surviving rank instead of hanging.
//
// The collectives are written once against the Transport interface, so
// passing here means the three backends are observationally identical up
// to wire framing overhead — which the WireVsLogicalBytes case pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::comm;
namespace su = streambrain::util;

namespace {

constexpr std::size_t kCounts[] = {0, 1, 2, 7, 64, 257};

class CommProperty : public ::testing::TestWithParam<sc::Backend> {
 protected:
  sc::Backend backend() const { return GetParam(); }

  void run(int world, const std::function<void(sc::Communicator&)>& body) {
    sc::run_transport(backend(), world, body);
  }

  sc::RunStats run_reported(
      int world, const std::function<void(sc::Communicator&)>& body) {
    return sc::run_transport(backend(), world, body);
  }

  template <typename T>
  std::vector<std::vector<T>> run_allreduce(
      const std::vector<std::vector<T>>& inputs, sc::ReduceOp op,
      sc::AllreduceAlgorithm algorithm) {
    const int world = static_cast<int>(inputs.size());
    std::vector<std::vector<T>> results(inputs.size());
    run(world, [&](sc::Communicator& comm) {
      std::vector<T> mine = inputs[static_cast<std::size_t>(comm.rank())];
      comm.allreduce(mine.data(), mine.size(), op, algorithm);
      results[static_cast<std::size_t>(comm.rank())] = std::move(mine);
    });
    return results;
  }
};

template <typename T>
std::vector<std::vector<T>> random_contributions(int world, std::size_t count,
                                                 std::uint64_t seed) {
  std::vector<std::vector<T>> data(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    su::Rng rng(seed + static_cast<std::uint64_t>(r) * 7919);
    auto& mine = data[static_cast<std::size_t>(r)];
    mine.resize(count);
    for (auto& v : mine) v = static_cast<T>(rng.uniform(-2.0, 2.0));
  }
  return data;
}

/// Serial left-to-right (rank 0 first) reduction — the flat algorithm's
/// documented association.
template <typename T>
std::vector<T> serial_reference(const std::vector<std::vector<T>>& inputs,
                                sc::ReduceOp op) {
  std::vector<T> acc = inputs[0];
  for (std::size_t r = 1; r < inputs.size(); ++r) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case sc::ReduceOp::kSum:
          acc[i] += inputs[r][i];
          break;
        case sc::ReduceOp::kMin:
          acc[i] = std::min(acc[i], inputs[r][i]);
          break;
        case sc::ReduceOp::kMax:
          acc[i] = std::max(acc[i], inputs[r][i]);
          break;
      }
    }
  }
  return acc;
}

}  // namespace

// --- Allreduce: determinism & algorithm agreement --------------------------

TEST_P(CommProperty, FlatAllreduceMatchesSerialReferenceBitwise) {
  for (int world = 1; world <= 8; ++world) {
    for (const std::size_t count : kCounts) {
      const auto inputs =
          random_contributions<float>(world, count, 100 + count);
      const auto reference = serial_reference(inputs, sc::ReduceOp::kSum);
      const auto results = run_allreduce(inputs, sc::ReduceOp::kSum,
                                         sc::AllreduceAlgorithm::kFlat);
      for (const auto& per_rank : results) {
        ASSERT_EQ(per_rank.size(), reference.size());
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(per_rank[i], reference[i])  // bitwise
              << "world=" << world << " count=" << count << " i=" << i;
        }
      }
    }
  }
}

TEST_P(CommProperty, FlatAllreduceDoubleMatchesSerialReference) {
  for (int world : {1, 3, 5, 8}) {
    const auto inputs = random_contributions<double>(world, 33, 7);
    const auto reference = serial_reference(inputs, sc::ReduceOp::kSum);
    const auto results = run_allreduce(inputs, sc::ReduceOp::kSum,
                                       sc::AllreduceAlgorithm::kFlat);
    for (const auto& per_rank : results) {
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(per_rank[i], reference[i]);
      }
    }
  }
}

TEST_P(CommProperty, RingAgreesWithFlatWithinExactTolerance) {
  for (int world = 1; world <= 8; ++world) {
    for (const std::size_t count : kCounts) {
      const auto inputs =
          random_contributions<float>(world, count, 900 + count);
      const auto flat = run_allreduce(inputs, sc::ReduceOp::kSum,
                                      sc::AllreduceAlgorithm::kFlat);
      const auto ring = run_allreduce(inputs, sc::ReduceOp::kSum,
                                      sc::AllreduceAlgorithm::kRing);
      for (int r = 0; r < world; ++r) {
        for (std::size_t i = 0; i < count; ++i) {
          // Same values, different association: only rounding may differ.
          EXPECT_NEAR(ring[static_cast<std::size_t>(r)][i],
                      flat[static_cast<std::size_t>(r)][i],
                      1e-5 * static_cast<double>(world))
              << "world=" << world << " count=" << count;
        }
      }
    }
  }
}

TEST_P(CommProperty, MinMaxAreExactUnderBothAlgorithms) {
  for (int world : {1, 2, 4, 7}) {
    for (const sc::ReduceOp op : {sc::ReduceOp::kMin, sc::ReduceOp::kMax}) {
      const auto inputs = random_contributions<float>(world, 65, 31);
      const auto reference = serial_reference(inputs, op);
      for (const auto algorithm : {sc::AllreduceAlgorithm::kFlat,
                                   sc::AllreduceAlgorithm::kRing}) {
        const auto results = run_allreduce(inputs, op, algorithm);
        for (const auto& per_rank : results) {
          // min/max are associative and commutative: bitwise equal.
          for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(per_rank[i], reference[i]);
          }
        }
      }
    }
  }
}

TEST_P(CommProperty, Uint64AllreduceIsExactUnderBothAlgorithms) {
  for (int world : {1, 2, 5, 8}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{19}}) {
      std::vector<std::vector<std::uint64_t>> results(
          static_cast<std::size_t>(world));
      for (const auto algorithm : {sc::AllreduceAlgorithm::kFlat,
                                   sc::AllreduceAlgorithm::kRing}) {
        run(world, [&](sc::Communicator& comm) {
          std::vector<std::uint64_t> mine(count);
          for (std::size_t i = 0; i < count; ++i) {
            mine[i] = (static_cast<std::uint64_t>(comm.rank()) << 32) + i + 1;
          }
          comm.allreduce(mine.data(), count, sc::ReduceOp::kSum, algorithm);
          results[static_cast<std::size_t>(comm.rank())] = std::move(mine);
        });
        for (const auto& per_rank : results) {
          for (std::size_t i = 0; i < count; ++i) {
            std::uint64_t expected = 0;
            for (int r = 0; r < world; ++r) {
              expected += (static_cast<std::uint64_t>(r) << 32) + i + 1;
            }
            EXPECT_EQ(per_rank[i], expected);
          }
        }
      }
    }
  }
}

TEST_P(CommProperty, AllreduceIsRepeatableAcrossRuns) {
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    const auto inputs = random_contributions<float>(6, 129, 55);
    const auto first = run_allreduce(inputs, sc::ReduceOp::kSum, algorithm);
    const auto second = run_allreduce(inputs, sc::ReduceOp::kSum, algorithm);
    EXPECT_EQ(first, second);  // bitwise, run-to-run
  }
}

TEST_P(CommProperty, AllRanksAgreeUnderBothAlgorithms) {
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    const auto inputs = random_contributions<float>(7, 97, 21);
    const auto results = run_allreduce(inputs, sc::ReduceOp::kSum, algorithm);
    for (std::size_t r = 1; r < results.size(); ++r) {
      EXPECT_EQ(results[0], results[r]);
    }
  }
}

TEST_P(CommProperty, MeanDividesBothAlgorithms) {
  for (int world : {1, 4}) {
    for (const auto algorithm :
         {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
      run(world, [&](sc::Communicator& comm) {
        std::vector<double> mine = {static_cast<double>(comm.rank() * 2)};
        comm.allreduce_mean(mine.data(), 1, algorithm);
        EXPECT_DOUBLE_EQ(mine[0], static_cast<double>(world - 1));
      });
    }
  }
}

// --- Cross-backend agreement ------------------------------------------------

TEST_P(CommProperty, ResultBitwiseIdenticalToInprocBackend) {
  // The collectives never touch the wire directly, so every backend must
  // produce the in-process backend's bits exactly — not approximately.
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    const auto inputs = random_contributions<float>(5, 193, 77);
    std::vector<std::vector<float>> reference(5);
    sc::run_transport(sc::Backend::kInProcess, 5, [&](sc::Communicator& comm) {
      std::vector<float> mine = inputs[static_cast<std::size_t>(comm.rank())];
      comm.allreduce(mine.data(), mine.size(), sc::ReduceOp::kSum, algorithm);
      reference[static_cast<std::size_t>(comm.rank())] = std::move(mine);
    });
    const auto mine = run_allreduce(inputs, sc::ReduceOp::kSum, algorithm);
    EXPECT_EQ(mine, reference);
  }
}

// --- Nonblocking -----------------------------------------------------------

TEST_P(CommProperty, IallreduceMatchesBlockingAndOverlapsCompute) {
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    const auto inputs = random_contributions<float>(4, 77, 13);
    const auto blocking =
        run_allreduce(inputs, sc::ReduceOp::kSum, algorithm);
    std::vector<std::vector<float>> results(4);
    run(4, [&](sc::Communicator& comm) {
      std::vector<float> mine = inputs[static_cast<std::size_t>(comm.rank())];
      sc::Request request =
          comm.iallreduce(mine.data(), mine.size(), sc::ReduceOp::kSum,
                          algorithm);
      EXPECT_TRUE(request.pending());
      // Compute on unrelated data while the collective is in flight.
      double unrelated = 0.0;
      for (int i = 0; i < 1000; ++i) unrelated += std::sqrt(i + comm.rank());
      EXPECT_GT(unrelated, 0.0);
      request.wait();
      EXPECT_FALSE(request.pending());
      request.wait();  // idempotent
      results[static_cast<std::size_t>(comm.rank())] = std::move(mine);
    });
    EXPECT_EQ(results, blocking);
  }
}

TEST_P(CommProperty, DefaultRequestIsEmpty) {
  sc::Request request;
  EXPECT_FALSE(request.pending());
  request.wait();  // no-op
}

// --- Other collectives over randomized shapes ------------------------------

TEST_P(CommProperty, BroadcastEveryRootEveryCount) {
  for (int world : {1, 3, 6}) {
    for (const std::size_t count : kCounts) {
      for (int root = 0; root < world; ++root) {
        run(world, [&](sc::Communicator& comm) {
          std::vector<float> data(count);
          for (std::size_t i = 0; i < count; ++i) {
            data[i] = comm.rank() == root
                          ? static_cast<float>(i) + 0.5f
                          : -1.0f;
          }
          comm.broadcast(data.data(), count, root);
          for (std::size_t i = 0; i < count; ++i) {
            EXPECT_FLOAT_EQ(data[i], static_cast<float>(i) + 0.5f);
          }
        });
      }
    }
  }
}

TEST_P(CommProperty, AllgatherOrdersByRankEveryCount) {
  for (int world : {1, 2, 5, 8}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                    std::size_t{13}}) {
      run(world, [&](sc::Communicator& comm) {
        std::vector<float> mine(count);
        for (std::size_t i = 0; i < count; ++i) {
          mine[i] = static_cast<float>(comm.rank() * 1000 + i);
        }
        std::vector<float> all(static_cast<std::size_t>(world) * count);
        comm.allgather(mine.data(), count, all.data());
        for (int r = 0; r < world; ++r) {
          for (std::size_t i = 0; i < count; ++i) {
            EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r) * count + i],
                            static_cast<float>(r * 1000 + i));
          }
        }
      });
    }
  }
}

TEST_P(CommProperty, ReduceScatterMatchesAllreduceSliceRandomized) {
  for (int world : {1, 2, 4, 8}) {
    for (const std::size_t per_rank : {std::size_t{0}, std::size_t{1},
                                       std::size_t{9}}) {
      const std::size_t count = per_rank * static_cast<std::size_t>(world);
      const auto inputs = random_contributions<float>(world, count, 404);
      run(world, [&](sc::Communicator& comm) {
        std::vector<float> reference =
            inputs[static_cast<std::size_t>(comm.rank())];
        comm.allreduce(reference.data(), count, sc::ReduceOp::kSum);
        std::vector<float> mine(per_rank);
        comm.reduce_scatter(
            inputs[static_cast<std::size_t>(comm.rank())].data(), per_rank,
            mine.data());
        for (std::size_t i = 0; i < per_rank; ++i) {
          EXPECT_FLOAT_EQ(
              mine[i],
              reference[static_cast<std::size_t>(comm.rank()) * per_rank + i]);
        }
      });
    }
  }
}

TEST_P(CommProperty, ScatterGatherRoundTrip) {
  for (int world : {1, 4, 7}) {
    for (const std::size_t count : {std::size_t{1}, std::size_t{6}}) {
      run(world, [&](sc::Communicator& comm) {
        std::vector<float> source(static_cast<std::size_t>(world) * count);
        for (std::size_t i = 0; i < source.size(); ++i) {
          source[i] = static_cast<float>(i * 3 + 1);
        }
        std::vector<float> mine(count);
        comm.scatter(source.data(), count, mine.data(), /*root=*/0);
        std::vector<float> regathered(source.size(), -1.0f);
        comm.gather(mine.data(), count, regathered.data(), /*root=*/0);
        if (comm.rank() == 0) {
          EXPECT_EQ(regathered, source);
        }
      });
    }
  }
}

TEST_P(CommProperty, SendRecvRandomizedSizesAndTags) {
  run(3, [](sc::Communicator& comm) {
    su::Rng rng(808);
    // Deterministic shared plan: 12 messages rank 0 -> {1,2}.
    for (int m = 0; m < 12; ++m) {
      const int dest = 1 + m % 2;
      const std::size_t count = static_cast<std::size_t>(rng.uniform_int(0, 40));
      std::vector<float> payload(count);
      for (std::size_t i = 0; i < count; ++i) {
        payload[i] = static_cast<float>(m * 100 + i);
      }
      if (comm.rank() == 0) {
        comm.send(payload.data(), count, dest, /*tag=*/m);
      } else if (comm.rank() == dest) {
        std::vector<float> received(count, -1.0f);
        comm.recv(received.data(), count, 0, /*tag=*/m);
        EXPECT_EQ(received, payload);
      }
    }
  });
}

TEST_P(CommProperty, SelfSendRoundTripsAndCostsNoWire) {
  // MPI-style self messaging: send to your own rank, then receive it.
  const auto stats = run_reported(2, [](sc::Communicator& comm) {
    std::vector<float> payload = {1.5f, -2.5f,
                                  static_cast<float>(comm.rank())};
    comm.send(payload.data(), payload.size(), comm.rank(), /*tag=*/4);
    std::vector<float> received(payload.size(), 0.0f);
    comm.recv(received.data(), received.size(), comm.rank(), /*tag=*/4);
    EXPECT_EQ(received, payload);
  });
  // Self-sends are charged logically but never cross the wire.
  EXPECT_EQ(stats.bytes_per_rank[0], 3 * sizeof(float));
  EXPECT_EQ(stats.total_wire_bytes, 0u);
}

TEST_P(CommProperty, RecvCountMismatchFailsWithDescriptiveError) {
  // Sender posts 5 floats, receiver asks for 3: a silent truncation bug
  // in disguise. The transport must refuse with an error naming both
  // sizes, and the world must come down poisoned rather than hang.
  try {
    run(2, [](sc::Communicator& comm) {
      std::vector<float> buffer(5, 1.0f);
      if (comm.rank() == 0) {
        comm.send(buffer.data(), 5, /*dest=*/1, /*tag=*/0);
      } else {
        comm.recv(buffer.data(), 3, /*source=*/0, /*tag=*/0);
      }
    });
    FAIL() << "count mismatch did not throw";
  } catch (const sc::CommError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("size mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("12"), std::string::npos) << what;  // posted bytes
    EXPECT_NE(what.find("20"), std::string::npos) << what;  // carried bytes
  }
}

// --- Fault injection: the bugfix this suite pins ---------------------------

TEST_P(CommProperty, RankDeathMidCollectivePoisonsSurvivors) {
  // Rank 2 dies before joining the allreduce. Without world poisoning
  // the other ranks would block forever inside the collective — the
  // original hang. run() must return promptly with rank 2's exception,
  // and every survivor must have observed a CommError naming rank 2.
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    std::atomic<int> survivors_poisoned{0};
    try {
      run(4, [&](sc::Communicator& comm) {
        if (comm.rank() == 2) {
          throw std::runtime_error("injected fault on rank 2");
        }
        std::vector<float> data(64, 1.0f);
        try {
          comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum,
                         algorithm);
        } catch (const sc::CommError& error) {
          EXPECT_EQ(error.failed_rank(), 2);
          survivors_poisoned.fetch_add(1);
          throw;
        }
      });
      FAIL() << "rank death did not surface";
    } catch (const std::runtime_error& error) {
      // The *original* exception wins over the survivors' CommErrors.
      EXPECT_NE(std::string(error.what()).find("injected fault"),
                std::string::npos)
          << error.what();
    }
    EXPECT_EQ(survivors_poisoned.load(), 3);
  }
}

TEST_P(CommProperty, RankDeathDuringSendRecvPoisonsPeer) {
  // Rank 1 dies while rank 0 is blocked in recv() on it.
  std::atomic<bool> receiver_got_comm_error{false};
  try {
    run(2, [&](sc::Communicator& comm) {
      if (comm.rank() == 1) {
        throw std::runtime_error("receiver will never hear from me");
      }
      std::vector<float> data(8, 0.0f);
      try {
        comm.recv(data.data(), data.size(), /*source=*/1, /*tag=*/0);
      } catch (const sc::CommError& error) {
        EXPECT_EQ(error.failed_rank(), 1);
        receiver_got_comm_error.store(true);
        throw;
      }
    });
    FAIL() << "rank death did not surface";
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(receiver_got_comm_error.load());
}

TEST_P(CommProperty, PoisonedWorldRejectsFurtherOperations) {
  // After the world is poisoned every subsequent operation must fail
  // immediately — no timeout, no hang.
  try {
    run(2, [&](sc::Communicator& comm) {
      if (comm.rank() == 1) throw std::runtime_error("down");
      float v = 0.0f;
      for (int attempt = 0; attempt < 3; ++attempt) {
        try {
          comm.allreduce(&v, 1, sc::ReduceOp::kSum);
          FAIL() << "operation succeeded in a dead world";
        } catch (const sc::CommError& error) {
          EXPECT_EQ(error.failed_rank(), 1);
        }
      }
    });
    FAIL() << "rank death did not surface";
  } catch (const std::runtime_error&) {
  }
}

// --- Byte accounting invariants --------------------------------------------

TEST_P(CommProperty, FlatAllreduceByteFormula) {
  for (int world : {1, 2, 4, 8}) {
    for (const std::size_t count : {std::size_t{0}, std::size_t{100}}) {
      const auto stats = run_reported(world, [&](sc::Communicator& comm) {
        std::vector<float> data(count, 1.0f);
        comm.allreduce(data.data(), count, sc::ReduceOp::kSum,
                       sc::AllreduceAlgorithm::kFlat);
      });
      const std::uint64_t expected =
          static_cast<std::uint64_t>(count * sizeof(float)) *
          static_cast<std::uint64_t>(world - 1);
      std::uint64_t total = 0;
      for (int r = 0; r < world; ++r) {
        EXPECT_EQ(stats.bytes_per_rank[static_cast<std::size_t>(r)], expected);
        total += stats.bytes_per_rank[static_cast<std::size_t>(r)];
      }
      EXPECT_EQ(stats.total_bytes, total);  // total == sum of per-rank
    }
  }
}

TEST_P(CommProperty, RingAllreduceByteFormulaAndAdvantage) {
  const std::size_t count = 1024;
  for (int world : {2, 4, 8}) {
    const auto stats = run_reported(world, [&](sc::Communicator& comm) {
      std::vector<float> data(count, 1.0f);
      comm.allreduce(data.data(), count, sc::ReduceOp::kSum,
                     sc::AllreduceAlgorithm::kRing);
    });
    const std::uint64_t expected = static_cast<std::uint64_t>(
        2.0 * (world - 1) / static_cast<double>(world) *
        static_cast<double>(count * sizeof(float)));
    const std::uint64_t flat = static_cast<std::uint64_t>(
        count * sizeof(float)) * static_cast<std::uint64_t>(world - 1);
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(stats.bytes_per_rank[static_cast<std::size_t>(r)], expected);
    }
    EXPECT_EQ(stats.total_bytes,
              expected * static_cast<std::uint64_t>(world));
    if (world > 2) {
      EXPECT_LT(expected, flat);  // ring's bandwidth advantage
    }
  }
}

TEST_P(CommProperty, LogicalBytesIdenticalAcrossBackendsWireDiffers) {
  // The logical byte model is a property of the algorithm, not the wire:
  // every backend must report the in-process backend's numbers exactly.
  // Wire bytes add real framing on shm/tcp and are zero only when
  // nothing actually moves between ranks.
  const std::size_t count = 300;
  const auto body = [count](sc::Communicator& comm) {
    std::vector<float> data(count, static_cast<float>(comm.rank()));
    comm.allreduce(data.data(), count, sc::ReduceOp::kSum,
                   sc::AllreduceAlgorithm::kRing);
  };
  const auto reference =
      sc::run_transport(sc::Backend::kInProcess, 4, body);
  const auto stats = run_reported(4, body);
  EXPECT_EQ(stats.bytes_per_rank, reference.bytes_per_rank);
  EXPECT_EQ(stats.total_bytes, reference.total_bytes);
  // Framing can only add bytes on top of the payload.
  EXPECT_GE(stats.total_wire_bytes, stats.total_bytes);
}

TEST_P(CommProperty, RootedCollectiveBytesAreAsymmetric) {
  // broadcast charges the root only; gather charges the leaves only.
  const auto stats = run_reported(4, [](sc::Communicator& comm) {
    std::vector<float> data(10, static_cast<float>(comm.rank()));
    comm.broadcast(data.data(), data.size(), /*root=*/2);
    std::vector<float> out(40);
    comm.gather(data.data(), data.size(), out.data(), /*root=*/2);
  });
  const std::uint64_t bcast_root = 3 * 10 * sizeof(float);
  const std::uint64_t gather_leaf = 10 * sizeof(float);
  EXPECT_EQ(stats.bytes_per_rank[2], bcast_root);  // root: bcast only
  for (const int leaf : {0, 1, 3}) {
    EXPECT_EQ(stats.bytes_per_rank[static_cast<std::size_t>(leaf)],
              gather_leaf);
  }
  std::uint64_t sum = 0;
  for (const auto bytes : stats.bytes_per_rank) sum += bytes;
  EXPECT_EQ(stats.total_bytes, sum);
  // The old ×world extrapolation from rank 0 would be wrong here:
  EXPECT_NE(stats.total_bytes, stats.bytes_per_rank[0] * 4);
}

TEST_P(CommProperty, ZeroCountCollectivesSendNothing) {
  const auto stats = run_reported(5, [](sc::Communicator& comm) {
    comm.allreduce(static_cast<float*>(nullptr), 0, sc::ReduceOp::kSum,
                   sc::AllreduceAlgorithm::kFlat);
    float dummy = 0.0f;
    comm.allreduce(&dummy, 0, sc::ReduceOp::kSum,
                   sc::AllreduceAlgorithm::kRing);
    comm.broadcast(&dummy, 0, 0);
    comm.allgather(&dummy, 0, &dummy);
  });
  EXPECT_EQ(stats.total_bytes, 0u);
}

TEST_P(CommProperty, SingleRankSendsNothingForAnyAlgorithm) {
  for (const auto algorithm :
       {sc::AllreduceAlgorithm::kFlat, sc::AllreduceAlgorithm::kRing}) {
    const auto stats = run_reported(1, [&](sc::Communicator& comm) {
      std::vector<float> data(256, 2.0f);
      comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum, algorithm);
      for (const float v : data) EXPECT_FLOAT_EQ(v, 2.0f);
    });
    EXPECT_EQ(stats.total_bytes, 0u);
    EXPECT_EQ(stats.total_wire_bytes, 0u);
  }
}

TEST_P(CommProperty, AlgorithmAndBackendNames) {
  EXPECT_STREQ(sc::algorithm_name(sc::AllreduceAlgorithm::kFlat), "flat");
  EXPECT_STREQ(sc::algorithm_name(sc::AllreduceAlgorithm::kRing), "ring");
  EXPECT_STREQ(sc::backend_name(sc::Backend::kInProcess), "inproc");
  EXPECT_STREQ(sc::backend_name(sc::Backend::kShm), "shm");
  EXPECT_STREQ(sc::backend_name(sc::Backend::kTcp), "tcp");
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CommProperty,
    ::testing::Values(sc::Backend::kInProcess, sc::Backend::kShm,
                      sc::Backend::kTcp),
    [](const ::testing::TestParamInfo<sc::Backend>& info) {
      return std::string(sc::backend_name(info.param));
    });
