// Tests for the PPM color writer (Fig. 2's red/blue mask convention) and
// its Catalyst integration.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "viz/catalyst.hpp"
#include "viz/ppm_writer.hpp"

namespace sv = streambrain::viz;
namespace fs = std::filesystem;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t payload_offset(const std::string& content) {
  return content.find("255\n") + 4;
}

}  // namespace

TEST(Ppm, HeaderAndPayloadSize) {
  const std::string path = "/tmp/streambrain_test.ppm";
  std::vector<sv::Rgb> pixels(6, sv::Rgb{1, 2, 3});
  sv::write_ppm(path, 3, 2, pixels);
  const std::string content = slurp(path);
  EXPECT_EQ(content.substr(0, 3), "P6\n");
  EXPECT_NE(content.find("3 2\n255\n"), std::string::npos);
  EXPECT_EQ(content.size() - payload_offset(content), 18u);  // 6 px * 3 B
  fs::remove(path);
}

TEST(Ppm, RejectsPixelCountMismatch) {
  std::vector<sv::Rgb> pixels(5);
  EXPECT_THROW(sv::write_ppm("/tmp/x.ppm", 3, 2, pixels),
               std::invalid_argument);
}

TEST(Ppm, MaskUsesPaperColors) {
  const std::string path = "/tmp/streambrain_mask.ppm";
  sv::write_ppm_mask(path, {true, false}, 2, 1);
  const std::string content = slurp(path);
  const std::size_t off = payload_offset(content);
  // Active pixel: paper red (R dominant).
  EXPECT_EQ(static_cast<unsigned char>(content[off]), sv::kPaperActiveRed.r);
  EXPECT_EQ(static_cast<unsigned char>(content[off + 2]),
            sv::kPaperActiveRed.b);
  // Silent pixel: paper blue (B dominant).
  EXPECT_EQ(static_cast<unsigned char>(content[off + 3]),
            sv::kPaperSilentBlue.r);
  EXPECT_EQ(static_cast<unsigned char>(content[off + 5]),
            sv::kPaperSilentBlue.b);
  fs::remove(path);
}

TEST(Ppm, IntensityModulatesBrightness) {
  const std::string path = "/tmp/streambrain_mask_mi.ppm";
  // Two active cells, one with low MI, one with high MI.
  sv::write_ppm_mask(path, {true, true}, 2, 1, {0.0f, 1.0f});
  const std::string content = slurp(path);
  const std::size_t off = payload_offset(content);
  const unsigned char dim_r = content[off];
  const unsigned char bright_r = content[off + 3];
  EXPECT_LT(dim_r, bright_r);
  EXPECT_GT(dim_r, 0u);  // floor keeps dim cells visible
  fs::remove(path);
}

TEST(Ppm, RejectsBadShapes) {
  EXPECT_THROW(sv::write_ppm_mask("/tmp/x.ppm", {true, true, true}, 1, 2),
               std::invalid_argument);
  EXPECT_THROW(
      sv::write_ppm_mask("/tmp/x.ppm", {true}, 1, 1, {0.1f, 0.2f}),
      std::invalid_argument);
}

TEST(Ppm, CatalystWritesColorSnapshots) {
  sv::CatalystOptions options;
  options.output_dir = "/tmp/streambrain_catalyst_ppm";
  options.write_vti = false;
  options.write_ppm = true;
  options.grid_width = 2;
  fs::remove_all(options.output_dir);
  sv::CatalystAdaptor adaptor(options);
  adaptor.co_process(3, {{true, false, false, true}},
                     {{0.5f, 0.1f, 0.2f, 0.9f}});
  EXPECT_TRUE(fs::exists(options.output_dir + "/fields_epoch0003_hcu00.ppm"));
  EXPECT_FALSE(fs::exists(options.output_dir + "/fields_epoch0003_hcu00.vti"));
  fs::remove_all(options.output_dir);
}
