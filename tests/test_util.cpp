// Unit tests for src/util: rng, stats, strings, cli, config, table.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace su = streambrain::util;

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  su::Rng a(123);
  su::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  su::Rng a(1);
  su::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  su::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  su::Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexIsInRange) {
  su::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  su::Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  su::Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  su::Rng rng(23);
  su::RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  su::Rng rng(29);
  su::RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  su::Rng rng(31);
  su::RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.exponential(2.0));
  EXPECT_NEAR(stat.mean(), 0.5, 0.02);
}

TEST(Rng, GammaMeanMatchesShapeScale) {
  su::Rng rng(37);
  su::RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.gamma(3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 6.0, 0.1);   // k * theta
  EXPECT_NEAR(stat.variance(), 12.0, 0.6);  // k * theta^2
}

TEST(Rng, GammaShapeBelowOne) {
  su::Rng rng(41);
  su::RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.gamma(0.5, 1.0);
    EXPECT_GE(v, 0.0);
    stat.add(v);
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  su::Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  su::Rng rng(47);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  su::Rng rng(53);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto copy = values;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  su::Rng parent(59);
  su::Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- stats ----

TEST(RunningStat, BasicMoments) {
  su::RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(v);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  su::Rng rng(61);
  su::RunningStat all;
  su::RunningStat a;
  su::RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  su::RunningStat a;
  a.add(1.0);
  su::RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(su::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(su::mean({}), 0.0);
  EXPECT_NEAR(su::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(su::stddev({5.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(su::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(su::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, QuantileInterpolation) {
  std::vector<double> values = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(su::quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(su::quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(su::quantile(values, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(su::quantile(values, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(su::quantile(values, 0.1), 0.4);
}

TEST(Stats, QuantileCutsBalancedMass) {
  su::Rng rng(67);
  std::vector<double> values(10000);
  for (auto& v : values) v = rng.normal();
  const auto cuts = su::quantile_cuts(values, 10);
  ASSERT_EQ(cuts.size(), 9u);
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
  // Each decile bucket should hold ~10% of the mass.
  std::vector<int> counts(10, 0);
  for (double v : values) {
    std::size_t bin = 0;
    while (bin < cuts.size() && v >= cuts[bin]) ++bin;
    ++counts[bin];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 60);
}

// ------------------------------------------------------------- string ----

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = su::split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(su::trim("  hi \t\n"), "hi");
  EXPECT_EQ(su::trim(""), "");
  EXPECT_EQ(su::trim("   "), "");
  EXPECT_EQ(su::trim("x"), "x");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(su::starts_with("--flag", "--"));
  EXPECT_FALSE(su::starts_with("-", "--"));
  EXPECT_TRUE(su::ends_with("file.csv", ".csv"));
  EXPECT_FALSE(su::ends_with("csv", ".csv"));
}

TEST(StringUtil, ParseDoubleStrict) {
  EXPECT_EQ(su::parse_double("3.25"), 3.25);
  EXPECT_EQ(su::parse_double(" -1e3 "), -1000.0);
  EXPECT_FALSE(su::parse_double("12abc").has_value());
  EXPECT_FALSE(su::parse_double("").has_value());
}

TEST(StringUtil, ParseIntStrict) {
  EXPECT_EQ(su::parse_int("42"), 42);
  EXPECT_EQ(su::parse_int("-7"), -7);
  EXPECT_FALSE(su::parse_int("3.5").has_value());
  EXPECT_FALSE(su::parse_int("x").has_value());
}

TEST(StringUtil, FormatAndJoin) {
  EXPECT_EQ(su::format("%.2f%%", 68.58), "68.58%");
  EXPECT_EQ(su::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(su::join({}, ","), "");
}

// ---------------------------------------------------------------- cli ----

TEST(ArgParser, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha", "0.5",  "--flag",
                        "--name=x", "pos1",    "--n",  "42"};
  su::ArgParser args(8, argv);
  EXPECT_EQ(args.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_EQ(args.get_int("n", 0), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgParser, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  su::ArgParser args(1, argv);
  EXPECT_EQ(args.get_int("missing", 9), 9);
  EXPECT_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(ArgParser, BoolValueForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=off", "--d=yes"};
  su::ArgParser args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

// ------------------------------------------------------------- config ----

TEST(Config, SetGetRoundTrip) {
  su::Config config;
  config.set_int("n", 7);
  config.set_double("x", 2.5);
  config.set_bool("flag", true);
  config.set_string("s", "abc");
  EXPECT_EQ(config.get_int("n", 0), 7);
  EXPECT_EQ(config.get_double("x", 0.0), 2.5);
  EXPECT_TRUE(config.get_bool("flag", false));
  EXPECT_EQ(config.get_string("s", ""), "abc");
}

TEST(Config, NumericCrossConversion) {
  su::Config config;
  config.set_int("n", 7);
  config.set_double("x", 2.9);
  EXPECT_EQ(config.get_double("n", 0.0), 7.0);
  EXPECT_EQ(config.get_int("x", 0), 2);  // truncation
}

TEST(Config, ParseInfersTypes) {
  const auto config = su::Config::parse("a=1, b=2.5, c=true, d=hello");
  EXPECT_EQ(config.get_int("a", 0), 1);
  EXPECT_EQ(config.get_double("b", 0.0), 2.5);
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_EQ(config.get_string("d", ""), "hello");
}

TEST(Config, ParseRejectsMalformed) {
  EXPECT_THROW(su::Config::parse("novalue"), std::invalid_argument);
  EXPECT_THROW(su::Config::parse("=x"), std::invalid_argument);
}

TEST(Config, KeysSortedAndToString) {
  su::Config config;
  config.set_int("zeta", 1);
  config.set_int("alpha", 2);
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zeta");
  EXPECT_EQ(config.to_string(), "alpha=2 zeta=1");
}

// -------------------------------------------------------------- table ----

TEST(Table, RendersAligned) {
  su::Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  su::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(su::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(su::Table::pct(0.6858, 2), "68.58%");
}

// -------------------------------------------------------------- timer ----

TEST(Stopwatch, MeasuresElapsed) {
  su::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.seconds(), 0.0);
  (void)sink;
}

TEST(Stopwatch, PauseStopsAccumulation) {
  su::Stopwatch watch;
  watch.pause();
  const double at_pause = watch.seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(watch.seconds(), at_pause);
  watch.resume();
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.seconds(), at_pause);
  (void)sink;
}
