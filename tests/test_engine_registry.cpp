// EngineRegistry: the four built-ins must be pre-registered with sane
// capability metadata, unknown names must fail loudly, and a custom
// engine registered at runtime must be resolvable everywhere an engine
// name is accepted — including training a Model end-to-end through it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "parallel/engine_registry.hpp"
#include "tensor/kernel_set.hpp"

namespace sp = streambrain::parallel;
namespace sc = streambrain::core;
namespace st = streambrain::tensor;

namespace {

std::atomic<int> g_custom_support_calls{0};

/// Custom engine that delegates all math to the naive reference engine
/// but counts invocations, proving the registry actually routed work
/// through it.
class CountingEngine final : public sp::Engine {
 public:
  CountingEngine() : inner_(sp::EngineRegistry::instance().create("naive")) {}

  [[nodiscard]] std::string name() const override { return "counting"; }

  void support(const st::MatrixF& x, const st::MatrixF& w, const float* bias,
               st::MatrixF& s) override {
    g_custom_support_calls.fetch_add(1, std::memory_order_relaxed);
    inner_->support(x, w, bias, s);
  }

  void softmax_hcu(st::MatrixF& s, std::size_t mcus_per_hcu,
                   float inverse_temperature) override {
    inner_->softmax_hcu(s, mcus_per_hcu, inverse_temperature);
  }

  void update_traces(const st::MatrixF& x, const st::MatrixF& a, float alpha,
                     float* pi, float* pj, st::MatrixF& pij) override {
    inner_->update_traces(x, a, alpha, pi, pj, pij);
  }

  void recompute_weights(const float* pi, const float* pj,
                         const st::MatrixF& pij, float eps, float k_beta,
                         st::MatrixF& w, float* bias) override {
    inner_->recompute_weights(pi, pj, pij, eps, k_beta, w, bias);
  }

 private:
  std::unique_ptr<sp::Engine> inner_;
};

/// RAII registration so a failing test cannot leak the entry into later
/// tests in the same process.
struct ScopedEngine {
  ScopedEngine(sp::EngineInfo info, sp::EngineRegistry::Factory factory)
      : name(info.name) {
    sp::EngineRegistry::instance().register_engine(std::move(info),
                                                   std::move(factory));
  }
  ~ScopedEngine() { sp::EngineRegistry::instance().unregister_engine(name); }
  std::string name;
};

}  // namespace

TEST(EngineRegistry, BuiltinsAreRegisteredInOrder) {
  auto& registry = sp::EngineRegistry::instance();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "naive");
  EXPECT_EQ(names[1], "openmp");
  EXPECT_EQ(names[2], "simd");
  EXPECT_EQ(names[3], "device_sim");
  for (const char* name : {"naive", "openmp", "simd", "device_sim"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const auto engine = registry.create(name);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), name);
  }
}

TEST(EngineRegistry, BuiltinCapabilityMetadata) {
  auto& registry = sp::EngineRegistry::instance();
  const sp::EngineInfo naive = registry.info("naive");
  EXPECT_EQ(naive.simd_width, 1u);
  EXPECT_FALSE(naive.offload);
  EXPECT_TRUE(naive.dispatch.empty());  // hand loops, not KernelSet-backed
  const sp::EngineInfo device = registry.info("device_sim");
  EXPECT_TRUE(device.offload);
  EXPECT_TRUE(device.counts_transfers);
  EXPECT_FALSE(device.description.empty());
}

TEST(EngineRegistry, SimdEngineMetadataIsHonestAboutRuntimeDispatch) {
  // The "simd" engine routes through the runtime-dispatched KernelSet,
  // so its registered capabilities must mirror what the dispatcher
  // actually selected on this host (CPUID + STREAMBRAIN_DISPATCH) — not
  // the widest tier the binary happens to contain. Under a forced
  // scalar dispatch the honest width is 1.
  const streambrain::tensor::KernelSet& kernels =
      streambrain::tensor::startup_kernels();
  const sp::EngineInfo simd = sp::EngineRegistry::instance().info("simd");
  EXPECT_EQ(simd.simd_width, kernels.simd_width);
  EXPECT_EQ(simd.dispatch, kernels.name);
  EXPECT_NE(simd.description.find(kernels.name), std::string::npos)
      << "description should name the active tier: " << simd.description;
  EXPECT_FALSE(simd.offload);
  // device_sim delegates its math to the same kernels.
  const sp::EngineInfo device = sp::EngineRegistry::instance().info(
      "device_sim");
  EXPECT_EQ(device.simd_width, kernels.simd_width);
  EXPECT_EQ(device.dispatch, kernels.name);
  // The dispatch tag is a real tier name and never exceeds the host.
  EXPECT_NO_THROW({
    const auto level = streambrain::tensor::parse_dispatch_level(simd.dispatch);
    EXPECT_LE(level, streambrain::tensor::max_supported_dispatch());
  });
}

TEST(EngineRegistry, UnknownNameFailsNamingTheRegisteredSet) {
  auto& registry = sp::EngineRegistry::instance();
  EXPECT_FALSE(registry.contains("cuda"));
  try {
    (void)registry.create("cuda");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("cuda"), std::string::npos);
    EXPECT_NE(message.find("simd"), std::string::npos);
  }
  EXPECT_THROW((void)registry.info("cuda"), std::invalid_argument);
}

TEST(EngineRegistry, RejectsDuplicateAndInvalidRegistrations) {
  auto& registry = sp::EngineRegistry::instance();
  EXPECT_THROW(registry.register_engine(
                   {"simd", "dup", 1, false, false, ""},
                   [] { return std::unique_ptr<sp::Engine>(); }),
               std::invalid_argument);
  EXPECT_THROW(registry.register_engine({"", "anonymous", 1, false, false, ""},
                                        [] {
                                          return std::unique_ptr<sp::Engine>();
                                        }),
               std::invalid_argument);
  EXPECT_THROW(
      registry.register_engine({"null_factory", "", 1, false, false, ""}, nullptr),
      std::invalid_argument);
  EXPECT_FALSE(registry.unregister_engine("never_registered"));
}

TEST(EngineRegistry, CustomEngineTrainsAModelEndToEnd) {
  const ScopedEngine guard(
      {"counting", "naive delegate that counts support() calls",
       /*simd_width=*/1, /*offload=*/false, /*counts_transfers=*/false,
       /*dispatch=*/""},
      [] { return std::make_unique<CountingEngine>(); });
  auto& registry = sp::EngineRegistry::instance();
  ASSERT_TRUE(registry.contains("counting"));
  EXPECT_EQ(registry.create("counting")->name(), "counting");

  streambrain::data::SyntheticHiggsGenerator generator;
  const auto train = generator.generate(900);
  streambrain::data::HiggsGeneratorOptions opts;
  opts.seed = 777;
  streambrain::data::SyntheticHiggsGenerator test_generator(opts);
  const auto test = test_generator.generate(300);
  streambrain::encode::OneHotEncoder encoder(10);
  const st::MatrixF x_train = encoder.fit_transform(train.features);
  const st::MatrixF x_test = encoder.transform(test.features);

  g_custom_support_calls.store(0);
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 40, 0.4)
      .classifier(2)
      .set_option("epochs", 4)
      .compile("counting", 42);
  model.fit(x_train, train.labels);
  EXPECT_GT(model.evaluate(x_test, test.labels), 0.52);
  EXPECT_GT(g_custom_support_calls.load(), 0);
}

TEST(EngineRegistry, MakeEngineShimStillResolves) {
  // Back-compat: the old free function now routes through the registry.
  const auto engine = sp::make_engine("openmp");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "openmp");
  EXPECT_THROW((void)sp::make_engine("fpga"), std::invalid_argument);
}
