// Tests for the comm substrate: MPI-semantics collectives over
// threads-as-ranks, determinism, byte accounting, point-to-point,
// world-poisoning fault semantics, real multi-process transports
// (fork + shm / TCP), and the hierarchical two-level collectives.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <numeric>
#include <string>

#include "comm/communicator.hpp"
#include "comm/hierarchical.hpp"
#include "util/rng.hpp"

// fork() inside a ThreadSanitizer'd gtest binary trips TSan's
// fork-with-threads machinery; the multi-process death tests are
// single-process-visible hangs anyway, so skip them under TSan only.
#if defined(__SANITIZE_THREAD__)
#define STREAMBRAIN_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMBRAIN_TSAN_BUILD 1
#endif
#endif

namespace sc = streambrain::comm;
namespace su = streambrain::util;

TEST(Comm, RunInvokesEveryRank) {
  std::vector<std::atomic<int>> visited(4);
  sc::run(4, [&](sc::Communicator& comm) {
    ++visited[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 4);
  });
  for (const auto& v : visited) EXPECT_EQ(v.load(), 1);
}

TEST(Comm, RunRejectsNonPositiveSize) {
  EXPECT_THROW(sc::run(0, [](sc::Communicator&) {}), std::invalid_argument);
}

TEST(Comm, RunPropagatesRankExceptions) {
  // Unlike real MPI, a dying rank does NOT strand its peers: the failure
  // poisons the world, every blocked collective aborts with CommError,
  // and run() rethrows the original exception (see the fault-semantics
  // tests below for the collective-in-flight cases).
  EXPECT_THROW(sc::run(3,
                       [](sc::Communicator& comm) {
                         if (comm.rank() == 1) {
                           throw std::runtime_error("rank 1 failed");
                         }
                       }),
               std::runtime_error);
}

TEST(Comm, AllreduceSumFloat) {
  sc::run(4, [](sc::Communicator& comm) {
    std::vector<float> data = {static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    EXPECT_FLOAT_EQ(data[0], 10.0f);  // 1+2+3+4
    EXPECT_FLOAT_EQ(data[1], 40.0f);
  });
}

TEST(Comm, AllreduceMinMax) {
  sc::run(3, [](sc::Communicator& comm) {
    std::vector<double> lo = {static_cast<double>(comm.rank())};
    std::vector<double> hi = {static_cast<double>(comm.rank())};
    comm.allreduce(lo.data(), 1, sc::ReduceOp::kMin);
    comm.allreduce(hi.data(), 1, sc::ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    EXPECT_DOUBLE_EQ(hi[0], 2.0);
  });
}

TEST(Comm, AllreduceMeanAveragesContributions) {
  sc::run(5, [](sc::Communicator& comm) {
    std::vector<float> data = {static_cast<float>(10 * comm.rank())};
    comm.allreduce_mean(data.data(), 1);
    EXPECT_FLOAT_EQ(data[0], 20.0f);  // mean of 0,10,20,30,40
  });
}

TEST(Comm, AllreduceIsDeterministicAcrossRepeats) {
  // Sum of irrational-ish floats in fixed rank order must be bitwise
  // repeatable run-to-run (this is what makes distributed BCPNN training
  // deterministic).
  std::vector<float> first;
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<float> result(8);
    sc::run(4, [&](sc::Communicator& comm) {
      su::Rng rng(1000 + comm.rank());
      std::vector<float> data(8);
      for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
      if (comm.rank() == 0) result = data;
    });
    if (repeat == 0) {
      first = result;
    } else {
      for (std::size_t i = 0; i < result.size(); ++i) {
        EXPECT_EQ(result[i], first[i]);  // bitwise
      }
    }
  }
}

TEST(Comm, AllRanksGetIdenticalAllreduceResult) {
  std::vector<std::vector<float>> per_rank(4);
  sc::run(4, [&](sc::Communicator& comm) {
    su::Rng rng(7 + comm.rank());
    std::vector<float> data(16);
    for (auto& v : data) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    per_rank[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(per_rank[0], per_rank[static_cast<std::size_t>(r)]);
  }
}

TEST(Comm, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    sc::run(3, [root](sc::Communicator& comm) {
      std::vector<float> data(4, comm.rank() == root ? 42.0f : -1.0f);
      comm.broadcast(data.data(), data.size(), root);
      for (float v : data) EXPECT_FLOAT_EQ(v, 42.0f);
    });
  }
}

TEST(Comm, AllgatherConcatenatesInRankOrder) {
  sc::run(4, [](sc::Communicator& comm) {
    const float mine[2] = {static_cast<float>(comm.rank()),
                           static_cast<float>(comm.rank() * 10)};
    std::vector<float> all(8);
    comm.allgather(mine, 2, all.data());
    for (int r = 0; r < 4; ++r) {
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10);
    }
  });
}

TEST(Comm, GatherCollectsOnRootOnly) {
  for (int root = 0; root < 3; ++root) {
    sc::run(3, [root](sc::Communicator& comm) {
      const float mine = static_cast<float>(100 + comm.rank());
      std::vector<float> out(3, -1.0f);
      comm.gather(&mine, 1, out.data(), root);
      if (comm.rank() == root) {
        EXPECT_FLOAT_EQ(out[0], 100.0f);
        EXPECT_FLOAT_EQ(out[1], 101.0f);
        EXPECT_FLOAT_EQ(out[2], 102.0f);
      } else {
        EXPECT_FLOAT_EQ(out[0], -1.0f);  // untouched off-root
      }
    });
  }
}

TEST(Comm, ScatterDistributesBlocks) {
  sc::run(4, [](sc::Communicator& comm) {
    std::vector<float> source;
    if (comm.rank() == 2) {
      for (int i = 0; i < 8; ++i) source.push_back(static_cast<float>(i));
    } else {
      source.assign(8, -1.0f);  // non-root buffers are ignored
    }
    float mine[2] = {};
    comm.scatter(source.data(), 2, mine, /*root=*/2);
    EXPECT_FLOAT_EQ(mine[0], static_cast<float>(2 * comm.rank()));
    EXPECT_FLOAT_EQ(mine[1], static_cast<float>(2 * comm.rank() + 1));
  });
}

TEST(Comm, ReduceScatterSumsAndSplits) {
  sc::run(3, [](sc::Communicator& comm) {
    // Every rank contributes [rank, rank, ..., rank] of length 6.
    std::vector<float> contribution(6, static_cast<float>(comm.rank() + 1));
    float mine[2] = {};
    comm.reduce_scatter(contribution.data(), 2, mine);
    // Sum across ranks = 1+2+3 = 6 in every slot; each rank gets 2 slots.
    EXPECT_FLOAT_EQ(mine[0], 6.0f);
    EXPECT_FLOAT_EQ(mine[1], 6.0f);
  });
}

TEST(Comm, ReduceScatterMatchesAllreducePlusSlice) {
  sc::run(4, [](sc::Communicator& comm) {
    su::Rng rng(500 + comm.rank());
    std::vector<float> data(12);
    for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> reference = data;
    comm.allreduce(reference.data(), reference.size(), sc::ReduceOp::kSum);
    float mine[3] = {};
    comm.reduce_scatter(data.data(), 3, mine);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(mine[i],
                      reference[static_cast<std::size_t>(comm.rank()) * 3 + i]);
    }
  });
}

TEST(Comm, SendRecvPointToPoint) {
  sc::run(2, [](sc::Communicator& comm) {
    if (comm.rank() == 0) {
      const float payload[3] = {1.0f, 2.0f, 3.0f};
      comm.send(payload, 3, 1, 7);
    } else {
      float received[3] = {};
      comm.recv(received, 3, 0, 7);
      EXPECT_FLOAT_EQ(received[0], 1.0f);
      EXPECT_FLOAT_EQ(received[2], 3.0f);
    }
  });
}

TEST(Comm, SendRecvTagsAreIndependentChannels) {
  sc::run(2, [](sc::Communicator& comm) {
    if (comm.rank() == 0) {
      const float a = 1.0f;
      const float b = 2.0f;
      comm.send(&a, 1, 1, /*tag=*/100);
      comm.send(&b, 1, 1, /*tag=*/200);
    } else {
      float b = 0.0f;
      float a = 0.0f;
      comm.recv(&b, 1, 0, 200);  // out of send order, matched by tag
      comm.recv(&a, 1, 0, 100);
      EXPECT_FLOAT_EQ(a, 1.0f);
      EXPECT_FLOAT_EQ(b, 2.0f);
    }
  });
}

TEST(Comm, RecvSizeMismatchThrows) {
  EXPECT_THROW(sc::run(2,
                       [](sc::Communicator& comm) {
                         if (comm.rank() == 0) {
                           const float v = 1.0f;
                           comm.send(&v, 1, 1, 0);
                         } else {
                           float two[2];
                           comm.recv(two, 2, 0, 0);
                         }
                       }),
               std::runtime_error);
}

TEST(Comm, ByteAccountingGrowsWithTraffic) {
  std::uint64_t bytes_small = 0;
  std::uint64_t bytes_large = 0;
  sc::run(4, [&](sc::Communicator& comm) {
    std::vector<float> small(10, 1.0f);
    comm.allreduce(small.data(), small.size(), sc::ReduceOp::kSum);
    if (comm.rank() == 0) bytes_small = comm.bytes_sent();
  });
  sc::run(4, [&](sc::Communicator& comm) {
    std::vector<float> large(1000, 1.0f);
    comm.allreduce(large.data(), large.size(), sc::ReduceOp::kSum);
    if (comm.rank() == 0) bytes_large = comm.bytes_sent();
  });
  EXPECT_GT(bytes_large, bytes_small * 50);
}

TEST(Comm, SingleRankCollectivesAreLocal) {
  sc::run(1, [](sc::Communicator& comm) {
    std::vector<float> data = {3.0f};
    comm.allreduce_mean(data.data(), 1);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
    comm.broadcast(data.data(), 1, 0);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
    comm.barrier();
  });
}

TEST(Comm, ManyBarriersDoNotDeadlock) {
  sc::run(6, [](sc::Communicator& comm) {
    for (int i = 0; i < 200; ++i) comm.barrier();
  });
  SUCCEED();
}

// --- Fault semantics: rank failures must never hang the world ---------------

TEST(Comm, RankExceptionBeforeBarrierPoisonsWorldAndReturns) {
  // The original bug: rank 1 dies before the barrier, ranks 0 and 2 are
  // already inside it, and run() never returns. Now the failure poisons
  // the world: the barrier aborts with CommError naming rank 1 on every
  // survivor, and run() rethrows rank 1's original exception.
  std::atomic<int> survivors_aborted{0};
  try {
    sc::run(3, [&](sc::Communicator& comm) {
      if (comm.rank() == 1) {
        throw std::runtime_error("rank 1 failed before the barrier");
      }
      try {
        comm.barrier();
      } catch (const sc::CommError& error) {
        EXPECT_EQ(error.failed_rank(), 1);
        EXPECT_NE(std::string(error.what()).find("rank 1"), std::string::npos);
        ++survivors_aborted;
        throw;
      }
    });
    FAIL() << "run() swallowed the rank failure";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rank 1 failed before the barrier");
  }
  EXPECT_EQ(survivors_aborted.load(), 2);
}

TEST(Comm, PendingRequestDestructionPoisonsWorld) {
  // Dropping a Request while its collective is still pending used to be
  // documented as an MPI-style footgun ("peers deadlock, exactly like
  // real MPI"). Now it is loud and survivable: the destructor poisons
  // the world, so the run fails fast with a descriptive CommError
  // instead of stranding the other ranks inside the allreduce.
  try {
    sc::run(2, [](sc::Communicator& comm) {
      std::vector<float> data(32, 1.0f);
      {
        sc::Request dropped =
            comm.iallreduce(data.data(), data.size(), sc::ReduceOp::kSum);
        EXPECT_TRUE(dropped.pending());
        // ...destroyed without wait().
      }
    });
    FAIL() << "abandoned collective did not surface";
  } catch (const sc::CommError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("Request destroyed while pending"), std::string::npos)
        << what;
    EXPECT_NE(what.find("wait()"), std::string::npos) << what;
  }
}

TEST(Comm, MovedFromRequestIsInert) {
  sc::run(2, [](sc::Communicator& comm) {
    std::vector<float> data(8, 1.0f);
    sc::Request request =
        comm.iallreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    sc::Request moved = std::move(request);
    EXPECT_FALSE(request.pending());  // NOLINT(bugprone-use-after-move)
    request.wait();                   // no-op, not a double wait
    EXPECT_TRUE(moved.pending());
    moved.wait();
    EXPECT_FALSE(moved.pending());
  });
}

TEST(Comm, NegativeUserTagsAreRejected) {
  // Negative tags are reserved for the transports' internal traffic
  // (collective payloads, barrier tokens); user code must not forge them.
  sc::run(2, [](sc::Communicator& comm) {
    float v = 0.0f;
    EXPECT_THROW(comm.send(&v, 1, /*dest=*/1 - comm.rank(), /*tag=*/-1),
                 std::invalid_argument);
    EXPECT_THROW(comm.recv(&v, 1, /*source=*/1 - comm.rank(), /*tag=*/-2),
                 std::invalid_argument);
  });
}

TEST(Comm, OutOfRangePeersAreRejected) {
  sc::run(2, [](sc::Communicator& comm) {
    float v = 0.0f;
    EXPECT_THROW(comm.send(&v, 1, /*dest=*/2, /*tag=*/0),
                 std::invalid_argument);
    EXPECT_THROW(comm.recv(&v, 1, /*source=*/-1, /*tag=*/0),
                 std::invalid_argument);
  });
}

// --- Real multi-process transports (fork + shm / TCP) -----------------------

#ifndef STREAMBRAIN_TSAN_BUILD

namespace {

/// Bind port 0 on loopback and return the kernel-assigned port.
int pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = static_cast<int>(ntohs(addr.sin_port));
  ::close(fd);
  return port;
}

}  // namespace

TEST(Comm, ShmTwoProcessAllreduce) {
  sc::TransportOptions options;
  options.backend = sc::Backend::kShm;
  options.world = 2;
  options.session = "sb_test_shm_" + std::to_string(::getpid());
  options.op_timeout_ms = 20000;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = rank 1: contribute and verify; any failure exits nonzero.
    options.rank = 1;
    int code = 1;
    try {
      sc::Endpoint endpoint(options);
      std::vector<float> data = {1.0f, 10.0f};
      endpoint.comm().allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
      code = (data[0] == 2.0f && data[1] == 30.0f) ? 0 : 2;
    } catch (...) {
    }
    std::_Exit(code);
  }
  options.rank = 0;
  sc::Endpoint endpoint(options);
  std::vector<float> data = {1.0f, 20.0f};
  endpoint.comm().allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
  EXPECT_FLOAT_EQ(data[0], 2.0f);
  EXPECT_FLOAT_EQ(data[1], 30.0f);
  EXPECT_GT(endpoint.comm().wire_bytes_sent(),
            endpoint.comm().bytes_sent());  // frame headers on a real wire
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(Comm, ShmPeerProcessDeathPoisonsSurvivor) {
  sc::TransportOptions options;
  options.backend = sc::Backend::kShm;
  options.world = 2;
  options.session = "sb_test_shm_death_" + std::to_string(::getpid());
  options.op_timeout_ms = 1500;  // the survivor's escape hatch

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = rank 1: join the world, then die without a word.
    options.rank = 1;
    try {
      sc::Endpoint endpoint(options);
    } catch (...) {
      std::_Exit(1);
    }
    std::_Exit(0);
  }
  options.rank = 0;
  sc::Endpoint endpoint(options);
  std::vector<float> data(16, 1.0f);
  try {
    endpoint.comm().allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    FAIL() << "allreduce with a dead shm peer did not fail";
  } catch (const sc::CommError& error) {
    EXPECT_EQ(error.failed_rank(), 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

TEST(Comm, TcpTwoProcessAllreduce) {
  sc::TransportOptions options;
  options.backend = sc::Backend::kTcp;
  options.world = 2;
  options.ports = {pick_free_port(), pick_free_port()};
  options.connect_timeout_ms = 20000;
  options.op_timeout_ms = 20000;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    options.rank = 1;
    int code = 1;
    try {
      sc::Endpoint endpoint(options);
      std::vector<float> data = {3.0f};
      endpoint.comm().allreduce(data.data(), 1, sc::ReduceOp::kSum);
      code = data[0] == 7.0f ? 0 : 2;
    } catch (...) {
    }
    std::_Exit(code);
  }
  options.rank = 0;
  sc::Endpoint endpoint(options);
  std::vector<float> data = {4.0f};
  endpoint.comm().allreduce(data.data(), 1, sc::ReduceOp::kSum);
  EXPECT_FLOAT_EQ(data[0], 7.0f);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(Comm, TcpPeerProcessDeathPoisonsSurvivor) {
  // The killed peer's sockets close, the survivor reads EOF the moment
  // it needs that rank, and the op aborts with CommError — no waiting
  // for the op timeout.
  sc::TransportOptions options;
  options.backend = sc::Backend::kTcp;
  options.world = 2;
  options.ports = {pick_free_port(), pick_free_port()};
  options.connect_timeout_ms = 20000;
  options.op_timeout_ms = 20000;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    options.rank = 1;
    try {
      sc::Endpoint endpoint(options);
    } catch (...) {
      std::_Exit(1);
    }
    std::_Exit(0);  // sockets close; rank 0 sees EOF mid-collective
  }
  options.rank = 0;
  sc::Endpoint endpoint(options);
  std::vector<float> data(16, 1.0f);
  try {
    endpoint.comm().allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    FAIL() << "allreduce with a dead tcp peer did not fail";
  } catch (const sc::CommError& error) {
    EXPECT_EQ(error.failed_rank(), 1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

#endif  // !STREAMBRAIN_TSAN_BUILD

// --- Hierarchical (intra-host shm + inter-host TCP) collectives -------------

TEST(Comm, HierarchicalAllreduceAcrossHosts) {
  sc::HierarchicalOptions options;  // 2 hosts × 2 ranks
  sc::run_hierarchical(options, [](sc::HierarchicalComm& comm) {
    EXPECT_EQ(comm.world(), 4);
    EXPECT_EQ(comm.global_rank(), comm.host() * 2 + comm.local_rank());
    EXPECT_EQ(comm.is_leader(), comm.local_rank() == 0);

    std::vector<float> sum = {static_cast<float>(comm.global_rank() + 1)};
    comm.allreduce(sum.data(), 1, sc::ReduceOp::kSum);
    EXPECT_FLOAT_EQ(sum[0], 10.0f);  // 1+2+3+4

    std::vector<float> lo = {static_cast<float>(comm.global_rank())};
    std::vector<float> hi = {static_cast<float>(comm.global_rank())};
    comm.allreduce(lo.data(), 1, sc::ReduceOp::kMin);
    comm.allreduce(hi.data(), 1, sc::ReduceOp::kMax);
    EXPECT_FLOAT_EQ(lo[0], 0.0f);  // exact: min/max associate freely
    EXPECT_FLOAT_EQ(hi[0], 3.0f);

    std::vector<float> mean = {static_cast<float>(10 * comm.global_rank())};
    comm.allreduce_mean(mean.data(), 1);
    EXPECT_FLOAT_EQ(mean[0], 15.0f);  // mean of 0,10,20,30

    comm.barrier();
  });
}

TEST(Comm, HierarchicalDisjointShardPayloadsAreExact) {
  // The payload shape DistributedTrainer reduces: each rank's slots are
  // disjoint and zero-padded, so every addition is x + 0 and the
  // two-level association cannot change a single bit.
  sc::HierarchicalOptions options;
  options.hosts = 2;
  options.ranks_per_host = 2;
  sc::run_hierarchical(options, [](sc::HierarchicalComm& comm) {
    std::vector<float> data(4, 0.0f);
    data[static_cast<std::size_t>(comm.global_rank())] =
        0.1f * static_cast<float>(comm.global_rank() + 1);
    comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    for (int g = 0; g < 4; ++g) {
      EXPECT_EQ(data[static_cast<std::size_t>(g)],
                0.1f * static_cast<float>(g + 1));  // bitwise
    }
  });
}

TEST(Comm, HierarchicalRankFailureDoesNotHang) {
  // Global rank 3 (host 1, non-leader) dies before contributing; every
  // other rank is already inside the two-level allreduce. The failure
  // must cascade through both levels and run_hierarchical must return.
  sc::HierarchicalOptions options;
  EXPECT_THROW(
      sc::run_hierarchical(options,
                           [](sc::HierarchicalComm& comm) {
                             if (comm.global_rank() == 3) {
                               throw std::runtime_error("rank 3 down");
                             }
                             std::vector<float> data(32, 1.0f);
                             comm.allreduce(data.data(), data.size(),
                                            sc::ReduceOp::kSum);
                           }),
      std::runtime_error);
}

TEST(Comm, HierarchicalSingleHostDegeneratesToIntra) {
  sc::HierarchicalOptions options;
  options.hosts = 1;
  options.ranks_per_host = 3;
  sc::run_hierarchical(options, [](sc::HierarchicalComm& comm) {
    EXPECT_EQ(comm.world(), 3);
    std::vector<float> data = {static_cast<float>(comm.global_rank() + 1)};
    comm.allreduce(data.data(), 1, sc::ReduceOp::kSum);
    EXPECT_FLOAT_EQ(data[0], 6.0f);
    comm.barrier();
  });
}
