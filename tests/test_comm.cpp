// Tests for the comm substrate: MPI-semantics collectives over
// threads-as-ranks, determinism, byte accounting, point-to-point.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "comm/communicator.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::comm;
namespace su = streambrain::util;

TEST(Comm, RunInvokesEveryRank) {
  std::vector<std::atomic<int>> visited(4);
  sc::run(4, [&](sc::Communicator& comm) {
    ++visited[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 4);
  });
  for (const auto& v : visited) EXPECT_EQ(v.load(), 1);
}

TEST(Comm, RunRejectsNonPositiveSize) {
  EXPECT_THROW(sc::run(0, [](sc::Communicator&) {}), std::invalid_argument);
}

TEST(Comm, RunPropagatesRankExceptions) {
  // NOTE: like real MPI, a rank that dies inside a collective would
  // deadlock its peers — so the failing rank here throws while the other
  // ranks do only local work.
  EXPECT_THROW(sc::run(3,
                       [](sc::Communicator& comm) {
                         if (comm.rank() == 1) {
                           throw std::runtime_error("rank 1 failed");
                         }
                       }),
               std::runtime_error);
}

TEST(Comm, AllreduceSumFloat) {
  sc::run(4, [](sc::Communicator& comm) {
    std::vector<float> data = {static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    EXPECT_FLOAT_EQ(data[0], 10.0f);  // 1+2+3+4
    EXPECT_FLOAT_EQ(data[1], 40.0f);
  });
}

TEST(Comm, AllreduceMinMax) {
  sc::run(3, [](sc::Communicator& comm) {
    std::vector<double> lo = {static_cast<double>(comm.rank())};
    std::vector<double> hi = {static_cast<double>(comm.rank())};
    comm.allreduce(lo.data(), 1, sc::ReduceOp::kMin);
    comm.allreduce(hi.data(), 1, sc::ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    EXPECT_DOUBLE_EQ(hi[0], 2.0);
  });
}

TEST(Comm, AllreduceMeanAveragesContributions) {
  sc::run(5, [](sc::Communicator& comm) {
    std::vector<float> data = {static_cast<float>(10 * comm.rank())};
    comm.allreduce_mean(data.data(), 1);
    EXPECT_FLOAT_EQ(data[0], 20.0f);  // mean of 0,10,20,30,40
  });
}

TEST(Comm, AllreduceIsDeterministicAcrossRepeats) {
  // Sum of irrational-ish floats in fixed rank order must be bitwise
  // repeatable run-to-run (this is what makes distributed BCPNN training
  // deterministic).
  std::vector<float> first;
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<float> result(8);
    sc::run(4, [&](sc::Communicator& comm) {
      su::Rng rng(1000 + comm.rank());
      std::vector<float> data(8);
      for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
      if (comm.rank() == 0) result = data;
    });
    if (repeat == 0) {
      first = result;
    } else {
      for (std::size_t i = 0; i < result.size(); ++i) {
        EXPECT_EQ(result[i], first[i]);  // bitwise
      }
    }
  }
}

TEST(Comm, AllRanksGetIdenticalAllreduceResult) {
  std::vector<std::vector<float>> per_rank(4);
  sc::run(4, [&](sc::Communicator& comm) {
    su::Rng rng(7 + comm.rank());
    std::vector<float> data(16);
    for (auto& v : data) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    comm.allreduce(data.data(), data.size(), sc::ReduceOp::kSum);
    per_rank[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(per_rank[0], per_rank[static_cast<std::size_t>(r)]);
  }
}

TEST(Comm, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    sc::run(3, [root](sc::Communicator& comm) {
      std::vector<float> data(4, comm.rank() == root ? 42.0f : -1.0f);
      comm.broadcast(data.data(), data.size(), root);
      for (float v : data) EXPECT_FLOAT_EQ(v, 42.0f);
    });
  }
}

TEST(Comm, AllgatherConcatenatesInRankOrder) {
  sc::run(4, [](sc::Communicator& comm) {
    const float mine[2] = {static_cast<float>(comm.rank()),
                           static_cast<float>(comm.rank() * 10)};
    std::vector<float> all(8);
    comm.allgather(mine, 2, all.data());
    for (int r = 0; r < 4; ++r) {
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10);
    }
  });
}

TEST(Comm, GatherCollectsOnRootOnly) {
  for (int root = 0; root < 3; ++root) {
    sc::run(3, [root](sc::Communicator& comm) {
      const float mine = static_cast<float>(100 + comm.rank());
      std::vector<float> out(3, -1.0f);
      comm.gather(&mine, 1, out.data(), root);
      if (comm.rank() == root) {
        EXPECT_FLOAT_EQ(out[0], 100.0f);
        EXPECT_FLOAT_EQ(out[1], 101.0f);
        EXPECT_FLOAT_EQ(out[2], 102.0f);
      } else {
        EXPECT_FLOAT_EQ(out[0], -1.0f);  // untouched off-root
      }
    });
  }
}

TEST(Comm, ScatterDistributesBlocks) {
  sc::run(4, [](sc::Communicator& comm) {
    std::vector<float> source;
    if (comm.rank() == 2) {
      for (int i = 0; i < 8; ++i) source.push_back(static_cast<float>(i));
    } else {
      source.assign(8, -1.0f);  // non-root buffers are ignored
    }
    float mine[2] = {};
    comm.scatter(source.data(), 2, mine, /*root=*/2);
    EXPECT_FLOAT_EQ(mine[0], static_cast<float>(2 * comm.rank()));
    EXPECT_FLOAT_EQ(mine[1], static_cast<float>(2 * comm.rank() + 1));
  });
}

TEST(Comm, ReduceScatterSumsAndSplits) {
  sc::run(3, [](sc::Communicator& comm) {
    // Every rank contributes [rank, rank, ..., rank] of length 6.
    std::vector<float> contribution(6, static_cast<float>(comm.rank() + 1));
    float mine[2] = {};
    comm.reduce_scatter(contribution.data(), 2, mine);
    // Sum across ranks = 1+2+3 = 6 in every slot; each rank gets 2 slots.
    EXPECT_FLOAT_EQ(mine[0], 6.0f);
    EXPECT_FLOAT_EQ(mine[1], 6.0f);
  });
}

TEST(Comm, ReduceScatterMatchesAllreducePlusSlice) {
  sc::run(4, [](sc::Communicator& comm) {
    su::Rng rng(500 + comm.rank());
    std::vector<float> data(12);
    for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> reference = data;
    comm.allreduce(reference.data(), reference.size(), sc::ReduceOp::kSum);
    float mine[3] = {};
    comm.reduce_scatter(data.data(), 3, mine);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(mine[i],
                      reference[static_cast<std::size_t>(comm.rank()) * 3 + i]);
    }
  });
}

TEST(Comm, SendRecvPointToPoint) {
  sc::run(2, [](sc::Communicator& comm) {
    if (comm.rank() == 0) {
      const float payload[3] = {1.0f, 2.0f, 3.0f};
      comm.send(payload, 3, 1, 7);
    } else {
      float received[3] = {};
      comm.recv(received, 3, 0, 7);
      EXPECT_FLOAT_EQ(received[0], 1.0f);
      EXPECT_FLOAT_EQ(received[2], 3.0f);
    }
  });
}

TEST(Comm, SendRecvTagsAreIndependentChannels) {
  sc::run(2, [](sc::Communicator& comm) {
    if (comm.rank() == 0) {
      const float a = 1.0f;
      const float b = 2.0f;
      comm.send(&a, 1, 1, /*tag=*/100);
      comm.send(&b, 1, 1, /*tag=*/200);
    } else {
      float b = 0.0f;
      float a = 0.0f;
      comm.recv(&b, 1, 0, 200);  // out of send order, matched by tag
      comm.recv(&a, 1, 0, 100);
      EXPECT_FLOAT_EQ(a, 1.0f);
      EXPECT_FLOAT_EQ(b, 2.0f);
    }
  });
}

TEST(Comm, RecvSizeMismatchThrows) {
  EXPECT_THROW(sc::run(2,
                       [](sc::Communicator& comm) {
                         if (comm.rank() == 0) {
                           const float v = 1.0f;
                           comm.send(&v, 1, 1, 0);
                         } else {
                           float two[2];
                           comm.recv(two, 2, 0, 0);
                         }
                       }),
               std::runtime_error);
}

TEST(Comm, ByteAccountingGrowsWithTraffic) {
  std::uint64_t bytes_small = 0;
  std::uint64_t bytes_large = 0;
  sc::run(4, [&](sc::Communicator& comm) {
    std::vector<float> small(10, 1.0f);
    comm.allreduce(small.data(), small.size(), sc::ReduceOp::kSum);
    if (comm.rank() == 0) bytes_small = comm.bytes_sent();
  });
  sc::run(4, [&](sc::Communicator& comm) {
    std::vector<float> large(1000, 1.0f);
    comm.allreduce(large.data(), large.size(), sc::ReduceOp::kSum);
    if (comm.rank() == 0) bytes_large = comm.bytes_sent();
  });
  EXPECT_GT(bytes_large, bytes_small * 50);
}

TEST(Comm, SingleRankCollectivesAreLocal) {
  sc::run(1, [](sc::Communicator& comm) {
    std::vector<float> data = {3.0f};
    comm.allreduce_mean(data.data(), 1);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
    comm.broadcast(data.data(), 1, 0);
    EXPECT_FLOAT_EQ(data[0], 3.0f);
    comm.barrier();
  });
}

TEST(Comm, ManyBarriersDoNotDeadlock) {
  sc::run(6, [](sc::Communicator& comm) {
    for (int i = 0; i < 200; ++i) comm.barrier();
  });
  SUCCEED();
}
