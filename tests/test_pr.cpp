// Tests for precision-recall metrics and the Brier score.

#include <gtest/gtest.h>

#include "metrics/pr.hpp"
#include "util/rng.hpp"

namespace sm = streambrain::metrics;
namespace su = streambrain::util;

TEST(PrCurve, PerfectRankingEndsAtFullRecallFullPrecisionPrefix) {
  const auto curve = sm::pr_curve({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0});
  ASSERT_GE(curve.size(), 2u);
  // First point: 1 selected, 1 TP.
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().recall, 0.5);
  // Last point: everything selected.
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
}

TEST(PrCurve, RecallIsNonDecreasing) {
  su::Rng rng(3);
  std::vector<double> scores(200);
  std::vector<int> labels(200);
  for (std::size_t i = 0; i < 200; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  const auto curve = sm::pr_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(sm::average_precision({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}),
                   1.0);
}

TEST(AveragePrecision, UninformativeApproachesBaseRate) {
  su::Rng rng(7);
  std::vector<double> scores(5000);
  std::vector<int> labels(5000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();  // independent of label
    labels[i] = rng.bernoulli(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(sm::average_precision(scores, labels), 0.2, 0.03);
}

TEST(AveragePrecision, InvertedRankingNearZeroForRarePositives) {
  // All positives ranked last: AP ~ positives-weighted tail precision.
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.2, 0.1};
  std::vector<int> labels = {0, 0, 0, 1, 1};
  EXPECT_LT(sm::average_precision(scores, labels), 0.45);
}

TEST(Brier, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(sm::brier_score({1.0, 0.0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(sm::brier_score({0.0, 1.0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(sm::brier_score({0.5, 0.5}, {1, 0}), 0.25);
}

TEST(Brier, RejectsSizeMismatch) {
  EXPECT_THROW(sm::brier_score({0.5}, {1, 0}), std::invalid_argument);
}

TEST(Brier, CalibratedBeatsOverconfidentWhenWrongOften) {
  su::Rng rng(11);
  std::vector<int> labels(2000);
  std::vector<double> calibrated(2000, 0.7);
  std::vector<double> overconfident(2000, 0.99);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.bernoulli(0.7) ? 1 : 0;
  }
  EXPECT_LT(sm::brier_score(calibrated, labels),
            sm::brier_score(overconfident, labels));
}
