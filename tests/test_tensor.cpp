// Unit + property tests for src/tensor: Matrix, GEMM, kernels, vecmath.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "tensor/gemm.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vecmath.hpp"
#include "util/rng.hpp"

namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

// Matrix's two-argument constructor already value-initializes (fill
// defaults to T{}); tests that later compare contents still spell the
// fill out so the defined starting state survives any change to that
// default.
st::MatrixF random_matrix(std::size_t rows, std::size_t cols, su::Rng& rng,
                          float lo = -1.0f, float hi = 1.0f) {
  st::MatrixF m(rows, cols, 0.0f);
  for (float& v : m) v = static_cast<float>(rng.uniform(lo, hi));
  return m;
}

}  // namespace

// -------------------------------------------------------------- Matrix ----

TEST(Matrix, ConstructionAndFill) {
  st::MatrixF m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (float v : m) EXPECT_EQ(v, 2.5f);
}

TEST(Matrix, InitializerList) {
  st::MatrixF m(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(m(0, 1), 2.0f);
  EXPECT_EQ(m(1, 0), 3.0f);
  EXPECT_EQ(m(1, 1), 4.0f);
  EXPECT_THROW(st::MatrixF(2, 2, {1.0f}), std::invalid_argument);
}

TEST(Matrix, AlignedStorage) {
  st::MatrixF m(5, 7, 0.0f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % st::kAlignment, 0u);
}

TEST(Matrix, CopyIsDeep) {
  st::MatrixF a(2, 2, 1.0f);
  st::MatrixF b = a;
  b(0, 0) = 9.0f;
  EXPECT_EQ(a(0, 0), 1.0f);
  EXPECT_EQ(b(0, 0), 9.0f);
}

TEST(Matrix, MoveTransfersOwnership) {
  st::MatrixF a(2, 2, 3.0f);
  const float* data = a.data();
  st::MatrixF b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing move
}

TEST(Matrix, AtThrowsOutOfRange) {
  st::MatrixF m(2, 2, 0.0f);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, ResizeSameSizeKeepsBufferReshaped) {
  st::MatrixF m(2, 6, 1.0f);
  const float* data = m.data();
  m.resize(3, 4);
  EXPECT_EQ(m.data(), data);  // no reallocation
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, EqualityComparesShapeAndContents) {
  st::MatrixF a(2, 2, 1.0f);
  st::MatrixF b(2, 2, 1.0f);
  st::MatrixF c(4, 1, 1.0f);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b(1, 1) = 2.0f;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, RowPointerArithmetic) {
  st::MatrixF m(3, 4, 0.0f);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = static_cast<float>(r * 4 + c);
  }
  EXPECT_EQ(m.row(1)[0], 4.0f);
  EXPECT_EQ(m.row(2)[3], 11.0f);
}

// ---------------------------------------------------------------- GEMM ----

class GemmShapes : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  su::Rng rng(m * 1000 + n * 100 + k);
  const st::MatrixF a = random_matrix(m, k, rng);
  const st::MatrixF b = random_matrix(k, n, rng);
  st::MatrixF c_naive(m, n, 0.5f);
  st::MatrixF c_blocked = c_naive;
  st::gemm_naive(st::Transpose::kNo, st::Transpose::kNo, 2.0f, a, b, 0.25f,
                 c_naive);
  st::gemm_blocked(st::Transpose::kNo, st::Transpose::kNo, 2.0f, a, b, 0.25f,
                   c_blocked);
  for (std::size_t i = 0; i < c_naive.size(); ++i) {
    EXPECT_NEAR(c_naive.data()[i], c_blocked.data()[i],
                1e-4f * (1.0f + std::abs(c_naive.data()[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 17),
                      std::make_tuple(33, 1, 9), std::make_tuple(40, 56, 300),
                      std::make_tuple(8, 8, 1024)));

TEST(Gemm, TransposeAMatchesNaive) {
  su::Rng rng(99);
  const st::MatrixF a = random_matrix(7, 5, rng);  // A^T is 5x7
  const st::MatrixF b = random_matrix(7, 4, rng);
  st::MatrixF c_ref(5, 4, 0.0f);
  st::MatrixF c(5, 4, 0.0f);
  st::gemm_naive(st::Transpose::kYes, st::Transpose::kNo, 1.0f, a, b, 0.0f,
                 c_ref);
  st::gemm_blocked(st::Transpose::kYes, st::Transpose::kNo, 1.0f, a, b, 0.0f,
                   c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c_ref.data()[i], c.data()[i], 1e-4f);
  }
}

TEST(Gemm, TransposeBMatchesNaive) {
  su::Rng rng(101);
  const st::MatrixF a = random_matrix(5, 7, rng);
  const st::MatrixF b = random_matrix(4, 7, rng);  // B^T is 7x4
  st::MatrixF c_ref(5, 4, 0.0f);
  st::MatrixF c(5, 4, 0.0f);
  st::gemm_naive(st::Transpose::kNo, st::Transpose::kYes, 1.0f, a, b, 0.0f,
                 c_ref);
  st::gemm_blocked(st::Transpose::kNo, st::Transpose::kYes, 1.0f, a, b, 0.0f,
                   c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c_ref.data()[i], c.data()[i], 1e-4f);
  }
}

TEST(Gemm, BothTransposed) {
  su::Rng rng(103);
  const st::MatrixF a = random_matrix(6, 3, rng);
  const st::MatrixF b = random_matrix(5, 6, rng);
  st::MatrixF c_ref(3, 5, 0.0f);
  st::MatrixF c(3, 5, 0.0f);
  st::gemm_naive(st::Transpose::kYes, st::Transpose::kYes, 1.0f, a, b, 0.0f,
                 c_ref);
  st::gemm_blocked(st::Transpose::kYes, st::Transpose::kYes, 1.0f, a, b, 0.0f,
                   c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c_ref.data()[i], c.data()[i], 1e-4f);
  }
}

TEST(Gemm, BetaAccumulates) {
  st::MatrixF a(1, 1, {2.0f});
  st::MatrixF b(1, 1, {3.0f});
  st::MatrixF c(1, 1, {10.0f});
  st::gemm(st::Transpose::kNo, st::Transpose::kNo, 1.0f, a, b, 1.0f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 16.0f);
}

TEST(Gemm, DimensionMismatchThrows) {
  st::MatrixF a(2, 3, 0.0f);
  st::MatrixF b(4, 2, 0.0f);  // inner mismatch
  st::MatrixF c(2, 2, 0.0f);
  EXPECT_THROW(
      st::gemm(st::Transpose::kNo, st::Transpose::kNo, 1.0f, a, b, 0.0f, c),
      std::invalid_argument);
}

TEST(Gemm, MatmulConvenience) {
  st::MatrixF a(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
  st::MatrixF b(2, 2, {5.0f, 6.0f, 7.0f, 8.0f});
  const st::MatrixF c = st::matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

// ------------------------------------------------------------- kernels ----

TEST(Kernels, AxpyScaleDotSum) {
  float x[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  float y[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  st::axpy(2.0f, x, y, 4);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[3], 9.0f);
  st::scale(0.5f, y, 4);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(st::dot(x, x, 4), 30.0f);
  EXPECT_FLOAT_EQ(st::sum(x, 4), 10.0f);
}

TEST(Kernels, AddRowBias) {
  st::MatrixF m(2, 3, 0.0f);
  const float bias[3] = {1.0f, 2.0f, 3.0f};
  st::add_row_bias(m, bias);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(m(r, 0), 1.0f);
    EXPECT_FLOAT_EQ(m(r, 2), 3.0f);
  }
}

TEST(Kernels, EmaUpdateConverges) {
  float p[2] = {0.0f, 1.0f};
  const float target[2] = {1.0f, 0.0f};
  for (int i = 0; i < 200; ++i) st::ema_update(p, target, 0.1f, 2);
  EXPECT_NEAR(p[0], 1.0f, 1e-4f);
  EXPECT_NEAR(p[1], 0.0f, 1e-4f);
}

TEST(Kernels, SoftmaxBlocksNormalizesEachBlock) {
  su::Rng rng(7);
  st::MatrixF m = random_matrix(5, 12, rng, -10.0f, 10.0f);
  st::softmax_blocks(m, 4);  // 3 blocks per row
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t b = 0; b < 3; ++b) {
      float total = 0.0f;
      for (std::size_t i = 0; i < 4; ++i) {
        const float v = m(r, b * 4 + i);
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
        total += v;
      }
      EXPECT_NEAR(total, 1.0f, 1e-5f);
    }
  }
}

TEST(Kernels, SoftmaxBlocksIsShiftInvariant) {
  st::MatrixF a(1, 4, {1.0f, 2.0f, 3.0f, 4.0f});
  st::MatrixF b(1, 4, {101.0f, 102.0f, 103.0f, 104.0f});
  st::softmax_blocks(a, 4);
  st::softmax_blocks(b, 4);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(a(0, c), b(0, c), 1e-5f);
}

TEST(Kernels, SoftmaxBlocksHandlesExtremeValues) {
  st::MatrixF m(1, 4, {-500.0f, 0.0f, 500.0f, 499.0f});
  st::softmax_blocks(m, 4);
  float total = 0.0f;
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(std::isfinite(m(0, c)));
    total += m(0, c);
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
  EXPECT_GT(m(0, 2), m(0, 3));
}

TEST(Kernels, SoftmaxTemperatureSharpens) {
  st::MatrixF soft(1, 3, {1.0f, 2.0f, 3.0f});
  st::MatrixF sharp = soft;
  st::softmax_blocks_temperature(soft, 3, 1.0f);
  st::softmax_blocks_temperature(sharp, 3, 5.0f);
  EXPECT_GT(sharp(0, 2), soft(0, 2));  // higher beta -> peakier
}

TEST(Kernels, SoftmaxBlocksRejectsBadBlock) {
  st::MatrixF m(1, 5, 0.0f);
  EXPECT_THROW(st::softmax_blocks(m, 2), std::invalid_argument);
  EXPECT_THROW(st::softmax_blocks(m, 0), std::invalid_argument);
}

TEST(Kernels, WtaBlocksPicksWinner) {
  st::MatrixF m(1, 6, {0.1f, 0.9f, 0.0f, 0.3f, 0.3f, 0.2f});
  st::wta_blocks(m, 3);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 0.0f);
  // Tie in the second block resolves to the lowest index.
  EXPECT_FLOAT_EQ(m(0, 3), 1.0f);
  EXPECT_FLOAT_EQ(m(0, 4), 0.0f);
}

TEST(Kernels, ArgmaxRows) {
  st::MatrixF m(2, 3, {0.0f, 5.0f, 1.0f, 7.0f, 2.0f, 3.0f});
  std::size_t out[2] = {99, 99};
  st::argmax_rows(m, out);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0u);
}

TEST(Kernels, ReluClampsNegatives) {
  float x[5] = {-1.0f, 0.0f, 2.5f, -0.25f, 7.0f};
  st::relu(x, 5);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.5f);
  EXPECT_FLOAT_EQ(x[3], 0.0f);
  EXPECT_FLOAT_EQ(x[4], 7.0f);
}

TEST(Kernels, ThresholdMaskZeroesWhereGateBelowThreshold) {
  const float gate[4] = {-1.0f, 0.0f, 0.5f, 2.0f};
  float x[4] = {10.0f, 20.0f, 30.0f, 40.0f};
  st::threshold_mask(gate, 0.0f, x, 4);
  EXPECT_FLOAT_EQ(x[0], 0.0f);   // gate < threshold
  EXPECT_FLOAT_EQ(x[1], 0.0f);   // gate == threshold (<=) masks too
  EXPECT_FLOAT_EQ(x[2], 30.0f);
  EXPECT_FLOAT_EQ(x[3], 40.0f);
}

TEST(Kernels, ReduceMaxFindsMaximumAndHandlesEmpty) {
  const float x[6] = {-5.0f, 3.0f, -1.0f, 9.5f, 0.0f, 2.0f};
  EXPECT_FLOAT_EQ(st::reduce_max(x, 6), 9.5f);
  EXPECT_LT(st::reduce_max(nullptr, 0), -1e30f);  // identity
}

TEST(Kernels, GemvMatchesPerRowDot) {
  su::Rng rng(23);
  const st::MatrixF a = random_matrix(7, 19, rng);
  const auto xv = [&] {
    std::vector<float> v(19);
    for (auto& e : v) e = static_cast<float>(rng.uniform(-1.0, 1.0));
    return v;
  }();
  std::vector<float> y(7, -1.0f);
  st::gemv(a, xv.data(), y.data());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_NEAR(y[r], st::dot(a.row(r), xv.data(), a.cols()), 1e-5f);
  }
}

// ------------------------------------------------------------- vecmath ----

TEST(Vecmath, FastExpAccuracy) {
  for (float x = -80.0f; x <= 80.0f; x += 0.37f) {
    const float expected = std::exp(x);
    const float actual = st::fast_exp(x);
    EXPECT_NEAR(actual, expected, 2e-6f * expected + 1e-30f) << "x=" << x;
  }
}

TEST(Vecmath, FastExpClampsExtremes) {
  EXPECT_EQ(st::fast_exp(-200.0f), 0.0f);
  EXPECT_TRUE(std::isfinite(st::fast_exp(200.0f)));
}

TEST(Vecmath, FastLogAccuracy) {
  for (float x = 1e-6f; x < 1e6f; x *= 1.7f) {
    const float expected = std::log(x);
    const float actual = st::fast_log(x);
    EXPECT_NEAR(actual, expected, 1e-5f + 2e-6f * std::abs(expected))
        << "x=" << x;
  }
}

TEST(Vecmath, FastLogGuardsNonPositive) {
  EXPECT_LT(st::fast_log(0.0f), -80.0f);
  EXPECT_LT(st::fast_log(-1.0f), -80.0f);
}

TEST(Vecmath, ExpLogRoundTrip) {
  for (float x = -20.0f; x < 20.0f; x += 0.61f) {
    EXPECT_NEAR(st::fast_log(st::fast_exp(x)), x, 2e-4f + 1e-5f * std::abs(x));
  }
}

TEST(Vecmath, VectorVariantsMatchScalar) {
  su::Rng rng(11);
  std::vector<float> x(257);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.01, 5.0));
  std::vector<float> ve(x.size());
  std::vector<float> vl(x.size());
  st::vexp(x.data(), ve.data(), x.size());
  st::vlog(x.data(), vl.data(), x.size());
  // The array variants run on the dispatched SIMD tier, which may use
  // FMA: tolerance-compare against the scalar helpers instead of
  // requiring bitwise equality.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float e = st::fast_exp(x[i]);
    const float l = st::fast_log(x[i]);
    EXPECT_NEAR(ve[i], e, 1e-6f + 1e-5f * std::abs(e));
    EXPECT_NEAR(vl[i], l, 1e-6f + 1e-5f * std::abs(l));
  }
}

TEST(Vecmath, VlogFlooredAppliesFloor) {
  const float x[3] = {1e-9f, 0.5f, 2.0f};
  float out[3] = {0.0f, 0.0f, 0.0f};
  st::vlog_floored(x, out, 1e-4f, 3);
  EXPECT_NEAR(out[0], st::fast_log(1e-4f), 1e-4f);
  EXPECT_NEAR(out[1], st::fast_log(0.5f), 1e-5f);
  EXPECT_NEAR(out[2], st::fast_log(2.0f), 1e-5f);
}
