// Tests for the stacked (multi-hidden-layer) BCPNN extension.

#include <gtest/gtest.h>

#include "core/deep.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/classification.hpp"
#include "metrics/roc.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sm = streambrain::metrics;
namespace st = streambrain::tensor;

namespace {

struct Data {
  st::MatrixF x_train;
  st::MatrixF x_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
};

Data make_data(std::size_t train, std::size_t test) {
  sd::SyntheticHiggsGenerator generator;
  const auto train_set = generator.generate(train);
  sd::HiggsGeneratorOptions test_options;
  test_options.seed = 777;
  sd::SyntheticHiggsGenerator test_generator(test_options);
  const auto test_set = test_generator.generate(test);
  streambrain::encode::OneHotEncoder encoder(10);
  Data data;
  data.x_train = encoder.fit_transform(train_set.features);
  data.x_test = encoder.transform(test_set.features);
  data.y_train = train_set.labels;
  data.y_test = test_set.labels;
  return data;
}

sc::DeepBcpnnConfig small_deep() {
  sc::DeepBcpnnConfig config;
  config.input_hypercolumns = sd::kHiggsFeatures;
  config.input_bins = 10;
  config.layers = {{2, 40, 0.4}, {1, 40, 1.0}};
  config.epochs_per_layer = 8;
  config.head_epochs = 16;
  config.seed = 5;
  return config;
}

}  // namespace

TEST(DeepBcpnn, RejectsEmptyStack) {
  auto config = small_deep();
  config.layers.clear();
  EXPECT_THROW(sc::DeepBcpnn network(config), std::invalid_argument);
}

TEST(DeepBcpnn, GeometryChainsAcrossLayers) {
  sc::DeepBcpnn network(small_deep());
  EXPECT_EQ(network.depth(), 2u);
  // Layer 0 consumes the encoded input.
  EXPECT_EQ(network.layer(0).input_units(), 280u);
  EXPECT_EQ(network.layer(0).hidden_units(), 80u);  // 2 x 40
  // Layer 1 consumes layer 0's hypercolumn geometry (2 HCs of 40 units).
  EXPECT_EQ(network.layer(1).input_units(), 80u);
  EXPECT_EQ(network.layer(1).hidden_units(), 40u);
}

TEST(DeepBcpnn, TransformOutputsTopLayerSimplex) {
  const auto data = make_data(300, 50);
  sc::DeepBcpnn network(small_deep());
  network.fit(data.x_train, data.y_train);
  const auto top = network.transform(data.x_test);
  ASSERT_EQ(top.rows(), 50u);
  ASSERT_EQ(top.cols(), 40u);
  for (std::size_t r = 0; r < top.rows(); ++r) {
    float mass = 0.0f;
    for (std::size_t c = 0; c < top.cols(); ++c) {
      EXPECT_GE(top(r, c), 0.0f);
      mass += top(r, c);
    }
    EXPECT_NEAR(mass, 1.0f, 1e-4f);
  }
}

TEST(DeepBcpnn, LearnsAboveChance) {
  const auto data = make_data(2000, 400);
  sc::DeepBcpnn network(small_deep());
  network.fit(data.x_train, data.y_train);
  const double accuracy =
      sm::accuracy(network.predict(data.x_test), data.y_test);
  const double auc =
      sm::auc(network.predict_scores(data.x_test), data.y_test);
  EXPECT_GT(accuracy, 0.55);
  EXPECT_GT(auc, 0.58);
}

TEST(DeepBcpnn, FitRejectsShapeMismatch) {
  const auto data = make_data(50, 10);
  sc::DeepBcpnn network(small_deep());
  std::vector<int> short_labels(10, 0);
  EXPECT_THROW(network.fit(data.x_train, short_labels),
               std::invalid_argument);
}

TEST(DeepBcpnn, SingleLayerStackStillWorks) {
  auto config = small_deep();
  config.layers = {{1, 30, 0.4}};
  const auto data = make_data(800, 300);
  sc::DeepBcpnn network(config);
  network.fit(data.x_train, data.y_train);
  EXPECT_GT(sm::accuracy(network.predict(data.x_test), data.y_test), 0.55);
}
