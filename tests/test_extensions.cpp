// Tests for the paper's extension features: semi-supervised training,
// adaptive structural plasticity (future work, §VII), and the spiking
// forward mode (§II).

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_plasticity.hpp"
#include "core/network.hpp"
#include "core/semi_supervised.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/classification.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sm = streambrain::metrics;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

struct EncodedHiggs {
  st::MatrixF x_train;
  st::MatrixF x_test;
  std::vector<int> y_train;
  std::vector<int> y_test;
};

EncodedHiggs encoded_higgs(std::size_t train, std::size_t test,
                           std::uint64_t seed) {
  sd::HiggsGeneratorOptions options;
  options.seed = seed;
  sd::SyntheticHiggsGenerator generator(options);
  const auto train_set = generator.generate(train);
  const auto test_set = generator.generate(test);
  streambrain::encode::OneHotEncoder encoder(10);
  EncodedHiggs out;
  out.x_train = encoder.fit_transform(train_set.features);
  out.x_test = encoder.transform(test_set.features);
  out.y_train = train_set.labels;
  out.y_test = test_set.labels;
  return out;
}

sc::NetworkConfig small_network() {
  sc::NetworkConfig config;
  config.bcpnn.input_hypercolumns = sd::kHiggsFeatures;
  config.bcpnn.input_bins = 10;
  config.bcpnn.hcus = 1;
  config.bcpnn.mcus = 40;
  config.bcpnn.receptive_field = 0.4;
  config.bcpnn.epochs = 5;
  config.bcpnn.head_epochs = 12;
  config.bcpnn.seed = 3;
  return config;
}

}  // namespace

// ----------------------------------------------------- semi-supervised ----

TEST(SemiSupervised, CountsLabeledAndUnlabeled) {
  const auto data = encoded_higgs(400, 100, 21);
  auto labels = data.y_train;
  for (std::size_t i = 0; i < labels.size(); i += 2) {
    labels[i] = sc::kUnlabeled;
  }
  sc::Network network(small_network());
  const auto report = sc::fit_semi_supervised(network, data.x_train, labels);
  EXPECT_EQ(report.labeled_examples + report.unlabeled_examples,
            labels.size());
  EXPECT_EQ(report.labeled_examples, labels.size() / 2);
}

TEST(SemiSupervised, LearnsFromFewLabels) {
  const auto data = encoded_higgs(1500, 500, 23);
  auto labels = data.y_train;
  // Keep only 10% of labels.
  su::Rng rng(5);
  for (auto& label : labels) {
    if (!rng.bernoulli(0.10)) label = sc::kUnlabeled;
  }
  sc::Network network(small_network());
  sc::fit_semi_supervised(network, data.x_train, labels);
  const double accuracy =
      sm::accuracy(network.predict(data.x_test), data.y_test);
  EXPECT_GT(accuracy, 0.55);  // well above chance from 150 labels
}

TEST(SemiSupervised, AllLabeledMatchesSupervisedProtocol) {
  const auto data = encoded_higgs(600, 200, 27);
  sc::Network semi(small_network());
  const auto report =
      sc::fit_semi_supervised(semi, data.x_train, data.y_train);
  EXPECT_EQ(report.unlabeled_examples, 0u);
  const double semi_accuracy =
      sm::accuracy(semi.predict(data.x_test), data.y_test);

  sc::Network supervised(small_network());
  supervised.fit(data.x_train, data.y_train);
  const double full_accuracy =
      sm::accuracy(supervised.predict(data.x_test), data.y_test);
  EXPECT_NEAR(semi_accuracy, full_accuracy, 0.06);
}

TEST(SemiSupervised, RejectsAllUnlabeled) {
  const auto data = encoded_higgs(50, 10, 29);
  std::vector<int> labels(data.y_train.size(), sc::kUnlabeled);
  sc::Network network(small_network());
  EXPECT_THROW(sc::fit_semi_supervised(network, data.x_train, labels),
               std::invalid_argument);
}

TEST(SemiSupervised, RejectsShapeMismatch) {
  const auto data = encoded_higgs(50, 10, 31);
  std::vector<int> labels(10, 0);
  sc::Network network(small_network());
  EXPECT_THROW(sc::fit_semi_supervised(network, data.x_train, labels),
               std::invalid_argument);
}

// -------------------------------------------------- adaptive plasticity ----

TEST(AdaptivePlasticity, BudgetStaysWithinBounds) {
  sc::AdaptivePlasticityConfig config;
  config.initial_swaps = 4;
  config.min_swaps = 1;
  config.max_swaps = 6;
  sc::AdaptivePlasticityController controller(config);

  auto net_config = small_network();
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  const auto data = encoded_higgs(300, 50, 33);

  for (int epoch = 0; epoch < 8; ++epoch) {
    layer.train_batch(data.x_train, 1.0f);
    const auto record = controller.step(layer);
    EXPECT_GE(controller.current_budget(), config.min_swaps);
    EXPECT_LE(controller.current_budget(), config.max_swaps);
    EXPECT_LE(record.swaps, record.budget);
  }
  EXPECT_EQ(controller.history().size(), 8u);
}

TEST(AdaptivePlasticity, BudgetShrinksAfterConvergence) {
  // Feed the same batch until traces converge; MI gains vanish and the
  // controller must throttle the budget down.
  sc::AdaptivePlasticityConfig config;
  config.initial_swaps = 6;
  config.min_swaps = 0;
  sc::AdaptivePlasticityController controller(config);

  auto net_config = small_network();
  net_config.bcpnn.mcus = 20;
  auto engine = sp::make_engine("simd");
  su::Rng rng(11);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  const auto data = encoded_higgs(200, 50, 37);

  for (int epoch = 0; epoch < 25; ++epoch) {
    layer.train_batch(data.x_train, 0.2f);
    controller.step(layer);
  }
  EXPECT_LT(controller.current_budget(), config.initial_swaps);
}

TEST(AdaptivePlasticity, MaskMiMatchesManualSum) {
  auto net_config = small_network();
  auto engine = sp::make_engine("simd");
  su::Rng rng(13);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  const auto data = encoded_higgs(200, 50, 41);
  layer.train_batch(data.x_train, 1.0f);

  const double total =
      sc::AdaptivePlasticityController::mask_mutual_information(layer);
  const auto mi = layer.mi_map();
  double manual = 0.0;
  for (std::size_t h = 0; h < mi.size(); ++h) {
    for (std::size_t i = 0; i < mi[h].size(); ++i) {
      if (layer.masks().active(h, i)) manual += mi[h][i];
    }
  }
  EXPECT_NEAR(total, manual, 1e-9);
}

// ---------------------------------------------------------- spiking mode ----

TEST(Spiking, ActivationsAreNormalizedSpikeCounts) {
  auto net_config = small_network();
  net_config.bcpnn.mcus = 8;
  auto engine = sp::make_engine("simd");
  su::Rng rng(17);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  const auto data = encoded_higgs(20, 10, 43);

  st::MatrixF spikes;
  layer.forward_spiking(data.x_train, spikes, 16);
  for (std::size_t r = 0; r < spikes.rows(); ++r) {
    float mass = 0.0f;
    for (std::size_t c = 0; c < spikes.cols(); ++c) {
      const float v = spikes(r, c);
      EXPECT_GE(v, 0.0f);
      // Each value is a multiple of 1/16.
      EXPECT_NEAR(std::round(v * 16.0f), v * 16.0f, 1e-4f);
      mass += v;
    }
    // One spike per HCU per timestep -> total mass == #HCUs.
    EXPECT_NEAR(mass, static_cast<float>(net_config.bcpnn.hcus), 1e-4f);
  }
}

TEST(Spiking, ConvergesToRateCodeWithManyTimesteps) {
  auto net_config = small_network();
  net_config.bcpnn.mcus = 6;
  net_config.bcpnn.epochs = 3;
  auto engine = sp::make_engine("simd");
  su::Rng rng(19);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  const auto data = encoded_higgs(200, 10, 47);
  for (int step = 0; step < 10; ++step) layer.train_batch(data.x_train, 1.0f);

  st::MatrixF rate;
  layer.forward(data.x_test, rate);
  st::MatrixF spikes;
  layer.forward_spiking(data.x_test, spikes, 4000);
  double max_err = 0.0;
  for (std::size_t i = 0; i < rate.size(); ++i) {
    max_err = std::max(
        max_err, static_cast<double>(
                     std::abs(rate.data()[i] - spikes.data()[i])));
  }
  EXPECT_LT(max_err, 0.05);  // law of large numbers
}

TEST(Spiking, ZeroTimestepsThrows) {
  auto net_config = small_network();
  auto engine = sp::make_engine("naive");
  su::Rng rng(23);
  sc::BcpnnLayer layer(net_config.bcpnn, *engine, rng);
  st::MatrixF x(1, net_config.bcpnn.input_units(), 0.0f);
  st::MatrixF out;
  EXPECT_THROW(layer.forward_spiking(x, out, 0), std::invalid_argument);
}
