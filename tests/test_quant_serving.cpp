// Serving bit-equivalence for the quantized inference form: an
// AsyncPredictor serving QUANTIZED shard replicas must match the serial
// quantized model bitwise at the scalar dispatch tier — across shard
// counts (1 vs 4), for both the quant-dense and quant-sparse (prune →
// sparsify → quantize) forms, with the ScoreCache enabled, under
// concurrent submitters, and through the legacy Predictor and raw
// ShardPool paths. This suite runs in the TSan CI job: the quantized
// path adds new read-only data structures (QuantBlockMatrix, QuantCsr)
// shared across dispatcher, pool workers, and shard replicas, and any
// hidden mutation of them is a race TSan can see.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "api/async_predictor.hpp"
#include "api/predictor.hpp"
#include "core/model.hpp"
#include "core/pruning.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "serve/shard_pool.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace sv = streambrain::serve;
namespace st = streambrain::tensor;

using streambrain::AsyncPredictor;
using streambrain::AsyncPredictorOptions;
using streambrain::Predictor;
using streambrain::PredictorOptions;
using streambrain::testing::ScopedDispatch;

namespace {

struct QuantServing {
  std::shared_ptr<sc::Model> quant_dense;   // quantize() of the dense model
  std::shared_ptr<sc::Model> quant_sparse;  // prune -> sparsify -> quantize
  st::MatrixF x_test;
  // Serial quantized inference at the scalar tier — the bitwise reference
  // that no amount of sharding, batching, or caching may perturb.
  std::vector<int> dense_labels;
  std::vector<double> dense_scores;
  std::vector<int> sparse_labels;
  std::vector<double> sparse_scores;
};

/// One fixture per head type; everything (training, quantization, the
/// serial reference inference) runs pinned to the scalar tier so the
/// serving comparisons can be exact.
const QuantServing& fixture(sc::HeadType head) {
  static const QuantServing instances[2] = {
      [] {
        const ScopedDispatch pin(st::DispatchLevel::kScalar);
        return [] {
          streambrain::data::SyntheticHiggsGenerator generator;
          const auto train = generator.generate(600);
          streambrain::data::HiggsGeneratorOptions opts;
          opts.seed = 655;
          streambrain::data::SyntheticHiggsGenerator test_generator(opts);
          const auto test = test_generator.generate(160);
          streambrain::encode::OneHotEncoder encoder(10);

          QuantServing q;
          auto dense = std::make_shared<sc::Model>();
          dense->input(28, 10)
              .hidden(1, 32, 0.4)
              .classifier(2, sc::HeadType::kBcpnn)
              .set_option("epochs", 3)
              .compile("simd", 46);
          dense->fit(encoder.fit_transform(train.features), train.labels);
          q.quant_dense = std::make_shared<sc::Model>(dense->quantize());
          sc::prune_model(*dense, 0.1);
          q.quant_sparse =
              std::make_shared<sc::Model>(dense->sparsify().quantize());
          q.x_test = encoder.transform(test.features);
          q.dense_labels = q.quant_dense->predict(q.x_test);
          q.dense_scores = q.quant_dense->predict_scores(q.x_test);
          q.sparse_labels = q.quant_sparse->predict(q.x_test);
          q.sparse_scores = q.quant_sparse->predict_scores(q.x_test);
          return q;
        }();
      }(),
      [] {
        const ScopedDispatch pin(st::DispatchLevel::kScalar);
        return [] {
          streambrain::data::SyntheticHiggsGenerator generator;
          const auto train = generator.generate(600);
          streambrain::data::HiggsGeneratorOptions opts;
          opts.seed = 656;
          streambrain::data::SyntheticHiggsGenerator test_generator(opts);
          const auto test = test_generator.generate(160);
          streambrain::encode::OneHotEncoder encoder(10);

          QuantServing q;
          auto dense = std::make_shared<sc::Model>();
          dense->input(28, 10)
              .hidden(1, 32, 0.4)
              .classifier(2, sc::HeadType::kSgd)
              .set_option("epochs", 3)
              .compile("simd", 47);
          dense->fit(encoder.fit_transform(train.features), train.labels);
          q.quant_dense = std::make_shared<sc::Model>(dense->quantize());
          sc::prune_model(*dense, 0.1);
          q.quant_sparse =
              std::make_shared<sc::Model>(dense->sparsify().quantize());
          q.x_test = encoder.transform(test.features);
          q.dense_labels = q.quant_dense->predict(q.x_test);
          q.dense_scores = q.quant_dense->predict_scores(q.x_test);
          q.sparse_labels = q.quant_sparse->predict(q.x_test);
          q.sparse_scores = q.quant_sparse->predict_scores(q.x_test);
          return q;
        }();
      }()};
  return instances[head == sc::HeadType::kBcpnn ? 0 : 1];
}

void expect_bitwise(const std::vector<int>& labels,
                    const std::vector<double>& scores,
                    const std::vector<int>& ref_labels,
                    const std::vector<double>& ref_scores,
                    const char* where) {
  EXPECT_EQ(labels, ref_labels) << where;
  ASSERT_EQ(scores.size(), ref_scores.size()) << where;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ASSERT_EQ(scores[i], ref_scores[i]) << where << " row " << i;
  }
}

}  // namespace

TEST(QuantServing, AsyncPredictorSingleShardMatchesSerialQuantBitwise) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    const QuantServing& q = fixture(head);
    AsyncPredictorOptions options;
    options.shards = 1;
    options.max_batch_rows = 32;
    options.score_cache_rows = 64;
    AsyncPredictor server(q.quant_dense, options);
    expect_bitwise(server.predict(q.x_test), server.predict_scores(q.x_test),
                   q.dense_labels, q.dense_scores,
                   head == sc::HeadType::kBcpnn ? "bcpnn/shard1"
                                                : "sgd/shard1");
  }
}

TEST(QuantServing, AsyncPredictorFourShardsServeQuantSparseBitwise) {
  // Four quantized-sparse replicas (cloned through the v4 checkpoint
  // round-trip) serving concurrent traffic: every result must still be
  // bitwise the serial quantized reference.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    const QuantServing& q = fixture(head);
    AsyncPredictorOptions options;
    options.shards = 4;
    options.max_batch_rows = 16;  // force multi-batch splits
    AsyncPredictor server(q.quant_sparse, options);

    constexpr int kThreads = 4;
    std::vector<std::thread> workers;
    std::vector<std::vector<int>> labels(kThreads);
    std::vector<std::vector<double>> scores(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        labels[t] = server.predict(q.x_test);
        scores[t] = server.predict_scores(q.x_test);
      });
    }
    for (auto& worker : workers) worker.join();
    for (int t = 0; t < kThreads; ++t) {
      expect_bitwise(labels[t], scores[t], q.sparse_labels, q.sparse_scores,
                     "shard4 worker");
    }
  }
}

TEST(QuantServing, ScoreCacheHitsStayBitIdenticalOnQuantReplicas) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const QuantServing& q = fixture(sc::HeadType::kSgd);
  AsyncPredictorOptions options;
  options.shards = 2;
  options.score_cache_rows = 4096;  // large enough to hold the test set
  AsyncPredictor server(q.quant_sparse, options);

  // First pass populates the cache, second pass must serve hits that are
  // bitwise what the quantized model produced.
  expect_bitwise(server.predict(q.x_test), server.predict_scores(q.x_test),
                 q.sparse_labels, q.sparse_scores, "cache cold");
  expect_bitwise(server.predict(q.x_test), server.predict_scores(q.x_test),
                 q.sparse_labels, q.sparse_scores, "cache warm");
  const auto stats = server.stats();
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(QuantServing, LegacyPredictorServesQuantizedModelBitwise) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const QuantServing& q = fixture(sc::HeadType::kBcpnn);
  PredictorOptions options;
  options.max_batch_rows = 24;
  Predictor predictor(q.quant_dense, options);
  expect_bitwise(predictor.predict(q.x_test),
                 predictor.predict_scores(q.x_test), q.dense_labels,
                 q.dense_scores, "legacy predictor");
}

TEST(QuantServing, ShardPoolReplicasPreserveQuantizedForm) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const QuantServing& q = fixture(sc::HeadType::kSgd);
  sv::ShardPool pool(q.quant_sparse, 3);
  ASSERT_EQ(pool.size(), 3u);
  for (std::size_t shard = 0; shard < pool.size(); ++shard) {
    const sv::ShardPool::Lease lease = pool.acquire_shard(shard);
    auto* replica = dynamic_cast<sc::Model*>(&lease.model());
    ASSERT_NE(replica, nullptr);
    EXPECT_TRUE(replica->quantized())
        << "replica " << shard << " lost the quantized form in cloning";
    EXPECT_TRUE(replica->sparse())
        << "replica " << shard << " lost the sparse form in cloning";
    expect_bitwise(replica->predict(q.x_test),
                   replica->predict_scores(q.x_test), q.sparse_labels,
                   q.sparse_scores, "pool replica");
  }
}

TEST(QuantServing, QuantizedModelRejectsTrainingThroughServingStack) {
  // The read-only contract holds behind the serving facade too: the
  // underlying estimator refuses fit() while predictions keep flowing.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const QuantServing& q = fixture(sc::HeadType::kBcpnn);
  EXPECT_THROW(q.quant_dense->fit(q.x_test, q.dense_labels),
               std::logic_error);
  expect_bitwise(q.quant_dense->predict(q.x_test),
                 q.quant_dense->predict_scores(q.x_test), q.dense_labels,
                 q.dense_scores, "post-throw");
}
