// Cross-module property tests: parameterized sweeps asserting the
// invariants the library is built on, over wide grids of geometries,
// rates and distributions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/plasticity.hpp"
#include "core/traces.hpp"
#include "encode/one_hot.hpp"
#include "metrics/roc.hpp"
#include "parallel/engine.hpp"
#include "tensor/kernels.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace se = streambrain::encode;
namespace sm = streambrain::metrics;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

// ---------------------------------------------------------------------
// Engine agreement across a geometry grid: every engine must match the
// naive reference on every (batch, bins, hypercolumns, hcus, mcus) cell.
// ---------------------------------------------------------------------

struct Geometry {
  std::size_t batch;
  std::size_t input_hcs;
  std::size_t bins;
  std::size_t hcus;
  std::size_t mcus;
};

class EngineGeometrySweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

namespace {

Geometry geometry_case(int index) {
  static const Geometry kCases[] = {
      {1, 1, 2, 1, 2},     // minimal
      {3, 4, 10, 1, 5},    // skinny
      {17, 28, 10, 2, 7},  // Higgs-shaped, odd mcus
      {32, 5, 3, 4, 16},   // many hcus
      {7, 16, 2, 3, 32},   // binary bins (digit-style)
  };
  return kCases[index];
}

}  // namespace

TEST_P(EngineGeometrySweep, FullStepMatchesNaive) {
  const auto [engine_name, case_index] = GetParam();
  const Geometry g = geometry_case(case_index);
  su::Rng rng(1000 + case_index);

  const std::size_t n_in = g.input_hcs * g.bins;
  const std::size_t n_out = g.hcus * g.mcus;
  st::MatrixF x(g.batch, n_in, 0.0f);
  for (std::size_t r = 0; r < g.batch; ++r) {
    for (std::size_t hc = 0; hc < g.input_hcs; ++hc) {
      x(r, hc * g.bins + rng.uniform_index(g.bins)) = 1.0f;
    }
  }

  auto reference = sp::make_engine("naive");
  auto engine = sp::make_engine(engine_name);

  // Shared trace state, updated through both engines independently.
  sc::ProbabilityTraces traces_ref(n_in, g.bins, n_out, g.mcus);
  sc::ProbabilityTraces traces_eng(n_in, g.bins, n_out, g.mcus);

  st::MatrixF w_ref(n_in, n_out, 0.0f);
  st::MatrixF w_eng(n_in, n_out, 0.0f);
  std::vector<float> b_ref(n_out, 0.0f);
  std::vector<float> b_eng(n_out, 0.0f);

  for (int step = 0; step < 3; ++step) {
    st::MatrixF s_ref;
    st::MatrixF s_eng;
    reference->support(x, w_ref, b_ref.data(), s_ref);
    engine->support(x, w_eng, b_eng.data(), s_eng);
    reference->softmax_hcu(s_ref, g.mcus, 1.0f);
    engine->softmax_hcu(s_eng, g.mcus, 1.0f);
    traces_ref.update(*reference, x, s_ref, 0.1f);
    traces_eng.update(*engine, x, s_eng, 0.1f);
    reference->recompute_weights(traces_ref.pi().data(),
                                 traces_ref.pj().data(), traces_ref.pij(),
                                 1e-4f, 1.0f, w_ref, b_ref.data());
    engine->recompute_weights(traces_eng.pi().data(), traces_eng.pj().data(),
                              traces_eng.pij(), 1e-4f, 1.0f, w_eng,
                              b_eng.data());
  }
  for (std::size_t i = 0; i < w_ref.size(); ++i) {
    EXPECT_NEAR(w_ref.data()[i], w_eng.data()[i],
                5e-3f * (1.0f + std::abs(w_ref.data()[i])))
        << "weight " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridByEngine, EngineGeometrySweep,
    ::testing::Combine(::testing::Values("openmp", "simd", "device_sim"),
                       ::testing::Values(0, 1, 2, 3, 4)));

// ---------------------------------------------------------------------
// Trace mass preservation across learning rates.
// ---------------------------------------------------------------------

class TraceAlphaSweep : public ::testing::TestWithParam<float> {};

TEST_P(TraceAlphaSweep, HypercolumnMassStaysNormalized) {
  const float alpha = GetParam();
  sc::ProbabilityTraces traces(30, 10, 12, 4);
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  st::MatrixF x(8, 30, 0.0f);
  st::MatrixF a(8, 12, 0.0f);
  for (int step = 0; step < 40; ++step) {
    x.fill(0.0f);
    a.fill(0.0f);
    for (std::size_t r = 0; r < 8; ++r) {
      for (std::size_t hc = 0; hc < 3; ++hc) {
        x(r, hc * 10 + rng.uniform_index(10)) = 1.0f;
      }
      for (std::size_t h = 0; h < 3; ++h) {
        a(r, h * 4 + rng.uniform_index(4)) = 1.0f;  // hard WTA targets
      }
    }
    traces.update(*engine, x, a, alpha);
  }
  for (double mass : traces.input_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-3) << "alpha=" << alpha;
  }
  for (double mass : traces.output_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-3) << "alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, TraceAlphaSweep,
                         ::testing::Values(0.001f, 0.01f, 0.05f, 0.2f, 0.5f,
                                           1.0f));

// ---------------------------------------------------------------------
// Mask cardinality conservation across (cardinality, swap budget).
// ---------------------------------------------------------------------

class PlasticitySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PlasticitySweep, CardinalityInvariantUnderSwaps) {
  const auto [cardinality, swaps] = GetParam();
  su::Rng rng(13 + cardinality * 10 + swaps);
  sc::ReceptiveFieldMasks masks(3, 28, cardinality, rng);
  sc::ProbabilityTraces traces(280, 10, 12, 4);
  // Randomize traces so MI scores differ.
  auto engine = sp::make_engine("simd");
  st::MatrixF x(16, 280, 0.0f);
  st::MatrixF a(16, 12, 0.0f);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t f = 0; f < 28; ++f) {
      x(r, f * 10 + rng.uniform_index(10)) = 1.0f;
    }
    for (std::size_t h = 0; h < 3; ++h) {
      a(r, h * 4 + rng.uniform_index(4)) = 1.0f;
    }
  }
  traces.update(*engine, x, a, 0.3f);

  sc::PlasticityConfig config;
  config.swaps_per_hcu = swaps;
  config.hysteresis = 0.0;
  for (int step = 0; step < 5; ++step) {
    sc::structural_plasticity_step(masks, traces, 10, 4, 1e-6f, config);
    for (std::size_t h = 0; h < 3; ++h) {
      ASSERT_EQ(masks.active_count(h), cardinality)
          << "cardinality=" << cardinality << " swaps=" << swaps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlasticitySweep,
    ::testing::Combine(::testing::Values(1u, 5u, 14u, 27u, 28u),
                       ::testing::Values(0u, 1u, 4u, 50u)));

// ---------------------------------------------------------------------
// Quantile binning mass balance across input distributions.
// ---------------------------------------------------------------------

class QuantileDistributionSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantileDistributionSweep, EqualMassForAnyDistribution) {
  const int kind = GetParam();
  su::Rng rng(kind * 31 + 5);
  st::MatrixF data(8000, 1);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    double v = 0.0;
    switch (kind) {
      case 0: v = rng.normal(); break;
      case 1: v = rng.exponential(1.5); break;
      case 2: v = rng.uniform(-3.0, 7.0); break;
      case 3:  // bimodal
        v = rng.bernoulli(0.5) ? rng.normal(-4.0, 0.5) : rng.normal(4.0, 1.0);
        break;
      case 4: v = rng.gamma(2.0, 1.0); break;
      default: v = std::pow(rng.uniform(), 4.0); break;  // heavy left mass
    }
    data(r, 0) = static_cast<float>(v);
  }
  se::QuantileBinner binner(10);
  binner.fit(data);
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    ++counts[binner.bin_of(0, data(r, 0))];
  }
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), 800.0, 120.0)
        << "distribution " << kind << " bin " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, QuantileDistributionSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// AUC invariances on random instances.
// ---------------------------------------------------------------------

class AucRandomInstance : public ::testing::TestWithParam<int> {};

TEST_P(AucRandomInstance, PermutationInvariantAndBounded) {
  su::Rng rng(GetParam() * 101 + 3);
  const std::size_t n = 200;
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = std::round(rng.uniform() * 20.0) / 20.0;  // with ties
    labels[i] = rng.bernoulli(0.3) ? 1 : 0;
  }
  const double base = sm::auc(scores, labels);
  EXPECT_GE(base, 0.0);
  EXPECT_LE(base, 1.0);

  // Permute example order: AUC must be identical.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<double> scores_p(n);
  std::vector<int> labels_p(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores_p[i] = scores[order[i]];
    labels_p[i] = labels[order[i]];
  }
  EXPECT_DOUBLE_EQ(base, sm::auc(scores_p, labels_p));

  // Affine score transform (positive slope): invariant.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = 3.0 * scores[i] + 11.0;
  EXPECT_NEAR(base, sm::auc(scaled, labels), 1e-12);

  // Negated scores: complemented.
  std::vector<double> negated(n);
  for (std::size_t i = 0; i < n; ++i) negated[i] = -scores[i];
  EXPECT_NEAR(base + sm::auc(negated, labels), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Instances, AucRandomInstance,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// ---------------------------------------------------------------------
// Softmax temperature: higher beta concentrates mass on the argmax.
// ---------------------------------------------------------------------

class TemperatureSweep : public ::testing::TestWithParam<float> {};

TEST_P(TemperatureSweep, WinnersShareGrowsWithBeta) {
  const float beta = GetParam();
  st::MatrixF reference(1, 8, {0.1f, 0.9f, 0.3f, 0.5f, 0.2f, 0.7f, 0.4f, 0.6f});
  st::MatrixF sharper = reference;
  st::softmax_blocks_temperature(reference, 8, beta);
  st::softmax_blocks_temperature(sharper, 8, beta * 2.0f);
  // Winner (index 1) gains share when beta doubles.
  EXPECT_GT(sharper(0, 1), reference(0, 1));
  // Both remain simplexes.
  float mass_a = 0.0f;
  float mass_b = 0.0f;
  for (std::size_t c = 0; c < 8; ++c) {
    mass_a += reference(0, c);
    mass_b += sharper(0, c);
  }
  EXPECT_NEAR(mass_a, 1.0f, 1e-5f);
  EXPECT_NEAR(mass_b, 1.0f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Betas, TemperatureSweep,
                         ::testing::Values(0.25f, 0.5f, 1.0f, 2.0f, 4.0f));
