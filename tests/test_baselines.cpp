// Tests for the baseline classifiers: each must learn synthetic
// separable data, produce valid scores, and beat chance on the Higgs
// stream (with the expected ordering against chance and each other).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adaboost.hpp"
#include "baselines/classifier.hpp"
#include "baselines/logistic.hpp"
#include "baselines/mlp.hpp"
#include "baselines/naive_bayes.hpp"
#include "data/higgs.hpp"
#include "metrics/classification.hpp"
#include "metrics/roc.hpp"
#include "util/rng.hpp"

namespace sb = streambrain::baselines;
namespace sd = streambrain::data;
namespace sm = streambrain::metrics;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

struct Blobs {
  st::MatrixF x;
  std::vector<int> y;
};

/// Two Gaussian blobs separated along a diagonal, 2-D.
Blobs gaussian_blobs(std::size_t n, double distance, std::uint64_t seed) {
  su::Rng rng(seed);
  Blobs blobs;
  blobs.x = st::MatrixF(n, 2);
  blobs.y.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const int label = static_cast<int>(rng.uniform_index(2));
    const double center = label == 1 ? distance / 2.0 : -distance / 2.0;
    blobs.x(r, 0) = static_cast<float>(rng.normal(center, 1.0));
    blobs.x(r, 1) = static_cast<float>(rng.normal(center, 1.0));
    blobs.y[r] = label;
  }
  return blobs;
}

/// XOR data: only learnable with interactions (kills linear models).
Blobs xor_data(std::size_t n, std::uint64_t seed) {
  su::Rng rng(seed);
  Blobs blobs;
  blobs.x = st::MatrixF(n, 2);
  blobs.y.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    blobs.x(r, 0) = static_cast<float>((a ? 1.0 : -1.0) + rng.normal(0, 0.2));
    blobs.x(r, 1) = static_cast<float>((b ? 1.0 : -1.0) + rng.normal(0, 0.2));
    blobs.y[r] = (a != b) ? 1 : 0;
  }
  return blobs;
}

}  // namespace

// -------------------------------------------------------- Standardizer ----

TEST(Standardizer, ZeroMeanUnitVariance) {
  su::Rng rng(71);
  st::MatrixF x(1000, 3);
  for (std::size_t r = 0; r < 1000; ++r) {
    x(r, 0) = static_cast<float>(rng.normal(5.0, 2.0));
    x(r, 1) = static_cast<float>(rng.normal(-3.0, 0.5));
    x(r, 2) = static_cast<float>(rng.uniform(0.0, 100.0));
  }
  sb::Standardizer standardizer;
  const auto z = standardizer.fit_transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t r = 0; r < 1000; ++r) mean += z(r, c);
    mean /= 1000.0;
    for (std::size_t r = 0; r < 1000; ++r) {
      var += (z(r, c) - mean) * (z(r, c) - mean);
    }
    var /= 1000.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Standardizer, ConstantColumnSafe) {
  st::MatrixF x(10, 1, 7.0f);
  sb::Standardizer standardizer;
  const auto z = standardizer.fit_transform(x);
  for (float v : z) EXPECT_FLOAT_EQ(v, 0.0f);  // no division by zero
}

TEST(Standardizer, TransformBeforeFitThrows) {
  sb::Standardizer standardizer;
  st::MatrixF x(5, 2);
  EXPECT_THROW(standardizer.transform(x), std::logic_error);
}

// ------------------------------------------------------------ logistic ----

TEST(Logistic, SeparableBlobsNearPerfect) {
  const auto blobs = gaussian_blobs(600, 6.0, 73);
  sb::LogisticRegression model;
  model.fit(blobs.x, blobs.y);
  EXPECT_GT(sm::accuracy(model.predict(blobs.x), blobs.y), 0.97);
  EXPECT_GT(sm::auc(model.predict_scores(blobs.x), blobs.y), 0.99);
}

TEST(Logistic, ScoresAreProbabilities) {
  const auto blobs = gaussian_blobs(200, 2.0, 79);
  sb::LogisticRegression model;
  model.fit(blobs.x, blobs.y);
  for (double s : model.predict_scores(blobs.x)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Logistic, FailsOnXorAsExpected) {
  // Linear model cannot solve XOR — accuracy should hover near chance.
  const auto data = xor_data(800, 83);
  sb::LogisticRegression model;
  model.fit(data.x, data.y);
  EXPECT_LT(sm::accuracy(model.predict(data.x), data.y), 0.62);
}

TEST(Logistic, RejectsSizeMismatch) {
  sb::LogisticRegression model;
  st::MatrixF x(3, 2);
  EXPECT_THROW(model.fit(x, {0, 1}), std::invalid_argument);
}

// ----------------------------------------------------------------- MLP ----

TEST(Mlp, SolvesXor) {
  const auto data = xor_data(800, 89);
  sb::MlpConfig config;
  config.hidden_layers = {16};
  config.epochs = 80;
  config.learning_rate = 0.1f;
  sb::Mlp model(config);
  model.fit(data.x, data.y);
  EXPECT_GT(sm::accuracy(model.predict(data.x), data.y), 0.95);
}

TEST(Mlp, DeepStackTrains) {
  const auto blobs = gaussian_blobs(500, 4.0, 97);
  sb::MlpConfig config;
  config.hidden_layers = {32, 16, 8};
  config.epochs = 30;
  sb::Mlp model(config);
  model.fit(blobs.x, blobs.y);
  EXPECT_GT(sm::accuracy(model.predict(blobs.x), blobs.y), 0.9);
}

TEST(Mlp, LossDecreasesDuringTraining) {
  const auto blobs = gaussian_blobs(400, 3.0, 101);
  sb::MlpConfig config;
  config.epochs = 1;
  sb::Mlp model(config);
  model.fit(blobs.x, blobs.y);
  const double early = model.loss(blobs.x, blobs.y);
  sb::MlpConfig longer = config;
  longer.epochs = 40;
  sb::Mlp trained(longer);
  trained.fit(blobs.x, blobs.y);
  EXPECT_LT(trained.loss(blobs.x, blobs.y), early);
}

TEST(Mlp, PredictBeforeFitThrows) {
  sb::Mlp model;
  st::MatrixF x(2, 2);
  EXPECT_THROW(model.predict_scores(x), std::logic_error);
}

TEST(Mlp, ScoresAreProbabilities) {
  const auto blobs = gaussian_blobs(200, 2.0, 103);
  sb::Mlp model;
  model.fit(blobs.x, blobs.y);
  for (double s : model.predict_scores(blobs.x)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

// ------------------------------------------------------------ AdaBoost ----

TEST(AdaBoost, SeparableBlobs) {
  const auto blobs = gaussian_blobs(600, 5.0, 107);
  sb::AdaBoost model;
  model.fit(blobs.x, blobs.y);
  EXPECT_GT(sm::accuracy(model.predict(blobs.x), blobs.y), 0.95);
  EXPECT_GT(model.rounds_fitted(), 1u);
}

TEST(AdaBoost, LearnsIntervalConceptBeyondSingleStump) {
  // y = 1 iff x0 in (-1, 1): a single threshold stump cannot represent an
  // interval, but a boosted combination of opposite-polarity stumps can.
  // (XOR, by contrast, defeats axis-aligned stumps entirely: every stump
  // has exactly 50% error there, so boosting never starts.)
  su::Rng rng(109);
  st::MatrixF x(800, 2);
  std::vector<int> y(800);
  for (std::size_t r = 0; r < 800; ++r) {
    x(r, 0) = static_cast<float>(rng.uniform(-3.0, 3.0));
    x(r, 1) = static_cast<float>(rng.normal(0.0, 1.0));  // distractor
    y[r] = (x(r, 0) > -1.0f && x(r, 0) < 1.0f) ? 1 : 0;
  }
  sb::AdaBoostConfig config;
  config.rounds = 100;
  sb::AdaBoost model(config);
  model.fit(x, y);
  EXPECT_GT(sm::accuracy(model.predict(x), y), 0.9);
}

TEST(AdaBoost, ScoresInUnitInterval) {
  const auto blobs = gaussian_blobs(200, 2.0, 113);
  sb::AdaBoost model;
  model.fit(blobs.x, blobs.y);
  for (double s : model.predict_scores(blobs.x)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(AdaBoost, PredictBeforeFitThrows) {
  sb::AdaBoost model;
  st::MatrixF x(2, 2);
  EXPECT_THROW(model.predict_scores(x), std::logic_error);
}

// --------------------------------------------------------- Naive Bayes ----

TEST(NaiveBayes, SeparableBlobs) {
  const auto blobs = gaussian_blobs(600, 4.0, 127);
  sb::GaussianNaiveBayes model;
  model.fit(blobs.x, blobs.y);
  EXPECT_GT(sm::accuracy(model.predict(blobs.x), blobs.y), 0.95);
}

TEST(NaiveBayes, WellCalibratedOnGaussianData) {
  // NB is the true model for conditionally-independent Gaussians, so its
  // scores should be near-calibrated probabilities.
  const auto blobs = gaussian_blobs(5000, 2.0, 131);
  sb::GaussianNaiveBayes model;
  model.fit(blobs.x, blobs.y);
  const auto scores = model.predict_scores(blobs.x);
  EXPECT_LT(sm::expected_calibration_error(scores, blobs.y, 10), 0.08);
}

TEST(NaiveBayes, MissingClassThrows) {
  sb::GaussianNaiveBayes model;
  st::MatrixF x(3, 2, 1.0f);
  EXPECT_THROW(model.fit(x, {1, 1, 1}), std::invalid_argument);
}

// --------------------------------------------- Higgs cross-model checks ----

TEST(BaselinesOnHiggs, AllBeatChanceAndRankSanely) {
  sd::SyntheticHiggsGenerator generator;
  auto dataset = generator.generate(6000);
  su::Rng rng(137);
  sd::shuffle(dataset, rng);
  const auto [train, test] = sd::split(dataset, 0.75);

  sb::Standardizer standardizer;
  const auto x_train = standardizer.fit_transform(train.features);
  const auto x_test = standardizer.transform(test.features);

  sb::LogisticRegression logistic;
  logistic.fit(x_train, train.labels);
  const double auc_logistic =
      sm::auc(logistic.predict_scores(x_test), test.labels);

  sb::MlpConfig mlp_config;
  mlp_config.hidden_layers = {32};
  mlp_config.epochs = 25;
  sb::Mlp mlp(mlp_config);
  mlp.fit(x_train, train.labels);
  const double auc_mlp = sm::auc(mlp.predict_scores(x_test), test.labels);

  sb::GaussianNaiveBayes nb;
  nb.fit(x_train, train.labels);
  const double auc_nb = sm::auc(nb.predict_scores(x_test), test.labels);

  EXPECT_GT(auc_logistic, 0.70);
  EXPECT_GT(auc_mlp, 0.75);
  EXPECT_GT(auc_nb, 0.70);
  // The nonlinear model must beat the linear one on this dataset (the
  // m_bb resonance is a nonlinear discriminant).
  EXPECT_GT(auc_mlp, auc_logistic - 0.02);
}
