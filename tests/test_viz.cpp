// Tests for the visualization substrate: VTI well-formedness, PGM output,
// ASCII renderers, and the Catalyst-style adaptor.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "viz/ascii.hpp"
#include "viz/catalyst.hpp"
#include "viz/pgm_writer.hpp"
#include "viz/vti_writer.hpp"

namespace sv = streambrain::viz;
namespace fs = std::filesystem;

namespace {

sv::ScalarField2D demo_field(const std::string& name = "receptive_field") {
  sv::ScalarField2D field;
  field.name = name;
  field.width = 4;
  field.height = 3;
  field.values = {0, 1, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1};
  return field;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// ----------------------------------------------------------------- VTI ----

TEST(Vti, ContainsRequiredXmlStructure) {
  const std::string xml = sv::vti_to_string({demo_field()});
  EXPECT_NE(xml.find("<?xml version=\"1.0\"?>"), std::string::npos);
  EXPECT_NE(xml.find("<VTKFile type=\"ImageData\""), std::string::npos);
  EXPECT_NE(xml.find("WholeExtent=\"0 3 0 2 0 0\""), std::string::npos);
  EXPECT_NE(xml.find("Name=\"receptive_field\""), std::string::npos);
  EXPECT_NE(xml.find("</VTKFile>"), std::string::npos);
}

TEST(Vti, TagsAreBalanced) {
  const std::string xml = sv::vti_to_string({demo_field()});
  for (const std::string tag :
       {"VTKFile", "ImageData", "Piece", "PointData", "DataArray"}) {
    std::size_t opens = 0;
    std::size_t closes = 0;
    std::size_t pos = 0;
    while ((pos = xml.find("<" + tag, pos)) != std::string::npos) {
      ++opens;
      pos += tag.size();
    }
    pos = 0;
    while ((pos = xml.find("</" + tag + ">", pos)) != std::string::npos) {
      ++closes;
      pos += tag.size();
    }
    EXPECT_EQ(opens, closes) << tag;
  }
}

TEST(Vti, MultipleFieldsShareExtent) {
  auto a = demo_field("mask");
  auto b = demo_field("mutual_information");
  const std::string xml = sv::vti_to_string({a, b});
  EXPECT_NE(xml.find("Name=\"mask\""), std::string::npos);
  EXPECT_NE(xml.find("Name=\"mutual_information\""), std::string::npos);
}

TEST(Vti, RejectsInconsistentExtents) {
  auto a = demo_field();
  auto b = demo_field();
  b.width = 5;
  b.values.resize(15);
  EXPECT_THROW(sv::vti_to_string({a, b}), std::invalid_argument);
}

TEST(Vti, RejectsValueCountMismatch) {
  auto field = demo_field();
  field.values.pop_back();
  EXPECT_THROW(sv::vti_to_string({field}), std::invalid_argument);
}

TEST(Vti, RejectsEmptyFieldList) {
  EXPECT_THROW(sv::vti_to_string({}), std::invalid_argument);
}

TEST(Vti, WritesFileToDisk) {
  const std::string path = "/tmp/streambrain_test.vti";
  sv::write_vti(path, {demo_field()});
  const std::string content = slurp(path);
  EXPECT_EQ(content, sv::vti_to_string({demo_field()}));
  fs::remove(path);
}

// ----------------------------------------------------------------- PGM ----

TEST(Pgm, WritesValidHeaderAndPayload) {
  const std::string path = "/tmp/streambrain_test.pgm";
  sv::write_pgm(path, 4, 3, demo_field().values);
  const std::string content = slurp(path);
  EXPECT_EQ(content.substr(0, 3), "P5\n");
  EXPECT_NE(content.find("4 3\n255\n"), std::string::npos);
  // Payload = 12 bytes after the header.
  const std::size_t header_end = content.find("255\n") + 4;
  EXPECT_EQ(content.size() - header_end, 12u);
  fs::remove(path);
}

TEST(Pgm, NormalizesToFullRange) {
  const std::string path = "/tmp/streambrain_test2.pgm";
  sv::write_pgm(path, 2, 1, {-5.0f, 5.0f});
  const std::string content = slurp(path);
  const std::size_t header_end = content.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(content[header_end]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(content[header_end + 1]), 255u);
  fs::remove(path);
}

TEST(Pgm, ConstantImageIsMidGray) {
  const std::string path = "/tmp/streambrain_test3.pgm";
  sv::write_pgm(path, 2, 1, {3.0f, 3.0f});
  const std::string content = slurp(path);
  const std::size_t header_end = content.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(content[header_end]), 128u);
  fs::remove(path);
}

TEST(Pgm, RejectsSizeMismatch) {
  EXPECT_THROW(sv::write_pgm("/tmp/x.pgm", 3, 3, {1.0f}),
               std::invalid_argument);
}

// --------------------------------------------------------------- ASCII ----

TEST(Ascii, MaskGridRendersHashAndDot) {
  const std::vector<bool> mask = {true, false, false, true};
  const std::string grid = sv::render_mask_grid(mask, 2, 2);
  EXPECT_EQ(grid, "#.\n.#\n");
}

TEST(Ascii, MaskBarShowsCoverage) {
  const std::vector<bool> mask = {true, true, false, false};
  const std::string bar = sv::render_mask_bar(mask);
  EXPECT_NE(bar.find("##.."), std::string::npos);
  EXPECT_NE(bar.find("50%"), std::string::npos);
}

TEST(Ascii, HeatmapUsesShadeRamp) {
  const std::vector<float> values = {0.0f, 0.25f, 0.5f, 0.75f, 1.0f, 1.0f};
  const std::string map = sv::render_heatmap(values, 3, 2);
  EXPECT_NE(map.find(' '), std::string::npos);   // min shade
  EXPECT_NE(map.find('#'), std::string::npos);   // max shade
  EXPECT_EQ(map.size(), 8u);                     // 6 cells + 2 newlines
}

TEST(Ascii, SizeMismatchThrows) {
  EXPECT_THROW(sv::render_mask_grid({true}, 2, 2), std::invalid_argument);
  EXPECT_THROW(sv::render_heatmap({1.0f}, 2, 2), std::invalid_argument);
}

// ------------------------------------------------------------ Catalyst ----

TEST(Catalyst, RecordsHistoryInMemory) {
  sv::CatalystAdaptor adaptor;  // no output dir
  adaptor.co_process(0, {{true, false}, {false, true}});
  adaptor.co_process(1, {{true, true}, {false, false}});
  ASSERT_EQ(adaptor.history().size(), 2u);
  EXPECT_EQ(adaptor.history()[1].epoch, 1u);
  EXPECT_EQ(adaptor.history()[0].masks[0][0], true);
}

TEST(Catalyst, EveryNEpochsFilters) {
  sv::CatalystOptions options;
  options.every_n_epochs = 3;
  sv::CatalystAdaptor adaptor(options);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    adaptor.co_process(epoch, {{true}});
  }
  ASSERT_EQ(adaptor.history().size(), 4u);  // epochs 0, 3, 6, 9
  EXPECT_EQ(adaptor.history()[1].epoch, 3u);
}

TEST(Catalyst, MaskDriftMeasuresChange) {
  sv::CatalystAdaptor adaptor;
  adaptor.co_process(0, {{true, true, false, false}});
  adaptor.co_process(1, {{true, false, true, false}});  // 2 of 4 flipped
  const auto drift = adaptor.mask_drift();
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_DOUBLE_EQ(drift[0], 0.5);
}

TEST(Catalyst, OverlapIsJaccard) {
  sv::CatalystAdaptor adaptor;
  // Masks {1,1,0,0} and {1,0,1,0}: intersection 1, union 3.
  adaptor.co_process(0, {{true, true, false, false},
                         {true, false, true, false}});
  EXPECT_NEAR(adaptor.latest_overlap(), 1.0 / 3.0, 1e-12);
}

TEST(Catalyst, DisjointMasksZeroOverlap) {
  sv::CatalystAdaptor adaptor;
  adaptor.co_process(0, {{true, false}, {false, true}});
  EXPECT_DOUBLE_EQ(adaptor.latest_overlap(), 0.0);
}

TEST(Catalyst, WritesVtiAndPgmFilesPerHcu) {
  sv::CatalystOptions options;
  options.output_dir = "/tmp/streambrain_catalyst_test";
  options.write_vti = true;
  options.write_pgm = true;
  options.grid_width = 2;
  fs::remove_all(options.output_dir);
  {
    sv::CatalystAdaptor adaptor(options);
    adaptor.co_process(
        0, {{true, false, true, false}, {false, true, false, true}},
        {{0.1f, 0.2f, 0.3f, 0.4f}, {0.4f, 0.3f, 0.2f, 0.1f}});
  }
  EXPECT_TRUE(fs::exists(options.output_dir + "/fields_epoch0000_hcu00.vti"));
  EXPECT_TRUE(fs::exists(options.output_dir + "/fields_epoch0000_hcu01.vti"));
  EXPECT_TRUE(fs::exists(options.output_dir + "/fields_epoch0000_hcu00.pgm"));
  // The VTI must carry both the mask and the MI field.
  const std::string xml =
      slurp(options.output_dir + "/fields_epoch0000_hcu00.vti");
  EXPECT_NE(xml.find("receptive_field"), std::string::npos);
  EXPECT_NE(xml.find("mutual_information"), std::string::npos);
  fs::remove_all(options.output_dir);
}
