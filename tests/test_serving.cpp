// serve:: subsystem + AsyncPredictor: sharded async serving must be
// bit-identical to the serial reference at any shard count, resolve
// partial batches by deadline (no deferred-flush hang by construction),
// serve cache hits bit-identically, backpressure cleanly, survive
// destruction with requests in flight, and turn malformed requests into
// future errors instead of wedging the pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/async_predictor.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/request_pool.hpp"
#include "serve/request_queue.hpp"
#include "serve/score_cache.hpp"
#include "serve/shard_pool.hpp"

namespace sc = streambrain::core;
namespace sv = streambrain::serve;
namespace st = streambrain::tensor;

using streambrain::AsyncPredictor;
using streambrain::AsyncPredictorOptions;

namespace {

struct Serving {
  std::shared_ptr<sc::Model> model;
  st::MatrixF x_test;
  std::vector<int> reference_labels;
  std::vector<double> reference_scores;
};

const Serving& serving() {
  static const Serving instance = [] {
    streambrain::data::SyntheticHiggsGenerator generator;
    const auto train = generator.generate(700);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 555;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);

    Serving s;
    s.model = std::make_shared<sc::Model>();
    s.model->input(28, 10)
        .hidden(1, 40, 0.4)
        .classifier(2)
        .set_option("epochs", 3)
        .compile("simd", 42);
    s.model->fit(encoder.fit_transform(train.features), train.labels);
    s.x_test = encoder.transform(test.features);
    s.reference_labels = s.model->predict(s.x_test);
    s.reference_scores = s.model->predict_scores(s.x_test);
    return s;
  }();
  return instance;
}

st::MatrixF rows_slice(const st::MatrixF& x, std::size_t begin,
                       std::size_t end) {
  st::MatrixF out(end - begin, x.cols());
  for (std::size_t r = begin; r < end; ++r) {
    std::copy_n(x.row(r), x.cols(), out.row(r - begin));
  }
  return out;
}

/// An estimator that blocks in predict until released — for driving the
/// queue into backpressure deterministically.
class SlowEstimator final : public streambrain::Estimator {
 public:
  explicit SlowEstimator(std::shared_ptr<streambrain::Estimator> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return "slow(" + inner_->name() + ")"; }
  void fit(const st::MatrixF& x, const std::vector<int>& labels) override {
    inner_->fit(x, labels);
  }
  std::vector<int> predict(const st::MatrixF& x) override {
    wait();
    return inner_->predict(x);
  }
  std::vector<double> predict_scores(const st::MatrixF& x) override {
    wait();
    return inner_->predict_scores(x);
  }
  void release() { gate_.store(true, std::memory_order_release); }

 private:
  void wait() const {
    while (!gate_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::shared_ptr<streambrain::Estimator> inner_;
  std::atomic<bool> gate_{false};
};

/// Batch stats are recorded after the batch's promises resolve (the
/// result must never wait on the accounting lock), so a stats() read
/// racing the last batch's bookkeeping can miss it. Poll until `pred`
/// holds; returns the first satisfying snapshot (or the last one tried).
template <typename Pred>
streambrain::AsyncPredictorStats settled_stats(const AsyncPredictor& server,
                                               Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    const auto stats = server.stats();
    if (pred(stats) || std::chrono::steady_clock::now() >= deadline) {
      return stats;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

// --- serve primitives -------------------------------------------------------

TEST(RequestQueue, BoundedFifoWithCloseDrain) {
  sv::RequestQueue queue(2, sv::OverflowPolicy::kReject);
  auto a = std::make_shared<sv::ServeRequest>();
  auto b = std::make_shared<sv::ServeRequest>();
  auto c = std::make_shared<sv::ServeRequest>();
  EXPECT_TRUE(queue.push(a));
  EXPECT_TRUE(queue.push(b));
  EXPECT_FALSE(queue.push(c));  // full -> rejected, not blocked
  EXPECT_EQ(queue.rejected(), 1u);

  queue.close();
  EXPECT_THROW((void)queue.push(c), std::runtime_error);
  EXPECT_EQ(queue.pop(), a);  // closed queues still drain in order
  EXPECT_EQ(queue.pop(), b);
  EXPECT_TRUE(queue.drained());
  EXPECT_EQ(queue.pop(), nullptr);
}

TEST(RequestQueue, InterruptWakesABlockedPop) {
  sv::RequestQueue queue(4, sv::OverflowPolicy::kBlock);
  std::atomic<bool> woke{false};
  std::thread popper([&] {
    EXPECT_EQ(queue.pop(), nullptr);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  queue.interrupt();
  popper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ScoreCache, LruHitMissEvict) {
  sv::ScoreCache cache(2);
  const std::uint64_t gen = cache.generation();
  const float row_a[3] = {1.0f, 2.0f, 3.0f};
  const float row_b[3] = {4.0f, 5.0f, 6.0f};
  const float row_c[3] = {7.0f, 8.0f, 9.0f};
  double score = 0.0;

  EXPECT_FALSE(cache.lookup(row_a, 3, gen, score));
  cache.insert(row_a, 3, gen, 0.25);
  cache.insert(row_b, 3, gen, 0.75);
  EXPECT_TRUE(cache.lookup(row_a, 3, gen, score));  // promotes a to MRU
  EXPECT_EQ(score, 0.25);
  cache.insert(row_c, 3, gen, 0.5);  // evicts b (LRU), not a
  EXPECT_TRUE(cache.lookup(row_a, 3, gen, score));
  EXPECT_FALSE(cache.lookup(row_b, 3, gen, score));
  EXPECT_TRUE(cache.lookup(row_c, 3, gen, score));
  EXPECT_EQ(score, 0.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);

  sv::ScoreCache disabled(0);
  disabled.insert(row_a, 3, gen, 0.25);
  EXPECT_FALSE(disabled.lookup(row_a, 3, gen, score));
}

TEST(LatencyHistogram, QuantilesAreUpperEdgesAndNeverBelowTheSample) {
  sv::LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile(0.50), 0.0);  // empty -> 0, not garbage

  // 90 fast samples in the 1-2us bucket, 10 slow ones near 1ms: p50 must
  // report the fast bucket's upper edge, p99 the slow one's. Every
  // quantile is a bucket upper edge, so it can overstate by at most 2x
  // and never understate.
  for (int i = 0; i < 90; ++i) histogram.record(1.5e-6);
  for (int i = 0; i < 10; ++i) histogram.record(0.9e-3);
  EXPECT_EQ(histogram.count(), 100u);
  const double p50 = histogram.quantile(0.50);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GE(p50, 1.5e-6);
  EXPECT_LE(p50, 4.0e-6);
  EXPECT_GE(p99, 0.9e-3);
  EXPECT_LE(p99, 2.0e-3);
  EXPECT_LE(p50, p99);

  // Degenerate inputs clamp instead of indexing out of range.
  histogram.record(0.0);
  histogram.record(-1.0);
  histogram.record(1e12);
  EXPECT_EQ(histogram.count(), 103u);
  EXPECT_GT(histogram.quantile(1.0), 0.0);
}

TEST(ShardPool, ReplicasPredictBitIdentically) {
  sv::ShardPool pool(serving().model, 3);
  ASSERT_EQ(pool.size(), 3u);
  for (std::size_t s = 1; s < pool.size(); ++s) {
    // acquire_shard: the lease pins the replica and its version for the
    // whole verification — the raw-reference footgun is gone.
    const sv::ShardPool::Lease lease = pool.acquire_shard(s);
    EXPECT_EQ(lease.shard(), s);
    EXPECT_EQ(lease.model().predict(serving().x_test),
              serving().reference_labels);
    EXPECT_EQ(lease.model().predict_scores(serving().x_test),
              serving().reference_scores);
  }
}

TEST(ShardPool, RefusesUncloneableMultiShard) {
  std::shared_ptr<streambrain::Estimator> baseline =
      streambrain::make_baseline_estimator("logistic");
  EXPECT_THROW(sv::ShardPool(baseline, 2), std::invalid_argument);
  sv::ShardPool single(baseline, 1);  // shards=1 needs no clone
  EXPECT_EQ(single.size(), 1u);
}

// --- AsyncPredictor ---------------------------------------------------------

TEST(AsyncPredictor, SingleShardMatchesSerialReference) {
  AsyncPredictor server(serving().model, {/*shards=*/1,
                                          /*max_batch_rows=*/32});
  EXPECT_EQ(server.predict(serving().x_test), serving().reference_labels);
  EXPECT_EQ(server.predict_scores(serving().x_test),
            serving().reference_scores);
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rows, 2 * serving().x_test.rows());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.max_queue_wait_seconds, 0.0);
}

TEST(AsyncPredictor, ShardedConcurrentTrafficStaysBitIdentical) {
  AsyncPredictorOptions options;
  options.shards = 4;
  options.max_batch_rows = 16;
  options.max_batch_delay = std::chrono::microseconds(200);
  AsyncPredictor server(serving().model, options);
  ASSERT_EQ(server.shards(), 4u);

  const std::size_t n = serving().x_test.rows();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::size_t width = 1 + (t * 11 + round * 7) % 29;
        const std::size_t begin = (t * 17 + round * 31) % (n - width);
        const st::MatrixF slice =
            rows_slice(serving().x_test, begin, begin + width);
        const std::vector<int> labels = server.predict(slice);
        const std::vector<double> scores = server.predict_scores(slice);
        for (std::size_t i = 0; i < width; ++i) {
          if (labels[i] != serving().reference_labels[begin + i] ||
              scores[i] != serving().reference_scores[begin + i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().requests, kThreads * kRounds * 2);
}

TEST(AsyncPredictor, PartialBatchResolvesByDeadlineWithoutFlush) {
  // 8 rows can never fill a 64-row batch and no other traffic arrives;
  // the deadline flusher must still resolve the future promptly.
  // Adaptive batching is off so this exercises the deadline path itself,
  // not the idle-close shortcut.
  AsyncPredictorOptions options;
  options.max_batch_rows = 64;
  options.max_batch_delay = std::chrono::milliseconds(2);
  options.adaptive_batching = false;
  AsyncPredictor server(serving().model, options);
  auto future = server.submit(rows_slice(serving().x_test, 0, 8));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future.get(),
            std::vector<int>(serving().reference_labels.begin(),
                             serving().reference_labels.begin() + 8));
}

TEST(AsyncPredictor, FlushTrimsTheDeadlineWait) {
  AsyncPredictorOptions options;
  options.max_batch_rows = 128;
  options.max_batch_delay = std::chrono::seconds(10);  // effectively "never"
  AsyncPredictor server(serving().model, options);
  auto future = server.submit_scores(rows_slice(serving().x_test, 0, 4));
  server.flush();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(future.get(),
            std::vector<double>(serving().reference_scores.begin(),
                                serving().reference_scores.begin() + 4));
}

TEST(AsyncPredictor, ZeroRowRequestResolvesEmpty) {
  AsyncPredictor server(serving().model);
  const st::MatrixF empty(0, serving().x_test.cols());
  EXPECT_TRUE(server.predict(empty).empty());
  EXPECT_TRUE(server.predict_scores(empty).empty());
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rows, 0u);
}

TEST(AsyncPredictor, MismatchedColumnsFailTheFutureNotThePipeline) {
  AsyncPredictor server(serving().model, {/*shards=*/2});
  const st::MatrixF wrong(3, serving().x_test.cols() + 1, 0.5f);
  auto bad = server.submit(wrong);
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
  // The pipeline survives and keeps serving correct answers.
  EXPECT_EQ(server.predict(serving().x_test), serving().reference_labels);
}

TEST(AsyncPredictor, CachedScoresAreBitIdenticalToUncached) {
  AsyncPredictorOptions cached_options;
  cached_options.score_cache_rows = 4096;
  AsyncPredictor cached(serving().model, cached_options);

  const std::vector<double> first =
      cached.predict_scores(serving().x_test);  // all misses
  const std::vector<double> second =
      cached.predict_scores(serving().x_test);  // all hits
  EXPECT_EQ(first, serving().reference_scores);
  EXPECT_EQ(second, serving().reference_scores);

  const auto stats = cached.stats();
  EXPECT_EQ(stats.cache_misses, serving().x_test.rows());
  EXPECT_EQ(stats.cache_hits, serving().x_test.rows());

  // A tiny cache that thrashes must still be bit-identical.
  AsyncPredictorOptions tiny_options;
  tiny_options.score_cache_rows = 3;
  AsyncPredictor tiny(serving().model, tiny_options);
  EXPECT_EQ(tiny.predict_scores(serving().x_test),
            serving().reference_scores);
}

TEST(AsyncPredictor, RejectPolicyShedsLoadInsteadOfBlocking) {
  auto trained = std::make_shared<SlowEstimator>(serving().model);
  AsyncPredictorOptions options;
  options.queue_capacity = 2;
  options.overflow_policy = sv::OverflowPolicy::kReject;
  options.max_batch_rows = 4;
  options.max_batch_delay = std::chrono::microseconds(1);

  std::vector<std::future<std::vector<int>>> accepted;
  std::size_t rejections = 0;
  {
    AsyncPredictor server(trained, options);
    for (int i = 0; i < 32; ++i) {
      try {
        accepted.push_back(server.submit(rows_slice(serving().x_test, 0, 4)));
      } catch (const std::runtime_error&) {
        ++rejections;
      }
    }
    EXPECT_GT(rejections, 0u);  // the gate held the queue full
    trained->release();
  }  // destructor drains every accepted request
  for (auto& future : accepted) {
    EXPECT_EQ(future.get(),
              std::vector<int>(serving().reference_labels.begin(),
                               serving().reference_labels.begin() + 4));
  }
  EXPECT_EQ(accepted.size() + rejections, 32u);
}

TEST(AsyncPredictor, DestructionWithInFlightRequestsCompletesAllFutures) {
  std::vector<std::future<std::vector<int>>> futures;
  {
    AsyncPredictorOptions options;
    options.shards = 2;
    options.max_batch_rows = 8;
    options.max_batch_delay = std::chrono::milliseconds(50);
    AsyncPredictor server(serving().model, options);
    for (std::size_t i = 0; i < 24; ++i) {
      futures.push_back(server.submit(rows_slice(serving().x_test, i, i + 5)));
    }
    // Destroy immediately: everything accepted must still resolve.
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(),
              std::vector<int>(serving().reference_labels.begin() + i,
                               serving().reference_labels.begin() + i + 5));
  }
}

TEST(AsyncPredictor, LargeRequestSplitsAcrossShardsCorrectly) {
  // One request far larger than max_batch_rows fans out over shards and
  // reassembles in order.
  AsyncPredictorOptions options;
  options.shards = 4;
  options.max_batch_rows = 8;
  AsyncPredictor server(serving().model, options);
  EXPECT_EQ(server.predict(serving().x_test), serving().reference_labels);
  const std::size_t expected_batches = serving().x_test.rows() / 8;
  const auto stats = settled_stats(
      server, [&](const auto& s) { return s.batches >= expected_batches; });
  EXPECT_GE(stats.batches, expected_batches);
}

TEST(AsyncPredictor, StatsExposeLatencyPercentiles) {
  AsyncPredictorOptions options;
  options.shards = 2;
  options.max_batch_rows = 16;
  AsyncPredictor server(serving().model, options);
  EXPECT_EQ(server.stats().p50_latency_seconds, 0.0);  // nothing completed
  EXPECT_EQ(server.stats().p99_latency_seconds, 0.0);

  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(server.predict(serving().x_test), serving().reference_labels);
  }
  const auto stats = server.stats();
  // Three completed requests: percentiles are live, ordered, and bounded
  // by sanity (a request cannot appear to take less than the histogram's
  // smallest bucket or more than a minute here).
  EXPECT_GT(stats.p50_latency_seconds, 0.0);
  EXPECT_GT(stats.p99_latency_seconds, 0.0);
  EXPECT_LE(stats.p50_latency_seconds, stats.p99_latency_seconds);
  EXPECT_LT(stats.p99_latency_seconds, 60.0);
  // Zero-row requests complete (and are measured) too.
  EXPECT_TRUE(server.predict(st::MatrixF(0, serving().x_test.cols())).empty());
  EXPECT_GT(server.stats().p50_latency_seconds, 0.0);
}

TEST(AsyncPredictor, RejectsBadConstruction) {
  EXPECT_THROW(AsyncPredictor(nullptr), std::invalid_argument);
  EXPECT_THROW(AsyncPredictor(serving().model, {/*shards=*/0}),
               std::invalid_argument);
  AsyncPredictorOptions zero_batch;
  zero_batch.max_batch_rows = 0;
  EXPECT_THROW(AsyncPredictor(serving().model, zero_batch),
               std::invalid_argument);
  AsyncPredictorOptions bad_min;
  bad_min.max_batch_rows = 8;
  bad_min.min_batch_rows = 9;  // min must not exceed max
  EXPECT_THROW(AsyncPredictor(serving().model, bad_min),
               std::invalid_argument);
}

// --- PR 7: overhead fixes, adaptive batching, admission control -------------

TEST(AsyncPredictor, FlushWakesADispatcherSleepingOnTheDeadline) {
  // Regression: flush() is a release-store plus a queue interrupt. If the
  // wakeup were a bare notify, a dispatcher racing between "pop returned
  // my request" and "wait until the 10s deadline" could sleep through
  // it. The interrupt is sticky, so whichever side of the wait flush()
  // lands on, the batch must close promptly. Loop to shake the race out.
  AsyncPredictorOptions options;
  options.max_batch_rows = 128;
  options.max_batch_delay = std::chrono::seconds(10);  // effectively "never"
  options.adaptive_batching = false;  // only flush can close the batch early
  AsyncPredictor server(serving().model, options);
  for (int i = 0; i < 50; ++i) {
    auto future = server.submit(rows_slice(serving().x_test, 0, 1));
    server.flush();
    ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
              std::future_status::ready)
        << "flush() was slept through on iteration " << i;
    EXPECT_EQ(future.get(),
              std::vector<int>(serving().reference_labels.begin(),
                               serving().reference_labels.begin() + 1));
  }
  const auto stats =
      settled_stats(server, [](const auto& s) { return s.flush_closes >= 1; });
  EXPECT_GE(stats.flush_closes, 1u);
}

TEST(AsyncPredictor, AdmissionControlShedsWithOverloadError) {
  // Gate the model shut and pour requests in: once accepted-but-
  // unfulfilled rows reach max_inflight_rows, every further submission
  // must fail fast through its future with the documented OverloadError
  // — and the accepted ones must still resolve bit-identically.
  auto trained = std::make_shared<SlowEstimator>(serving().model);
  AsyncPredictorOptions options;
  options.max_batch_rows = 4;
  options.max_batch_delay = std::chrono::microseconds(1);
  options.max_inflight_rows = 8;  // two 4-row requests
  AsyncPredictor server(trained, options);

  std::vector<std::future<std::vector<int>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(server.submit(rows_slice(serving().x_test, 0, 4)));
  }
  trained->release();

  const std::vector<int> expected(serving().reference_labels.begin(),
                                  serving().reference_labels.begin() + 4);
  std::size_t served = 0;
  std::size_t shed = 0;
  for (auto& future : futures) {
    try {
      EXPECT_EQ(future.get(), expected);
      ++served;
    } catch (const sv::OverloadError&) {
      ++shed;
    }
  }
  // The model is gated, so no rows leave flight during submission: the
  // outcome is exact, not merely "some were shed".
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(shed, 14u);

  const auto stats = server.stats();
  EXPECT_EQ(stats.shed_requests, shed);
  EXPECT_EQ(stats.shed_rows, shed * 4);
  EXPECT_EQ(stats.requests, served);  // shed submissions are not "accepted"

  // The admission gauge drains back to zero (the promise resolves just
  // before the gauge is decremented, so allow the settle to land).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.inflight_rows() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.inflight_rows(), 0u);
}

TEST(AsyncPredictor, AdaptiveCloseServesLightTrafficWithoutDeadlineWait) {
  // A lone 8-row request against a 1024-row batch and a 10-second
  // deadline: the adaptive closer must notice the empty queue and idle
  // shard and dispatch immediately instead of stranding the request.
  AsyncPredictorOptions options;
  options.max_batch_rows = 1024;
  options.max_batch_delay = std::chrono::seconds(10);
  AsyncPredictor server(serving().model, options);
  auto future = server.submit(rows_slice(serving().x_test, 0, 8));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_EQ(future.get(),
            std::vector<int>(serving().reference_labels.begin(),
                             serving().reference_labels.begin() + 8));
  const auto stats = settled_stats(
      server, [](const auto& s) { return s.adaptive_closes >= 1; });
  EXPECT_GE(stats.adaptive_closes, 1u);
}

TEST(AsyncPredictor, PerStageTimingAndCloseReasonsAccountForEveryBatch) {
  AsyncPredictorOptions options;
  options.shards = 2;
  options.max_batch_rows = 16;
  AsyncPredictor server(serving().model, options);
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(server.predict(serving().x_test), serving().reference_labels);
  }
  const auto stats =
      settled_stats(server, [](const auto& s) { return s.batches >= 1; });
  ASSERT_GT(stats.batches, 0u);
  // Close reasons partition the batches — and the accessor that the
  // repo linter (tools/sb_lint.py) keys the counter convention on must
  // agree with the hand-written sum.
  EXPECT_EQ(stats.full_closes + stats.deadline_closes + stats.adaptive_closes +
                stats.flush_closes,
            stats.batches);
  EXPECT_EQ(stats.close_reasons_total(), stats.batches);
  // Stage sums: compute mirrors the model clock exactly; the overhead
  // stages are non-negative and bounded by sanity.
  EXPECT_EQ(stats.stage_compute_seconds, stats.model_seconds);
  EXPECT_GT(stats.stage_compute_seconds, 0.0);
  EXPECT_GE(stats.stage_close_seconds, 0.0);
  EXPECT_GE(stats.stage_dispatch_seconds, 0.0);
  EXPECT_GE(stats.stage_fulfill_seconds, 0.0);
  EXPECT_LT(stats.stage_close_seconds + stats.stage_dispatch_seconds +
                stats.stage_fulfill_seconds,
            60.0);
  // Mean helpers divide by batches (and requests), not by zero.
  EXPECT_GT(stats.mean_stage_compute_seconds(), 0.0);
  EXPECT_GE(stats.mean_stage_dispatch_seconds(), 0.0);
  EXPECT_GE(stats.mean_queue_wait_seconds(), 0.0);
  const streambrain::AsyncPredictorStats empty_stats;
  EXPECT_EQ(empty_stats.mean_stage_compute_seconds(), 0.0);
}

TEST(AsyncPredictor, WholeRequestZeroCopyMatchesSplitGatherPath) {
  // A request that fits one batch takes the zero-copy path (model reads
  // the request matrix in place); a split request takes gather/scatter.
  // Both must be bit-identical to the serial reference.
  AsyncPredictorOptions whole_options;
  whole_options.max_batch_rows = 1024;  // whole x_test in one batch
  AsyncPredictor whole(serving().model, whole_options);
  EXPECT_EQ(whole.predict(serving().x_test), serving().reference_labels);
  EXPECT_EQ(whole.predict_scores(serving().x_test),
            serving().reference_scores);
  EXPECT_EQ(settled_stats(whole, [](const auto& s) { return s.batches >= 2; })
                .batches,
            2u);  // one batch per request

  AsyncPredictorOptions split_options;
  split_options.max_batch_rows = 8;
  AsyncPredictor split(serving().model, split_options);
  EXPECT_EQ(split.predict(serving().x_test), serving().reference_labels);
  EXPECT_EQ(split.predict_scores(serving().x_test),
            serving().reference_scores);
  EXPECT_GT(settled_stats(split, [](const auto& s) { return s.batches > 2; })
                .batches,
            2u);
}

TEST(AsyncPredictor, RepeatedDestructionWithInFlightTrafficDrains) {
  // Stress the shutdown edge the pooling refactor is most likely to
  // break: futures submitted right up to destruction must all resolve,
  // every round, with shard tasks still in flight. (TSan runs this.)
  for (int round = 0; round < 10; ++round) {
    std::vector<std::future<std::vector<int>>> futures;
    {
      AsyncPredictorOptions options;
      options.shards = 2;
      options.max_batch_rows = 8;
      AsyncPredictor server(serving().model, options);
      for (std::size_t i = 0; i < 8; ++i) {
        futures.push_back(
            server.submit(rows_slice(serving().x_test, i, i + 5)));
      }
    }  // destructor: close intake, flush, drain shard tasks
    for (std::size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get(),
                std::vector<int>(serving().reference_labels.begin() + i,
                                 serving().reference_labels.begin() + i + 5));
    }
  }
}

TEST(RequestPool, RecyclesRequestsAcrossKindsWithFreshPromises) {
  sv::RequestPool pool(/*max_pooled=*/4);
  EXPECT_EQ(pool.reused(), 0u);

  {  // first use: labels
    auto request = pool.acquire(sv::RequestKind::kLabels);
    auto future = request->labels_future();
    request->x = st::MatrixF(2, 3, 0.0f);
    request->add_chunks(1);
    request->ensure_result_storage();
    request->labels = {7, 9};
    EXPECT_TRUE(request->complete_chunk());
    EXPECT_EQ(future.get(), (std::vector<int>{7, 9}));
  }  // recycled
  EXPECT_EQ(pool.pooled(), 1u);

  {  // second use, other kind: the scores promise must be fresh and the
     // consumed labels promise reconstructed for use number three
    auto request = pool.acquire(sv::RequestKind::kScores);
    auto future = request->scores_future();
    request->x = st::MatrixF(1, 3, 0.0f);
    request->add_chunks(1);
    request->ensure_result_storage();
    request->scores = {0.5};
    EXPECT_TRUE(request->complete_chunk());
    EXPECT_EQ(future.get(), (std::vector<double>{0.5}));
  }
  EXPECT_EQ(pool.reused(), 1u);

  {  // third use: back to labels — get_future on the reconstructed
     // promise must not throw future_already_retrieved
    auto request = pool.acquire(sv::RequestKind::kLabels);
    auto future = request->labels_future();
    request->x = st::MatrixF(1, 3, 0.0f);
    request->add_chunks(1);
    request->fail(std::make_exception_ptr(std::runtime_error("boom")));
    EXPECT_TRUE(request->complete_chunk());
    EXPECT_THROW((void)future.get(), std::runtime_error);
  }
  EXPECT_EQ(pool.reused(), 2u);
  EXPECT_EQ(pool.pooled(), 1u);  // same object cycling, not accumulation
}
