// Tests for src/metrics: accuracy/confusion, ROC/AUC properties
// (bounds, antisymmetry, tie handling), AMS, log-loss, calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/ams.hpp"
#include "metrics/classification.hpp"
#include "metrics/roc.hpp"
#include "util/rng.hpp"

namespace sm = streambrain::metrics;
namespace su = streambrain::util;

// ------------------------------------------------------------ accuracy ----

TEST(Accuracy, BasicCounts) {
  EXPECT_DOUBLE_EQ(sm::accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(sm::accuracy({}, {}), 0.0);
  EXPECT_THROW(sm::accuracy({1}, {1, 0}), std::invalid_argument);
}

TEST(ConfusionMatrix, CountsAndDerivedMetrics) {
  sm::ConfusionMatrix cm(2);
  // 3 TP(1), 1 FN, 2 TN, 1 FP.
  cm.add_all({1, 1, 1, 0, 0, 0, 1}, {1, 1, 1, 1, 0, 0, 0});
  EXPECT_EQ(cm.total(), 7u);
  EXPECT_EQ(cm.count(1, 1), 3u);
  EXPECT_EQ(cm.count(1, 0), 1u);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_NEAR(cm.accuracy(), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 0.75, 1e-12);
}

TEST(ConfusionMatrix, MulticlassSupport) {
  sm::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 2);
  cm.add(2, 2);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(cm.count(1, 2), 1u);
  EXPECT_THROW(cm.add(3, 0), std::out_of_range);
}

TEST(ConfusionMatrix, UndefinedPrecisionRecallAreZero) {
  sm::ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);  // never predicted 1
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);     // class 1 absent
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
}

// ----------------------------------------------------------------- AUC ----

TEST(Auc, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(sm::auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(Auc, InvertedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(sm::auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(Auc, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(sm::auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(Auc, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(sm::auc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(sm::auc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(Auc, KnownHandComputedValue) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6)+(0.8>0.2)+(0.4<0.6 ->0)+(0.4>0.2) = 3 of 4.
  EXPECT_DOUBLE_EQ(sm::auc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(Auc, TieBetweenClassesCountsHalf) {
  // pos {0.5}, neg {0.5, 0.1}: pairs = 0.5 (tie) + 1 = 1.5 of 2.
  EXPECT_DOUBLE_EQ(sm::auc({0.5, 0.5, 0.1}, {1, 0, 0}), 0.75);
}

TEST(Auc, ComplementAntisymmetry) {
  // auc(s, y) + auc(s, 1-y) == 1 for tie-free scores.
  su::Rng rng(3);
  std::vector<double> scores(200);
  std::vector<int> labels(200);
  std::vector<int> flipped(200);
  for (std::size_t i = 0; i < 200; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.4) ? 1 : 0;
    flipped[i] = 1 - labels[i];
  }
  EXPECT_NEAR(sm::auc(scores, labels) + sm::auc(scores, flipped), 1.0, 1e-12);
}

TEST(Auc, InvariantToMonotoneTransform) {
  su::Rng rng(5);
  std::vector<double> scores(300);
  std::vector<double> transformed(300);
  std::vector<int> labels(300);
  for (std::size_t i = 0; i < 300; ++i) {
    scores[i] = rng.uniform(0.01, 0.99);
    transformed[i] = std::log(scores[i] / (1.0 - scores[i]));  // logit
    labels[i] = rng.bernoulli(scores[i]) ? 1 : 0;
  }
  EXPECT_NEAR(sm::auc(scores, labels), sm::auc(transformed, labels), 1e-12);
}

TEST(Auc, MatchesBruteForcePairCount) {
  su::Rng rng(7);
  std::vector<double> scores(120);
  std::vector<int> labels(120);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = std::round(rng.uniform() * 10.0) / 10.0;  // force ties
    labels[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  double wins = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < scores.size(); ++a) {
    for (std::size_t b = 0; b < scores.size(); ++b) {
      if (labels[a] == 1 && labels[b] == 0) {
        ++pairs;
        if (scores[a] > scores[b]) {
          wins += 1.0;
        } else if (scores[a] == scores[b]) {
          wins += 0.5;
        }
      }
    }
  }
  ASSERT_GT(pairs, 0u);
  EXPECT_NEAR(sm::auc(scores, labels), wins / static_cast<double>(pairs),
              1e-12);
}

// ----------------------------------------------------------------- ROC ----

TEST(RocCurve, StartsAtOriginEndsAtOne) {
  const auto curve = sm::roc_curve({0.9, 0.7, 0.3, 0.1}, {1, 0, 1, 0});
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
}

TEST(RocCurve, MonotoneNonDecreasing) {
  su::Rng rng(11);
  std::vector<double> scores(150);
  std::vector<int> labels(150);
  for (std::size_t i = 0; i < 150; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  const auto curve = sm::roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
  }
}

TEST(RocCurve, TrapezoidalAreaMatchesAuc) {
  su::Rng rng(13);
  std::vector<double> scores(400);
  std::vector<int> labels(400);
  for (std::size_t i = 0; i < 400; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(scores[i]) ? 1 : 0;
  }
  const auto curve = sm::roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += 0.5 *
            (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) *
            (curve[i].false_positive_rate - curve[i - 1].false_positive_rate);
  }
  EXPECT_NEAR(area, sm::auc(scores, labels), 1e-9);
}

// ----------------------------------------------------------------- AMS ----

TEST(Ams, ZeroSignalIsZero) { EXPECT_DOUBLE_EQ(sm::ams(0.0, 100.0), 0.0); }

TEST(Ams, MonotoneInSignal) {
  EXPECT_LT(sm::ams(10.0, 100.0), sm::ams(20.0, 100.0));
  EXPECT_GT(sm::ams(10.0, 50.0), sm::ams(10.0, 100.0));
}

TEST(Ams, MatchesClosedFormSmallS) {
  // For s << b, AMS ~ s / sqrt(b + b_reg).
  const double s = 1.0;
  const double b = 10000.0;
  EXPECT_NEAR(sm::ams(s, b), s / std::sqrt(b + 10.0), 1e-4);
}

TEST(Ams, RejectsNegativeCounts) {
  EXPECT_THROW(sm::ams(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(sm::ams(1.0, -10.0), std::invalid_argument);
}

TEST(Ams, BestAmsScanFindsSeparatingThreshold) {
  // Perfectly separated scores: the best selection takes all signal, no
  // background.
  const std::vector<double> scores = {0.9, 0.8, 0.85, 0.1, 0.2, 0.15};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const auto scan = sm::best_ams(scores, labels);
  EXPECT_NEAR(scan.best_ams, sm::ams(3.0, 0.0), 1e-12);
  EXPECT_GE(scan.best_threshold, 0.8);
}

TEST(Ams, ScanOnRandomScoresIsFinite) {
  su::Rng rng(17);
  std::vector<double> scores(500);
  std::vector<int> labels(500);
  for (std::size_t i = 0; i < 500; ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(0.5) ? 1 : 0;
  }
  const auto scan = sm::best_ams(scores, labels);
  EXPECT_GT(scan.best_ams, 0.0);
  EXPECT_TRUE(std::isfinite(scan.best_ams));
}

// ------------------------------------------------------------- log loss ----

TEST(LogLoss, PerfectPredictionsNearZero) {
  EXPECT_NEAR(sm::log_loss({1.0, 0.0}, {1, 0}), 0.0, 1e-9);
}

TEST(LogLoss, UninformativeIsLn2) {
  EXPECT_NEAR(sm::log_loss({0.5, 0.5}, {1, 0}), std::log(2.0), 1e-12);
}

TEST(LogLoss, ClampsExtremeScores) {
  const double loss = sm::log_loss({0.0}, {1});  // would be inf unclamped
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 20.0);
}

// ---------------------------------------------------------- calibration ----

TEST(Calibration, PerfectlyCalibratedNearZero) {
  su::Rng rng(19);
  std::vector<double> scores(20000);
  std::vector<int> labels(20000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.uniform();
    labels[i] = rng.bernoulli(scores[i]) ? 1 : 0;
  }
  EXPECT_LT(sm::expected_calibration_error(scores, labels, 10), 0.03);
}

TEST(Calibration, OverconfidentWrongIsLarge) {
  // Always predicting 0.99 for a 50/50 stream: ECE ~ 0.49.
  std::vector<double> scores(1000, 0.99);
  std::vector<int> labels(1000);
  for (std::size_t i = 0; i < 1000; ++i) labels[i] = i % 2 == 0 ? 1 : 0;
  EXPECT_NEAR(sm::expected_calibration_error(scores, labels, 10), 0.49, 0.02);
}
