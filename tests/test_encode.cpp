// Tests for src/encode: quantile binning invariants and one-hot encoding
// (the paper's input representation: 10-quantile one-hot vectors).

#include <gtest/gtest.h>

#include <cmath>

#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "encode/quantile.hpp"
#include "util/rng.hpp"

namespace se = streambrain::encode;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

st::MatrixF random_features(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  su::Rng rng(seed);
  st::MatrixF m(rows, cols);
  for (float& v : m) v = static_cast<float>(rng.normal(0.0, 2.0));
  return m;
}

}  // namespace

// ---------------------------------------------------------- QuantileBinner

TEST(QuantileBinner, RejectsFewerThanTwoBins) {
  EXPECT_THROW(se::QuantileBinner(1), std::invalid_argument);
  EXPECT_NO_THROW(se::QuantileBinner(2));
}

TEST(QuantileBinner, FitRequiresData) {
  se::QuantileBinner binner(10);
  st::MatrixF empty;
  EXPECT_THROW(binner.fit(empty), std::invalid_argument);
}

TEST(QuantileBinner, TransformBeforeFitThrows) {
  se::QuantileBinner binner(10);
  const auto data = random_features(5, 3, 1);
  EXPECT_THROW(binner.transform(data), std::logic_error);
}

TEST(QuantileBinner, CutsAreMonotone) {
  const auto data = random_features(5000, 4, 2);
  se::QuantileBinner binner(10);
  binner.fit(data);
  for (std::size_t f = 0; f < 4; ++f) {
    const auto& cuts = binner.cuts(f);
    ASSERT_EQ(cuts.size(), 9u);
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_LE(cuts[i - 1], cuts[i]);
    }
  }
}

class QuantileBinCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantileBinCounts, BinsHaveApproximatelyEqualMass) {
  // The paper: "split the distribution into ten groups with approximately
  // even sizes" — property must hold for any bin count.
  const std::size_t bins = GetParam();
  const auto data = random_features(10000, 2, 3 + bins);
  se::QuantileBinner binner(bins);
  binner.fit(data);
  const auto assignments = binner.transform(data);
  std::vector<std::size_t> counts(bins, 0);
  for (const auto& row : assignments) ++counts[row[0]];
  const double expected = 10000.0 / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]), expected, expected * 0.1)
        << "bin " << b << " of " << bins;
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, QuantileBinCounts,
                         ::testing::Values(2, 4, 5, 10, 20));

TEST(QuantileBinner, BinOfRespectsBoundaries) {
  st::MatrixF data(4, 1, {0.0f, 1.0f, 2.0f, 3.0f});
  se::QuantileBinner binner(4);
  binner.fit(data);
  EXPECT_EQ(binner.bin_of(0, -100.0f), 0u);
  EXPECT_EQ(binner.bin_of(0, 100.0f), 3u);
  // Every bin index must be < bins.
  for (float v = -5.0f; v < 5.0f; v += 0.1f) {
    EXPECT_LT(binner.bin_of(0, v), 4u);
  }
}

TEST(QuantileBinner, ConstantFeatureAllInOneBin) {
  st::MatrixF data(100, 1, 3.14f);
  se::QuantileBinner binner(10);
  binner.fit(data);
  // All cuts equal; values land in a single (the last) bin consistently.
  const auto assignments = binner.transform(data);
  for (const auto& row : assignments) EXPECT_EQ(row[0], assignments[0][0]);
}

TEST(QuantileBinner, TransformWidthMismatchThrows) {
  se::QuantileBinner binner(4);
  binner.fit(random_features(50, 3, 4));
  EXPECT_THROW(binner.transform(random_features(5, 2, 5)),
               std::invalid_argument);
}

// ------------------------------------------------------------ OneHotEncoder

TEST(OneHotEncoder, ExactlyOneHotPerHypercolumn) {
  const auto data = random_features(500, 6, 6);
  se::OneHotEncoder encoder(10);
  const auto encoded = encoder.fit_transform(data);
  ASSERT_EQ(encoded.rows(), 500u);
  ASSERT_EQ(encoded.cols(), 60u);
  for (std::size_t r = 0; r < encoded.rows(); ++r) {
    for (std::size_t f = 0; f < 6; ++f) {
      float mass = 0.0f;
      for (std::size_t b = 0; b < 10; ++b) {
        const float v = encoded(r, f * 10 + b);
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        mass += v;
      }
      EXPECT_FLOAT_EQ(mass, 1.0f);  // simplex property
    }
  }
}

TEST(OneHotEncoder, HotIndexMatchesBinner) {
  const auto data = random_features(100, 2, 7);
  se::OneHotEncoder encoder(5);
  const auto encoded = encoder.fit_transform(data);
  for (std::size_t r = 0; r < 100; ++r) {
    for (std::size_t f = 0; f < 2; ++f) {
      const std::size_t bin = encoder.binner().bin_of(f, data(r, f));
      EXPECT_FLOAT_EQ(encoded(r, f * 5 + bin), 1.0f);
    }
  }
}

TEST(OneHotEncoder, ThermometerIsCumulative) {
  const auto data = random_features(200, 3, 8);
  se::OneHotEncoder encoder(8, se::CodeStyle::kThermometer);
  const auto encoded = encoder.fit_transform(data);
  for (std::size_t r = 0; r < encoded.rows(); ++r) {
    for (std::size_t f = 0; f < 3; ++f) {
      // Must be a prefix of ones followed by zeros.
      bool seen_zero = false;
      for (std::size_t b = 0; b < 8; ++b) {
        const float v = encoded(r, f * 8 + b);
        if (v == 0.0f) {
          seen_zero = true;
        } else {
          EXPECT_FALSE(seen_zero) << "non-prefix thermometer code";
        }
      }
      EXPECT_GE(encoded(r, f * 8), 1.0f);  // bin 0 always on
    }
  }
}

TEST(OneHotEncoder, DecodeColumnInverse) {
  se::OneHotEncoder encoder(10);
  encoder.fit(random_features(50, 4, 9));
  EXPECT_EQ(encoder.encoded_width(), 40u);
  const auto [feature, bin] = encoder.decode_column(27);
  EXPECT_EQ(feature, 2u);
  EXPECT_EQ(bin, 7u);
  EXPECT_THROW((void)encoder.decode_column(40), std::out_of_range);
}

TEST(OneHotEncoder, TransformBeforeFitThrows) {
  se::OneHotEncoder encoder(10);
  EXPECT_THROW(encoder.transform(random_features(5, 2, 10)),
               std::logic_error);
}

TEST(OneHotEncoder, TrainTestConsistency) {
  // Encoding of test data must use train-set cuts (no re-fit leakage):
  // a value between train cuts must get the same bin regardless of the
  // test distribution around it.
  const auto train = random_features(2000, 1, 11);
  se::OneHotEncoder encoder(10);
  encoder.fit(train);
  st::MatrixF probe(1, 1, {0.5f});
  const auto encoded_alone = encoder.transform(probe);
  st::MatrixF probe_in_context(3, 1, {-100.0f, 0.5f, 100.0f});
  const auto encoded_context = encoder.transform(probe_in_context);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_FLOAT_EQ(encoded_alone(0, b), encoded_context(1, b));
  }
}

TEST(OneHotEncoder, HiggsEndToEndWidth) {
  streambrain::data::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(300);
  se::OneHotEncoder encoder(10);
  const auto encoded = encoder.fit_transform(dataset.features);
  EXPECT_EQ(encoded.cols(), 280u);  // 28 features x 10 quantiles
  // Every row has exactly 28 active units.
  for (std::size_t r = 0; r < encoded.rows(); ++r) {
    float active = 0.0f;
    for (std::size_t c = 0; c < encoded.cols(); ++c) active += encoded(r, c);
    EXPECT_FLOAT_EQ(active, 28.0f);
  }
}
