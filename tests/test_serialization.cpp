// Tests for model checkpointing: exact save/load round-trips, geometry
// validation, corruption handling.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;
namespace fs = std::filesystem;

namespace {

sc::BcpnnConfig layer_config() {
  sc::BcpnnConfig config;
  config.input_hypercolumns = sd::kHiggsFeatures;
  config.input_bins = 10;
  config.hcus = 2;
  config.mcus = 25;
  config.receptive_field = 0.4;
  config.epochs = 3;
  config.seed = 9;
  return config;
}

st::MatrixF encoded_events(std::size_t count, std::uint64_t seed) {
  sd::HiggsGeneratorOptions options;
  options.seed = seed;
  sd::SyntheticHiggsGenerator generator(options);
  const auto dataset = generator.generate(count);
  streambrain::encode::OneHotEncoder encoder(10);
  return encoder.fit_transform(dataset.features);
}

}  // namespace

TEST(Serialization, LayerRoundTripIsExact) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer trained(config, *engine, rng);
  const auto x = encoded_events(400, 3);
  for (int step = 0; step < 12; ++step) trained.train_batch(x, 1.0f);
  trained.plasticity_step();

  const std::string path = "/tmp/streambrain_layer.ckpt";
  sc::save_layer(path, trained);

  su::Rng rng2(999);  // different init — must be fully overwritten
  sc::BcpnnLayer restored(config, *engine, rng2);
  sc::load_layer(path, restored);

  // Identical masks and bitwise-identical activations.
  EXPECT_EQ(restored.masks().all(), trained.masks().all());
  st::MatrixF a_trained;
  st::MatrixF a_restored;
  trained.forward(x, a_trained);
  restored.forward(x, a_restored);
  for (std::size_t i = 0; i < a_trained.size(); ++i) {
    EXPECT_EQ(a_trained.data()[i], a_restored.data()[i]);
  }
  fs::remove(path);
}

TEST(Serialization, LayerGeometryMismatchRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer trained(config, *engine, rng);
  const std::string path = "/tmp/streambrain_layer2.ckpt";
  sc::save_layer(path, trained);

  auto other_config = config;
  other_config.mcus = 30;  // different geometry
  su::Rng rng2(2);
  sc::BcpnnLayer other(other_config, *engine, rng2);
  EXPECT_THROW(sc::load_layer(path, other), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, CorruptMagicRejected) {
  const std::string path = "/tmp/streambrain_corrupt.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACHECKPOINT";
  }
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  EXPECT_THROW(sc::load_layer(path, layer), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, TruncatedFileRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  const std::string path = "/tmp/streambrain_trunc.ckpt";
  sc::save_layer(path, layer);
  fs::resize_file(path, fs::file_size(path) / 2);
  su::Rng rng2(2);
  sc::BcpnnLayer target(config, *engine, rng2);
  EXPECT_THROW(sc::load_layer(path, target), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, MissingFileRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  EXPECT_THROW(sc::load_layer("/no/such/file.ckpt", layer),
               std::runtime_error);
}

namespace {

/// Train a small network end to end; returns the trained network.
std::unique_ptr<sc::Network> trained_network(sc::HeadType head) {
  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = head;
  auto network = std::make_unique<sc::Network>(config);
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(600);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);
  network->fit(x, dataset.labels);
  return network;
}

}  // namespace

class NetworkCheckpoint : public ::testing::TestWithParam<sc::HeadType> {};

TEST_P(NetworkCheckpoint, PredictionsSurviveRoundTrip) {
  const sc::HeadType head = GetParam();
  auto trained = trained_network(head);
  const auto x_test = encoded_events(200, 77);
  const auto scores_before = trained->predict_scores(x_test);

  const std::string path = "/tmp/streambrain_network.ckpt";
  sc::save_network(path, *trained);

  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = head;
  sc::Network restored(config);
  sc::load_network(path, restored);
  const auto scores_after = restored.predict_scores(x_test);
  ASSERT_EQ(scores_before.size(), scores_after.size());
  for (std::size_t i = 0; i < scores_before.size(); ++i) {
    EXPECT_EQ(scores_before[i], scores_after[i]);  // bitwise
  }
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(BothHeads, NetworkCheckpoint,
                         ::testing::Values(sc::HeadType::kBcpnn,
                                           sc::HeadType::kSgd));

TEST(Serialization, TrainingResumesFromCheckpoint) {
  // Save mid-training, restore into a fresh layer, continue training on
  // both — trajectories must stay identical when driven by the same data
  // (the checkpoint captures the full learned state).
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer original(config, *engine, rng);
  const auto x = encoded_events(300, 5);
  for (int step = 0; step < 6; ++step) original.train_batch(x, 0.0f);

  const std::string path = "/tmp/streambrain_resume.ckpt";
  sc::save_layer(path, original);
  su::Rng rng2(2);
  sc::BcpnnLayer resumed(config, *engine, rng2);
  sc::load_layer(path, resumed);

  // Continue noise-free training (noise would draw from the layers'
  // different RNGs; the deterministic path must match exactly).
  for (int step = 0; step < 4; ++step) {
    original.train_batch(x, 0.0f);
    resumed.train_batch(x, 0.0f);
  }
  st::MatrixF a_original;
  st::MatrixF a_resumed;
  original.forward(x, a_original);
  resumed.forward(x, a_resumed);
  for (std::size_t i = 0; i < a_original.size(); ++i) {
    EXPECT_EQ(a_original.data()[i], a_resumed.data()[i]);
  }
  fs::remove(path);
}

TEST(Serialization, HeadTypeMismatchRejected) {
  auto trained = trained_network(sc::HeadType::kBcpnn);
  const std::string path = "/tmp/streambrain_headmismatch.ckpt";
  sc::save_network(path, *trained);

  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = sc::HeadType::kSgd;  // wrong head type
  sc::Network restored(config);
  EXPECT_THROW(sc::load_network(path, restored), std::runtime_error);
  fs::remove(path);
}

// --- Full Model facade checkpoints -----------------------------------------

namespace {

struct LabeledSplit {
  st::MatrixF x;
  std::vector<int> y;
};

LabeledSplit encoded_labeled(std::size_t count, std::uint64_t seed) {
  sd::HiggsGeneratorOptions options;
  options.seed = seed;
  sd::SyntheticHiggsGenerator generator(options);
  const auto dataset = generator.generate(count);
  streambrain::encode::OneHotEncoder encoder(10);
  return {encoder.fit_transform(dataset.features), dataset.labels};
}

}  // namespace

class ModelCheckpoint : public ::testing::TestWithParam<sc::HeadType> {};

TEST_P(ModelCheckpoint, ShallowRoundTripIsExact) {
  const auto train = encoded_labeled(500, 21);
  const auto probe = encoded_labeled(150, 22);
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, GetParam())
      .set_option("epochs", 3)
      .set_option("batch_size", 32)
      .compile("simd", 42);
  model.fit(train.x, train.y);

  const std::string path = ::testing::TempDir() + "model_shallow.sbrn";
  model.save(path);

  sc::Model restored;
  restored.load(path);
  // Topology, options, and engine choice all round-trip...
  EXPECT_TRUE(restored.compiled());
  EXPECT_EQ(restored.engine_name(), "simd");
  EXPECT_EQ(restored.seed(), 42u);
  EXPECT_EQ(restored.head(), GetParam());
  EXPECT_EQ(restored.network().config().bcpnn.epochs, 3u);
  EXPECT_EQ(restored.network().config().bcpnn.batch_size, 32u);
  // ...and predictions reproduce bit-for-bit.
  EXPECT_EQ(restored.predict(probe.x), model.predict(probe.x));
  EXPECT_EQ(restored.predict_scores(probe.x), model.predict_scores(probe.x));
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(BothHeads, ModelCheckpoint,
                         ::testing::Values(sc::HeadType::kBcpnn,
                                           sc::HeadType::kSgd));

TEST(ModelCheckpointDeep, DeepRoundTripIsExact) {
  const auto train = encoded_labeled(500, 31);
  const auto probe = encoded_labeled(150, 32);
  sc::Model model;
  model.input(28, 10)
      .hidden(2, 20, 0.4)
      .hidden(1, 20, 1.0)
      .classifier(2)
      .set_option("epochs", 3)
      .compile("simd", 7);
  model.fit(train.x, train.y);

  const std::string path = ::testing::TempDir() + "model_deep.sbrn";
  model.save(path);

  sc::Model restored;
  restored.load(path);
  EXPECT_EQ(restored.deep().depth(), 2u);
  EXPECT_EQ(restored.predict(probe.x), model.predict(probe.x));
  EXPECT_EQ(restored.predict_scores(probe.x), model.predict_scores(probe.x));
  fs::remove(path);
}

TEST(ModelCheckpointGuards, LifecycleAndFormatErrors) {
  sc::Model blank;
  EXPECT_THROW(blank.save("/tmp/never.sbrn"), std::logic_error);  // un-compiled

  sc::Model compiled;
  compiled.input(28, 10).hidden(1, 10, 0.4).classifier(2).compile("naive", 1);
  EXPECT_THROW(compiled.load("/tmp/never.sbrn"), std::logic_error);  // compiled

  // A network-format file is not a model-format file: the topology
  // section is missing and load() must reject it.
  const auto train = encoded_labeled(200, 41);
  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  sc::Network network(config);
  const std::string path = ::testing::TempDir() + "network_not_model.ckpt";
  sc::save_network(path, network);
  sc::Model wrong;
  EXPECT_THROW(wrong.load(path), std::runtime_error);
  fs::remove(path);

  EXPECT_THROW(blank.load("/tmp/does_not_exist.sbrn"), std::runtime_error);
}

TEST(ModelCheckpointGuards, LoadIsAtomicAndRequiresABlankModel) {
  // Declared-but-uncompiled topology must be rejected, not merged with
  // the checkpoint's.
  const auto train = encoded_labeled(200, 51);
  sc::Model trained;
  trained.input(28, 10).hidden(1, 10, 0.4).classifier(2).compile("naive", 3);
  trained.fit(train.x, train.y);
  const std::string path = ::testing::TempDir() + "model_atomic.sbrn";
  trained.save(path);

  sc::Model declared;
  declared.input(28, 10).hidden(1, 30, 0.4);
  EXPECT_THROW(declared.load(path), std::logic_error);

  // A checkpoint truncated mid-weights must leave the target un-compiled
  // (and therefore loadable again), not compiled with random weights.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string truncated_path =
      ::testing::TempDir() + "model_truncated.sbrn";
  std::ofstream out(truncated_path, std::ios::binary);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() * 2 / 3));
  out.close();

  sc::Model target;
  EXPECT_THROW(target.load(truncated_path), std::runtime_error);
  EXPECT_FALSE(target.compiled());
  target.load(path);  // still usable after the failed attempt
  EXPECT_TRUE(target.compiled());
  fs::remove(path);
  fs::remove(truncated_path);
}

// --- Format version 2 (u64 float counts) ------------------------------------

namespace {

/// Down-convert a version-2 layer checkpoint to the version-1 wire
/// format: version field u32 2 -> 1, each float-array count u64 -> u32.
/// Keeps the backward-compat read path honest against real v1 bytes.
std::string downconvert_layer_file_to_v1(const std::string& bytes) {
  auto read_u64_at = [&](std::size_t pos) {
    std::uint64_t value = 0;
    std::memcpy(&value, bytes.data() + pos, sizeof(value));
    return value;
  };
  std::string v1;
  auto append_u32 = [&](std::uint32_t value) {
    v1.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };

  v1.append(bytes, 0, 4);  // magic
  append_u32(1);           // version
  std::size_t pos = 8;
  v1.append(bytes, pos, 20);  // section tag + 4 geometry fields
  pos += 20;
  for (int array = 0; array < 3; ++array) {  // pi, pj, pij
    const std::uint64_t count = read_u64_at(pos);
    pos += sizeof(std::uint64_t);
    append_u32(static_cast<std::uint32_t>(count));
    v1.append(bytes, pos, count * sizeof(float));
    pos += count * sizeof(float);
  }
  v1.append(bytes, pos, std::string::npos);  // masks
  return v1;
}

}  // namespace

TEST(SerializationVersioning, Version1FilesStillLoad) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  sc::BcpnnLayer trained(config, *engine, rng);
  const auto x = encoded_events(300, 5);
  for (int step = 0; step < 8; ++step) trained.train_batch(x, 1.0f);
  trained.plasticity_step();

  const std::string v2_path = ::testing::TempDir() + "layer_v2.ckpt";
  sc::save_layer(v2_path, trained);
  std::ifstream in(v2_path, std::ios::binary);
  const std::string v2_bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();

  // v2 files carry u64 float counts (8 bytes per array vs v1's 4).
  const std::string v1_bytes = downconvert_layer_file_to_v1(v2_bytes);
  EXPECT_EQ(v2_bytes.size(), v1_bytes.size() + 3 * 4);
  const std::string v1_path = ::testing::TempDir() + "layer_v1.ckpt";
  {
    std::ofstream out(v1_path, std::ios::binary);
    out.write(v1_bytes.data(), static_cast<std::streamsize>(v1_bytes.size()));
  }

  su::Rng rng2(99);
  sc::BcpnnLayer restored(config, *engine, rng2);
  sc::load_layer(v1_path, restored);
  EXPECT_EQ(restored.masks().all(), trained.masks().all());
  st::MatrixF a_trained;
  st::MatrixF a_restored;
  trained.forward(x, a_trained);
  restored.forward(x, a_restored);
  for (std::size_t i = 0; i < a_trained.size(); ++i) {
    ASSERT_EQ(a_trained.data()[i], a_restored.data()[i]);
  }
  fs::remove(v2_path);
  fs::remove(v1_path);
}

TEST(SerializationVersioning, UnknownFutureVersionRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  sc::BcpnnLayer layer(config, *engine, rng);
  const std::string path = ::testing::TempDir() + "layer_future.ckpt";
  sc::save_layer(path, layer);
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(4);
    const std::uint32_t version = 99;
    file.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  su::Rng rng2(8);
  sc::BcpnnLayer target(config, *engine, rng2);
  EXPECT_THROW(sc::load_layer(path, target), std::runtime_error);
  fs::remove(path);
}

TEST(SerializationVersioning, OverflowingU32CountFieldThrows) {
  // Counts that fit stay identity; counts >= 2^32 must throw instead of
  // silently truncating (and corrupting) the checkpoint.
  EXPECT_EQ(sc::detail::checked_u32(0, "test"), 0u);
  EXPECT_EQ(sc::detail::checked_u32(4096, "test"), 4096u);
  const std::size_t max32 = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(sc::detail::checked_u32(max32, "test"), max32);
  EXPECT_THROW(sc::detail::checked_u32(max32 + 1, "test"),
               std::runtime_error);
  EXPECT_THROW(sc::detail::checked_u32(std::size_t{1} << 40, "test"),
               std::runtime_error);
}

TEST(SerializationVersioning, InMemoryCloneIsBitIdentical) {
  // clone_model (the serve::ShardPool replica path) round-trips through
  // a stream instead of a file; the clone must predict bit-identically
  // and be fully independent of the original.
  const auto train = encoded_labeled(300, 11);
  sc::Model trained;
  trained.input(28, 10).hidden(1, 30, 0.4).classifier(2).compile("simd", 21);
  trained.fit(train.x, train.y);

  sc::Model clone = sc::clone_model(trained);
  EXPECT_TRUE(clone.compiled());
  EXPECT_EQ(clone.engine_name(), trained.engine_name());
  const auto test = encoded_labeled(120, 12);
  EXPECT_EQ(clone.predict(test.x), trained.predict(test.x));
  EXPECT_EQ(clone.predict_scores(test.x), trained.predict_scores(test.x));
}
