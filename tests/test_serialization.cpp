// Tests for model checkpointing: exact save/load round-trips, geometry
// validation, corruption handling.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;
namespace fs = std::filesystem;

namespace {

sc::BcpnnConfig layer_config() {
  sc::BcpnnConfig config;
  config.input_hypercolumns = sd::kHiggsFeatures;
  config.input_bins = 10;
  config.hcus = 2;
  config.mcus = 25;
  config.receptive_field = 0.4;
  config.epochs = 3;
  config.seed = 9;
  return config;
}

st::MatrixF encoded_events(std::size_t count, std::uint64_t seed) {
  sd::HiggsGeneratorOptions options;
  options.seed = seed;
  sd::SyntheticHiggsGenerator generator(options);
  const auto dataset = generator.generate(count);
  streambrain::encode::OneHotEncoder encoder(10);
  return encoder.fit_transform(dataset.features);
}

}  // namespace

TEST(Serialization, LayerRoundTripIsExact) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer trained(config, *engine, rng);
  const auto x = encoded_events(400, 3);
  for (int step = 0; step < 12; ++step) trained.train_batch(x, 1.0f);
  trained.plasticity_step();

  const std::string path = "/tmp/streambrain_layer.ckpt";
  sc::save_layer(path, trained);

  su::Rng rng2(999);  // different init — must be fully overwritten
  sc::BcpnnLayer restored(config, *engine, rng2);
  sc::load_layer(path, restored);

  // Identical masks and bitwise-identical activations.
  EXPECT_EQ(restored.masks().all(), trained.masks().all());
  st::MatrixF a_trained;
  st::MatrixF a_restored;
  trained.forward(x, a_trained);
  restored.forward(x, a_restored);
  for (std::size_t i = 0; i < a_trained.size(); ++i) {
    EXPECT_EQ(a_trained.data()[i], a_restored.data()[i]);
  }
  fs::remove(path);
}

TEST(Serialization, LayerGeometryMismatchRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer trained(config, *engine, rng);
  const std::string path = "/tmp/streambrain_layer2.ckpt";
  sc::save_layer(path, trained);

  auto other_config = config;
  other_config.mcus = 30;  // different geometry
  su::Rng rng2(2);
  sc::BcpnnLayer other(other_config, *engine, rng2);
  EXPECT_THROW(sc::load_layer(path, other), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, CorruptMagicRejected) {
  const std::string path = "/tmp/streambrain_corrupt.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACHECKPOINT";
  }
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  EXPECT_THROW(sc::load_layer(path, layer), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, TruncatedFileRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  const std::string path = "/tmp/streambrain_trunc.ckpt";
  sc::save_layer(path, layer);
  fs::resize_file(path, fs::file_size(path) / 2);
  su::Rng rng2(2);
  sc::BcpnnLayer target(config, *engine, rng2);
  EXPECT_THROW(sc::load_layer(path, target), std::runtime_error);
  fs::remove(path);
}

TEST(Serialization, MissingFileRejected) {
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);
  EXPECT_THROW(sc::load_layer("/no/such/file.ckpt", layer),
               std::runtime_error);
}

namespace {

/// Train a small network end to end; returns the trained network.
std::unique_ptr<sc::Network> trained_network(sc::HeadType head) {
  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = head;
  auto network = std::make_unique<sc::Network>(config);
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(600);
  streambrain::encode::OneHotEncoder encoder(10);
  const auto x = encoder.fit_transform(dataset.features);
  network->fit(x, dataset.labels);
  return network;
}

}  // namespace

class NetworkCheckpoint : public ::testing::TestWithParam<sc::HeadType> {};

TEST_P(NetworkCheckpoint, PredictionsSurviveRoundTrip) {
  const sc::HeadType head = GetParam();
  auto trained = trained_network(head);
  const auto x_test = encoded_events(200, 77);
  const auto scores_before = trained->predict_scores(x_test);

  const std::string path = "/tmp/streambrain_network.ckpt";
  sc::save_network(path, *trained);

  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = head;
  sc::Network restored(config);
  sc::load_network(path, restored);
  const auto scores_after = restored.predict_scores(x_test);
  ASSERT_EQ(scores_before.size(), scores_after.size());
  for (std::size_t i = 0; i < scores_before.size(); ++i) {
    EXPECT_EQ(scores_before[i], scores_after[i]);  // bitwise
  }
  fs::remove(path);
}

INSTANTIATE_TEST_SUITE_P(BothHeads, NetworkCheckpoint,
                         ::testing::Values(sc::HeadType::kBcpnn,
                                           sc::HeadType::kSgd));

TEST(Serialization, TrainingResumesFromCheckpoint) {
  // Save mid-training, restore into a fresh layer, continue training on
  // both — trajectories must stay identical when driven by the same data
  // (the checkpoint captures the full learned state).
  const auto config = layer_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(1);
  sc::BcpnnLayer original(config, *engine, rng);
  const auto x = encoded_events(300, 5);
  for (int step = 0; step < 6; ++step) original.train_batch(x, 0.0f);

  const std::string path = "/tmp/streambrain_resume.ckpt";
  sc::save_layer(path, original);
  su::Rng rng2(2);
  sc::BcpnnLayer resumed(config, *engine, rng2);
  sc::load_layer(path, resumed);

  // Continue noise-free training (noise would draw from the layers'
  // different RNGs; the deterministic path must match exactly).
  for (int step = 0; step < 4; ++step) {
    original.train_batch(x, 0.0f);
    resumed.train_batch(x, 0.0f);
  }
  st::MatrixF a_original;
  st::MatrixF a_resumed;
  original.forward(x, a_original);
  resumed.forward(x, a_resumed);
  for (std::size_t i = 0; i < a_original.size(); ++i) {
    EXPECT_EQ(a_original.data()[i], a_resumed.data()[i]);
  }
  fs::remove(path);
}

TEST(Serialization, HeadTypeMismatchRejected) {
  auto trained = trained_network(sc::HeadType::kBcpnn);
  const std::string path = "/tmp/streambrain_headmismatch.ckpt";
  sc::save_network(path, *trained);

  sc::NetworkConfig config;
  config.bcpnn = layer_config();
  config.head = sc::HeadType::kSgd;  // wrong head type
  sc::Network restored(config);
  EXPECT_THROW(sc::load_network(path, restored), std::runtime_error);
  fs::remove(path);
}
