// Property tests for the quantized inference subsystem: per-block
// symmetric int8 round-trip contracts (error <= scale / 2, exact
// idempotence of re-quantization), adopt() validation, activation
// quantization, and the qgemv / qgemm / qspmv kernels. The quantized
// kernels carry a STRONGER contract than the fp32 ones: the integer
// block sums are exact and the float combine is fmaf-pinned, so every
// dispatch tier is BIT-identical, not merely tolerance-close — asserted
// here across all tiers the host can run (via force_dispatch, mirroring
// test_sparse_property).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernel_set.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

/// Every tier this host can run, scalar first.
std::vector<const st::KernelSet*> all_tiers() {
  std::vector<const st::KernelSet*> tiers;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (const st::KernelSet* set = st::kernel_set_for(level)) {
      tiers.push_back(set);
    }
  }
  return tiers;
}

st::MatrixF random_matrix(std::size_t rows, std::size_t cols, su::Rng& rng,
                          double lo, double hi) {
  st::MatrixF m(rows, cols, 0.0f);
  for (float& v : m) v = static_cast<float>(rng.uniform(lo, hi));
  return m;
}

/// Dense matrix with each entry surviving with probability `density`.
st::MatrixF random_sparse_dense(std::size_t rows, std::size_t cols,
                                double density, su::Rng& rng) {
  st::MatrixF m(rows, cols, 0.0f);
  for (float& v : m) {
    if (rng.uniform(0.0, 1.0) < density) {
      const double mag = rng.uniform(0.1, 2.0);
      v = static_cast<float>(rng.uniform(0.0, 1.0) < 0.5 ? -mag : mag);
    }
  }
  return m;
}

/// Quantized activations for one batch row, as the drivers produce them.
struct QuantRow {
  std::vector<std::uint8_t> qx;
  float sx = 0.0f;
};

QuantRow quantize_row(const float* x, std::size_t n) {
  QuantRow row;
  row.qx.resize(n);
  row.sx = st::quantize_activation_row(x, n, row.qx.data());
  return row;
}

/// What the quantized kernels compute, written as the slowest possible
/// reference: exact integer block dots, fmaf combine in block order.
std::vector<float> quant_reference(const st::QuantBlockMatrix& a,
                                   const std::uint8_t* qx, float sx) {
  std::vector<float> y(a.rows());
  const std::size_t blocks = a.blocks_per_row();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float acc = 0.0f;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * a.block_size();
      const std::size_t end = std::min(begin + a.block_size(), a.cols());
      std::int32_t dot = 0;
      for (std::size_t j = begin; j < end; ++j) {
        dot += static_cast<std::int32_t>(a.codes()[i * a.cols() + j]) *
               static_cast<std::int32_t>(qx[j]);
      }
      acc = std::fmaf(a.scales()[i * blocks + b] * sx,
                      static_cast<float>(dot), acc);
    }
    y[i] = acc;
  }
  return y;
}

}  // namespace

TEST(QuantProperty, RoundTripErrorBoundedPerBlock) {
  for (const std::size_t block : {1UL, 3UL, 16UL, 32UL, 100UL}) {
    for (const auto& [rows, cols] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 0}, {1, 1}, {1, 17}, {16, 1}, {7, 33}, {40, 64}}) {
      su::Rng rng(rows * 131 + cols * 7 + block);
      const st::MatrixF dense = random_matrix(rows, cols, rng, -3.0, 3.0);
      const st::QuantBlockMatrix q =
          st::QuantBlockMatrix::from_dense(dense, block);
      EXPECT_EQ(q.rows(), rows);
      EXPECT_EQ(q.cols(), cols);
      EXPECT_EQ(q.block_size(), block);
      const st::MatrixF back = q.to_dense();
      const std::size_t blocks = q.blocks_per_row();
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
          const float scale = q.scales()[i * blocks + j / block];
          // Symmetric rounding: at most half a quantization step off
          // (plus one float ulp of the scale multiply).
          const float bound = 0.5f * scale + 1e-6f;
          ASSERT_NEAR(dense(i, j), back(i, j), bound)
              << "block=" << block << " i=" << i << " j=" << j;
        }
      }
      // The block max-magnitude element sits exactly at code +-127.
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t b = 0; b < blocks; ++b) {
          const std::size_t begin = b * block;
          const std::size_t end = std::min(begin + block, cols);
          std::int8_t extreme = 0;
          for (std::size_t j = begin; j < end; ++j) {
            const std::int8_t code = q.codes()[i * cols + j];
            extreme = std::max<std::int8_t>(
                extreme, static_cast<std::int8_t>(std::abs(code)));
          }
          ASSERT_EQ(extreme, 127) << "i=" << i << " b=" << b;
        }
      }
    }
  }
}

TEST(QuantProperty, RequantizationIsIdempotent) {
  // Dequantized values are exactly on the code grid, and
  // round-half-away-from-zero cannot move an on-grid value — so a second
  // quantization pass reproduces codes AND scales bit-for-bit.
  su::Rng rng(42);
  const st::MatrixF dense = random_matrix(19, 45, rng, -2.0, 2.0);
  const st::QuantBlockMatrix q = st::QuantBlockMatrix::from_dense(dense, 16);
  const st::QuantBlockMatrix q2 =
      st::QuantBlockMatrix::from_dense(q.to_dense(), 16);
  EXPECT_EQ(q.codes(), q2.codes());
  EXPECT_EQ(q.scales(), q2.scales());
}

TEST(QuantProperty, FromDenseTransposedMatchesTransposing) {
  su::Rng rng(7);
  const st::MatrixF dense = random_matrix(23, 11, rng, -1.0, 1.0);
  st::MatrixF transposed(11, 23, 0.0f);
  for (std::size_t r = 0; r < 23; ++r) {
    for (std::size_t c = 0; c < 11; ++c) transposed(c, r) = dense(r, c);
  }
  const st::QuantBlockMatrix a =
      st::QuantBlockMatrix::from_dense_transposed(dense, 8);
  const st::QuantBlockMatrix b = st::QuantBlockMatrix::from_dense(transposed, 8);
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.codes(), b.codes());
  EXPECT_EQ(a.scales(), b.scales());
}

TEST(QuantProperty, MemoryShrinksVersusFp32) {
  su::Rng rng(3);
  const st::MatrixF dense = random_matrix(64, 256, rng, -1.0, 1.0);
  const st::QuantBlockMatrix q = st::QuantBlockMatrix::from_dense(dense, 32);
  // int8 codes + one fp32 scale per 32 weights: ~3.6x below fp32.
  EXPECT_LT(q.memory_bytes(), dense.size() * sizeof(float) / 3);
}

TEST(QuantProperty, AdoptRejectsInvalidPayloads) {
  const std::vector<std::int8_t> codes(12, 5);
  const std::vector<float> scales(4, 0.5f);  // 2 rows x 2 blocks (bs=4, k=6)
  EXPECT_NO_THROW(st::QuantBlockMatrix::adopt(2, 6, 4, codes, scales));

  EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 6, 0, codes, scales),
               std::invalid_argument);  // block size 0
  EXPECT_THROW(
      st::QuantBlockMatrix::adopt(2, 6, st::kMaxQuantBlock + 1, codes, scales),
      std::invalid_argument);  // block size above the accumulator-safety cap
  EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 7, 4, codes, scales),
               std::invalid_argument);  // codes size mismatch
  EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 6, 4, codes, {0.5f, 0.5f}),
               std::invalid_argument);  // scales size mismatch
  {
    auto bad = codes;
    bad[3] = std::numeric_limits<std::int8_t>::min();  // -128: asymmetric
    EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 6, 4, bad, scales),
                 std::invalid_argument);
  }
  {
    auto bad = scales;
    bad[1] = -0.25f;
    EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 6, 4, codes, bad),
                 std::invalid_argument);
    bad[1] = std::numeric_limits<float>::quiet_NaN();
    EXPECT_THROW(st::QuantBlockMatrix::adopt(2, 6, 4, codes, bad),
                 std::invalid_argument);
  }
}

TEST(QuantProperty, QuantCsrAdoptValidatesIndexStructure) {
  // Valid 2x3: [[a, 0, b], [0, c, 0]].
  const std::vector<std::uint64_t> row_ptr = {0, 2, 3};
  const std::vector<std::uint32_t> col_idx = {0, 2, 1};
  const std::vector<std::int8_t> codes = {10, -20, 127};
  const std::vector<float> row_scales = {0.5f, 0.25f};
  EXPECT_NO_THROW(st::QuantCsr::adopt(2, 3, row_ptr, col_idx, codes,
                                      row_scales));

  EXPECT_THROW(st::QuantCsr::adopt(2, 3, {0, 3, 2}, col_idx, codes,
                                   row_scales),
               std::invalid_argument);  // decreasing row_ptr
  EXPECT_THROW(st::QuantCsr::adopt(2, 3, row_ptr, {0, 3, 1}, codes,
                                   row_scales),
               std::invalid_argument);  // column out of range
  EXPECT_THROW(st::QuantCsr::adopt(2, 3, row_ptr, {2, 0, 1}, codes,
                                   row_scales),
               std::invalid_argument);  // not ascending within row
  EXPECT_THROW(st::QuantCsr::adopt(2, 3, row_ptr, col_idx, codes, {0.5f}),
               std::invalid_argument);  // row_scales size mismatch
  EXPECT_THROW(
      st::QuantCsr::adopt(2, 3, row_ptr, col_idx,
                          {10, std::numeric_limits<std::int8_t>::min(), 1},
                          row_scales),
      std::invalid_argument);  // -128 code
}

TEST(QuantProperty, QuantCsrRoundTripPreservesStructure) {
  su::Rng rng(91);
  const st::MatrixF dense = random_sparse_dense(30, 50, 0.15, rng);
  const st::CsrMatrix csr = st::CsrMatrix::from_dense(dense);
  const st::QuantCsr q = st::QuantCsr::from_csr(csr);
  EXPECT_EQ(q.rows(), csr.rows());
  EXPECT_EQ(q.cols(), csr.cols());
  EXPECT_EQ(q.nnz(), csr.nnz());
  EXPECT_EQ(q.row_ptr(), csr.row_ptr());
  EXPECT_EQ(q.col_idx(), csr.col_idx());
  EXPECT_LT(q.memory_bytes(), csr.memory_bytes());

  const st::CsrMatrix back = q.to_csr();
  EXPECT_EQ(back.row_ptr(), csr.row_ptr());
  EXPECT_EQ(back.col_idx(), csr.col_idx());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    const float bound = 0.5f * q.row_scales()[i] + 1e-6f;
    for (std::uint64_t p = csr.row_ptr()[i]; p < csr.row_ptr()[i + 1]; ++p) {
      ASSERT_NEAR(csr.values()[p], back.values()[p], bound) << "entry " << p;
    }
  }
}

TEST(QuantProperty, ActivationQuantizationClampsAndScales) {
  // Max element -> code 127; negatives clamp to 0; zero row -> sx 0.
  const std::vector<float> x = {0.0f, 2.54f, -1.0f, 1.27f};
  std::vector<std::uint8_t> qx(x.size());
  const float sx = st::quantize_activation_row(x.data(), x.size(), qx.data());
  EXPECT_FLOAT_EQ(sx, 2.54f / 127.0f);
  EXPECT_EQ(qx[0], 0);
  EXPECT_EQ(qx[1], 127);
  EXPECT_EQ(qx[2], 0);  // negative clamps, never wraps
  EXPECT_EQ(qx[3], 64);  // round(63.5) away from zero

  const std::vector<float> zeros = {0.0f, -3.0f, 0.0f};
  std::vector<std::uint8_t> qz(zeros.size());
  EXPECT_EQ(st::quantize_activation_row(zeros.data(), zeros.size(), qz.data()),
            0.0f);
  EXPECT_EQ(qz, (std::vector<std::uint8_t>(3, 0)));
}

TEST(QuantProperty, QgemvMatchesExactReferenceBitwiseAllTiers) {
  for (const std::size_t block : {1UL, 16UL, 32UL, 100UL}) {
    for (const auto& [m, k] : std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {3, 7}, {17, 33}, {8, 64}, {40, 129}}) {
      su::Rng rng(m * 1009 + k * 13 + block);
      const st::MatrixF a = random_matrix(m, k, rng, -2.0, 2.0);
      const st::QuantBlockMatrix q = st::QuantBlockMatrix::from_dense(a, block);
      const st::MatrixF xm = random_matrix(1, k, rng, 0.0, 1.0);
      const QuantRow x = quantize_row(xm.row(0), k);
      const std::vector<float> y_ref = quant_reference(q, x.qx.data(), x.sx);
      for (const st::KernelSet* tier : all_tiers()) {
        std::vector<float> y(m, -777.0f);  // dirty: must be overwritten
        tier->qgemv(q.codes().data(), q.scales().data(), q.block_size(),
                    x.qx.data(), x.sx, y.data(), m, k);
        for (std::size_t i = 0; i < m; ++i) {
          // BIT-identical, not tolerance-close: integer block dots are
          // exact and the scale combine is fmaf in a pinned order.
          ASSERT_EQ(y_ref[i], y[i])
              << tier->name << " m=" << m << " k=" << k << " block=" << block
              << " row=" << i;
        }
      }
    }
  }
}

TEST(QuantProperty, QgemvApproximatesFp32Gemv) {
  // Sanity that the quantized result tracks the fp32 product it stands
  // in for: per-row error bounded by the summed scale steps.
  su::Rng rng(88);
  const std::size_t m = 24, k = 96;
  const st::MatrixF a = random_matrix(m, k, rng, -1.5, 1.5);
  const st::QuantBlockMatrix q = st::QuantBlockMatrix::from_dense(a, 32);
  const st::MatrixF xm = random_matrix(1, k, rng, 0.0, 1.0);
  const QuantRow x = quantize_row(xm.row(0), k);
  std::vector<float> y(m);
  st::qgemv(q, x.qx.data(), x.sx, y.data());
  for (std::size_t i = 0; i < m; ++i) {
    float exact = 0.0f;
    float bound = 1e-4f;
    for (std::size_t j = 0; j < k; ++j) {
      exact += a(i, j) * xm(0, j);
      // Each term can be off by half a weight step times x plus half an
      // activation step times w (first-order error model).
      const float w_step = q.scales()[i * q.blocks_per_row() + j / 32];
      bound += 0.5f * w_step * xm(0, j) + 0.5f * x.sx * std::abs(a(i, j)) +
               0.25f * w_step * x.sx;
    }
    ASSERT_NEAR(exact, y[i], bound) << "row " << i;
  }
}

TEST(QuantProperty, QgemmMatchesPerRowQgemvBitwise) {
  su::Rng rng(17);
  const std::size_t m = 19, k = 51, batch = 9;
  const st::MatrixF a = random_matrix(m, k, rng, -2.0, 2.0);
  const st::QuantBlockMatrix q = st::QuantBlockMatrix::from_dense(a, 16);
  const st::MatrixF x = random_matrix(batch, k, rng, 0.0, 1.0);
  std::vector<std::uint8_t> qb(batch * k);
  std::vector<float> sb(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    sb[r] = st::quantize_activation_row(x.row(r), k, qb.data() + r * k);
  }
  for (const st::KernelSet* tier : all_tiers()) {
    st::MatrixF s(batch, m, -1.0f);
    tier->qgemm(q.codes().data(), q.scales().data(), q.block_size(), qb.data(),
                k, sb.data(), batch, s.data(), m, m, k);
    for (std::size_t r = 0; r < batch; ++r) {
      std::vector<float> y(m);
      tier->qgemv(q.codes().data(), q.scales().data(), q.block_size(),
                  qb.data() + r * k, sb[r], y.data(), m, k);
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_EQ(y[i], s(r, i)) << tier->name << " r=" << r << " i=" << i;
      }
    }
  }
}

TEST(QuantProperty, QspmvBitIdenticalAcrossTiersAndHandlesRaggedRows) {
  // Shape stressing the row extremes: empty rows, a full row, a
  // singleton — plus the cross-tier bitwise contract (the qspmv body is
  // shared across tiers on purpose; this pins that it stays so).
  const std::size_t k = 37;
  st::MatrixF a(5, k, 0.0f);
  for (std::size_t j = 0; j < k; ++j) {
    a(1, j) = 0.05f * static_cast<float>(j + 1) - 1.0f;
  }
  a(3, 17) = -2.5f;
  const st::QuantCsr q = st::QuantCsr::from_csr(st::CsrMatrix::from_dense(a));
  st::MatrixF xm(1, k, 0.0f);
  for (std::size_t j = 0; j < k; ++j) {
    xm(0, j) = 0.1f * static_cast<float>(j % 11);
  }
  const QuantRow x = quantize_row(xm.row(0), k);

  std::vector<float> y_scalar;
  for (const st::KernelSet* tier : all_tiers()) {
    std::vector<float> y(5, 99.0f);
    tier->qspmv(q.codes().data(), q.row_scales().data(), q.col_idx().data(),
                q.row_ptr().data(), 5, x.qx.data(), x.sx, y.data());
    EXPECT_EQ(y[0], 0.0f) << tier->name;  // empty row -> exact zero
    EXPECT_EQ(y[2], 0.0f) << tier->name;
    EXPECT_EQ(y[4], 0.0f) << tier->name;
    if (y_scalar.empty()) {
      y_scalar = y;
    } else {
      EXPECT_EQ(y, y_scalar) << tier->name;
    }
  }
  // The singleton row decodes exactly: code * row_scale * (qx * sx).
  const float w = static_cast<float>(q.codes()[q.row_ptr()[3]]) *
                  q.row_scales()[3];
  const float xq = static_cast<float>(x.qx[17]) * x.sx;
  EXPECT_NEAR(y_scalar[3], w * xq, 1e-5f);
}

TEST(QuantProperty, SupportDriversBitStableUnderEveryForcedTier) {
  // End-to-end through quant_support / quant_sparse_support (ThreadPool
  // fan-out) under force_dispatch: every tier must produce the SAME
  // bytes — the foundation of the quantized serving bit-stability.
  const st::DispatchLevel original = st::active_kernels().level;
  su::Rng rng(5005);
  const std::size_t batch = 67, n_in = 96, n_out = 33;
  const st::MatrixF w = random_sparse_dense(n_in, n_out, 0.2, rng);
  const st::QuantBlockMatrix wt =
      st::QuantBlockMatrix::from_dense_transposed(w, 32);
  const st::QuantCsr wt_sparse =
      st::QuantCsr::from_csr(st::CsrMatrix::from_dense_transposed(w));
  st::MatrixF x(batch, n_in, 0.0f);
  for (float& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));
  std::vector<float> bias(n_out);
  for (float& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));

  st::MatrixF dense_ref, sparse_ref;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (st::kernel_set_for(level) == nullptr) continue;
    st::force_dispatch(level);
    st::MatrixF s_dense, s_sparse;
    st::quant_support(wt, x, bias.data(), s_dense);
    st::quant_sparse_support(wt_sparse, x, bias.data(), s_sparse);
    ASSERT_EQ(s_dense.rows(), batch);
    ASSERT_EQ(s_dense.cols(), n_out);
    if (dense_ref.size() == 0) {
      dense_ref = s_dense;
      sparse_ref = s_sparse;
      continue;
    }
    for (std::size_t i = 0; i < dense_ref.size(); ++i) {
      ASSERT_EQ(dense_ref.data()[i], s_dense.data()[i])
          << st::dispatch_level_name(level) << " elem=" << i;
      ASSERT_EQ(sparse_ref.data()[i], s_sparse.data()[i])
          << st::dispatch_level_name(level) << " elem=" << i;
    }
  }
  st::force_dispatch(original);
}

TEST(QuantProperty, SupportDriversHandleEmptyBatchAndRejectMismatch) {
  su::Rng rng(2);
  const st::MatrixF w = random_matrix(12, 6, rng, -1.0, 1.0);
  const st::QuantBlockMatrix wt =
      st::QuantBlockMatrix::from_dense_transposed(w, 8);
  const std::vector<float> bias(6, 0.0f);

  st::MatrixF empty(0, 12, 0.0f);
  st::MatrixF s(3, 3, 9.0f);
  st::quant_support(wt, empty, bias.data(), s);
  EXPECT_EQ(s.rows(), 0u);
  EXPECT_EQ(s.cols(), 6u);

  st::MatrixF wrong(2, 13, 0.5f);  // 13 != wt.cols()
  EXPECT_THROW(st::quant_support(wt, wrong, bias.data(), s),
               std::invalid_argument);
  const st::QuantCsr wt_sparse =
      st::QuantCsr::from_csr(st::CsrMatrix::from_dense_transposed(w));
  EXPECT_THROW(st::quant_sparse_support(wt_sparse, wrong, bias.data(), s),
               std::invalid_argument);
}
