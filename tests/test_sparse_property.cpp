// Property tests for the sparse inference subsystem: CsrMatrix
// compression round-trips, and the spmv/spmm kernels against the dense
// reference within 1e-5 across densities {0, 0.01, 0.1, 0.5, 1.0},
// ragged/empty rows, dirty or read-aliased buffers, and every dispatch
// tier the host can run (via force_dispatch, mirroring
// test_kernels_property). The scalar tier carries a stronger contract:
// bit-identity with the dense kernels on the same zero-masked matrix for
// non-negative inputs — the foundation of the sparse serving
// equivalence guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/cpu_features.hpp"
#include "tensor/csr.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernel_set.hpp"
#include "tensor/kernels.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

constexpr float kRelTol = 1e-5f;
constexpr float kAbsTol = 1e-6f;

/// Cancellation-aware comparison (see test_kernels_property): the
/// rounding error of a reordered reduction scales with the magnitude of
/// the accumulated terms, not the possibly-tiny result.
::testing::AssertionResult near_reduced(float reference, float actual,
                                        float mag) {
  const float bound = kAbsTol + kRelTol * (std::abs(reference) + mag);
  if (std::abs(reference - actual) <= bound) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "reference=" << reference << " actual=" << actual
         << " |diff|=" << std::abs(reference - actual) << " > " << bound
         << " (mag=" << mag << ")";
}

const std::vector<double>& probe_densities() {
  static const std::vector<double> densities = {0.0, 0.01, 0.1, 0.5, 1.0};
  return densities;
}

/// Every tier this host can run, scalar first.
std::vector<const st::KernelSet*> all_tiers() {
  std::vector<const st::KernelSet*> tiers;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (const st::KernelSet* set = st::kernel_set_for(level)) {
      tiers.push_back(set);
    }
  }
  return tiers;
}

/// Random dense matrix where each entry survives with probability
/// `density` (0 = all-zero, 1 = fully dense). Surviving values avoid 0
/// so density is exact.
st::MatrixF random_sparse_dense(std::size_t rows, std::size_t cols,
                                double density, su::Rng& rng) {
  st::MatrixF m(rows, cols, 0.0f);
  for (float& v : m) {
    if (rng.uniform(0.0, 1.0) < density) {
      const double mag = rng.uniform(0.1, 2.0);
      v = static_cast<float>(rng.uniform(0.0, 1.0) < 0.5 ? -mag : mag);
    }
  }
  return m;
}

std::vector<float> random_vector(std::size_t n, su::Rng& rng, float lo,
                                 float hi) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Dense reference for y = A x in strict ascending-column order — the
/// same accumulation sequence the scalar spmv performs (zero terms are
/// exact no-ops for x >= 0).
std::vector<float> dense_reference_spmv(const st::MatrixF& a,
                                        const std::vector<float>& x) {
  std::vector<float> y(a.rows(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float acc = 0.0f;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * x[j];
    y[i] = acc;
  }
  return y;
}

}  // namespace

TEST(SparseProperty, CsrRoundTripsAcrossDensities) {
  for (const double density : probe_densities()) {
    for (const auto& [rows, cols] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {0, 0}, {1, 1}, {1, 17}, {16, 1}, {7, 33}, {40, 64}}) {
      su::Rng rng(rows * 100 + cols + static_cast<std::uint64_t>(density * 97));
      const st::MatrixF dense = random_sparse_dense(rows, cols, density, rng);
      const st::CsrMatrix csr = st::CsrMatrix::from_dense(dense);
      EXPECT_EQ(csr.rows(), rows);
      EXPECT_EQ(csr.cols(), cols);
      std::size_t expected_nnz = 0;
      for (const float v : dense) expected_nnz += v != 0.0f;
      EXPECT_EQ(csr.nnz(), expected_nnz);
      // Round trip is exact: compression only drops exact zeros.
      EXPECT_EQ(csr.to_dense(), dense) << "rows=" << rows << " cols=" << cols
                                       << " density=" << density;

      // Transposed construction == transposing then compressing.
      const st::CsrMatrix csr_t = st::CsrMatrix::from_dense_transposed(dense);
      EXPECT_EQ(csr_t.rows(), cols);
      EXPECT_EQ(csr_t.cols(), rows);
      const st::MatrixF back = csr_t.to_dense();
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          ASSERT_EQ(back(c, r), dense(r, c));
        }
      }
    }
  }
}

TEST(SparseProperty, CsrColumnIndicesAscendAndMemoryShrinks) {
  su::Rng rng(1234);
  const st::MatrixF dense = random_sparse_dense(64, 96, 0.1, rng);
  const st::CsrMatrix csr = st::CsrMatrix::from_dense(dense);
  for (std::size_t i = 0; i < csr.rows(); ++i) {
    for (std::uint64_t p = csr.row_ptr()[i] + 1; p < csr.row_ptr()[i + 1];
         ++p) {
      ASSERT_LT(csr.col_idx()[p - 1], csr.col_idx()[p]);
    }
  }
  EXPECT_NEAR(csr.density(), 0.1, 0.03);
  EXPECT_LT(csr.memory_bytes(), dense.size() * sizeof(float));
}

TEST(SparseProperty, CsrAdoptRejectsInvalidStructure) {
  // A valid 2x3 CSR to perturb: [[1, 0, 2], [0, 3, 0]].
  const std::vector<std::uint64_t> row_ptr = {0, 2, 3};
  const std::vector<std::uint32_t> col_idx = {0, 2, 1};
  const std::vector<float> values = {1.0f, 2.0f, 3.0f};
  EXPECT_NO_THROW(st::CsrMatrix::adopt(2, 3, row_ptr, col_idx, values));

  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, {0, 2}, col_idx, values),
               std::invalid_argument);  // row_ptr too short
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, {1, 2, 3}, col_idx, values),
               std::invalid_argument);  // does not start at 0
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, {0, 2, 4}, col_idx, values),
               std::invalid_argument);  // end != nnz
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, {0, 3, 2}, col_idx, values),
               std::invalid_argument);  // decreasing
  // Huge middle entry: must be rejected by the row_ptr validation pass,
  // never used to index col_idx (the fuzz suite found exactly this as a
  // heap overflow when validation was interleaved with access).
  EXPECT_THROW(
      st::CsrMatrix::adopt(2, 3, {0, ~std::uint64_t{0} / 2, 3}, col_idx,
                           values),
      std::invalid_argument);
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, row_ptr, {0, 3, 1}, values),
               std::invalid_argument);  // column out of range
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, row_ptr, {2, 0, 1}, values),
               std::invalid_argument);  // not ascending within row
  EXPECT_THROW(st::CsrMatrix::adopt(2, 3, row_ptr, {0, 2}, values),
               std::invalid_argument);  // col_idx/values mismatch
}

TEST(SparseProperty, SpmvMatchesDenseReferenceAllTiersAllDensities) {
  for (const st::KernelSet* tier : all_tiers()) {
    for (const double density : probe_densities()) {
      for (const auto& [m, k] : std::vector<std::pair<std::size_t, std::size_t>>{
               {0, 5}, {1, 1}, {3, 7}, {17, 33}, {40, 129}}) {
        su::Rng rng(m * 1000 + k * 7 +
                    static_cast<std::uint64_t>(density * 1000));
        const st::MatrixF a = random_sparse_dense(m, k, density, rng);
        const st::CsrMatrix csr = st::CsrMatrix::from_dense(a);
        const auto x = random_vector(k, rng, -2.0f, 2.0f);
        const auto y_ref = dense_reference_spmv(a, x);
        // Dirty output buffer: spmv must fully overwrite.
        std::vector<float> y(m, -777.0f);
        tier->spmv(csr.values().data(), csr.col_idx().data(),
                   csr.row_ptr().data(), m, x.data(), y.data());
        for (std::size_t i = 0; i < m; ++i) {
          float mag = 0.0f;
          for (std::size_t j = 0; j < k; ++j) mag += std::abs(a(i, j) * x[j]);
          ASSERT_TRUE(near_reduced(y_ref[i], y[i], mag))
              << tier->name << " m=" << m << " k=" << k
              << " density=" << density << " row=" << i;
        }
      }
    }
  }
}

TEST(SparseProperty, SpmvHandlesRaggedEmptyAndFullRows) {
  // Hand-built shape stressing the row extremes: empty rows at the
  // start, middle and end, one full row, one singleton.
  const std::size_t k = 21;
  st::MatrixF a(5, k, 0.0f);
  for (std::size_t j = 0; j < k; ++j) a(1, j) = 0.5f + static_cast<float>(j);
  a(3, 17) = -2.5f;
  const st::CsrMatrix csr = st::CsrMatrix::from_dense(a);
  EXPECT_EQ(csr.nnz(), k + 1);
  std::vector<float> x(k);
  for (std::size_t j = 0; j < k; ++j) x[j] = 0.1f * static_cast<float>(j + 1);
  for (const st::KernelSet* tier : all_tiers()) {
    std::vector<float> y(5, 99.0f);
    tier->spmv(csr.values().data(), csr.col_idx().data(),
               csr.row_ptr().data(), 5, x.data(), y.data());
    EXPECT_EQ(y[0], 0.0f) << tier->name;  // empty row -> exact zero
    EXPECT_EQ(y[2], 0.0f) << tier->name;
    EXPECT_EQ(y[4], 0.0f) << tier->name;
    EXPECT_EQ(y[3], -2.5f * x[17]) << tier->name;  // singleton row
    const auto y_ref = dense_reference_spmv(a, x);
    float mag = 0.0f;
    for (std::size_t j = 0; j < k; ++j) mag += std::abs(a(1, j) * x[j]);
    EXPECT_TRUE(near_reduced(y_ref[1], y[1], mag)) << tier->name;
  }
}

TEST(SparseProperty, SpmvReadAliasedInputsMatch) {
  // x aliasing the values array is legal (both are read-only): build a
  // square matrix whose values array length equals its column count and
  // feed the values back in as x.
  su::Rng rng(555);
  const std::size_t n = 24;
  st::MatrixF a(n, n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, (i * 7) % n) = static_cast<float>(rng.uniform(0.5, 1.5));
  }
  const st::CsrMatrix csr = st::CsrMatrix::from_dense(a);
  ASSERT_EQ(csr.nnz(), n);
  std::vector<float> expected(n);
  {
    std::vector<float> x(csr.values());
    st::spmv(csr, x.data(), expected.data());
  }
  for (const st::KernelSet* tier : all_tiers()) {
    std::vector<float> y(n, -1.0f);
    tier->spmv(csr.values().data(), csr.col_idx().data(),
               csr.row_ptr().data(), n, csr.values().data(), y.data());
    for (std::size_t i = 0; i < n; ++i) {
      float mag = 0.0f;
      for (std::size_t j = 0; j < n; ++j) {
        mag += std::abs(a(i, j) * csr.values()[j]);
      }
      ASSERT_TRUE(near_reduced(expected[i], y[i], mag))
          << tier->name << " row=" << i;
    }
  }
}

TEST(SparseProperty, SpmmMatchesDenseGemmAllTiersAllDensities) {
  for (const st::KernelSet* tier : all_tiers()) {
    for (const double density : probe_densities()) {
      for (const auto& [batch, n_in, n_out] :
           std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
               {0, 9, 4}, {1, 1, 1}, {5, 33, 17}, {64, 80, 48}}) {
        su::Rng rng(batch * 31 + n_in * 7 + n_out +
                    static_cast<std::uint64_t>(density * 500));
        // W [n_in x n_out] sparse, X [batch x n_in] dense non-negative
        // (the serving case: activations are probabilities).
        const st::MatrixF w = random_sparse_dense(n_in, n_out, density, rng);
        const st::CsrMatrix wt = st::CsrMatrix::from_dense_transposed(w);
        st::MatrixF x(batch, n_in, 0.0f);
        for (float& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));

        st::MatrixF s_ref(batch, n_out, 0.0f);
        st::gemm_naive(st::Transpose::kNo, st::Transpose::kNo, 1.0f, x, w,
                       0.0f, s_ref);
        st::MatrixF s(batch, n_out, -5.0f);  // dirty: must be overwritten
        tier->spmm(wt.values().data(), wt.col_idx().data(),
                   wt.row_ptr().data(), wt.rows(), x.data(), n_in, batch,
                   s.data(), n_out);
        for (std::size_t r = 0; r < batch; ++r) {
          for (std::size_t c = 0; c < n_out; ++c) {
            float mag = 0.0f;
            for (std::size_t j = 0; j < n_in; ++j) {
              mag += std::abs(x(r, j) * w(j, c));
            }
            ASSERT_TRUE(near_reduced(s_ref(r, c), s(r, c), mag))
                << tier->name << " batch=" << batch << " n_in=" << n_in
                << " n_out=" << n_out << " density=" << density;
          }
        }
      }
    }
  }
}

TEST(SparseProperty, ScalarTierSpmmBitIdenticalToDenseGemmForNonNegativeX) {
  // The serving contract: at scalar dispatch, the sparse path on a
  // zero-masked matrix is BITWISE the dense path — including through the
  // public blocked drivers (sparse_support vs gemm + add_row_bias).
  const st::DispatchLevel original = st::active_kernels().level;
  st::force_dispatch(st::DispatchLevel::kScalar);
  for (const double density : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    su::Rng rng(static_cast<std::uint64_t>(density * 1000) + 11);
    const std::size_t batch = 40, n_in = 70, n_out = 36;
    const st::MatrixF w = random_sparse_dense(n_in, n_out, density, rng);
    const st::CsrMatrix wt = st::CsrMatrix::from_dense_transposed(w);
    st::MatrixF x(batch, n_in, 0.0f);
    for (float& v : x) v = static_cast<float>(rng.uniform(0.0, 1.0));
    const auto bias = random_vector(n_out, rng, -1.0f, 1.0f);

    st::MatrixF s_dense(batch, n_out, 0.0f);
    st::gemm(st::Transpose::kNo, st::Transpose::kNo, 1.0f, x, w, 0.0f,
             s_dense);
    st::add_row_bias(s_dense, bias.data());

    st::MatrixF s_sparse;
    st::sparse_support(wt, x, bias.data(), s_sparse);
    ASSERT_EQ(s_sparse.rows(), batch);
    ASSERT_EQ(s_sparse.cols(), n_out);
    for (std::size_t i = 0; i < s_dense.size(); ++i) {
      ASSERT_EQ(s_dense.data()[i], s_sparse.data()[i])
          << "density=" << density << " elem=" << i;
    }
  }
  st::force_dispatch(original);
}

TEST(SparseProperty, BlockedSpmmDriverMatchesUnderEveryForcedTier) {
  // End-to-end through spmm_bt (ThreadPool fan-out) under force_dispatch,
  // mirroring DispatchedGemmMatchesNaiveUnderEveryTier.
  const st::DispatchLevel original = st::active_kernels().level;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (st::kernel_set_for(level) == nullptr) continue;
    st::force_dispatch(level);
    su::Rng rng(static_cast<std::uint64_t>(level) * 101 + 3);
    const std::size_t batch = 130, n_in = 96, n_out = 50;
    const st::MatrixF w = random_sparse_dense(n_in, n_out, 0.15, rng);
    const st::CsrMatrix wt = st::CsrMatrix::from_dense_transposed(w);
    st::MatrixF x(batch, n_in, 0.0f);
    for (float& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    st::MatrixF s_ref(batch, n_out, 0.0f);
    st::gemm_naive(st::Transpose::kNo, st::Transpose::kNo, 1.0f, x, w, 0.0f,
                   s_ref);
    st::MatrixF s;
    st::spmm_bt(wt, x, s);
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t c = 0; c < n_out; ++c) {
        float mag = 0.0f;
        for (std::size_t j = 0; j < n_in; ++j) {
          mag += std::abs(x(r, j) * w(j, c));
        }
        ASSERT_TRUE(near_reduced(s_ref(r, c), s(r, c), mag))
            << st::dispatch_level_name(level) << " r=" << r << " c=" << c;
      }
    }
  }
  st::force_dispatch(original);
}

TEST(SparseProperty, SpmmBtRejectsDimensionMismatch) {
  su::Rng rng(9);
  const st::CsrMatrix wt =
      st::CsrMatrix::from_dense(random_sparse_dense(4, 8, 0.5, rng));
  st::MatrixF x(3, 9, 1.0f);  // 9 != wt.cols()
  st::MatrixF s;
  EXPECT_THROW(st::spmm_bt(wt, x, s), std::invalid_argument);
}
