// Tests for src/data: Dataset operations, the synthetic Higgs generator
// (feature semantics + class-conditional properties), csv round-trip,
// and the digit generator.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.hpp"
#include "data/digits.hpp"
#include "data/higgs.hpp"
#include "util/stats.hpp"

namespace sd = streambrain::data;
namespace su = streambrain::util;

// ------------------------------------------------------------- Dataset ----

namespace {

sd::Dataset tiny_dataset() {
  sd::Dataset dataset;
  dataset.features = streambrain::tensor::MatrixF(6, 2);
  for (std::size_t r = 0; r < 6; ++r) {
    dataset.features(r, 0) = static_cast<float>(r);
    dataset.features(r, 1) = static_cast<float>(10 * r);
  }
  dataset.labels = {0, 1, 0, 1, 0, 1};
  return dataset;
}

}  // namespace

TEST(Dataset, BasicAccessors) {
  const auto dataset = tiny_dataset();
  EXPECT_EQ(dataset.size(), 6u);
  EXPECT_EQ(dataset.dim(), 2u);
  EXPECT_EQ(dataset.num_classes(), 2u);
  const auto counts = dataset.class_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(Dataset, SelectPreservesRowContent) {
  const auto dataset = tiny_dataset();
  const auto selected = dataset.select({4, 1});
  EXPECT_EQ(selected.size(), 2u);
  EXPECT_FLOAT_EQ(selected.features(0, 1), 40.0f);
  EXPECT_EQ(selected.labels[0], 0);
  EXPECT_FLOAT_EQ(selected.features(1, 0), 1.0f);
  EXPECT_EQ(selected.labels[1], 1);
}

TEST(Dataset, SelectRejectsOutOfRange) {
  const auto dataset = tiny_dataset();
  EXPECT_THROW(dataset.select({6}), std::out_of_range);
}

TEST(Dataset, ShuffleKeepsRowLabelPairsTogether) {
  auto dataset = tiny_dataset();
  su::Rng rng(5);
  sd::shuffle(dataset, rng);
  EXPECT_EQ(dataset.size(), 6u);
  // Row content determines its label in the fixture: even feature -> 0.
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const int expected =
        static_cast<int>(dataset.features(r, 0)) % 2 == 0 ? 0 : 1;
    EXPECT_EQ(dataset.labels[r], expected);
  }
}

TEST(Dataset, SplitFractions) {
  const auto dataset = tiny_dataset();
  const auto [train, test] = sd::split(dataset, 2.0 / 3.0);
  EXPECT_EQ(train.size(), 4u);
  EXPECT_EQ(test.size(), 2u);
  EXPECT_FLOAT_EQ(test.features(0, 0), 4.0f);
  EXPECT_THROW(sd::split(dataset, 1.5), std::invalid_argument);
}

TEST(Dataset, BalancedSubsetExactCounts) {
  sd::HiggsGeneratorOptions options;
  options.signal_fraction = 0.7;  // imbalanced source
  sd::SyntheticHiggsGenerator generator(options);
  auto dataset = generator.generate(4000);
  su::Rng rng(9);
  const auto balanced = sd::balanced_subset(dataset, 500, rng);
  EXPECT_EQ(balanced.size(), 1000u);
  const auto counts = balanced.class_counts();
  EXPECT_EQ(counts[0], 500u);
  EXPECT_EQ(counts[1], 500u);
}

TEST(Dataset, BalancedSubsetThrowsWhenInsufficient) {
  auto dataset = tiny_dataset();
  su::Rng rng(1);
  EXPECT_THROW(sd::balanced_subset(dataset, 4, rng), std::invalid_argument);
}

TEST(Dataset, OneHotLabels) {
  const auto onehot = sd::one_hot_labels({0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(onehot(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(onehot(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(onehot(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(onehot(2, 1), 1.0f);
  EXPECT_THROW(sd::one_hot_labels({2}, 2), std::out_of_range);
}

// ------------------------------------------------------ Higgs generator ----

TEST(HiggsGenerator, FeatureCountAndNames) {
  EXPECT_EQ(sd::kHiggsFeatures, 28u);
  EXPECT_EQ(sd::higgs_feature_names().size(), 28u);
  EXPECT_EQ(sd::higgs_feature_names()[0], "lepton_pT");
  EXPECT_EQ(sd::higgs_feature_names()[25], "m_bb");
}

TEST(HiggsGenerator, DeterministicForSeed) {
  sd::HiggsGeneratorOptions options;
  options.seed = 77;
  sd::SyntheticHiggsGenerator a(options);
  sd::SyntheticHiggsGenerator b(options);
  const auto da = a.generate(50);
  const auto db = b.generate(50);
  EXPECT_EQ(da.labels, db.labels);
  EXPECT_TRUE(da.features == db.features);
}

TEST(HiggsGenerator, SignalFractionRespected) {
  sd::HiggsGeneratorOptions options;
  options.signal_fraction = 0.5;
  sd::SyntheticHiggsGenerator generator(options);
  const auto dataset = generator.generate(20000);
  const auto counts = dataset.class_counts();
  EXPECT_NEAR(static_cast<double>(counts[1]) / 20000.0, 0.5, 0.02);
}

TEST(HiggsGenerator, PhiAnglesAreWrapped) {
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(2000);
  // phi columns: lepton_phi=2, met_phi=4, jet phis = 7, 11, 15, 19.
  for (std::size_t phi_col : {2u, 4u, 7u, 11u, 15u, 19u}) {
    for (std::size_t r = 0; r < dataset.size(); ++r) {
      EXPECT_GE(dataset.features(r, phi_col), -static_cast<float>(M_PI));
      EXPECT_LE(dataset.features(r, phi_col), static_cast<float>(M_PI));
    }
  }
}

TEST(HiggsGenerator, MomentaAndMassesAreNonNegative) {
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(2000);
  // pT columns and all 7 high-level masses must be >= 0.
  for (std::size_t col : {0u, 3u, 5u, 9u, 13u, 17u, 21u, 22u, 23u, 24u, 25u,
                          26u, 27u}) {
    for (std::size_t r = 0; r < dataset.size(); ++r) {
      EXPECT_GE(dataset.features(r, col), 0.0f)
          << "col=" << col << " row=" << r;
    }
  }
}

TEST(HiggsGenerator, SignalHasHiggsLikeMbbPeak) {
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(20000);
  // m_bb (col 25): signal should be concentrated near 1.0 with smaller
  // spread than the combinatorial background.
  std::vector<double> mbb_signal;
  std::vector<double> mbb_background;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    (dataset.labels[r] == 1 ? mbb_signal : mbb_background)
        .push_back(dataset.features(r, 25));
  }
  EXPECT_LT(su::stddev(mbb_signal), su::stddev(mbb_background));
}

TEST(HiggsGenerator, SignalLeptonsAreHarder) {
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(20000);
  double signal_pt = 0.0;
  double background_pt = 0.0;
  std::size_t ns = 0;
  std::size_t nb = 0;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    if (dataset.labels[r] == 1) {
      signal_pt += dataset.features(r, 0);
      ++ns;
    } else {
      background_pt += dataset.features(r, 0);
      ++nb;
    }
  }
  EXPECT_GT(signal_pt / ns, background_pt / nb);
}

TEST(HiggsGenerator, SeparationZeroRemovesClassSignal) {
  sd::HiggsGeneratorOptions options;
  options.separation = 0.0;
  sd::SyntheticHiggsGenerator generator(options);
  const auto dataset = generator.generate(20000);
  // With zero separation the lepton pT distributions should coincide.
  su::RunningStat signal;
  su::RunningStat background;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    (dataset.labels[r] == 1 ? signal : background)
        .add(dataset.features(r, 0));
  }
  EXPECT_NEAR(signal.mean(), background.mean(), 0.05);
}

TEST(HiggsGenerator, HighLevelFeaturesAreInvariantMassConsistent) {
  // m_jj must equal the invariant-mass formula applied to jets 1 and 2.
  sd::SyntheticHiggsGenerator generator;
  const auto dataset = generator.generate(200);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const float pt1 = dataset.features(r, 5);
    const float eta1 = dataset.features(r, 6);
    const float phi1 = dataset.features(r, 7);
    const float pt2 = dataset.features(r, 9);
    const float eta2 = dataset.features(r, 10);
    const float phi2 = dataset.features(r, 11);
    const double expected = std::sqrt(std::max(
        0.0, 2.0 * pt1 * pt2 *
                 (std::cosh(static_cast<double>(eta1) - eta2) -
                  std::cos(static_cast<double>(phi1) - phi2))));
    EXPECT_NEAR(dataset.features(r, 21), expected, 1e-3 * (1.0 + expected));
  }
}

// ----------------------------------------------------------- CSV loader ----

TEST(HiggsCsv, RoundTripThroughFile) {
  sd::SyntheticHiggsGenerator generator;
  const auto original = generator.generate(20);
  const std::string path = "/tmp/streambrain_test_higgs.csv";
  {
    std::ofstream out(path);
    for (std::size_t r = 0; r < original.size(); ++r) {
      out << original.labels[r];
      for (std::size_t c = 0; c < original.dim(); ++c) {
        out << ',' << original.features(r, c);
      }
      out << '\n';
    }
  }
  const auto loaded = sd::load_higgs_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.labels, original.labels);
  for (std::size_t r = 0; r < loaded.size(); ++r) {
    for (std::size_t c = 0; c < loaded.dim(); ++c) {
      EXPECT_NEAR(loaded.features(r, c), original.features(r, c),
                  1e-4f * (1.0f + std::abs(original.features(r, c))));
    }
  }
  std::filesystem::remove(path);
}

TEST(HiggsCsv, MaxRowsLimitsLoad) {
  const std::string path = "/tmp/streambrain_test_higgs2.csv";
  {
    sd::SyntheticHiggsGenerator generator;
    const auto data = generator.generate(10);
    std::ofstream out(path);
    for (std::size_t r = 0; r < data.size(); ++r) {
      out << data.labels[r];
      for (std::size_t c = 0; c < data.dim(); ++c) {
        out << ',' << data.features(r, c);
      }
      out << '\n';
    }
  }
  EXPECT_EQ(sd::load_higgs_csv(path, 4).size(), 4u);
  std::filesystem::remove(path);
}

TEST(HiggsCsv, MissingFileThrows) {
  EXPECT_THROW(sd::load_higgs_csv("/nonexistent/HIGGS.csv"),
               std::runtime_error);
}

TEST(HiggsCsv, MalformedRowThrows) {
  const std::string path = "/tmp/streambrain_test_higgs3.csv";
  {
    std::ofstream out(path);
    out << "1,2,3\n";  // wrong column count
  }
  EXPECT_THROW(sd::load_higgs_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(HiggsCsv, LoadOrGenerateFallsBack) {
  const auto dataset = sd::load_or_generate_higgs("", 123, 5);
  EXPECT_EQ(dataset.size(), 123u);
  EXPECT_EQ(dataset.dim(), sd::kHiggsFeatures);
}

// ---------------------------------------------------------------- digits ----

TEST(Digits, ShapeAndLabels) {
  sd::SyntheticDigitGenerator generator;
  const auto dataset = generator.generate(200);
  EXPECT_EQ(dataset.size(), 200u);
  EXPECT_EQ(dataset.dim(), sd::kDigitPixels);
  EXPECT_EQ(dataset.num_classes(), 10u);
  for (int label : dataset.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(Digits, PixelsInUnitRange) {
  sd::SyntheticDigitGenerator generator;
  const auto dataset = generator.generate(100);
  for (float v : dataset.features) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Digits, InkConcentratedInCenter) {
  sd::DigitGeneratorOptions options;
  options.flip_noise = 0.0;
  options.max_translation = 0;
  sd::SyntheticDigitGenerator generator(options);
  const auto dataset = generator.generate(500);
  double center_mass = 0.0;
  double fringe_mass = 0.0;
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    for (std::size_t y = 0; y < sd::kDigitSide; ++y) {
      for (std::size_t x = 0; x < sd::kDigitSide; ++x) {
        const float v = dataset.features(r, y * sd::kDigitSide + x);
        const bool center = x >= 4 && x < 12 && y >= 2 && y < 14;
        (center ? center_mass : fringe_mass) += v;
      }
    }
  }
  // The glyph box holds 96 of 256 pixels; intensity jitter spreads a
  // little mass everywhere, so demand a strong (not absolute) ratio.
  EXPECT_GT(center_mass, 5.0 * fringe_mass);
}

TEST(Digits, ClassesAreDistinguishable) {
  // Mean images of distinct digits should differ substantially.
  sd::DigitGeneratorOptions options;
  options.flip_noise = 0.0;
  options.max_translation = 0;
  sd::SyntheticDigitGenerator generator(options);
  const auto dataset = generator.generate(1000);
  std::vector<std::vector<double>> means(10,
                                         std::vector<double>(dataset.dim()));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    const auto label = static_cast<std::size_t>(dataset.labels[r]);
    ++counts[label];
    for (std::size_t c = 0; c < dataset.dim(); ++c) {
      means[label][c] += dataset.features(r, c);
    }
  }
  for (std::size_t d = 0; d < 10; ++d) {
    ASSERT_GT(counts[d], 0u);
    for (auto& v : means[d]) v /= static_cast<double>(counts[d]);
  }
  double l1_01 = 0.0;
  for (std::size_t c = 0; c < dataset.dim(); ++c) {
    l1_01 += std::abs(means[0][c] - means[1][c]);
  }
  EXPECT_GT(l1_01, 10.0);  // digits 0 and 1 are very different glyphs
}
