// Tests for the image-patch extraction substrate (STL-10-style front end).

#include <gtest/gtest.h>

#include <cmath>

#include "data/digits.hpp"
#include "data/patches.hpp"

namespace sd = streambrain::data;

namespace {

sd::Dataset digit_images(std::size_t count) {
  sd::SyntheticDigitGenerator generator;
  return generator.generate(count);
}

}  // namespace

TEST(Patches, ExtractShapeAndLabelInheritance) {
  const auto images = digit_images(10);
  sd::PatchOptions options;
  options.patch_side = 6;
  options.patches_per_image = 3;
  const auto patches = sd::extract_patches(images, options);
  EXPECT_EQ(patches.size(), 30u);
  EXPECT_EQ(patches.dim(), 36u);
  for (std::size_t p = 0; p < patches.size(); ++p) {
    EXPECT_EQ(patches.labels[p], images.labels[p / 3]);
  }
}

TEST(Patches, NormalizationGivesZeroMeanUnitVariance) {
  const auto images = digit_images(20);
  sd::PatchOptions options;
  options.patch_side = 8;
  options.normalize = true;
  const auto patches = sd::extract_patches(images, options);
  for (std::size_t p = 0; p < patches.size(); ++p) {
    double mean = 0.0;
    for (std::size_t i = 0; i < patches.dim(); ++i) {
      mean += patches.features(p, i);
    }
    mean /= static_cast<double>(patches.dim());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    double var = 0.0;
    for (std::size_t i = 0; i < patches.dim(); ++i) {
      const double d = patches.features(p, i) - mean;
      var += d * d;
    }
    var /= static_cast<double>(patches.dim());
    // Either unit variance or a flat patch clamped by the stddev floor.
    EXPECT_TRUE(std::abs(var - 1.0) < 0.05 || var < 0.05) << "patch " << p;
  }
}

TEST(Patches, UnnormalizedValuesComeFromTheImage) {
  const auto images = digit_images(5);
  sd::PatchOptions options;
  options.patch_side = sd::kDigitSide;  // whole image as one "patch"
  options.patches_per_image = 1;
  options.normalize = false;
  const auto patches = sd::extract_patches(images, options);
  for (std::size_t i = 0; i < images.dim(); ++i) {
    EXPECT_FLOAT_EQ(patches.features(0, i), images.features(0, i));
  }
}

TEST(Patches, DeterministicForSeed) {
  const auto images = digit_images(8);
  sd::PatchOptions options;
  options.seed = 77;
  const auto a = sd::extract_patches(images, options);
  const auto b = sd::extract_patches(images, options);
  EXPECT_TRUE(a.features == b.features);
}

TEST(Patches, RejectsBadGeometry) {
  const auto images = digit_images(2);
  sd::PatchOptions options;
  options.patch_side = sd::kDigitSide + 1;  // larger than the image
  EXPECT_THROW(sd::extract_patches(images, options), std::invalid_argument);

  sd::Dataset not_square;
  not_square.features = streambrain::tensor::MatrixF(2, 15);
  not_square.labels = {0, 1};
  EXPECT_THROW(sd::extract_patches(not_square, {}), std::invalid_argument);
}

TEST(Patches, TilingCoversImageExactlyOnce) {
  const auto images = digit_images(3);
  const auto tiles = sd::tile_patches(images, 4, /*normalize=*/false);
  // 16x16 image -> 4x4 grid of 4x4 tiles.
  EXPECT_EQ(tiles.size(), 3u * 16u);
  EXPECT_EQ(tiles.dim(), 16u);
  // Total pixel mass is preserved by the partition.
  double image_mass = 0.0;
  for (std::size_t i = 0; i < images.dim(); ++i) {
    image_mass += images.features(0, i);
  }
  double tile_mass = 0.0;
  for (std::size_t t = 0; t < 16; ++t) {
    for (std::size_t i = 0; i < 16; ++i) tile_mass += tiles.features(t, i);
  }
  EXPECT_NEAR(tile_mass, image_mass, 1e-3);
}

TEST(Patches, TilingRejectsNonDividingPatchSide) {
  const auto images = digit_images(1);
  EXPECT_THROW(sd::tile_patches(images, 5), std::invalid_argument);
}
