// Streaming online learning: the Estimator::partial_fit contract (Model
// implements it for compiled dense 3-layer networks and refuses it for
// read-only/deep forms), OnlineTrainer's bounded-stream training thread
// publishing snapshots into a live AsyncPredictor, and the ABLane's
// deterministic hash-split routing with per-arm ROC/PR attribution.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/ab_lane.hpp"
#include "api/async_predictor.hpp"
#include "api/estimator.hpp"
#include "api/online_trainer.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;

using streambrain::ABArm;
using streambrain::ABLane;
using streambrain::ABLaneOptions;
using streambrain::AsyncPredictor;
using streambrain::AsyncPredictorOptions;
using streambrain::OnlineTrainer;
using streambrain::OnlineTrainerOptions;

namespace {

struct Online {
  std::shared_ptr<sc::Model> model_a;
  std::shared_ptr<sc::Model> model_b;
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
  std::vector<double> scores_a;
  std::vector<double> scores_b;
};

std::shared_ptr<sc::Model> train_model(std::uint64_t seed,
                                       const st::MatrixF& x_train,
                                       const std::vector<int>& labels) {
  auto model = std::make_shared<sc::Model>();
  model->input(28, 10)
      .hidden(1, 40, 0.4)
      .classifier(2)
      .set_option("epochs", 2)
      .compile("simd", seed);
  model->fit(x_train, labels);
  return model;
}

const Online& fixture() {
  static const Online instance = [] {
    streambrain::data::SyntheticHiggsGenerator generator;
    const auto train = generator.generate(600);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 888;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(160);
    streambrain::encode::OneHotEncoder encoder(10);

    Online o;
    o.x_train = encoder.fit_transform(train.features);
    o.y_train = train.labels;
    o.x_test = encoder.transform(test.features);
    o.y_test = test.labels;
    o.model_a = train_model(42, o.x_train, o.y_train);
    o.model_b = train_model(4242, o.x_train, o.y_train);
    o.scores_a = o.model_a->predict_scores(o.x_test);
    o.scores_b = o.model_b->predict_scores(o.x_test);
    return o;
  }();
  return instance;
}

std::shared_ptr<sc::Model> clone_of(const sc::Model& model) {
  return std::make_shared<sc::Model>(sc::clone_model(model));
}

st::MatrixF rows_slice(const st::MatrixF& x, std::size_t begin,
                       std::size_t end) {
  st::MatrixF out(end - begin, x.cols());
  for (std::size_t r = begin; r < end; ++r) {
    std::copy_n(x.row(r), x.cols(), out.row(r - begin));
  }
  return out;
}

std::vector<int> labels_slice(const std::vector<int>& labels,
                              std::size_t begin, std::size_t end) {
  return {labels.begin() + static_cast<std::ptrdiff_t>(begin),
          labels.begin() + static_cast<std::ptrdiff_t>(end)};
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

}  // namespace

// --- Estimator / Model partial_fit contract ---------------------------------

TEST(PartialFit, DefaultIsUnsupportedAndThrowsNamingTheEstimator) {
  const std::unique_ptr<streambrain::Estimator> baseline =
      streambrain::make_baseline_estimator("logistic");
  EXPECT_FALSE(baseline->supports_partial_fit());
  st::MatrixF x(1, 3);
  try {
    baseline->partial_fit(x, {0});
    FAIL() << "default partial_fit() must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("partial_fit"),
              std::string::npos);
  }
}

TEST(PartialFit, ModelGuardsUncompiledReadOnlyAndDeepForms) {
  const Online& o = fixture();

  sc::Model uncompiled;
  EXPECT_FALSE(uncompiled.supports_partial_fit());
  EXPECT_THROW(uncompiled.partial_fit(o.x_test, o.y_test), std::logic_error);

  const std::shared_ptr<sc::Model> trained = clone_of(*o.model_a);
  sc::Model sparse = trained->sparsify();
  EXPECT_FALSE(sparse.supports_partial_fit());
  EXPECT_THROW(sparse.partial_fit(o.x_test, o.y_test), std::logic_error);

  sc::Model quant = trained->quantize();
  EXPECT_FALSE(quant.supports_partial_fit());
  EXPECT_THROW(quant.partial_fit(o.x_test, o.y_test), std::logic_error);

  sc::Model deep;
  deep.input(28, 10)
      .hidden(1, 16, 0.4)
      .hidden(1, 16, 0.4)
      .classifier(2)
      .set_option("epochs", 1)
      .compile("simd", 7);
  EXPECT_FALSE(deep.supports_partial_fit());
  EXPECT_THROW(deep.partial_fit(o.x_test, o.y_test), std::logic_error);
}

TEST(PartialFit, RefinesACompiledModelIncrementally) {
  const Online& o = fixture();
  const std::shared_ptr<sc::Model> model = clone_of(*o.model_a);
  EXPECT_TRUE(model->supports_partial_fit());
  ASSERT_EQ(model->predict_scores(o.x_test), o.scores_a);

  // One incremental step updates the parameters in place: same output
  // shape, different scores — no refit-from-scratch, no exception.
  model->partial_fit(rows_slice(o.x_train, 0, 64),
                     labels_slice(o.y_train, 0, 64));
  const std::vector<double> refined = model->predict_scores(o.x_test);
  ASSERT_EQ(refined.size(), o.scores_a.size());
  EXPECT_NE(refined, o.scores_a);

  // Mismatched rows/labels are rejected before touching the model.
  EXPECT_THROW(model->partial_fit(rows_slice(o.x_train, 0, 4), {0}),
               std::invalid_argument);
}

// --- OnlineTrainer -----------------------------------------------------------

TEST(OnlineTrainer, RejectsModelsWithoutPartialFit) {
  const Online& o = fixture();
  AsyncPredictor server(clone_of(*o.model_a), {});
  EXPECT_THROW(OnlineTrainer(nullptr, server), std::invalid_argument);
  auto sparse = std::make_shared<sc::Model>(clone_of(*o.model_a)->sparsify());
  EXPECT_THROW(OnlineTrainer(sparse, server), std::invalid_argument);
  OnlineTrainerOptions bad;
  bad.stream_capacity = 0;
  EXPECT_THROW(OnlineTrainer(clone_of(*o.model_a), server, bad),
               std::invalid_argument);
}

TEST(OnlineTrainer, TrainsTheStreamAndPublishesIntoServing) {
  const Online& o = fixture();
  AsyncPredictorOptions serving_options;
  serving_options.shards = 2;
  serving_options.score_cache_rows = 256;
  AsyncPredictor server(clone_of(*o.model_a), serving_options);
  ASSERT_EQ(server.generation(), 1u);

  OnlineTrainerOptions options;
  options.batch_rows = 32;
  options.publish_every_rows = 64;
  OnlineTrainer trainer(clone_of(*o.model_a), server, options);

  // Feed 4 x 40 labeled rows: enough for >= 2 automatic publishes.
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t begin = i * 40;
    EXPECT_EQ(trainer.observe(rows_slice(o.x_train, begin, begin + 40),
                              labels_slice(o.y_train, begin, begin + 40)),
              40u);
  }
  ASSERT_TRUE(wait_until(
      [&] { return trainer.stats().publishes >= 2; },
      std::chrono::seconds(30)))
      << "trainer never published; stats: trained_rows="
      << trainer.stats().trained_rows;
  trainer.stop();

  const auto stats = trainer.stats();
  EXPECT_EQ(stats.observed_rows, 160u);
  EXPECT_EQ(stats.trained_rows + stats.dropped_rows, 160u);
  EXPECT_GT(stats.train_batches, 0u);
  EXPECT_GE(stats.generation, 3u);  // >= 2 publishes past generation 1
  EXPECT_EQ(server.generation(), stats.generation);
  EXPECT_EQ(server.stats().model_swaps, stats.publishes);

  // Serving stayed live across every publish: the swapped-in snapshot
  // answers with well-formed scores.
  const std::vector<double> scores = server.predict_scores(o.x_test);
  ASSERT_EQ(scores.size(), o.x_test.rows());
  // The published snapshot has seen extra data — it is a different model
  // from the construction-time one.
  EXPECT_NE(scores, o.scores_a);
}

TEST(OnlineTrainer, BoundedStreamShedsOverflowInsteadOfBlocking) {
  const Online& o = fixture();
  AsyncPredictor server(clone_of(*o.model_a), {});
  OnlineTrainerOptions options;
  options.stream_capacity = 32;
  options.publish_every_rows = 0;  // isolate the stream-bound behavior
  OnlineTrainer trainer(clone_of(*o.model_a), server, options);

  // One observation larger than the whole stream: the prefix is
  // accepted, the overflow shed — observe() never blocks on a backlog.
  const std::size_t accepted =
      trainer.observe(rows_slice(o.x_train, 0, 100),
                      labels_slice(o.y_train, 0, 100));
  EXPECT_EQ(accepted, 32u);
  const auto stats = trainer.stats();
  EXPECT_EQ(stats.observed_rows, 32u);
  EXPECT_EQ(stats.dropped_rows, 68u);
  EXPECT_EQ(server.stats().model_swaps, 0u);  // publishing disabled
}

TEST(OnlineTrainer, PublishNowSnapshotsOnDemandWithConversions) {
  const Online& o = fixture();
  AsyncPredictorOptions serving_options;
  serving_options.shards = 1;
  AsyncPredictor server(clone_of(*o.model_a), serving_options);

  OnlineTrainerOptions options;
  options.publish_every_rows = 0;
  options.sparsify_snapshots = true;
  options.quantize_snapshots = true;  // prune→sparsify→quantize composes
  OnlineTrainer trainer(clone_of(*o.model_a), server, options);

  const std::uint64_t generation = trainer.publish_now();
  EXPECT_EQ(generation, 2u);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(trainer.stats().publishes, 1u);
  EXPECT_EQ(server.stats().model_swaps, 1u);

  // The served snapshot is the read-only quantized-sparse form; serving
  // keeps answering and the training model stays dense and trainable.
  const std::vector<double> scores = server.predict_scores(o.x_test);
  EXPECT_EQ(scores.size(), o.x_test.rows());
}

// --- ABLane ------------------------------------------------------------------

TEST(ABLane, RoutingIsDeterministicSaltedAndFractionRespecting) {
  const Online& o = fixture();
  ABLaneOptions half;
  half.b_fraction = 0.5;
  ABLane lane(clone_of(*o.model_a), clone_of(*o.model_b), half);

  std::size_t to_b = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    const st::MatrixF row = rows_slice(o.x_test, r, r + 1);
    const ABArm arm = lane.route(row);
    EXPECT_EQ(lane.route(row), arm);  // sticky: same input, same arm
    if (arm == ABArm::kB) ++to_b;
  }
  // A 50/50 split over 64 distinct rows lands some traffic on each arm
  // (all-one-arm has probability 2^-63).
  EXPECT_GT(to_b, 0u);
  EXPECT_LT(to_b, 64u);

  ABLaneOptions all_a;
  all_a.b_fraction = 0.0;
  ABLane pinned_a(clone_of(*o.model_a), clone_of(*o.model_b), all_a);
  ABLaneOptions all_b;
  all_b.b_fraction = 1.0;
  ABLane pinned_b(clone_of(*o.model_a), clone_of(*o.model_b), all_b);
  for (std::size_t r = 0; r < 8; ++r) {
    const st::MatrixF row = rows_slice(o.x_test, r, r + 1);
    EXPECT_EQ(pinned_a.route(row), ABArm::kA);
    EXPECT_EQ(pinned_b.route(row), ABArm::kB);
  }

  ABLaneOptions bad;
  bad.b_fraction = 1.5;
  EXPECT_THROW(ABLane(clone_of(*o.model_a), clone_of(*o.model_b), bad),
               std::invalid_argument);
}

TEST(ABLane, ServesPerArmModelsAndAttributesOutcomes) {
  const Online& o = fixture();
  ABLaneOptions options;
  options.b_fraction = 0.5;
  options.serving.score_cache_rows = 128;
  ABLane lane(clone_of(*o.model_a), clone_of(*o.model_b), options);

  const std::size_t n = o.x_test.rows();
  std::size_t routed_a = 0;
  std::size_t routed_b = 0;
  for (std::size_t r = 0; r < n; ++r) {
    auto routed = lane.submit_scores(rows_slice(o.x_test, r, r + 1));
    const std::vector<double> scores = routed.scores.get();
    ASSERT_EQ(scores.size(), 1u);
    // The answer must be the routed arm's model, bit-identically.
    const double expected =
        routed.arm == ABArm::kA ? o.scores_a[r] : o.scores_b[r];
    EXPECT_EQ(scores[0], expected);
    lane.record_outcome(routed.arm, scores, {o.y_test[r]});
    (routed.arm == ABArm::kA ? routed_a : routed_b) += 1;
  }

  const streambrain::ABReport report_a = lane.report(ABArm::kA);
  const streambrain::ABReport report_b = lane.report(ABArm::kB);
  EXPECT_EQ(report_a.routed_requests, routed_a);
  EXPECT_EQ(report_b.routed_requests, routed_b);
  EXPECT_EQ(report_a.routed_rows + report_b.routed_rows, n);
  EXPECT_EQ(report_a.labeled_rows + report_b.labeled_rows, n);
  EXPECT_EQ(report_a.serving.requests, routed_a);
  EXPECT_EQ(report_b.serving.requests, routed_b);
  // Both arms saw both-class traffic at these sizes, so the per-arm
  // quality metrics are live numbers, not placeholders.
  EXPECT_GT(report_a.roc_auc, 0.0);
  EXPECT_LE(report_a.roc_auc, 1.0);
  EXPECT_GT(report_b.pr_auc, 0.0);
  EXPECT_LE(report_b.pr_auc, 1.0);

  // Rollout path: hot-swap the candidate arm independently; the
  // incumbent arm is untouched.
  const std::uint64_t generation =
      lane.predictor(ABArm::kB).swap_model(clone_of(*o.model_a));
  EXPECT_EQ(generation, 2u);
  EXPECT_EQ(lane.predictor(ABArm::kA).generation(), 1u);
}
