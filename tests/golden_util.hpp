#pragma once
// Shared golden-digest machinery for the regression suites
// (test_golden_model.cpp, test_distributed.cpp): digest read/write in the
// committed text format under tests/golden/, the STREAMBRAIN_UPDATE_GOLDEN
// regeneration contract, and the RAII dispatch pin that keeps scalar-tier
// training from leaking into other tests.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tensor/kernel_set.hpp"

#ifndef STREAMBRAIN_GOLDEN_DIR
#define STREAMBRAIN_GOLDEN_DIR "tests/golden"
#endif

namespace streambrain::testing {

struct Digest {
  double accuracy = 0.0;
  double log_loss = 0.0;
  std::vector<int> labels;
  std::vector<double> scores;
};

inline std::string golden_path(const std::string& name) {
  return std::string(STREAMBRAIN_GOLDEN_DIR) + "/" + name + ".txt";
}

inline bool update_mode() {
  const char* env = std::getenv("STREAMBRAIN_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline void write_digest(const std::string& name, const Digest& digest) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out.precision(12);
  out << "# golden digest '" << name << "' — scalar-dispatch training;\n";
  out << "# regenerate with STREAMBRAIN_UPDATE_GOLDEN=1\n";
  out << "accuracy " << digest.accuracy << "\n";
  out << "log_loss " << digest.log_loss << "\n";
  out << "labels " << digest.labels.size();
  for (const int label : digest.labels) out << ' ' << label;
  out << "\nscores " << digest.scores.size();
  for (const double score : digest.scores) out << ' ' << score;
  out << "\n";
}

inline bool read_digest(const std::string& name, Digest& digest) {
  std::ifstream in(golden_path(name));
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "accuracy") {
      fields >> digest.accuracy;
    } else if (key == "log_loss") {
      fields >> digest.log_loss;
    } else if (key == "labels") {
      std::size_t count = 0;
      fields >> count;
      digest.labels.resize(count);
      for (std::size_t i = 0; i < count; ++i) fields >> digest.labels[i];
    } else if (key == "scores") {
      std::size_t count = 0;
      fields >> count;
      digest.scores.resize(count);
      for (std::size_t i = 0; i < count; ++i) fields >> digest.scores[i];
    }
  }
  return true;
}

/// RAII dispatch pin so a failing assertion cannot leak the scalar tier
/// into other tests of this binary.
struct ScopedDispatch {
  explicit ScopedDispatch(tensor::DispatchLevel level)
      : previous(tensor::force_dispatch(level)) {}
  ~ScopedDispatch() { tensor::force_dispatch(previous); }
  tensor::DispatchLevel previous;
};

}  // namespace streambrain::testing
