// Zero-downtime model rotation: ShardPool's RCU-style versioning (leases
// pin generations, retired versions die with their last lease), the
// generation-gated ScoreCache (a cached score can never cross model
// versions — the stale-serving regression test here fails on the
// pre-generation cache), and AsyncPredictor::swap_model under load
// (every future resolves, every request's scores are bit-identical to
// exactly one published version, destruction with a fresh swap pending
// drains cleanly).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "api/async_predictor.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "serve/score_cache.hpp"
#include "serve/shard_pool.hpp"

namespace sc = streambrain::core;
namespace sv = streambrain::serve;
namespace st = streambrain::tensor;

using streambrain::AsyncPredictor;
using streambrain::AsyncPredictorOptions;

namespace {

/// Two trained models over the same geometry whose scores differ — the
/// raw material for proving a swap actually changes what serves.
struct HotSwap {
  std::shared_ptr<sc::Model> model_a;
  std::shared_ptr<sc::Model> model_b;
  st::MatrixF x_test;
  std::vector<double> scores_a;
  std::vector<double> scores_b;
};

std::shared_ptr<sc::Model> train_model(std::uint64_t seed,
                                       const st::MatrixF& x_train,
                                       const std::vector<int>& labels) {
  auto model = std::make_shared<sc::Model>();
  model->input(28, 10)
      .hidden(1, 40, 0.4)
      .classifier(2)
      .set_option("epochs", 2)
      .compile("simd", seed);
  model->fit(x_train, labels);
  return model;
}

const HotSwap& fixture() {
  static const HotSwap instance = [] {
    streambrain::data::SyntheticHiggsGenerator generator;
    const auto train = generator.generate(600);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 777;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);

    HotSwap h;
    const st::MatrixF x_train = encoder.fit_transform(train.features);
    h.model_a = train_model(42, x_train, train.labels);
    h.model_b = train_model(4242, x_train, train.labels);
    h.x_test = encoder.transform(test.features);
    h.scores_a = h.model_a->predict_scores(h.x_test);
    h.scores_b = h.model_b->predict_scores(h.x_test);
    return h;
  }();
  return instance;
}

st::MatrixF rows_slice(const st::MatrixF& x, std::size_t begin,
                       std::size_t end) {
  st::MatrixF out(end - begin, x.cols());
  for (std::size_t r = begin; r < end; ++r) {
    std::copy_n(x.row(r), x.cols(), out.row(r - begin));
  }
  return out;
}

std::shared_ptr<sc::Model> clone_of(const sc::Model& model) {
  return std::make_shared<sc::Model>(sc::clone_model(model));
}

}  // namespace

// --- ShardPool versioning ---------------------------------------------------

TEST(HotSwapPool, PublishRotatesGenerationsAndRetiresOldVersions) {
  const HotSwap& h = fixture();
  sv::ShardPool pool(clone_of(*h.model_a), 2);
  EXPECT_EQ(pool.generation(), 1u);
  EXPECT_EQ(pool.live_versions(), 1u);

  // A lease taken before the publish pins generation 1 and model A.
  std::optional<sv::ShardPool::Lease> old_lease(pool.acquire());
  EXPECT_EQ(old_lease->generation(), 1u);

  EXPECT_EQ(pool.publish(clone_of(*h.model_b)), 2u);
  EXPECT_EQ(pool.generation(), 2u);
  // Old version still alive: the in-flight lease is its grace period.
  EXPECT_EQ(pool.live_versions(), 2u);

  // The pinned lease keeps serving the retired version's model...
  EXPECT_EQ(old_lease->model().predict_scores(h.x_test), h.scores_a);
  // ...while new leases get generation 2 / model B, concurrently.
  {
    const sv::ShardPool::Lease fresh = pool.acquire();
    EXPECT_EQ(fresh.generation(), 2u);
    EXPECT_EQ(fresh.model().predict_scores(h.x_test), h.scores_b);
  }

  // Dropping the last old lease destroys the retired version.
  old_lease.reset();
  EXPECT_EQ(pool.live_versions(), 1u);

  // All replicas of the current version are free again after the swap.
  EXPECT_EQ(pool.free_count(), pool.size());
}

TEST(HotSwapPool, AcquireShardLeasesTheSpecificReplica) {
  const HotSwap& h = fixture();
  sv::ShardPool pool(clone_of(*h.model_a), 3);
  for (std::size_t s = 0; s < pool.size(); ++s) {
    const sv::ShardPool::Lease lease = pool.acquire_shard(s);
    EXPECT_EQ(lease.shard(), s);
    EXPECT_EQ(lease.generation(), 1u);
  }
  EXPECT_THROW((void)pool.acquire_shard(pool.size()), std::out_of_range);
}

TEST(HotSwapPool, PublishValidatesReplicaCountAndNulls) {
  const HotSwap& h = fixture();
  sv::ShardPool pool(clone_of(*h.model_a), 2);
  // The shard count is fixed at construction — per-shard serving scratch
  // is sized against it — so a mismatched replica set must be rejected.
  std::vector<std::shared_ptr<streambrain::Estimator>> wrong_count = {
      clone_of(*h.model_b)};
  EXPECT_THROW(pool.publish(std::move(wrong_count)), std::invalid_argument);
  std::vector<std::shared_ptr<streambrain::Estimator>> with_null = {
      clone_of(*h.model_b), nullptr};
  EXPECT_THROW(pool.publish(std::move(with_null)), std::invalid_argument);
  EXPECT_THROW(pool.publish(std::shared_ptr<streambrain::Estimator>()),
               std::invalid_argument);
  EXPECT_EQ(pool.generation(), 1u);  // failed publishes change nothing
}

TEST(HotSwapPool, SaturatedAcquireRollsOverToTheNewVersion) {
  const HotSwap& h = fixture();
  sv::ShardPool pool(clone_of(*h.model_a), 1);
  std::optional<sv::ShardPool::Lease> held(pool.acquire());

  // A waiter blocked on a fully-leased pool must be redirected to the
  // published version (whose replica is free) instead of sleeping until
  // the old lease returns.
  std::atomic<bool> acquired{false};
  std::uint64_t waiter_generation = 0;
  std::thread waiter([&] {
    const sv::ShardPool::Lease lease = pool.acquire();
    waiter_generation = lease.generation();
    acquired.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));

  pool.publish(clone_of(*h.model_b));
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
  EXPECT_EQ(waiter_generation, 2u);
  held.reset();
  EXPECT_EQ(pool.live_versions(), 1u);
}

// --- ScoreCache generation gating -------------------------------------------

TEST(HotSwapCache, GenerationGateBlocksBothDirections) {
  sv::ScoreCache cache(8);
  const std::uint64_t gen1 = cache.generation();
  const float row[3] = {1.0f, 2.0f, 3.0f};
  double score = 0.0;

  cache.insert(row, 3, gen1, 0.25);
  ASSERT_TRUE(cache.lookup(row, 3, gen1, score));
  EXPECT_EQ(score, 0.25);

  // Publish: the epoch clear drops every entry...
  cache.set_generation(gen1 + 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // ...a current-generation lookup misses rather than seeing old scores,
  EXPECT_FALSE(cache.lookup(row, 3, gen1 + 1, score));
  // ...a straggler batch pinned to the retired generation cannot read
  // the new generation's cache or poison it with old-model scores.
  cache.insert(row, 3, gen1 + 1, 0.75);
  EXPECT_FALSE(cache.lookup(row, 3, gen1, score));
  cache.insert(row, 3, gen1, 0.1);
  ASSERT_TRUE(cache.lookup(row, 3, gen1 + 1, score));
  EXPECT_EQ(score, 0.75);  // the stale insert was dropped

  const auto stats = cache.stats();
  EXPECT_EQ(stats.stale_drops, 2u);
  // Re-publishing the same generation is a no-op, not a clear.
  cache.set_generation(gen1 + 1);
  EXPECT_EQ(cache.size(), 1u);
}

// --- The stale-cache regression ---------------------------------------------

TEST(HotSwapServing, SwapInvalidatesCachedScores) {
  // THE regression this PR's cache fix exists for: with the cache keyed
  // by row bytes alone (no model identity), the lookups after swap_model
  // would hit generation-1 entries and serve model A's scores from a
  // server that now holds model B. This test fails on that cache.
  const HotSwap& h = fixture();
  AsyncPredictorOptions options;
  options.shards = 1;
  options.score_cache_rows = 1024;
  AsyncPredictor server(clone_of(*h.model_a), options);

  EXPECT_EQ(server.predict_scores(h.x_test), h.scores_a);
  EXPECT_EQ(server.predict_scores(h.x_test), h.scores_a);  // cache warm
  EXPECT_GT(server.stats().cache_hits, 0u);

  const std::uint64_t generation = server.swap_model(clone_of(*h.model_b));
  EXPECT_EQ(generation, 2u);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(server.stats().model_swaps, 1u);

  // Same rows, post-swap: model B's scores, never A's cached ones.
  EXPECT_EQ(server.predict_scores(h.x_test), h.scores_b);
  // And the new generation caches normally from here on.
  const std::uint64_t hits_before = server.stats().cache_hits;
  EXPECT_EQ(server.predict_scores(h.x_test), h.scores_b);
  EXPECT_GT(server.stats().cache_hits, hits_before);
}

// --- Swap under load ---------------------------------------------------------

TEST(HotSwapServing, SwapUnderLoadNeverMixesVersionsOrDropsRequests) {
  // Continuous submits race a publisher swapping A/B clones in a loop.
  // Every submission is sized to land in exactly one micro-batch
  // (rows == max_batch_rows), so each request must come back bit-
  // identical to ONE version's scores — a mixed vector would mean two
  // generations served one batch. No future may be dropped or rejected.
  const HotSwap& h = fixture();
  constexpr std::size_t kRows = 25;
  constexpr std::size_t kSubmitters = 2;
  constexpr std::size_t kRequestsPerThread = 60;
  constexpr std::size_t kSwaps = 12;

  AsyncPredictorOptions options;
  options.shards = 2;
  options.max_batch_rows = kRows;
  options.min_batch_rows = 1;
  options.score_cache_rows = 512;
  AsyncPredictor server(clone_of(*h.model_a), options);

  const st::MatrixF slice = rows_slice(h.x_test, 0, kRows);
  const std::vector<double> slice_a(h.scores_a.begin(),
                                    h.scores_a.begin() + kRows);
  const std::vector<double> slice_b(h.scores_b.begin(),
                                    h.scores_b.begin() + kRows);
  ASSERT_NE(slice_a, slice_b);  // else purity would be unfalsifiable

  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (std::size_t i = 0; i < kSwaps; ++i) {
      server.swap_model(
          clone_of(i % 2 == 0 ? *h.model_b : *h.model_a));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<std::vector<double>>>> futures(
      kSubmitters);
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    futures[t].reserve(kRequestsPerThread);
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
        futures[t].push_back(server.submit_scores(slice));
        if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  publisher.join();
  EXPECT_TRUE(done.load(std::memory_order_acquire));

  std::size_t served_a = 0;
  std::size_t served_b = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      const std::vector<double> scores = future.get();  // throws = dropped
      if (scores == slice_a) {
        ++served_a;
      } else if (scores == slice_b) {
        ++served_b;
      } else {
        ADD_FAILURE() << "scores match neither version wholesale — a "
                         "batch mixed model generations";
      }
    }
  }
  EXPECT_EQ(served_a + served_b, kSubmitters * kRequestsPerThread);

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, kSubmitters * kRequestsPerThread);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed_requests, 0u);
  EXPECT_EQ(stats.model_swaps, kSwaps);
  EXPECT_EQ(server.generation(), 1u + kSwaps);
}

TEST(HotSwapServing, DestructionWithPendingSwapDrainsCleanly) {
  const HotSwap& h = fixture();
  constexpr std::size_t kRows = 25;
  const st::MatrixF slice = rows_slice(fixture().x_test, 0, kRows);
  const std::vector<double> slice_a(h.scores_a.begin(),
                                    h.scores_a.begin() + kRows);
  const std::vector<double> slice_b(h.scores_b.begin(),
                                    h.scores_b.begin() + kRows);

  std::vector<std::future<std::vector<double>>> futures;
  {
    AsyncPredictorOptions options;
    options.shards = 2;
    options.max_batch_rows = kRows;
    AsyncPredictor server(clone_of(*h.model_a), options);
    for (int i = 0; i < 40; ++i) futures.push_back(server.submit_scores(slice));
    server.swap_model(clone_of(*h.model_b));
    for (int i = 0; i < 40; ++i) futures.push_back(server.submit_scores(slice));
    // Destructor runs here with both generations potentially in flight.
  }
  for (auto& future : futures) {
    const std::vector<double> scores = future.get();
    EXPECT_TRUE(scores == slice_a || scores == slice_b)
        << "drained batch mixed model generations";
  }
}
