// Distributed-training suite: DistributedTrainer trains full models
// (hidden BCPNN layer + BCPNN or SGD head, and deep stacks) data-parallel
// over comm::, and with the default sync_cadence == 1 the result is
// BIT-IDENTICAL at every rank count — the per-batch statistics are
// computed per fixed virtual shard and exchanged through a zero-padded
// (exact) allreduce, so no floating-point association depends on the
// rank count. The golden tests pin the scalar dispatch tier and compare
// rank-2 training against committed digests under tests/golden/.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/model.hpp"
#include "core/network.hpp"
#include "core/deep.hpp"
#include "core/serialization.hpp"
#include "core/sgd_head.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "parallel/engine_registry.hpp"
#include "tensor/kernel_set.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;
namespace sg = streambrain::testing;
namespace scomm = streambrain::comm;

namespace {

struct FixtureData {
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
};

const FixtureData& fixture() {
  static const FixtureData data = [] {
    streambrain::data::SyntheticHiggsGenerator train_generator;
    const auto train = train_generator.generate(260);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 777;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(80);
    streambrain::encode::OneHotEncoder encoder(10);
    FixtureData out;
    out.x_train = encoder.fit_transform(train.features);
    out.y_train = train.labels;
    out.x_test = encoder.transform(test.features);
    out.y_test = test.labels;
    return out;
  }();
  return data;
}

sc::Model make_shallow(sc::HeadType head) {
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 20, 0.4)
      .classifier(2, head)
      .set_option("epochs", 2)
      .set_option("head_epochs", 3)
      .set_option("batch_size", 32)
      .compile("simd", /*seed=*/11);
  return model;
}

sc::Model make_deep() {
  sc::Model model;
  model.input(28, 10)
      .hidden(2, 12, 0.5)
      .hidden(1, 10, 0.6)
      .classifier(2, sc::HeadType::kBcpnn)
      .set_option("epochs", 2)
      .set_option("head_epochs", 2)
      .set_option("batch_size", 32)
      .compile("simd", /*seed=*/13);
  return model;
}

void append(std::vector<float>& out, const std::vector<float>& v) {
  out.insert(out.end(), v.begin(), v.end());
}

void append(std::vector<float>& out, const st::MatrixF& m) {
  out.insert(out.end(), m.begin(), m.end());
}

void append_traces(std::vector<float>& out,
                   const sc::ProbabilityTraces& traces) {
  append(out, traces.pi());
  append(out, traces.pj());
  append(out, traces.pij());
}

/// Every learned float of the model, concatenated, for bitwise compares.
std::vector<float> state_vector(const sc::Model& model) {
  std::vector<float> out;
  if (model.hidden_specs().size() == 1) {
    const sc::Network& net = model.network();
    append_traces(out, net.hidden().traces());
    append(out, net.hidden().weights());
    append(out, net.hidden().bias());
    if (net.sgd_head() != nullptr) {
      append(out, net.sgd_head()->weights());
      append(out, net.sgd_head()->bias());
    } else {
      append_traces(out, net.bcpnn_head()->traces());
    }
  } else {
    const sc::DeepBcpnn& deep = model.deep();
    for (std::size_t l = 0; l < deep.depth(); ++l) {
      append_traces(out, deep.layer(l).traces());
      append(out, deep.layer(l).weights());
    }
    append_traces(out, deep.head().traces());
  }
  return out;
}

struct TrainedSnapshot {
  std::vector<float> state;
  std::vector<int> labels;
  std::vector<double> scores;
  sc::DistributedReport report;
};

TrainedSnapshot train_snapshot(sc::Model&& model,
                               const sc::DistributedOptions& options) {
  const FixtureData& data = fixture();
  TrainedSnapshot snap;
  snap.report = sc::fit_distributed(model, data.x_train, data.y_train, options);
  snap.state = state_vector(model);
  snap.labels = model.predict(data.x_test);
  snap.scores = model.predict_scores(data.x_test);
  return snap;
}

void expect_bit_identical(const TrainedSnapshot& a, const TrainedSnapshot& b,
                          const std::string& what) {
  ASSERT_EQ(a.state.size(), b.state.size()) << what;
  for (std::size_t i = 0; i < a.state.size(); ++i) {
    ASSERT_EQ(a.state[i], b.state[i])
        << what << ": learned state drifts at float " << i;
  }
  EXPECT_EQ(a.labels, b.labels) << what;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << what;
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    ASSERT_EQ(a.scores[i], b.scores[i]) << what << ": score row " << i;
  }
}

}  // namespace

// --- Rank-count invariance (the tentpole acceptance criterion) -------------

TEST(Distributed, BcpnnHeadBitIdenticalAcrossRankCounts) {
  const auto reference =
      train_snapshot(make_shallow(sc::HeadType::kBcpnn), {.ranks = 1});
  for (const int ranks : {2, 3, 4}) {
    const auto snap = train_snapshot(make_shallow(sc::HeadType::kBcpnn),
                                     {.ranks = ranks});
    expect_bit_identical(reference, snap,
                         "bcpnn head, ranks=" + std::to_string(ranks));
    EXPECT_GT(snap.report.sync_count, 0u);
    EXPECT_GT(snap.report.bytes_per_rank, 0u);
  }
}

TEST(Distributed, SgdHeadBitIdenticalAcrossRankCounts) {
  const auto reference =
      train_snapshot(make_shallow(sc::HeadType::kSgd), {.ranks = 1});
  for (const int ranks : {2, 4}) {
    const auto snap =
        train_snapshot(make_shallow(sc::HeadType::kSgd), {.ranks = ranks});
    expect_bit_identical(reference, snap,
                         "sgd head, ranks=" + std::to_string(ranks));
  }
}

TEST(Distributed, DeepStackBitIdenticalAcrossRankCounts) {
  const auto reference = train_snapshot(make_deep(), {.ranks = 1});
  for (const int ranks : {2, 4}) {
    const auto snap = train_snapshot(make_deep(), {.ranks = ranks});
    expect_bit_identical(reference, snap,
                         "deep stack, ranks=" + std::to_string(ranks));
  }
}

TEST(Distributed, MoreRanksThanVirtualShardsStillExact) {
  // Ranks beyond the decomposition width idle on some shards but must
  // not change the result.
  sc::DistributedOptions narrow;
  narrow.ranks = 1;
  narrow.virtual_shards = 2;
  const auto reference =
      train_snapshot(make_shallow(sc::HeadType::kBcpnn), narrow);
  narrow.ranks = 3;  // > virtual_shards
  const auto snap = train_snapshot(make_shallow(sc::HeadType::kBcpnn), narrow);
  expect_bit_identical(reference, snap, "ranks > virtual_shards");
}

TEST(Distributed, RingAlgorithmBitIdenticalToFlat) {
  // The exact mode's allreduce payload has disjoint per-shard support, so
  // the algorithm changes bytes and schedule but never a single bit.
  const auto flat = train_snapshot(
      make_shallow(sc::HeadType::kBcpnn),
      {.ranks = 4, .algorithm = scomm::AllreduceAlgorithm::kFlat});
  const auto ring = train_snapshot(
      make_shallow(sc::HeadType::kBcpnn),
      {.ranks = 4, .algorithm = scomm::AllreduceAlgorithm::kRing});
  expect_bit_identical(flat, ring, "flat vs ring");
  // Ring moves fewer bytes per rank at 4 ranks: 2*(P-1)/P*n vs (P-1)*n.
  EXPECT_LT(ring.report.bytes_per_rank, flat.report.bytes_per_rank);
}

// --- Transport-backend invariance (shm segment / TCP loopback mesh) --------

TEST(Distributed, BackendBitIdenticalAcrossTransportsAtEveryRankCount) {
  // The collectives never touch the wire directly, so swapping the
  // in-process mailboxes for a real shared-memory segment or a TCP
  // loopback mesh must not move a single bit — at any rank count.
  for (const int ranks : {1, 2, 4}) {
    sc::DistributedOptions options;
    options.ranks = ranks;
    options.backend = scomm::Backend::kInProcess;
    const auto reference =
        train_snapshot(make_shallow(sc::HeadType::kBcpnn), options);
    for (const auto backend : {scomm::Backend::kShm, scomm::Backend::kTcp}) {
      options.backend = backend;
      const auto snap =
          train_snapshot(make_shallow(sc::HeadType::kBcpnn), options);
      expect_bit_identical(reference, snap,
                           std::string("backend=") +
                               scomm::backend_name(backend) +
                               ", ranks=" + std::to_string(ranks));
      EXPECT_EQ(snap.report.backend, backend);
      // The logical byte model is backend-independent by construction.
      EXPECT_EQ(snap.report.bytes_per_rank, reference.report.bytes_per_rank);
      EXPECT_EQ(snap.report.total_bytes, reference.report.total_bytes);
    }
  }
}

TEST(Distributed, WireBytesIncludeFramingOnRealTransports) {
  sc::DistributedOptions options;
  options.ranks = 2;
  for (const auto backend : {scomm::Backend::kShm, scomm::Backend::kTcp}) {
    options.backend = backend;
    const auto snap =
        train_snapshot(make_shallow(sc::HeadType::kBcpnn), options);
    // Real wires pay a frame header per message on top of the payload.
    EXPECT_GT(snap.report.wire_bytes_per_rank, snap.report.bytes_per_rank)
        << scomm::backend_name(backend);
    EXPECT_GE(snap.report.total_wire_bytes,
              snap.report.wire_bytes_per_rank * 2)
        << scomm::backend_name(backend);
  }
  // In-process "wire" carries the payloads without framing.
  options.backend = scomm::Backend::kInProcess;
  const auto inproc =
      train_snapshot(make_shallow(sc::HeadType::kBcpnn), options);
  EXPECT_GE(inproc.report.wire_bytes_per_rank, inproc.report.bytes_per_rank);
}

TEST(Distributed, OverlapDoesNotChangeResults) {
  const auto on = train_snapshot(make_shallow(sc::HeadType::kSgd),
                                 {.ranks = 2, .overlap = true});
  const auto off = train_snapshot(make_shallow(sc::HeadType::kSgd),
                                  {.ranks = 2, .overlap = false});
  expect_bit_identical(on, off, "overlap on vs off");
}

// --- Golden digests (scalar tier, committed under tests/golden/) -----------

namespace {

void check_distributed_golden(
    const std::string& name, sc::HeadType head,
    scomm::Backend backend = scomm::Backend::kInProcess) {
  const FixtureData& data = fixture();
  sg::Digest actual;
  {
    const sg::ScopedDispatch pin(st::DispatchLevel::kScalar);
    sc::Model model = make_shallow(head);
    sc::fit_distributed(model, data.x_train, data.y_train,
                        {.ranks = 2, .backend = backend});
    actual.labels = model.predict(data.x_test);
    actual.scores = model.predict_scores(data.x_test);
    actual.accuracy = model.evaluate(data.x_test, data.y_test);
    for (std::size_t i = 0; i < actual.scores.size(); ++i) {
      const double p =
          std::min(std::max(actual.scores[i], 1e-12), 1.0 - 1e-12);
      actual.log_loss -=
          data.y_test[i] == 1 ? std::log(p) : std::log(1.0 - p);
    }
    actual.log_loss /= static_cast<double>(actual.scores.size());
  }

  if (sg::update_mode()) {
    sg::write_digest(name, actual);
    GTEST_SKIP() << "regenerated " << sg::golden_path(name);
  }

  sg::Digest expected;
  ASSERT_TRUE(sg::read_digest(name, expected))
      << "missing golden digest " << sg::golden_path(name)
      << " — run with STREAMBRAIN_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(actual.labels, expected.labels) << name << ": label drift";
  EXPECT_NEAR(actual.accuracy, expected.accuracy, 1e-9) << name;
  EXPECT_NEAR(actual.log_loss, expected.log_loss, 1e-7) << name;
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (std::size_t i = 0; i < actual.scores.size(); ++i) {
    EXPECT_NEAR(actual.scores[i], expected.scores[i], 1e-8)
        << name << ": score drift at row " << i;
  }
}

}  // namespace

TEST(DistributedGolden, BcpnnHeadMatchesCommittedDigest) {
  check_distributed_golden("distributed_bcpnn_head", sc::HeadType::kBcpnn);
}

TEST(DistributedGolden, SgdHeadMatchesCommittedDigest) {
  check_distributed_golden("distributed_sgd_head", sc::HeadType::kSgd);
}

// The shm and TCP backends must reproduce the SAME committed digests —
// the transport is invisible to the trained bits.

TEST(DistributedGolden, BcpnnHeadMatchesCommittedDigestOverShm) {
  check_distributed_golden("distributed_bcpnn_head", sc::HeadType::kBcpnn,
                           scomm::Backend::kShm);
}

TEST(DistributedGolden, SgdHeadMatchesCommittedDigestOverTcp) {
  check_distributed_golden("distributed_sgd_head", sc::HeadType::kSgd,
                           scomm::Backend::kTcp);
}

// --- fit_rank: the one-rank-per-process entry point -------------------------

TEST(Distributed, FitRankMatchesFitAndSynchronizesEveryRank) {
  // fit_rank is what sb_launch-launched processes call; driven here over
  // an in-test world it must land every rank on fit()'s exact bits.
  const FixtureData& data = fixture();
  sc::Model reference = make_shallow(sc::HeadType::kBcpnn);
  const auto report =
      sc::fit_distributed(reference, data.x_train, data.y_train, {.ranks = 2});
  const auto reference_state = state_vector(reference);

  std::vector<std::vector<float>> states(2);
  std::vector<std::size_t> syncs(2, 0);
  scomm::run_transport(scomm::Backend::kShm, 2, [&](scomm::Communicator& comm) {
    sc::Model model = make_shallow(sc::HeadType::kBcpnn);
    sc::DistributedTrainer trainer;  // ranks option ignored by fit_rank
    syncs[static_cast<std::size_t>(comm.rank())] =
        trainer.fit_rank(comm, model, data.x_train, data.y_train);
    states[static_cast<std::size_t>(comm.rank())] = state_vector(model);
  });
  EXPECT_EQ(states[0], reference_state);
  EXPECT_EQ(states[1], reference_state);  // rank-synchronized
  EXPECT_EQ(syncs[0], report.sync_count);
}

TEST(Distributed, FitRankValidatesInputs) {
  const FixtureData& data = fixture();
  scomm::run_transport(scomm::Backend::kInProcess, 1,
                       [&](scomm::Communicator& comm) {
                         sc::Model uncompiled;
                         uncompiled.input(28, 10).hidden(1, 8, 0.4);
                         sc::DistributedTrainer trainer;
                         EXPECT_THROW(trainer.fit_rank(comm, uncompiled,
                                                       data.x_train,
                                                       data.y_train),
                                      std::logic_error);
                       });
}

// --- Cadence (approximate) mode --------------------------------------------

TEST(Distributed, CadenceModeSyncsLessAndStaysDeterministic) {
  sc::DistributedOptions exact;
  exact.ranks = 2;
  const auto exact_snap =
      train_snapshot(make_shallow(sc::HeadType::kBcpnn), exact);

  sc::DistributedOptions relaxed = exact;
  relaxed.sync_cadence = 4;
  const auto first = train_snapshot(make_shallow(sc::HeadType::kBcpnn),
                                    relaxed);
  const auto second = train_snapshot(make_shallow(sc::HeadType::kBcpnn),
                                     relaxed);
  // Deterministic per (ranks, cadence): repeat runs are bit-identical.
  expect_bit_identical(first, second, "cadence repeatability");
  // And it actually reduces synchronization traffic.
  EXPECT_LT(first.report.sync_count, exact_snap.report.sync_count);
  EXPECT_LT(first.report.bytes_per_rank, exact_snap.report.bytes_per_rank);
}

TEST(Distributed, CadenceModeSgdHeadDeterministicAndKeepsMomentum) {
  sc::DistributedOptions relaxed;
  relaxed.ranks = 2;
  relaxed.sync_cadence = 3;
  const auto first = train_snapshot(make_shallow(sc::HeadType::kSgd), relaxed);
  const auto second =
      train_snapshot(make_shallow(sc::HeadType::kSgd), relaxed);
  expect_bit_identical(first, second, "sgd cadence repeatability");

  EXPECT_GT(first.report.sync_count, 0u);

  // The cadence sync path must not zero the momentum buffers (that's the
  // set_state contract, not set_parameters): after one real gradient
  // step, overwriting parameters and then applying a ZERO gradient must
  // still move the weights — pure retained velocity.
  sc::SgdHead head(4, 2);
  st::MatrixF grad(4, 2, 0.25f);
  std::vector<float> bias_grad(2, 0.25f);
  head.apply_gradient(grad, bias_grad);
  const st::MatrixF frozen = head.weights();
  head.set_parameters(frozen, head.bias());
  st::MatrixF zero_grad(4, 2, 0.0f);
  head.apply_gradient(zero_grad, {0.0f, 0.0f});
  EXPECT_NE(head.weights()(0, 0), frozen(0, 0))
      << "set_parameters must keep velocity; did a set_state sneak back in?";
}

TEST(Distributed, CadenceModeStillLearns) {
  const FixtureData& data = fixture();
  sc::Model model = make_shallow(sc::HeadType::kBcpnn);
  sc::fit_distributed(model, data.x_train, data.y_train,
                      {.ranks = 4, .sync_cadence = 2});
  EXPECT_GT(model.evaluate(data.x_train, data.y_train), 0.55);
}

// --- Reports & validation --------------------------------------------------

TEST(Distributed, ReportTotalBytesIsSumOfPerRankCounters) {
  // All trainer collectives are symmetric, so the true sum equals
  // ranks * bytes_per_rank here; the asymmetric-traffic case (where the
  // old rank0 * world extrapolation over-counts) is locked down by
  // CommProperty.RootedCollectiveBytesAreAsymmetric.
  const auto snap = train_snapshot(make_shallow(sc::HeadType::kBcpnn),
                                   {.ranks = 3});
  EXPECT_EQ(snap.report.total_bytes, snap.report.bytes_per_rank * 3);
  EXPECT_EQ(snap.report.ranks, 3);
}

TEST(Distributed, SingleRankSendsNothing) {
  const auto snap =
      train_snapshot(make_shallow(sc::HeadType::kBcpnn), {.ranks = 1});
  EXPECT_EQ(snap.report.bytes_per_rank, 0u);
  EXPECT_EQ(snap.report.total_bytes, 0u);
  EXPECT_GT(snap.report.sync_count, 0u);  // reductions still scheduled
}

TEST(Distributed, TrainedModelActuallyLearns) {
  const FixtureData& data = fixture();
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 24, 0.4)
      .classifier(2, sc::HeadType::kSgd)
      .set_option("epochs", 3)
      .set_option("head_epochs", 16)
      .set_option("batch_size", 32)
      .compile("simd", /*seed=*/11);
  sc::fit_distributed(model, data.x_train, data.y_train, {.ranks = 4});
  EXPECT_GT(model.evaluate(data.x_train, data.y_train), 0.6);
}

TEST(Distributed, CheckpointRoundTripAfterDistributedFit) {
  const FixtureData& data = fixture();
  sc::Model model = make_shallow(sc::HeadType::kBcpnn);
  sc::fit_distributed(model, data.x_train, data.y_train, {.ranks = 2});
  sc::Model clone = sc::clone_model(model);
  EXPECT_EQ(clone.predict(data.x_test), model.predict(data.x_test));
}

TEST(Distributed, ValidatesOptionsAndInputs) {
  EXPECT_THROW(sc::DistributedTrainer({.ranks = 0}), std::invalid_argument);
  EXPECT_THROW(sc::DistributedTrainer({.sync_cadence = 0}),
               std::invalid_argument);
  EXPECT_THROW(sc::DistributedTrainer({.virtual_shards = 0}),
               std::invalid_argument);

  const FixtureData& data = fixture();
  sc::Model uncompiled;
  uncompiled.input(28, 10).hidden(1, 8, 0.4);
  EXPECT_THROW(
      sc::fit_distributed(uncompiled, data.x_train, data.y_train, {}),
      std::logic_error);

  sc::Model model = make_shallow(sc::HeadType::kBcpnn);
  std::vector<int> short_labels(data.y_train.begin(),
                                data.y_train.end() - 1);
  EXPECT_THROW(sc::fit_distributed(model, data.x_train, short_labels, {}),
               std::invalid_argument);
}

// --- Legacy single-layer entry point ---------------------------------------

TEST(Distributed, LegacyUnsupervisedFitReportsTrueTotals) {
  const FixtureData& data = fixture();
  sc::BcpnnConfig config;
  config.input_hypercolumns = 28;
  config.input_bins = 10;
  config.hcus = 1;
  config.mcus = 12;
  config.receptive_field = 0.4;
  config.epochs = 2;
  config.batch_size = 32;
  config.seed = 5;
  auto engine = streambrain::parallel::EngineRegistry::instance().create(
      config.engine);
  streambrain::util::Rng rng(config.seed);
  sc::BcpnnLayer layer(config, *engine, rng);
  const auto report =
      sc::distributed_unsupervised_fit(layer, data.x_train, /*ranks=*/3);
  EXPECT_EQ(report.ranks, 3);
  EXPECT_GT(report.sync_count, 0u);
  EXPECT_GT(report.bytes_per_rank, 0u);
  // Symmetric collectives: the true sum equals ranks * per-rank bytes.
  EXPECT_EQ(report.total_bytes, report.bytes_per_rank * 3);
}
