// Predictor serving session: thread-safe micro-batched inference must be
// bit-identical to the single-threaded path, coalescing must run shared
// batches, flush() must release partial batches, and the serving counters
// must add up.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/predictor.hpp"
#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "parallel/engine_registry.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;

namespace {

struct Serving {
  std::shared_ptr<sc::Model> model;
  st::MatrixF x_test;
  std::vector<int> reference_labels;
  std::vector<double> reference_scores;
};

/// One trained model + reference single-threaded predictions, shared by
/// all tests (training once keeps the suite fast).
const Serving& serving() {
  static const Serving instance = [] {
    streambrain::data::SyntheticHiggsGenerator generator;
    const auto train = generator.generate(800);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 99;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(240);
    streambrain::encode::OneHotEncoder encoder(10);

    Serving s;
    s.model = std::make_shared<sc::Model>();
    s.model->input(28, 10)
        .hidden(1, 40, 0.4)
        .classifier(2)
        .set_option("epochs", 4)
        .compile("simd", 42);
    s.model->fit(encoder.fit_transform(train.features), train.labels);
    s.x_test = encoder.transform(test.features);
    s.reference_labels = s.model->predict(s.x_test);
    s.reference_scores = s.model->predict_scores(s.x_test);
    return s;
  }();
  return instance;
}

st::MatrixF rows_slice(const st::MatrixF& x, std::size_t begin,
                       std::size_t end) {
  st::MatrixF out(end - begin, x.cols());
  for (std::size_t r = begin; r < end; ++r) {
    std::copy_n(x.row(r), x.cols(), out.row(r - begin));
  }
  return out;
}

}  // namespace

TEST(Predictor, RejectsBadConstruction) {
  EXPECT_THROW(streambrain::Predictor(nullptr), std::invalid_argument);
  EXPECT_THROW(
      streambrain::Predictor(serving().model, {/*max_batch_rows=*/0}),
      std::invalid_argument);
}

TEST(Predictor, MicroBatchingMatchesSingleThreadedPath) {
  // max_batch_rows far below the request size forces chunked execution;
  // results must still be bit-identical to one big model call.
  streambrain::Predictor predictor(serving().model, {/*max_batch_rows=*/32});
  EXPECT_EQ(predictor.predict(serving().x_test), serving().reference_labels);
  EXPECT_EQ(predictor.predict_scores(serving().x_test),
            serving().reference_scores);

  const auto stats = predictor.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rows, 2 * serving().x_test.rows());
  // 240 rows / 32-row micro-batches = 8 batches per request.
  EXPECT_EQ(stats.batches, 16u);
  EXPECT_GT(stats.total_latency_seconds, 0.0);
  EXPECT_GE(stats.max_latency_seconds, stats.mean_latency_seconds());
  EXPECT_GT(stats.model_throughput_rows_per_second(), 0.0);
}

TEST(Predictor, ConcurrentCallersAgreeWithSingleThread) {
  streambrain::Predictor predictor(serving().model, {/*max_batch_rows=*/16});
  const std::size_t n = serving().x_test.rows();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 3;

  std::vector<std::vector<int>> label_results(kThreads);
  std::vector<std::vector<double>> score_results(kThreads);
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread serves a different slice, repeatedly, interleaving
      // with every other thread through the shared session.
      const std::size_t begin = t * n / kThreads;
      const std::size_t end = (t + 1) * n / kThreads;
      const st::MatrixF slice = rows_slice(serving().x_test, begin, end);
      for (std::size_t round = 0; round < kRounds; ++round) {
        label_results[t] = predictor.predict(slice);
        score_results[t] = predictor.predict_scores(slice);
        if (label_results[t] !=
            std::vector<int>(serving().reference_labels.begin() + begin,
                             serving().reference_labels.begin() + end)) {
          mismatch.store(true);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_FALSE(mismatch.load());
  for (std::size_t t = 0; t < kThreads; ++t) {
    const std::size_t begin = t * n / kThreads;
    const std::size_t end = (t + 1) * n / kThreads;
    EXPECT_EQ(label_results[t],
              std::vector<int>(serving().reference_labels.begin() + begin,
                               serving().reference_labels.begin() + end));
    EXPECT_EQ(score_results[t],
              std::vector<double>(serving().reference_scores.begin() + begin,
                                  serving().reference_scores.begin() + end));
  }
  const auto stats = predictor.stats();
  EXPECT_EQ(stats.requests, kThreads * kRounds * 2);
  EXPECT_EQ(stats.rows, kRounds * 2 * n);
}

TEST(Predictor, SimdEngineStressStaysBitIdenticalToSerialReference) {
  // Heavy mixed-shape stress on the "simd" (KernelSet-dispatched)
  // engine: many threads, varying slice sizes, interleaved label/score
  // requests, and micro-batch splits that never align with the slices.
  // Every result must be bit-identical to the single-threaded reference
  // computed once at setup — the kernel subsystem guarantees per-row
  // deterministic accumulation regardless of batching or scheduling.
  ASSERT_EQ(serving().model->engine_name(), "simd");
  // The engine's advertised dispatch tier is the one actually serving.
  const auto info =
      streambrain::parallel::EngineRegistry::instance().info("simd");
  EXPECT_EQ(info.dispatch, streambrain::tensor::startup_kernels().name);

  streambrain::Predictor predictor(serving().model, {/*max_batch_rows=*/13});
  const std::size_t n = serving().x_test.rows();
  constexpr std::size_t kThreads = 10;
  constexpr std::size_t kRounds = 4;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        // Different slice geometry every round and thread.
        const std::size_t width = 1 + (t * 7 + round * 11) % 37;
        const std::size_t begin = (t * 13 + round * 29) % (n - width);
        const std::size_t end = begin + width;
        const st::MatrixF slice = rows_slice(serving().x_test, begin, end);
        const std::vector<int> labels = predictor.predict(slice);
        const std::vector<double> scores = predictor.predict_scores(slice);
        for (std::size_t i = 0; i < width; ++i) {
          if (labels[i] != serving().reference_labels[begin + i] ||
              scores[i] != serving().reference_scores[begin + i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = predictor.stats();
  EXPECT_EQ(stats.requests, kThreads * kRounds * 2);
}

TEST(Predictor, CoalescePolicyRunsSharedBatches) {
  // Two concurrent half-batch requests: neither fills max_batch_rows on
  // its own, together they do — the second arrival must trigger one
  // shared flush that serves both callers.
  const std::size_t n = serving().x_test.rows();
  ASSERT_GE(n, 32u);
  streambrain::Predictor predictor(
      serving().model,
      {/*max_batch_rows=*/32, streambrain::FlushPolicy::kCoalesce});

  std::vector<int> first, second;
  std::thread a([&] {
    first = predictor.predict(rows_slice(serving().x_test, 0, 16));
  });
  std::thread b([&] {
    second = predictor.predict(rows_slice(serving().x_test, 16, 32));
  });
  a.join();
  b.join();

  EXPECT_EQ(first, std::vector<int>(serving().reference_labels.begin(),
                                    serving().reference_labels.begin() + 16));
  EXPECT_EQ(second,
            std::vector<int>(serving().reference_labels.begin() + 16,
                             serving().reference_labels.begin() + 32));
}

TEST(Predictor, DeferredFlushSingleThreadedCallerReturns) {
  // Regression: a kCoalesce request smaller than max_batch_rows used to
  // block on done_cv_ forever unless another thread called flush(). The
  // max_batch_delay deadline now closes the partial batch from inside
  // the waiting call itself — single-threaded deferred predict() must
  // return, promptly and correctly, with no external flusher.
  streambrain::PredictorOptions options;
  options.max_batch_rows = 64;
  options.flush_policy = streambrain::FlushPolicy::kCoalesce;
  options.max_batch_delay = std::chrono::milliseconds(5);
  streambrain::Predictor predictor(serving().model, options);

  const auto labels = predictor.predict(rows_slice(serving().x_test, 0, 8));
  EXPECT_EQ(labels, std::vector<int>(serving().reference_labels.begin(),
                                     serving().reference_labels.begin() + 8));
  const auto scores =
      predictor.predict_scores(rows_slice(serving().x_test, 0, 8));
  EXPECT_EQ(scores,
            std::vector<double>(serving().reference_scores.begin(),
                                serving().reference_scores.begin() + 8));
  EXPECT_EQ(predictor.stats().requests, 2u);
}

TEST(Predictor, StatsSeparateQueueWaitFromModelTime) {
  // Per call: total latency = queue wait + own model time. A serial
  // kImmediate caller has (almost) no queue wait, so model_seconds must
  // dominate total_latency and the queue-wait counters must stay small
  // and self-consistent.
  streambrain::Predictor predictor(serving().model, {/*max_batch_rows=*/64});
  (void)predictor.predict(serving().x_test);
  const auto stats = predictor.stats();
  EXPECT_GT(stats.model_seconds, 0.0);
  EXPECT_GE(stats.total_queue_wait_seconds, 0.0);
  EXPECT_GE(stats.max_queue_wait_seconds, stats.mean_queue_wait_seconds());
  // latency decomposes: wait + model time adds back up (within rounding)
  EXPECT_NEAR(stats.total_latency_seconds,
              stats.total_queue_wait_seconds + stats.model_seconds, 1e-6);
  // and the lock-free single caller spent nearly everything in the model
  EXPECT_LT(stats.total_queue_wait_seconds,
            0.5 * stats.total_latency_seconds);
}

TEST(Predictor, FlushReleasesPartialBatches) {
  streambrain::Predictor predictor(
      serving().model,
      {/*max_batch_rows=*/64, streambrain::FlushPolicy::kCoalesce});

  std::vector<int> result;
  std::atomic<bool> finished{false};
  std::thread caller([&] {
    result = predictor.predict(rows_slice(serving().x_test, 0, 8));
    finished.store(true);
  });
  // 8 rows can never fill a 64-row batch; only flush() completes it.
  while (!finished.load()) {
    predictor.flush();
    std::this_thread::yield();
  }
  caller.join();
  EXPECT_EQ(result, std::vector<int>(serving().reference_labels.begin(),
                                     serving().reference_labels.begin() + 8));
}

TEST(Predictor, ServesAnyEstimator) {
  // The session is generic over the Estimator contract, not Model-bound.
  streambrain::data::SyntheticHiggsGenerator generator;
  const auto train = generator.generate(400);
  std::shared_ptr<streambrain::Estimator> baseline =
      streambrain::make_baseline_estimator("logistic");
  baseline->fit(train.features, train.labels);
  const std::vector<int> reference = baseline->predict(train.features);

  streambrain::Predictor predictor(baseline, {/*max_batch_rows=*/50});
  EXPECT_EQ(predictor.predict(train.features), reference);
  EXPECT_EQ(predictor.stats().batches, 8u);  // 400 rows / 50
}

TEST(Predictor, EmptyRequestIsANoOp) {
  streambrain::Predictor predictor(serving().model);
  const st::MatrixF empty(0, serving().x_test.cols());
  EXPECT_TRUE(predictor.predict(empty).empty());
  EXPECT_TRUE(predictor.predict_scores(empty).empty());
  EXPECT_EQ(predictor.stats().requests, 0u);
}
