// Property-based kernel tests: for randomized shapes, strides, and
// seeds, every SIMD kernel tier (sse42 / avx2, when the host supports
// them) must match the ordered scalar reference within 1e-5 relative
// tolerance — including ragged tails (n % simd_width != 0), empty
// inputs, and aliased outputs. This is the contract that lets the
// dispatcher swap tiers without changing learned behavior.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <vector>

#include "tensor/cpu_features.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernel_set.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vecmath.hpp"
#include "util/rng.hpp"

namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

constexpr float kRelTol = 1e-5f;
constexpr float kAbsTol = 1e-6f;

::testing::AssertionResult near_ref(float reference, float actual) {
  const float bound =
      kAbsTol + kRelTol * std::max(std::abs(reference), std::abs(actual));
  if (std::abs(reference - actual) <= bound) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "reference=" << reference << " actual=" << actual
         << " |diff|=" << std::abs(reference - actual) << " > " << bound;
}

/// Reductions can cancel: the rounding error of reordered accumulation
/// scales with the magnitude of the summed terms, not with the (possibly
/// near-zero) result — so the relative tolerance is taken against the
/// term magnitude `mag` = sum |terms|.
::testing::AssertionResult near_reduced(float reference, float actual,
                                        float mag) {
  const float bound = kAbsTol + kRelTol * (std::abs(reference) + mag);
  if (std::abs(reference - actual) <= bound) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "reference=" << reference << " actual=" << actual
         << " |diff|=" << std::abs(reference - actual) << " > " << bound
         << " (mag=" << mag << ")";
}

/// The non-scalar tiers this host can run (may be empty on exotic CPUs;
/// every test degrades to a no-op there rather than failing).
std::vector<const st::KernelSet*> simd_tiers() {
  std::vector<const st::KernelSet*> tiers;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kSse42, st::DispatchLevel::kAvx2}) {
    if (const st::KernelSet* set = st::kernel_set_for(level)) {
      tiers.push_back(set);
    }
  }
  return tiers;
}

const st::KernelSet& scalar_tier() {
  const st::KernelSet* set = st::kernel_set_for(st::DispatchLevel::kScalar);
  EXPECT_NE(set, nullptr);
  return *set;
}

std::vector<float> random_vector(std::size_t n, su::Rng& rng, float lo,
                                 float hi) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Sizes that deliberately straddle every tier's lane width: empty,
/// single element, one vector, vector +/- 1 (ragged tails), and larger
/// blocks with remainders.
const std::vector<std::size_t>& probe_sizes() {
  static const std::vector<std::size_t> sizes = {0,  1,  3,  4,  5,  7,  8,
                                                 9,  15, 16, 17, 31, 33, 64,
                                                 100, 255, 256, 257};
  return sizes;
}

}  // namespace

TEST(KernelProperty, TiersReportHonestMetadata) {
  const st::KernelSet& scalar = scalar_tier();
  EXPECT_EQ(scalar.level, st::DispatchLevel::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_EQ(scalar.simd_width, 1u);
  for (const st::KernelSet* tier : simd_tiers()) {
    EXPECT_STREQ(tier->name, st::dispatch_level_name(tier->level));
    EXPECT_EQ(tier->simd_width, st::dispatch_level_width(tier->level));
    EXPECT_GT(tier->simd_width, 1u);
  }
  // The active set is always one of the constructible tiers.
  const st::KernelSet& active = st::active_kernels();
  EXPECT_EQ(&active, st::kernel_set_for(active.level));
}

TEST(KernelProperty, ElementwiseKernelsMatchScalar) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        su::Rng rng(seed * 1000 + n);
        const auto x = random_vector(n, rng, -3.0f, 3.0f);
        const float alpha = static_cast<float>(rng.uniform(-2.0, 2.0));

        auto y_ref = random_vector(n, rng, -3.0f, 3.0f);
        auto y_simd = y_ref;
        scalar.axpy(alpha, x.data(), y_ref.data(), n);
        tier->axpy(alpha, x.data(), y_simd.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(near_ref(y_ref[i], y_simd[i]))
              << tier->name << " axpy n=" << n << " i=" << i;
        }

        auto s_ref = x;
        auto s_simd = x;
        scalar.scale(alpha, s_ref.data(), n);
        tier->scale(alpha, s_simd.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(near_ref(s_ref[i], s_simd[i]))
              << tier->name << " scale n=" << n;
        }

        auto p_ref = random_vector(n, rng, 0.0f, 1.0f);
        auto p_simd = p_ref;
        scalar.ema_update(p_ref.data(), x.data(), 0.37f, n);
        tier->ema_update(p_simd.data(), x.data(), 0.37f, n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(near_ref(p_ref[i], p_simd[i]))
              << tier->name << " ema_update n=" << n;
        }

        auto r_ref = x;
        auto r_simd = x;
        scalar.relu(r_ref.data(), n);
        tier->relu(r_simd.data(), n);
        EXPECT_EQ(r_ref, r_simd) << tier->name << " relu n=" << n;
      }
    }
  }
}

TEST(KernelProperty, ReductionsMatchScalar) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        su::Rng rng(seed * 7919 + n);
        const auto x = random_vector(n, rng, -5.0f, 5.0f);
        const auto y = random_vector(n, rng, -5.0f, 5.0f);
        float dot_mag = 0.0f;
        float sum_mag = 0.0f;
        for (std::size_t i = 0; i < n; ++i) {
          dot_mag += std::abs(x[i] * y[i]);
          sum_mag += std::abs(x[i]);
        }
        EXPECT_TRUE(near_reduced(scalar.dot(x.data(), y.data(), n),
                                 tier->dot(x.data(), y.data(), n), dot_mag))
            << tier->name << " dot n=" << n << " seed=" << seed;
        EXPECT_TRUE(near_reduced(scalar.sum(x.data(), n),
                                 tier->sum(x.data(), n), sum_mag))
            << tier->name << " sum n=" << n << " seed=" << seed;
        // Max is exact: no rounding is involved in either tier.
        EXPECT_EQ(scalar.reduce_max(x.data(), n),
                  tier->reduce_max(x.data(), n))
            << tier->name << " reduce_max n=" << n;
      }
    }
  }
  // Empty reduction identity.
  for (const st::KernelSet* tier : simd_tiers()) {
    EXPECT_EQ(tier->reduce_max(nullptr, 0), -FLT_MAX);
    EXPECT_EQ(tier->sum(nullptr, 0), 0.0f);
  }
}

TEST(KernelProperty, ThresholdMaskMatchesScalarIncludingAliased) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      su::Rng rng(n + 13);
      const auto gate = random_vector(n, rng, -1.0f, 1.0f);
      auto x_ref = random_vector(n, rng, -2.0f, 2.0f);
      auto x_simd = x_ref;
      scalar.threshold_mask(gate.data(), 0.0f, x_ref.data(), n);
      tier->threshold_mask(gate.data(), 0.0f, x_simd.data(), n);
      EXPECT_EQ(x_ref, x_simd) << tier->name << " threshold_mask n=" << n;

      // Aliased edge case: gate IS the output (in-place ReLU shape).
      auto a_ref = random_vector(n, rng, -2.0f, 2.0f);
      auto a_simd = a_ref;
      scalar.threshold_mask(a_ref.data(), 0.25f, a_ref.data(), n);
      tier->threshold_mask(a_simd.data(), 0.25f, a_simd.data(), n);
      EXPECT_EQ(a_ref, a_simd)
          << tier->name << " aliased threshold_mask n=" << n;
    }
  }
}

TEST(KernelProperty, AxpyAliasedOutputMatchesScalar) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      su::Rng rng(n + 101);
      // y += alpha * y — x aliases the accumulator.
      auto y_ref = random_vector(n, rng, -2.0f, 2.0f);
      auto y_simd = y_ref;
      scalar.axpy(0.5f, y_ref.data(), y_ref.data(), n);
      tier->axpy(0.5f, y_simd.data(), y_simd.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(near_ref(y_ref[i], y_simd[i]))
            << tier->name << " aliased axpy n=" << n;
      }
    }
  }
}

TEST(KernelProperty, TranscendentalsMatchScalarOverFullRange) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      su::Rng rng(n + 31);
      // Include the clamp boundaries and far-out-of-range values.
      auto x = random_vector(n, rng, -30.0f, 30.0f);
      if (n >= 8) {
        x[0] = -200.0f;
        x[1] = 200.0f;
        x[2] = -87.0f;
        x[3] = -87.5f;
        x[4] = 88.0f;
        x[5] = 0.0f;
        x[6] = -0.0f;
        x[7] = 87.9f;
      }
      std::vector<float> e_ref(n);
      std::vector<float> e_simd(n);
      scalar.vexp(x.data(), e_ref.data(), n);
      tier->vexp(x.data(), e_simd.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(near_ref(e_ref[i], e_simd[i]))
            << tier->name << " vexp n=" << n << " x=" << x[i];
      }

      // vlog_floored: probabilities spanning subnormal-to-large, plus
      // non-positive inputs that must hit the floor.
      auto p = random_vector(n, rng, 0.0f, 4.0f);
      if (n >= 4) {
        p[0] = 0.0f;
        p[1] = -1.0f;
        p[2] = 1e-30f;
        p[3] = 1e30f;
      }
      std::vector<float> l_ref(n);
      std::vector<float> l_simd(n);
      scalar.vlog_floored(p.data(), l_ref.data(), 1e-8f, n);
      tier->vlog_floored(p.data(), l_simd.data(), 1e-8f, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(near_ref(l_ref[i], l_simd[i]))
            << tier->name << " vlog_floored n=" << n << " p=" << p[i];
      }
    }
  }
}

TEST(KernelProperty, MomentumUpdateMatchesScalarAndFusedSemantics) {
  const st::KernelSet& scalar = scalar_tier();
  for (const std::size_t n : probe_sizes()) {
    su::Rng rng(n + 77);
    const auto g = random_vector(n, rng, -1.0f, 1.0f);
    auto w_ref = random_vector(n, rng, -1.0f, 1.0f);
    auto v_ref = random_vector(n, rng, -0.5f, 0.5f);
    // Scalar semantics: v = mu*v - lr*(g + l2*w_old); w += v.
    std::vector<float> w_expect = w_ref;
    std::vector<float> v_expect = v_ref;
    for (std::size_t i = 0; i < n; ++i) {
      v_expect[i] = 0.9f * v_expect[i] - 0.1f * (g[i] + 0.01f * w_expect[i]);
      w_expect[i] += v_expect[i];
    }
    scalar.momentum_update(0.9f, 0.1f, 0.01f, g.data(), w_ref.data(),
                           v_ref.data(), n);
    EXPECT_EQ(w_ref, w_expect) << "scalar momentum semantics n=" << n;
    EXPECT_EQ(v_ref, v_expect) << "scalar momentum semantics n=" << n;

    for (const st::KernelSet* tier : simd_tiers()) {
      auto w_simd = w_expect;  // continue from the same state
      auto v_simd = v_expect;
      auto w_ref2 = w_expect;
      auto v_ref2 = v_expect;
      scalar.momentum_update(0.9f, 0.1f, 0.01f, g.data(), w_ref2.data(),
                             v_ref2.data(), n);
      tier->momentum_update(0.9f, 0.1f, 0.01f, g.data(), w_simd.data(),
                            v_simd.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(near_ref(w_ref2[i], w_simd[i]))
            << tier->name << " momentum w n=" << n;
        ASSERT_TRUE(near_ref(v_ref2[i], v_simd[i]))
            << tier->name << " momentum v n=" << n;
      }
    }
  }
}

TEST(KernelProperty, ScalarTierTranscendentalsAreBitwiseFastExpLog) {
  // The kernel TUs carry a branchless restatement of fast_exp/fast_log
  // (tensor/vecmath.hpp). On the scalar tier — same flags, no FMA — the
  // restatement must be BITWISE identical to the public helpers over the
  // whole float range, so a coefficient edit on either side cannot
  // silently diverge the two copies.
  const st::KernelSet& scalar = scalar_tier();
  std::vector<float> xs;
  for (float x = -120.0f; x <= 120.0f; x += 0.0917f) xs.push_back(x);
  xs.insert(xs.end(), {-87.0f, -87.0000001f, 88.0f, 88.5f, 0.0f, -0.0f});
  std::vector<float> out(xs.size());
  scalar.vexp(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i], st::fast_exp(xs[i])) << "x=" << xs[i];
  }
  std::vector<float> ps;
  for (float p = 1e-10f; p < 1e10f; p *= 1.3f) ps.push_back(p);
  ps.insert(ps.end(), {0.0f, -1.0f, -3.5f, 1.0f, 2.0f});
  out.resize(ps.size());
  // floor == lowest float keeps every positive input unfloored.
  scalar.vlog_floored(ps.data(), out.data(), -FLT_MAX, ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(out[i], st::fast_log(ps[i])) << "p=" << ps[i];
  }
}

TEST(KernelProperty, SoftmaxBlockMatchesScalar) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t n : probe_sizes()) {
      if (n == 0) continue;  // a zero-wide block is rejected upstream
      for (const float inv_temp : {0.5f, 1.0f, 4.0f}) {
        su::Rng rng(n * 17 + static_cast<std::uint64_t>(inv_temp * 8));
        auto v_ref = random_vector(n, rng, -50.0f, 50.0f);
        auto v_simd = v_ref;
        scalar.softmax_block(v_ref.data(), n, inv_temp);
        tier->softmax_block(v_simd.data(), n, inv_temp);
        float total = 0.0f;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(near_ref(v_ref[i], v_simd[i]))
              << tier->name << " softmax n=" << n << " beta=" << inv_temp;
          total += v_simd[i];
        }
        EXPECT_NEAR(total, 1.0f, 1e-4f);
      }
    }
  }
}

TEST(KernelProperty, GemvMatchesScalarWithPaddedStride) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (const std::size_t m : {0UL, 1UL, 3UL, 17UL, 40UL}) {
      for (const std::size_t k : {0UL, 1UL, 5UL, 16UL, 33UL}) {
        for (const std::size_t pad : {0UL, 3UL}) {
          const std::size_t lda = k + pad;
          if (lda == 0) continue;
          su::Rng rng(m * 100 + k * 10 + pad);
          const auto a = random_vector(m * lda, rng, -2.0f, 2.0f);
          const auto x = random_vector(k, rng, -2.0f, 2.0f);
          std::vector<float> y_ref(m, -9.0f);
          std::vector<float> y_simd(m, -9.0f);
          scalar.gemv(a.data(), lda, x.data(), y_ref.data(), m, k);
          tier->gemv(a.data(), lda, x.data(), y_simd.data(), m, k);
          for (std::size_t i = 0; i < m; ++i) {
            float mag = 0.0f;
            for (std::size_t p = 0; p < k; ++p) {
              mag += std::abs(a[i * lda + p] * x[p]);
            }
            ASSERT_TRUE(near_reduced(y_ref[i], y_simd[i], mag))
                << tier->name << " gemv m=" << m << " k=" << k
                << " lda=" << lda;
          }
        }
      }
    }
  }
}

TEST(KernelProperty, GemmBlockMatchesScalarWithPaddedStrides) {
  const st::KernelSet& scalar = scalar_tier();
  for (const st::KernelSet* tier : simd_tiers()) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      su::Rng rng(seed * 37);
      // Random shapes biased to straddle the 4x16 register tile.
      const std::size_t mr = static_cast<std::size_t>(rng.uniform_int(0, 9));
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 40));
      const std::size_t k = static_cast<std::size_t>(rng.uniform_int(0, 20));
      const std::size_t lda = k + static_cast<std::size_t>(rng.uniform_int(0, 4));
      const std::size_t ldb = n + static_cast<std::size_t>(rng.uniform_int(0, 4));
      const std::size_t ldc = n + static_cast<std::size_t>(rng.uniform_int(0, 4));
      const float alpha = static_cast<float>(rng.uniform(-2.0, 2.0));

      const auto a = random_vector(std::max<std::size_t>(1, mr * lda), rng,
                                   -1.5f, 1.5f);
      const auto b = random_vector(std::max<std::size_t>(1, k * ldb), rng,
                                   -1.5f, 1.5f);
      auto c_ref = random_vector(std::max<std::size_t>(1, mr * ldc), rng,
                                 -1.0f, 1.0f);
      auto c_simd = c_ref;
      // Per-element term magnitude for the cancellation-aware tolerance.
      std::vector<float> mag(c_ref.size(), 0.0f);
      for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          float m_acc = std::abs(c_ref[i * ldc + j]);
          for (std::size_t p = 0; p < k; ++p) {
            m_acc += std::abs(alpha * a[i * lda + p] * b[p * ldb + j]);
          }
          mag[i * ldc + j] = m_acc;
        }
      }
      scalar.gemm_block(alpha, a.data(), lda, b.data(), ldb, c_ref.data(),
                        ldc, mr, n, k);
      tier->gemm_block(alpha, a.data(), lda, b.data(), ldb, c_simd.data(),
                       ldc, mr, n, k);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_TRUE(near_reduced(c_ref[i], c_simd[i], mag[i]))
            << tier->name << " gemm_block seed=" << seed << " mr=" << mr
            << " n=" << n << " k=" << k << " elem=" << i;
      }
      // Padding columns (j >= n per row) must be untouched — verified by
      // the exact equality of the shared initial values above wherever
      // the kernel was not supposed to write.
    }
  }
}

TEST(KernelProperty, DispatchedGemmMatchesNaiveUnderEveryTier) {
  // End-to-end: the public tensor::gemm (packing, beta scaling,
  // ThreadPool fan-out) agrees with gemm_naive whichever tier is forced.
  const st::DispatchLevel original = st::active_kernels().level;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (st::kernel_set_for(level) == nullptr) continue;
    st::force_dispatch(level);
    for (const auto& [m, n, k] :
         std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
             {1, 1, 1}, {3, 5, 7}, {17, 33, 9}, {40, 56, 300}, {65, 19, 64}}) {
      su::Rng rng(m * 1000 + n * 10 + k);
      st::MatrixF a(m, k, 0.0f);
      st::MatrixF b(k, n, 0.0f);
      for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      st::MatrixF c_ref(m, n, 0.5f);
      st::MatrixF c(m, n, 0.5f);
      st::gemm_naive(st::Transpose::kNo, st::Transpose::kNo, 1.5f, a, b,
                     0.25f, c_ref);
      st::gemm(st::Transpose::kNo, st::Transpose::kNo, 1.5f, a, b, 0.25f, c);
      // Magnitude of the accumulated terms per element: |alpha| |A| |B|.
      st::MatrixF a_abs = a;
      st::MatrixF b_abs = b;
      for (float& v : a_abs) v = std::abs(v);
      for (float& v : b_abs) v = std::abs(v);
      st::MatrixF mag(m, n, 0.5f * 0.25f);
      st::gemm_naive(st::Transpose::kNo, st::Transpose::kNo, 1.5f, a_abs,
                     b_abs, 1.0f, mag);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_TRUE(
            near_reduced(c_ref.data()[i], c.data()[i], mag.data()[i]))
            << st::dispatch_level_name(level) << " m=" << m << " n=" << n
            << " k=" << k;
      }
    }
  }
  st::force_dispatch(original);
}

TEST(KernelProperty, ForceDispatchRejectsUnavailableTiersAndRoundTrips) {
  const st::DispatchLevel original = st::active_kernels().level;
  // Forcing scalar always works and is observable.
  st::force_dispatch(st::DispatchLevel::kScalar);
  EXPECT_EQ(st::active_kernels().level, st::DispatchLevel::kScalar);
  EXPECT_STREQ(st::active_kernels().name, "scalar");
  // Restore and verify.
  st::force_dispatch(original);
  EXPECT_EQ(st::active_kernels().level, original);
  if (st::kernel_set_for(st::DispatchLevel::kAvx2) == nullptr) {
    EXPECT_THROW(st::force_dispatch(st::DispatchLevel::kAvx2),
                 std::invalid_argument);
  }
}
