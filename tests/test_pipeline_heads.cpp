// Additional pipeline coverage: the SGD-head path, csv-backed pipeline,
// experiment config plumbing, and visualization grid options.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "data/higgs.hpp"
#include "viz/catalyst.hpp"

namespace sc = streambrain::core;
namespace sd = streambrain::data;
namespace sv = streambrain::viz;
namespace fs = std::filesystem;

namespace {

sc::HiggsExperimentConfig tiny_experiment() {
  sc::HiggsExperimentConfig config;
  config.train_events = 900;
  config.test_events = 300;
  config.network.bcpnn.hcus = 1;
  config.network.bcpnn.mcus = 30;
  config.network.bcpnn.receptive_field = 0.4;
  config.network.bcpnn.epochs = 4;
  config.network.bcpnn.head_epochs = 10;
  config.seed = 31;
  return config;
}

}  // namespace

TEST(PipelineHeads, SgdHeadBeatsChance) {
  auto config = tiny_experiment();
  config.network.head = sc::HeadType::kSgd;
  const auto result = sc::run_higgs_experiment(config);
  EXPECT_GT(result.test_accuracy, 0.55);
  EXPECT_GT(result.test_auc, 0.58);
}

TEST(PipelineHeads, SgdHeadDeterministicForSeed) {
  auto config = tiny_experiment();
  config.network.head = sc::HeadType::kSgd;
  const auto a = sc::run_higgs_experiment(config);
  const auto b = sc::run_higgs_experiment(config);
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.test_auc, b.test_auc);
}

TEST(PipelineHeads, CsvBackedPipelineRuns) {
  // Write a small synthetic csv, then run the identical experiment
  // through the csv path (the real-HIGGS code path).
  const std::string path = "/tmp/streambrain_pipeline_higgs.csv";
  {
    sd::SyntheticHiggsGenerator generator;
    const auto data = generator.generate(2600);
    std::ofstream out(path);
    for (std::size_t r = 0; r < data.size(); ++r) {
      out << data.labels[r];
      for (std::size_t c = 0; c < data.dim(); ++c) {
        out << ',' << data.features(r, c);
      }
      out << '\n';
    }
  }
  auto config = tiny_experiment();
  config.csv_path = path;
  const auto result = sc::run_higgs_experiment(config);
  EXPECT_GT(result.test_accuracy, 0.5);
  fs::remove(path);
}

TEST(PipelineHeads, TrainSecondsCoverFitPhases) {
  const auto result = sc::run_higgs_experiment(tiny_experiment());
  EXPECT_GE(result.train_seconds, result.fit.unsupervised_seconds);
  EXPECT_GT(result.fit.unsupervised_seconds, 0.0);
  EXPECT_GT(result.fit.head_seconds, 0.0);
}

TEST(PipelineHeads, CatalystGridWidthControlsVtiLayout) {
  const std::string dir = "/tmp/streambrain_grid_test";
  fs::remove_all(dir);
  sv::CatalystOptions options;
  options.output_dir = dir;
  options.grid_width = 7;  // 28 features -> 7x4 grid
  sv::CatalystAdaptor adaptor(options);
  auto config = tiny_experiment();
  config.network.bcpnn.epochs = 2;
  config.catalyst = &adaptor;
  (void)sc::run_higgs_experiment(config);

  // The VTI extent line must reflect the 7-wide grid.
  std::ifstream vti(dir + "/fields_epoch0000_hcu00.vti");
  ASSERT_TRUE(vti.good());
  std::string content((std::istreambuf_iterator<char>(vti)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("WholeExtent=\"0 6 0 3 0 0\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(PipelineHeads, LoadOrGenerateUsesExistingFile) {
  const std::string path = "/tmp/streambrain_log_test.csv";
  {
    sd::SyntheticHiggsGenerator generator;
    const auto data = generator.generate(5);
    std::ofstream out(path);
    for (std::size_t r = 0; r < data.size(); ++r) {
      out << data.labels[r];
      for (std::size_t c = 0; c < data.dim(); ++c) {
        out << ',' << data.features(r, c);
      }
      out << '\n';
    }
  }
  // When the file exists, it is loaded (5 rows) rather than generated
  // (which would give 100 rows).
  const auto loaded = sd::load_or_generate_higgs(path, 100, 1);
  EXPECT_EQ(loaded.size(), 5u);
  fs::remove(path);
}
