// Tests for the CSV result writer used by the benchmark harness.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace su = streambrain::util;
namespace fs = std::filesystem;

TEST(Csv, BasicSerialization) {
  su::CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
  su::CsvWriter csv({"name", "value"});
  csv.add_row({"with,comma", "with\"quote"});
  csv.add_row({"with\nnewline", "plain"});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"with\nnewline\""), std::string::npos);
}

TEST(Csv, RejectsArityMismatch) {
  su::CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
}

TEST(Csv, WritesFileAndCreatesDirectories) {
  const std::string dir = "/tmp/streambrain_csv_test/nested";
  const std::string path = dir + "/out.csv";
  fs::remove_all("/tmp/streambrain_csv_test");
  su::CsvWriter csv({"x"});
  csv.add_row({"42"});
  csv.write(path);
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "x\n42\n");
  fs::remove_all("/tmp/streambrain_csv_test");
}

TEST(Csv, EmptyTableIsJustHeader) {
  su::CsvWriter csv({"only", "headers"});
  EXPECT_EQ(csv.to_string(), "only,headers\n");
}
