// Tests for the BCPNN hidden layer, supervised classifier layer and SGD
// head: activation invariants, masking semantics, learning behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.hpp"
#include "core/layer.hpp"
#include "core/sgd_head.hpp"
#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

namespace {

sc::BcpnnConfig small_config() {
  sc::BcpnnConfig config;
  config.input_hypercolumns = 6;
  config.input_bins = 5;
  config.hcus = 2;
  config.mcus = 4;
  config.receptive_field = 0.5;
  config.epochs = 4;
  config.batch_size = 8;
  config.engine = "simd";
  return config;
}

/// One-hot batch where the active bin of every hypercolumn is label-driven
/// for hypercolumns < informative_hcs and random otherwise.
st::MatrixF synthetic_batch(const sc::BcpnnConfig& config, std::size_t rows,
                            su::Rng& rng, std::vector<int>* labels = nullptr,
                            std::size_t informative_hcs = 3) {
  st::MatrixF x(rows, config.input_units(), 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const int label = static_cast<int>(rng.uniform_index(2));
    if (labels != nullptr) (*labels).push_back(label);
    for (std::size_t f = 0; f < config.input_hypercolumns; ++f) {
      std::size_t bin;
      if (f < informative_hcs) {
        // Signal concentrates in high bins, background in low bins.
        bin = label == 1 ? 3 + rng.uniform_index(2) : rng.uniform_index(2);
      } else {
        bin = rng.uniform_index(config.input_bins);
      }
      x(r, f * config.input_bins + bin) = 1.0f;
    }
  }
  return x;
}

}  // namespace

// --------------------------------------------------------------- layer ----

TEST(BcpnnLayer, InitialWeightsAreZeroAndActivationsUniform) {
  auto config = small_config();
  auto engine = sp::make_engine("naive");
  su::Rng rng(1);
  sc::BcpnnLayer layer(config, *engine, rng);

  // With the independent uniform prior, w = log(pij/(pi pj)) = log(1) = 0
  // on unmasked connections.
  for (float w : layer.weights()) {
    EXPECT_NEAR(w, 0.0f, 1e-5f);
  }
  su::Rng data_rng(2);
  const auto x = synthetic_batch(config, 4, data_rng);
  st::MatrixF activations;
  layer.forward(x, activations);
  for (float a : activations) {
    EXPECT_NEAR(a, 1.0f / static_cast<float>(config.mcus), 1e-4f);
  }
}

TEST(BcpnnLayer, ActivationsFormSimplexPerHcu) {
  auto config = small_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(3);
  sc::BcpnnLayer layer(config, *engine, rng);
  su::Rng data_rng(4);
  const auto x = synthetic_batch(config, 16, data_rng);
  for (int step = 0; step < 10; ++step) layer.train_batch(x, 1.0f);

  st::MatrixF activations;
  layer.forward(x, activations);
  for (std::size_t r = 0; r < activations.rows(); ++r) {
    for (std::size_t h = 0; h < config.hcus; ++h) {
      float mass = 0.0f;
      for (std::size_t m = 0; m < config.mcus; ++m) {
        const float a = activations(r, h * config.mcus + m);
        EXPECT_GE(a, 0.0f);
        EXPECT_LE(a, 1.0f);
        mass += a;
      }
      EXPECT_NEAR(mass, 1.0f, 1e-4f);
    }
  }
}

TEST(BcpnnLayer, MaskedInputsContributeNothing) {
  auto config = small_config();
  auto engine = sp::make_engine("naive");
  su::Rng rng(5);
  sc::BcpnnLayer layer(config, *engine, rng);
  su::Rng data_rng(6);
  const auto x = synthetic_batch(config, 16, data_rng);
  for (int step = 0; step < 5; ++step) layer.train_batch(x, 0.5f);

  // Zero out a masked-out input hypercolumn in a probe: activations must
  // be identical because silent connections carry zero weight.
  std::size_t silent_hc = config.input_hypercolumns;
  for (std::size_t i = 0; i < config.input_hypercolumns; ++i) {
    if (!layer.masks().active(0, i)) {
      silent_hc = i;
      break;
    }
  }
  ASSERT_LT(silent_hc, config.input_hypercolumns) << "no silent hypercolumn";

  st::MatrixF probe = x;
  st::MatrixF base_act;
  layer.forward(probe, base_act);
  for (std::size_t r = 0; r < probe.rows(); ++r) {
    for (std::size_t b = 0; b < config.input_bins; ++b) {
      probe(r, silent_hc * config.input_bins + b) = 0.0f;
    }
  }
  st::MatrixF altered_act;
  layer.forward(probe, altered_act);
  for (std::size_t r = 0; r < probe.rows(); ++r) {
    for (std::size_t m = 0; m < config.mcus; ++m) {
      // Only HCU 0's block is guaranteed unaffected (the silent HC may be
      // active for HCU 1).
      EXPECT_NEAR(base_act(r, m), altered_act(r, m), 1e-5f);
    }
  }
}

TEST(BcpnnLayer, NoisyForwardDiffersFromDeterministic) {
  auto config = small_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(7);
  sc::BcpnnLayer layer(config, *engine, rng);
  su::Rng data_rng(8);
  const auto x = synthetic_batch(config, 8, data_rng);
  st::MatrixF a_det;
  st::MatrixF a_noisy;
  layer.forward(x, a_det);
  layer.forward_noisy(x, a_noisy, 3.0f);
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a_det.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(a_det.data()[i] - a_noisy.data()[i]));
  }
  EXPECT_GT(max_diff, 1e-3f);
}

TEST(BcpnnLayer, TrainingBreaksMcuSymmetry) {
  auto config = small_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(9);
  sc::BcpnnLayer layer(config, *engine, rng);
  su::Rng data_rng(10);
  const auto x = synthetic_batch(config, 32, data_rng);
  for (int step = 0; step < 40; ++step) layer.train_batch(x, 2.0f);

  // After noisy training, different MCUs should prefer different inputs:
  // the weight columns within an HCU must not all be identical.
  const auto& w = layer.weights();
  float total_column_spread = 0.0f;
  for (std::size_t i = 0; i < w.rows(); ++i) {
    float lo = w(i, 0);
    float hi = w(i, 0);
    for (std::size_t m = 1; m < config.mcus; ++m) {
      lo = std::min(lo, w(i, m));
      hi = std::max(hi, w(i, m));
    }
    total_column_spread += hi - lo;
  }
  EXPECT_GT(total_column_spread, 0.1f);
}

TEST(BcpnnLayer, ForwardRejectsWrongWidth) {
  auto config = small_config();
  auto engine = sp::make_engine("naive");
  su::Rng rng(11);
  sc::BcpnnLayer layer(config, *engine, rng);
  st::MatrixF bad(2, config.input_units() + 1);
  st::MatrixF out;
  EXPECT_THROW(layer.forward(bad, out), std::invalid_argument);
}

TEST(BcpnnLayer, SetStateRoundTrip) {
  auto config = small_config();
  auto engine = sp::make_engine("simd");
  su::Rng rng(13);
  sc::BcpnnLayer source(config, *engine, rng);
  su::Rng rng2(14);
  sc::BcpnnLayer target(config, *engine, rng2);
  su::Rng data_rng(15);
  const auto x = synthetic_batch(config, 16, data_rng);
  for (int step = 0; step < 10; ++step) source.train_batch(x, 1.0f);

  target.set_state(source.traces(), source.masks());
  st::MatrixF a_source;
  st::MatrixF a_target;
  source.forward(x, a_source);
  target.forward(x, a_target);
  for (std::size_t i = 0; i < a_source.size(); ++i) {
    EXPECT_NEAR(a_source.data()[i], a_target.data()[i], 1e-6f);
  }
}

TEST(BcpnnConfig, ValidateCatchesBadValues) {
  sc::BcpnnConfig config = small_config();
  config.receptive_field = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.alpha = 0.0f;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_config();
  config.mcus = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(BcpnnConfig, MaskCardinalityCeilAndClamp) {
  sc::BcpnnConfig config = small_config();
  config.input_hypercolumns = 28;
  config.receptive_field = 0.30;
  EXPECT_EQ(config.mask_cardinality(), 9u);  // ceil(8.4)
  config.receptive_field = 0.0;
  EXPECT_EQ(config.mask_cardinality(), 1u);  // clamped to >= 1
  config.receptive_field = 1.0;
  EXPECT_EQ(config.mask_cardinality(), 28u);
}

TEST(BcpnnConfig, ApplyOverlaysConfigKeys) {
  sc::BcpnnConfig config = small_config();
  const auto overlay =
      su::Config::parse("hcus=4, mcus=77, receptive_field=0.8, engine=naive");
  config.apply(overlay);
  EXPECT_EQ(config.hcus, 4u);
  EXPECT_EQ(config.mcus, 77u);
  EXPECT_DOUBLE_EQ(config.receptive_field, 0.8);
  EXPECT_EQ(config.engine, "naive");
  EXPECT_EQ(config.input_bins, 5u);  // untouched keys preserved
}

// ---------------------------------------------------------- classifier ----

TEST(BcpnnClassifier, LearnsLinearlySeparableHiddenCodes) {
  auto engine = sp::make_engine("simd");
  sc::BcpnnClassifier classifier(8, 2, 2, *engine, 0.1f);
  su::Rng rng(17);
  st::MatrixF hidden(32, 8);
  st::MatrixF targets(32, 2, 0.0f);
  std::vector<int> labels(32);
  for (int epoch = 0; epoch < 30; ++epoch) {
    hidden.fill(0.0f);
    targets.fill(0.0f);
    for (std::size_t r = 0; r < 32; ++r) {
      const int label = static_cast<int>(rng.uniform_index(2));
      labels[r] = label;
      // class-dependent hidden pattern with noise
      for (std::size_t c = 0; c < 8; ++c) {
        hidden(r, c) = static_cast<float>(rng.uniform(0.0, 0.2));
      }
      hidden(r, label == 1 ? 1 : 5) += 0.8f;
      targets(r, static_cast<std::size_t>(label)) = 1.0f;
    }
    classifier.train_batch(hidden, targets);
  }
  const auto predictions = classifier.predict_labels(hidden);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 32; ++r) {
    correct += predictions[r] == labels[r] ? 1 : 0;
  }
  EXPECT_GT(correct, 28u);
}

TEST(BcpnnClassifier, ProbabilitiesSumToOne) {
  auto engine = sp::make_engine("naive");
  sc::BcpnnClassifier classifier(6, 1, 3, *engine, 0.1f);
  st::MatrixF hidden(5, 6, 0.3f);
  st::MatrixF probs;
  classifier.predict(hidden, probs);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    float mass = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) mass += probs(r, c);
    EXPECT_NEAR(mass, 1.0f, 1e-5f);
  }
}

TEST(BcpnnClassifier, ScoresMatchClassOneProbability) {
  auto engine = sp::make_engine("naive");
  sc::BcpnnClassifier classifier(4, 1, 2, *engine, 0.1f);
  st::MatrixF hidden(3, 4, 0.25f);
  st::MatrixF probs;
  classifier.predict(hidden, probs);
  const auto scores = classifier.predict_scores(hidden);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(scores[r], probs(r, 1), 1e-6);
  }
}

TEST(BcpnnClassifier, RejectsBadShapes) {
  auto engine = sp::make_engine("naive");
  EXPECT_THROW(sc::BcpnnClassifier(4, 1, 1, *engine, 0.1f),
               std::invalid_argument);
  sc::BcpnnClassifier classifier(4, 1, 2, *engine, 0.1f);
  st::MatrixF hidden(2, 4);
  st::MatrixF bad_targets(2, 3);
  EXPECT_THROW(classifier.train_batch(hidden, bad_targets),
               std::invalid_argument);
}

// ------------------------------------------------------------ sgd head ----

TEST(SgdHead, LearnsLinearlySeparableData) {
  sc::SgdHeadConfig config;
  config.learning_rate = 0.5f;
  sc::SgdHead head(2, 2, config);
  su::Rng rng(19);
  st::MatrixF x(64, 2);
  st::MatrixF targets(64, 2, 0.0f);
  std::vector<int> labels(64);
  for (std::size_t r = 0; r < 64; ++r) {
    const int label = static_cast<int>(rng.uniform_index(2));
    labels[r] = label;
    x(r, 0) = static_cast<float>(rng.normal(label == 1 ? 1.0 : -1.0, 0.3));
    x(r, 1) = static_cast<float>(rng.normal(0.0, 0.3));
    targets(r, static_cast<std::size_t>(label)) = 1.0f;
  }
  double last_loss = 1e9;
  for (int epoch = 0; epoch < 30; ++epoch) {
    last_loss = head.train_epoch(x, targets);
  }
  EXPECT_LT(last_loss, 0.2);
  const auto predictions = head.predict_labels(x);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 64; ++r) {
    correct += predictions[r] == labels[r] ? 1 : 0;
  }
  EXPECT_GT(correct, 60u);
}

TEST(SgdHead, LossDecreasesOverEpochs) {
  sc::SgdHead head(3, 2);
  su::Rng rng(23);
  st::MatrixF x(128, 3);
  st::MatrixF targets(128, 2, 0.0f);
  for (std::size_t r = 0; r < 128; ++r) {
    const int label = static_cast<int>(rng.uniform_index(2));
    for (std::size_t c = 0; c < 3; ++c) {
      x(r, c) =
          static_cast<float>(rng.normal(label == 1 ? 0.5 : -0.5, 1.0));
    }
    targets(r, static_cast<std::size_t>(label)) = 1.0f;
  }
  const double first = head.train_epoch(x, targets);
  double last = first;
  for (int epoch = 0; epoch < 20; ++epoch) last = head.train_epoch(x, targets);
  EXPECT_LT(last, first);
}

TEST(SgdHead, PredictionSimplex) {
  sc::SgdHead head(4, 3);
  st::MatrixF x(6, 4, 0.5f);
  st::MatrixF probs;
  head.predict(x, probs);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    float mass = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GE(probs(r, c), 0.0f);
      mass += probs(r, c);
    }
    EXPECT_NEAR(mass, 1.0f, 1e-5f);
  }
}

TEST(SgdHead, RejectsShapeMismatch) {
  sc::SgdHead head(4, 2);
  st::MatrixF x(2, 4);
  st::MatrixF bad(3, 2);
  EXPECT_THROW(head.train_epoch(x, bad), std::invalid_argument);
}
