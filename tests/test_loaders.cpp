// Tests for the IDX (MNIST) and CIFAR binary loaders: round-trips,
// format validation, fallbacks.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/cifar_loader.hpp"
#include "data/digits.hpp"
#include "data/idx_loader.hpp"
#include "util/rng.hpp"

namespace sd = streambrain::data;
namespace su = streambrain::util;
namespace fs = std::filesystem;

// ----------------------------------------------------------------- IDX ----

TEST(Idx, ArrayRoundTrip) {
  sd::IdxArray array;
  array.dims = {2, 3, 4};
  array.values.resize(24);
  for (std::size_t i = 0; i < 24; ++i) {
    array.values[i] = static_cast<std::uint8_t>(i * 7);
  }
  const std::string path = "/tmp/streambrain_test.idx";
  sd::write_idx(path, array);
  const auto loaded = sd::read_idx(path);
  EXPECT_EQ(loaded.dims, array.dims);
  EXPECT_EQ(loaded.values, array.values);
  fs::remove(path);
}

TEST(Idx, WriterRejectsDimMismatch) {
  sd::IdxArray array;
  array.dims = {2, 2};
  array.values.resize(3);  // should be 4
  EXPECT_THROW(sd::write_idx("/tmp/x.idx", array), std::invalid_argument);
}

TEST(Idx, ReaderRejectsBadMagic) {
  const std::string path = "/tmp/streambrain_bad.idx";
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[] = "JUNKJUNKJUNK";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(sd::read_idx(path), std::runtime_error);
  fs::remove(path);
}

TEST(Idx, ReaderRejectsTruncatedPayload) {
  sd::IdxArray array;
  array.dims = {10};
  array.values.resize(10, 1);
  const std::string path = "/tmp/streambrain_trunc.idx";
  sd::write_idx(path, array);
  // Chop off the last 3 bytes.
  fs::resize_file(path, fs::file_size(path) - 3);
  EXPECT_THROW(sd::read_idx(path), std::runtime_error);
  fs::remove(path);
}

TEST(Idx, MnistPairRoundTrip) {
  sd::SyntheticDigitGenerator generator;
  const auto original = generator.generate(40);
  const std::string images = "/tmp/streambrain_images.idx";
  const std::string labels = "/tmp/streambrain_labels.idx";
  sd::save_mnist(original, sd::kDigitSide, images, labels);
  const auto loaded = sd::load_mnist(images, labels);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.dim(), original.dim());
  EXPECT_EQ(loaded.labels, original.labels);
  // Pixels survive 8-bit quantization to within half a level.
  for (std::size_t r = 0; r < loaded.size(); ++r) {
    for (std::size_t p = 0; p < loaded.dim(); ++p) {
      EXPECT_NEAR(loaded.features(r, p), original.features(r, p),
                  0.5f / 255.0f + 1e-4f);
    }
  }
  fs::remove(images);
  fs::remove(labels);
}

TEST(Idx, MaxRowsLimitsLoad) {
  sd::SyntheticDigitGenerator generator;
  const auto original = generator.generate(30);
  const std::string images = "/tmp/streambrain_images2.idx";
  const std::string labels = "/tmp/streambrain_labels2.idx";
  sd::save_mnist(original, sd::kDigitSide, images, labels);
  EXPECT_EQ(sd::load_mnist(images, labels, 7).size(), 7u);
  fs::remove(images);
  fs::remove(labels);
}

TEST(Idx, FallbackWhenFilesMissing) {
  const auto dataset =
      sd::load_mnist_or_synthetic("/no/such/images", "/no/such/labels", 25, 3);
  EXPECT_EQ(dataset.size(), 25u);
  EXPECT_EQ(dataset.dim(), sd::kDigitPixels);
}

// --------------------------------------------------------------- CIFAR ----

namespace {

sd::Dataset random_cifar_like(std::size_t n, std::uint64_t seed) {
  su::Rng rng(seed);
  sd::Dataset dataset;
  dataset.features = streambrain::tensor::MatrixF(
      n, sd::kCifarChannels * sd::kCifarPixels);
  dataset.labels.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    dataset.labels[r] = static_cast<int>(rng.uniform_index(10));
    for (std::size_t p = 0; p < dataset.dim(); ++p) {
      dataset.features(r, p) = static_cast<float>(rng.uniform());
    }
  }
  return dataset;
}

}  // namespace

TEST(Cifar, RoundTrip) {
  const auto original = random_cifar_like(12, 17);
  const std::string path = "/tmp/streambrain_cifar.bin";
  sd::save_cifar10(original, path);
  const auto loaded = sd::load_cifar(path);
  ASSERT_EQ(loaded.size(), 12u);
  ASSERT_EQ(loaded.dim(), 3072u);
  EXPECT_EQ(loaded.labels, original.labels);
  for (std::size_t p = 0; p < loaded.dim(); ++p) {
    EXPECT_NEAR(loaded.features(0, p), original.features(0, p),
                0.5f / 255.0f + 1e-4f);
  }
  fs::remove(path);
}

TEST(Cifar, GrayscaleCollapsesChannels) {
  const auto original = random_cifar_like(5, 19);
  const std::string path = "/tmp/streambrain_cifar_gray.bin";
  sd::save_cifar10(original, path);
  sd::CifarOptions options;
  options.grayscale = true;
  const auto loaded = sd::load_cifar(path, options);
  ASSERT_EQ(loaded.dim(), 1024u);
  // Spot-check the luminance formula on pixel 0 of row 0.
  const float expected = 0.299f * original.features(0, 0) +
                         0.587f * original.features(0, 1024) +
                         0.114f * original.features(0, 2048);
  EXPECT_NEAR(loaded.features(0, 0), expected, 2.0f / 255.0f);
  fs::remove(path);
}

TEST(Cifar, MaxRowsLimitsLoad) {
  const auto original = random_cifar_like(9, 23);
  const std::string path = "/tmp/streambrain_cifar_max.bin";
  sd::save_cifar10(original, path);
  sd::CifarOptions options;
  options.max_rows = 4;
  EXPECT_EQ(sd::load_cifar(path, options).size(), 4u);
  fs::remove(path);
}

TEST(Cifar, RejectsPartialRecords) {
  const auto original = random_cifar_like(2, 29);
  const std::string path = "/tmp/streambrain_cifar_bad.bin";
  sd::save_cifar10(original, path);
  fs::resize_file(path, fs::file_size(path) - 100);
  EXPECT_THROW(sd::load_cifar(path), std::runtime_error);
  fs::remove(path);
}

TEST(Cifar, Cifar100TwoLabelBytes) {
  // Hand-build one CIFAR-100 record: coarse=7, fine=42, gray ramp pixels.
  const std::string path = "/tmp/streambrain_cifar100.bin";
  {
    std::ofstream out(path, std::ios::binary);
    unsigned char header[2] = {7, 42};
    out.write(reinterpret_cast<char*>(header), 2);
    std::vector<unsigned char> pixels(3072, 100);
    out.write(reinterpret_cast<char*>(pixels.data()), 3072);
  }
  sd::CifarOptions options;
  options.cifar100 = true;
  options.use_fine_labels = true;
  EXPECT_EQ(sd::load_cifar(path, options).labels[0], 42);
  options.use_fine_labels = false;
  EXPECT_EQ(sd::load_cifar(path, options).labels[0], 7);
  fs::remove(path);
}
