// Golden-regression tests: train one small fixed-seed model per head
// type on the scalar kernel tier (strict left-to-right accumulation, no
// libc exp/log on the model path — fully deterministic across hosts) and
// compare predictions, scores, accuracy, and log-loss against digests
// committed under tests/golden/. Any drift — a kernel swap changing
// numerics, a refactor reordering accumulation — fails loudly instead of
// silently changing learned behavior.
//
// The SIMD tiers are not pinned to these exact digests (FMA and lane
// reassociation legitimately change rounding); their contract is the
// property suite (test_kernels_property.cpp) plus the tolerance check at
// the end of each test here, which re-runs inference under the startup
// dispatch tier and bounds its drift from the scalar-trained goldens.
//
// Regenerate after an intentional behavior change with:
//   STREAMBRAIN_UPDATE_GOLDEN=1 ./test_golden_model

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;
namespace sg = streambrain::testing;

namespace {

using sg::Digest;
using sg::ScopedDispatch;

struct FixtureData {
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
};

const FixtureData& fixture() {
  static const FixtureData data = [] {
    streambrain::data::SyntheticHiggsGenerator train_generator;
    const auto train = train_generator.generate(700);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 4242;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);
    FixtureData out;
    out.x_train = encoder.fit_transform(train.features);
    out.y_train = train.labels;
    out.x_test = encoder.transform(test.features);
    out.y_test = test.labels;
    return out;
  }();
  return data;
}

double binary_log_loss(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = std::min(std::max(scores[i], 1e-12), 1.0 - 1e-12);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return scores.empty() ? 0.0 : total / static_cast<double>(scores.size());
}

Digest run_model(sc::HeadType head) {
  const FixtureData& data = fixture();
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, head)
      .set_option("epochs", 3)
      .compile("simd", /*seed=*/7);
  model.fit(data.x_train, data.y_train);
  Digest digest;
  digest.labels = model.predict(data.x_test);
  digest.scores = model.predict_scores(data.x_test);
  digest.accuracy = model.evaluate(data.x_test, data.y_test);
  digest.log_loss = binary_log_loss(digest.scores, data.y_test);
  return digest;
}

void check_against_golden(const std::string& name, sc::HeadType head) {
  Digest actual;
  {
    // Scalar tier: platform-stable ordered math for exact digests.
    const ScopedDispatch pin(st::DispatchLevel::kScalar);
    actual = run_model(head);
  }

  if (sg::update_mode()) {
    sg::write_digest(name, actual);
    GTEST_SKIP() << "regenerated " << sg::golden_path(name);
  }

  Digest expected;
  ASSERT_TRUE(sg::read_digest(name, expected))
      << "missing golden digest " << sg::golden_path(name)
      << " — run with STREAMBRAIN_UPDATE_GOLDEN=1 to create it";

  // Exact label digest; tight numeric tolerances (the stored text has 12
  // significant digits, and std::log in the loss is the only libm call).
  EXPECT_EQ(actual.labels, expected.labels) << name << ": label drift";
  EXPECT_NEAR(actual.accuracy, expected.accuracy, 1e-9) << name;
  EXPECT_NEAR(actual.log_loss, expected.log_loss, 1e-7) << name;
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (std::size_t i = 0; i < actual.scores.size(); ++i) {
    EXPECT_NEAR(actual.scores[i], expected.scores[i], 1e-8)
        << name << ": score drift at row " << i;
  }

  // Secondary guard: training + inference under the startup dispatch
  // tier (possibly SSE4.2/AVX2) must stay within honest float tolerance
  // of the scalar goldens — kernel tiers may round differently but must
  // not change learned behavior.
  const Digest simd = run_model(head);
  EXPECT_NEAR(simd.accuracy, expected.accuracy, 0.02) << name;
  EXPECT_NEAR(simd.log_loss, expected.log_loss, 0.02) << name;
  std::size_t label_mismatches = 0;
  for (std::size_t i = 0; i < simd.labels.size(); ++i) {
    if (simd.labels[i] != expected.labels[i]) ++label_mismatches;
  }
  // At most 2% of rows may sit close enough to the decision boundary to
  // flip under a different rounding of the same math.
  EXPECT_LE(label_mismatches, simd.labels.size() / 50 + 1)
      << name << ": " << label_mismatches << "/" << simd.labels.size()
      << " labels changed under '" << st::active_kernels().name
      << "' dispatch";
}

}  // namespace

TEST(GoldenModel, BcpnnHeadMatchesCommittedDigest) {
  check_against_golden("bcpnn_head", sc::HeadType::kBcpnn);
}

TEST(GoldenModel, SgdHeadMatchesCommittedDigest) {
  check_against_golden("sgd_head", sc::HeadType::kSgd);
}

TEST(GoldenModel, UpdateModeIsOffInCommittedRuns) {
  // A committed tree must never run in regeneration mode by accident;
  // this test documents the env contract.
  if (sg::update_mode()) {
    GTEST_SKIP() << "STREAMBRAIN_UPDATE_GOLDEN is set (regeneration run)";
  }
  SUCCEED();
}
