// Golden-regression tests: train one small fixed-seed model per head
// type on the scalar kernel tier (strict left-to-right accumulation, no
// libc exp/log on the model path — fully deterministic across hosts) and
// compare predictions, scores, accuracy, and log-loss against digests
// committed under tests/golden/. Any drift — a kernel swap changing
// numerics, a refactor reordering accumulation — fails loudly instead of
// silently changing learned behavior.
//
// The SIMD tiers are not pinned to these exact digests (FMA and lane
// reassociation legitimately change rounding); their contract is the
// property suite (test_kernels_property.cpp) plus the tolerance check at
// the end of each test here, which re-runs inference under the startup
// dispatch tier and bounds its drift from the scalar-trained goldens.
//
// Regenerate after an intentional behavior change with:
//   STREAMBRAIN_UPDATE_GOLDEN=1 ./test_golden_model

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;

#ifndef STREAMBRAIN_GOLDEN_DIR
#define STREAMBRAIN_GOLDEN_DIR "tests/golden"
#endif

namespace {

struct Digest {
  double accuracy = 0.0;
  double log_loss = 0.0;
  std::vector<int> labels;
  std::vector<double> scores;
};

std::string golden_path(const std::string& name) {
  return std::string(STREAMBRAIN_GOLDEN_DIR) + "/" + name + ".txt";
}

bool update_mode() {
  const char* env = std::getenv("STREAMBRAIN_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_digest(const std::string& name, const Digest& digest) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out.precision(12);
  out << "# golden digest '" << name << "' — scalar-dispatch training;\n";
  out << "# regenerate with STREAMBRAIN_UPDATE_GOLDEN=1 ./test_golden_model\n";
  out << "accuracy " << digest.accuracy << "\n";
  out << "log_loss " << digest.log_loss << "\n";
  out << "labels " << digest.labels.size();
  for (const int label : digest.labels) out << ' ' << label;
  out << "\nscores " << digest.scores.size();
  for (const double score : digest.scores) out << ' ' << score;
  out << "\n";
}

bool read_digest(const std::string& name, Digest& digest) {
  std::ifstream in(golden_path(name));
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "accuracy") {
      fields >> digest.accuracy;
    } else if (key == "log_loss") {
      fields >> digest.log_loss;
    } else if (key == "labels") {
      std::size_t count = 0;
      fields >> count;
      digest.labels.resize(count);
      for (std::size_t i = 0; i < count; ++i) fields >> digest.labels[i];
    } else if (key == "scores") {
      std::size_t count = 0;
      fields >> count;
      digest.scores.resize(count);
      for (std::size_t i = 0; i < count; ++i) fields >> digest.scores[i];
    }
  }
  return true;
}

/// RAII dispatch pin so a failing assertion cannot leak the scalar tier
/// into other tests of this binary.
struct ScopedDispatch {
  explicit ScopedDispatch(st::DispatchLevel level)
      : previous(st::force_dispatch(level)) {}
  ~ScopedDispatch() { st::force_dispatch(previous); }
  st::DispatchLevel previous;
};

struct FixtureData {
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
};

const FixtureData& fixture() {
  static const FixtureData data = [] {
    streambrain::data::SyntheticHiggsGenerator train_generator;
    const auto train = train_generator.generate(700);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 4242;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);
    FixtureData out;
    out.x_train = encoder.fit_transform(train.features);
    out.y_train = train.labels;
    out.x_test = encoder.transform(test.features);
    out.y_test = test.labels;
    return out;
  }();
  return data;
}

double binary_log_loss(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = std::min(std::max(scores[i], 1e-12), 1.0 - 1e-12);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return scores.empty() ? 0.0 : total / static_cast<double>(scores.size());
}

Digest run_model(sc::HeadType head) {
  const FixtureData& data = fixture();
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, head)
      .set_option("epochs", 3)
      .compile("simd", /*seed=*/7);
  model.fit(data.x_train, data.y_train);
  Digest digest;
  digest.labels = model.predict(data.x_test);
  digest.scores = model.predict_scores(data.x_test);
  digest.accuracy = model.evaluate(data.x_test, data.y_test);
  digest.log_loss = binary_log_loss(digest.scores, data.y_test);
  return digest;
}

void check_against_golden(const std::string& name, sc::HeadType head) {
  Digest actual;
  {
    // Scalar tier: platform-stable ordered math for exact digests.
    const ScopedDispatch pin(st::DispatchLevel::kScalar);
    actual = run_model(head);
  }

  if (update_mode()) {
    write_digest(name, actual);
    GTEST_SKIP() << "regenerated " << golden_path(name);
  }

  Digest expected;
  ASSERT_TRUE(read_digest(name, expected))
      << "missing golden digest " << golden_path(name)
      << " — run with STREAMBRAIN_UPDATE_GOLDEN=1 to create it";

  // Exact label digest; tight numeric tolerances (the stored text has 12
  // significant digits, and std::log in the loss is the only libm call).
  EXPECT_EQ(actual.labels, expected.labels) << name << ": label drift";
  EXPECT_NEAR(actual.accuracy, expected.accuracy, 1e-9) << name;
  EXPECT_NEAR(actual.log_loss, expected.log_loss, 1e-7) << name;
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (std::size_t i = 0; i < actual.scores.size(); ++i) {
    EXPECT_NEAR(actual.scores[i], expected.scores[i], 1e-8)
        << name << ": score drift at row " << i;
  }

  // Secondary guard: training + inference under the startup dispatch
  // tier (possibly SSE4.2/AVX2) must stay within honest float tolerance
  // of the scalar goldens — kernel tiers may round differently but must
  // not change learned behavior.
  const Digest simd = run_model(head);
  EXPECT_NEAR(simd.accuracy, expected.accuracy, 0.02) << name;
  EXPECT_NEAR(simd.log_loss, expected.log_loss, 0.02) << name;
  std::size_t label_mismatches = 0;
  for (std::size_t i = 0; i < simd.labels.size(); ++i) {
    if (simd.labels[i] != expected.labels[i]) ++label_mismatches;
  }
  // At most 2% of rows may sit close enough to the decision boundary to
  // flip under a different rounding of the same math.
  EXPECT_LE(label_mismatches, simd.labels.size() / 50 + 1)
      << name << ": " << label_mismatches << "/" << simd.labels.size()
      << " labels changed under '" << st::active_kernels().name
      << "' dispatch";
}

}  // namespace

TEST(GoldenModel, BcpnnHeadMatchesCommittedDigest) {
  check_against_golden("bcpnn_head", sc::HeadType::kBcpnn);
}

TEST(GoldenModel, SgdHeadMatchesCommittedDigest) {
  check_against_golden("sgd_head", sc::HeadType::kSgd);
}

TEST(GoldenModel, UpdateModeIsOffInCommittedRuns) {
  // A committed tree must never run in regeneration mode by accident;
  // this test documents the env contract.
  if (update_mode()) {
    GTEST_SKIP() << "STREAMBRAIN_UPDATE_GOLDEN is set (regeneration run)";
  }
  SUCCEED();
}
