// Tests for core probability traces and structural plasticity:
// simplex/mass invariants, MI estimation, mask-cardinality conservation,
// hysteresis behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/plasticity.hpp"
#include "core/traces.hpp"
#include "parallel/engine.hpp"
#include "util/rng.hpp"

namespace sc = streambrain::core;
namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

// ------------------------------------------------------------- traces ----

TEST(Traces, UniformPriorInitialization) {
  sc::ProbabilityTraces traces(20, 10, 12, 4);
  for (float p : traces.pi()) EXPECT_FLOAT_EQ(p, 0.1f);
  for (float p : traces.pj()) EXPECT_FLOAT_EQ(p, 0.25f);
  for (float p : traces.pij()) EXPECT_FLOAT_EQ(p, 0.025f);
}

TEST(Traces, RejectsIndivisibleGeometry) {
  EXPECT_THROW(sc::ProbabilityTraces(21, 10, 12, 4), std::invalid_argument);
  EXPECT_THROW(sc::ProbabilityTraces(20, 10, 13, 4), std::invalid_argument);
  EXPECT_THROW(sc::ProbabilityTraces(20, 0, 12, 4), std::invalid_argument);
}

TEST(Traces, HypercolumnMassStartsAtOne) {
  sc::ProbabilityTraces traces(30, 10, 8, 4);
  for (double mass : traces.input_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-5);
  }
  for (double mass : traces.output_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-5);
  }
}

TEST(Traces, MassPreservedUnderOneHotUpdates) {
  // Property: with one-hot inputs and soft-WTA activations (both sum to 1
  // per hypercolumn), trace updates preserve the per-hypercolumn mass.
  sc::ProbabilityTraces traces(20, 10, 8, 4);
  auto engine = sp::make_engine("simd");
  su::Rng rng(31);
  st::MatrixF x(16, 20, 0.0f);
  st::MatrixF a(16, 8, 0.0f);
  for (int step = 0; step < 25; ++step) {
    x.fill(0.0f);
    for (std::size_t r = 0; r < 16; ++r) {
      x(r, rng.uniform_index(10)) = 1.0f;
      x(r, 10 + rng.uniform_index(10)) = 1.0f;
      // random soft activations normalized per HCU of 4
      for (std::size_t h = 0; h < 2; ++h) {
        float total = 0.0f;
        float vals[4];
        for (auto& v : vals) {
          v = static_cast<float>(rng.uniform(0.01, 1.0));
          total += v;
        }
        for (std::size_t m = 0; m < 4; ++m) a(r, h * 4 + m) = vals[m] / total;
      }
    }
    traces.update(*engine, x, a, 0.1f);
  }
  for (double mass : traces.input_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-3);
  }
  for (double mass : traces.output_hypercolumn_mass()) {
    EXPECT_NEAR(mass, 1.0, 1e-3);
  }
}

TEST(Traces, ConvergesToEmpiricalFrequencies) {
  // Feeding the same deterministic pattern forever drives traces to it.
  sc::ProbabilityTraces traces(10, 10, 4, 4);
  auto engine = sp::make_engine("naive");
  st::MatrixF x(1, 10, 0.0f);
  x(0, 3) = 1.0f;
  st::MatrixF a(1, 4, 0.0f);
  a(0, 1) = 1.0f;
  for (int i = 0; i < 500; ++i) traces.update(*engine, x, a, 0.05f);
  EXPECT_NEAR(traces.pi()[3], 1.0f, 1e-3);
  EXPECT_NEAR(traces.pi()[0], 0.0f, 1e-3);
  EXPECT_NEAR(traces.pj()[1], 1.0f, 1e-3);
  EXPECT_NEAR(traces.pij()(3, 1), 1.0f, 1e-3);
  EXPECT_NEAR(traces.pij()(3, 0), 0.0f, 1e-3);
}

TEST(Traces, UpdateRejectsShapeMismatch) {
  sc::ProbabilityTraces traces(10, 10, 4, 4);
  auto engine = sp::make_engine("naive");
  st::MatrixF x(2, 8);
  st::MatrixF a(2, 4);
  EXPECT_THROW(traces.update(*engine, x, a, 0.1f), std::invalid_argument);
}

// ------------------------------------------------------------- masks ----

TEST(Masks, InitialCardinalityExact) {
  su::Rng rng(37);
  sc::ReceptiveFieldMasks masks(5, 28, 9, rng);
  EXPECT_EQ(masks.hcus(), 5u);
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_EQ(masks.active_count(h), 9u);
  }
}

TEST(Masks, RejectsBadCardinality) {
  su::Rng rng(41);
  EXPECT_THROW(sc::ReceptiveFieldMasks(2, 10, 0, rng), std::invalid_argument);
  EXPECT_THROW(sc::ReceptiveFieldMasks(2, 10, 11, rng), std::invalid_argument);
}

TEST(Masks, RandomInitDiffersAcrossHcus) {
  su::Rng rng(43);
  sc::ReceptiveFieldMasks masks(8, 28, 9, rng);
  // At least one pair of HCUs should have different masks.
  bool any_different = false;
  for (std::size_t h = 1; h < 8 && !any_different; ++h) {
    any_different = masks.mask(0) != masks.mask(h);
  }
  EXPECT_TRUE(any_different);
}

// -------------------------------------------------- mutual information ----

namespace {

/// Traces where input hypercolumn 0 is perfectly correlated with the HCU
/// activation and hypercolumn 1 is independent of it.
sc::ProbabilityTraces correlated_traces() {
  sc::ProbabilityTraces traces(8, 4, 4, 4);  // 2 input HCs x 4 bins, 1 HCU x 4
  auto engine = sp::make_engine("naive");
  su::Rng rng(47);
  st::MatrixF x(1, 8, 0.0f);
  st::MatrixF a(1, 4, 0.0f);
  for (int i = 0; i < 2000; ++i) {
    x.fill(0.0f);
    a.fill(0.0f);
    const std::size_t bin = rng.uniform_index(4);
    x(0, bin) = 1.0f;                       // HC0 bin == activation
    x(0, 4 + rng.uniform_index(4)) = 1.0f;  // HC1 random
    a(0, bin) = 1.0f;
    traces.update(*engine, x, a, 0.02f);
  }
  return traces;
}

}  // namespace

TEST(MutualInformation, CorrelatedBeatsIndependent) {
  const auto traces = correlated_traces();
  const double mi_correlated =
      sc::mutual_information(traces, 0, 4, 0, 4, 1e-6f);
  const double mi_independent =
      sc::mutual_information(traces, 1, 4, 0, 4, 1e-6f);
  EXPECT_GT(mi_correlated, 5.0 * std::max(mi_independent, 1e-6));
  // Perfect 4-way correlation approaches log(4).
  EXPECT_GT(mi_correlated, 0.8 * std::log(4.0));
}

TEST(MutualInformation, NonNegative) {
  sc::ProbabilityTraces traces(20, 10, 8, 4);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t h = 0; h < 2; ++h) {
      EXPECT_GE(sc::mutual_information(traces, i, 10, h, 4, 1e-6f), 0.0);
    }
  }
}

TEST(MutualInformation, MapShapeMatchesGeometry) {
  sc::ProbabilityTraces traces(30, 10, 12, 4);
  const auto map = sc::mutual_information_map(traces, 10, 3, 4, 1e-6f);
  ASSERT_EQ(map.size(), 3u);
  for (const auto& row : map) EXPECT_EQ(row.size(), 3u);
}

// ------------------------------------------------ structural plasticity ----

TEST(Plasticity, SwapsTowardInformativeInput) {
  // HC0 carries all the information but starts OUTSIDE the mask; the
  // plasticity step must swap it in.
  const auto traces = correlated_traces();
  su::Rng rng(53);
  sc::ReceptiveFieldMasks masks(1, 2, 1, rng);
  masks.set(0, 0, false);
  masks.set(0, 1, true);  // start with only the uninformative HC active
  sc::PlasticityConfig config;
  config.swaps_per_hcu = 1;
  const std::size_t swaps =
      sc::structural_plasticity_step(masks, traces, 4, 4, 1e-6f, config);
  EXPECT_EQ(swaps, 1u);
  EXPECT_TRUE(masks.active(0, 0));
  EXPECT_FALSE(masks.active(0, 1));
}

TEST(Plasticity, CardinalityConservedUnderManySteps) {
  sc::ProbabilityTraces traces(280, 10, 40, 40);
  auto engine = sp::make_engine("simd");
  su::Rng rng(59);
  sc::ReceptiveFieldMasks masks(1, 28, 11, rng);
  st::MatrixF x(8, 280, 0.0f);
  st::MatrixF a(8, 40, 0.0f);
  sc::PlasticityConfig config;
  config.swaps_per_hcu = 3;
  for (int step = 0; step < 20; ++step) {
    x.fill(0.0f);
    a.fill(0.0f);
    for (std::size_t r = 0; r < 8; ++r) {
      for (std::size_t f = 0; f < 28; ++f) {
        x(r, f * 10 + rng.uniform_index(10)) = 1.0f;
      }
      a(r, rng.uniform_index(40)) = 1.0f;
    }
    traces.update(*engine, x, a, 0.1f);
    sc::structural_plasticity_step(masks, traces, 10, 40, 1e-6f, config);
    EXPECT_EQ(masks.active_count(0), 11u);  // invariant
  }
}

TEST(Plasticity, HysteresisBlocksMarginalSwaps) {
  // With uniform traces every MI is ~equal; an enormous hysteresis factor
  // must prevent all swaps.
  sc::ProbabilityTraces traces(20, 10, 4, 4);
  su::Rng rng(61);
  sc::ReceptiveFieldMasks masks(1, 2, 1, rng);
  sc::PlasticityConfig config;
  config.swaps_per_hcu = 1;
  config.hysteresis = 100.0;
  const auto before = masks.mask(0);
  const std::size_t swaps =
      sc::structural_plasticity_step(masks, traces, 10, 4, 1e-6f, config);
  EXPECT_EQ(swaps, 0u);
  EXPECT_EQ(masks.mask(0), before);
}

TEST(Plasticity, FullMaskHasNothingToSwap) {
  sc::ProbabilityTraces traces(20, 10, 4, 4);
  su::Rng rng(67);
  sc::ReceptiveFieldMasks masks(1, 2, 2, rng);  // 100% receptive field
  sc::PlasticityConfig config;
  const std::size_t swaps =
      sc::structural_plasticity_step(masks, traces, 10, 4, 1e-6f, config);
  EXPECT_EQ(swaps, 0u);
  EXPECT_EQ(masks.active_count(0), 2u);
}
