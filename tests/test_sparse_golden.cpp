// Golden-regression digests for the sparse subsystem: (a) in-training
// prune/rewire (prune_density + prune_cadence options) trained at the
// scalar tier against committed digests under tests/golden/sparse_*.txt,
// and (b) Model::sparsify() round-trips — the sparse clone must predict
// BIT-identically (scalar tier) to the masked dense model it came from,
// survive a v3 checkpoint save/load bitwise, and match its own committed
// digest. Regenerate after an intentional behavior change with:
//   STREAMBRAIN_UPDATE_GOLDEN=1 ./test_sparse_golden

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pruning.hpp"
#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;
namespace sg = streambrain::testing;

namespace {

using sg::Digest;
using sg::ScopedDispatch;

struct FixtureData {
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
};

const FixtureData& fixture() {
  static const FixtureData data = [] {
    streambrain::data::SyntheticHiggsGenerator train_generator;
    const auto train = train_generator.generate(700);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 4242;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);
    FixtureData out;
    out.x_train = encoder.fit_transform(train.features);
    out.y_train = train.labels;
    out.x_test = encoder.transform(test.features);
    out.y_test = test.labels;
    return out;
  }();
  return data;
}

double binary_log_loss(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = std::min(std::max(scores[i], 1e-12), 1.0 - 1e-12);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return scores.empty() ? 0.0 : total / static_cast<double>(scores.size());
}

/// Small fixed-seed model trained with the in-training prune/rewire
/// cadence active (keep 25% of weights, re-selected every epoch).
sc::Model train_pruned_model(sc::HeadType head) {
  const FixtureData& data = fixture();
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, head)
      .set_option("epochs", 3)
      .set_option("prune_density", 0.25)
      .set_option("prune_cadence", 1)
      .compile("simd", /*seed=*/7);
  model.fit(data.x_train, data.y_train);
  return model;
}

Digest digest_of(sc::Model& model) {
  const FixtureData& data = fixture();
  Digest digest;
  digest.labels = model.predict(data.x_test);
  digest.scores = model.predict_scores(data.x_test);
  digest.accuracy = model.evaluate(data.x_test, data.y_test);
  digest.log_loss = binary_log_loss(digest.scores, data.y_test);
  return digest;
}

void check_against_golden(const std::string& name, const Digest& actual) {
  if (sg::update_mode()) {
    sg::write_digest(name, actual);
    GTEST_SKIP() << "regenerated " << sg::golden_path(name);
  }
  Digest expected;
  ASSERT_TRUE(sg::read_digest(name, expected))
      << "missing golden digest " << sg::golden_path(name)
      << " — run with STREAMBRAIN_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(actual.labels, expected.labels) << name << ": label drift";
  EXPECT_NEAR(actual.accuracy, expected.accuracy, 1e-9) << name;
  EXPECT_NEAR(actual.log_loss, expected.log_loss, 1e-7) << name;
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (std::size_t i = 0; i < actual.scores.size(); ++i) {
    EXPECT_NEAR(actual.scores[i], expected.scores[i], 1e-8)
        << name << ": score drift at row " << i;
  }
}

}  // namespace

TEST(SparseGolden, PrunedTrainingBcpnnHeadMatchesCommittedDigest) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  sc::Model model = train_pruned_model(sc::HeadType::kBcpnn);
  // The cadence actually pruned: hidden density at (or just above, from
  // the receptive-field overlap) the configured keep fraction.
  EXPECT_TRUE(model.network().mutable_hidden().pruned());
  EXPECT_LE(model.network().hidden().weight_density(), 0.25 + 1e-9);
  check_against_golden("sparse_pruned_training_bcpnn", digest_of(model));
}

TEST(SparseGolden, PrunedTrainingSgdHeadMatchesCommittedDigest) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  sc::Model model = train_pruned_model(sc::HeadType::kSgd);
  EXPECT_TRUE(model.network().sgd_head()->pruned());
  EXPECT_LE(model.network().sgd_head()->weight_density(), 0.25 + 1e-9);
  check_against_golden("sparse_pruned_training_sgd", digest_of(model));
}

TEST(SparseGolden, SparsifyIsBitIdenticalToMaskedDenseAndRoundTrips) {
  // The acceptance contract of the subsystem: at scalar dispatch, the
  // sparse clone of a pruned model predicts BITWISE like the masked
  // dense model, and the v3 sparse checkpoint reproduces it bitwise too.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const FixtureData& data = fixture();
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    sc::Model dense;
    dense.input(28, 10)
        .hidden(1, 30, 0.4)
        .classifier(2, head)
        .set_option("epochs", 3)
        .compile("simd", /*seed=*/7);
    dense.fit(data.x_train, data.y_train);
    sc::prune_model(dense, 0.1);
    const auto dense_labels = dense.predict(data.x_test);
    const auto dense_scores = dense.predict_scores(data.x_test);

    sc::Model sparse = dense.sparsify();
    ASSERT_TRUE(sparse.sparse());
    ASSERT_FALSE(dense.sparse()) << "sparsify must not mutate the original";
    EXPECT_LE(sparse.network().hidden().sparse_weights().density(),
              0.1 + 1e-9);
    EXPECT_EQ(sparse.predict(data.x_test), dense_labels)
        << sc::head_name(head);
    const auto sparse_scores = sparse.predict_scores(data.x_test);
    ASSERT_EQ(sparse_scores.size(), dense_scores.size());
    for (std::size_t i = 0; i < dense_scores.size(); ++i) {
      ASSERT_EQ(sparse_scores[i], dense_scores[i])
          << sc::head_name(head) << " row " << i;
    }

    // v3 sparse checkpoint round-trip, through a stream (the ShardPool
    // replica-cloning path) — bitwise again.
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    sc::save_model(buffer, sparse);
    sc::Model restored;
    sc::load_model(buffer, restored);
    ASSERT_TRUE(restored.sparse());
    EXPECT_EQ(restored.predict(data.x_test), dense_labels);
    const auto restored_scores = restored.predict_scores(data.x_test);
    for (std::size_t i = 0; i < dense_scores.size(); ++i) {
      ASSERT_EQ(restored_scores[i], dense_scores[i])
          << sc::head_name(head) << " row " << i << " after round-trip";
    }
  }
}

TEST(SparseGolden, SparsifyRoundTripMatchesCommittedDigest) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const FixtureData& data = fixture();
  sc::Model dense;
  dense.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, sc::HeadType::kBcpnn)
      .set_option("epochs", 3)
      .compile("simd", /*seed=*/7);
  dense.fit(data.x_train, data.y_train);
  sc::prune_model(dense, 0.1);
  sc::Model sparse = dense.sparsify();
  // Digest through a full save/load cycle so the committed file pins the
  // v3 sparse wire format, not just the in-memory conversion.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, sparse);
  sc::Model restored;
  sc::load_model(buffer, restored);
  check_against_golden("sparse_sparsify_roundtrip", digest_of(restored));
}

TEST(SparseGolden, SparseModelIsReadOnlyAndCompact) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const FixtureData& data = fixture();
  sc::Model dense;
  dense.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, sc::HeadType::kSgd)
      .set_option("epochs", 2)
      .compile("simd", /*seed=*/3);
  dense.fit(data.x_train, data.y_train);
  sc::prune_model(dense, 0.1);
  sc::Model sparse = dense.sparsify();

  EXPECT_THROW(sparse.fit(data.x_train, data.y_train), std::logic_error);
  EXPECT_THROW(sparse.network().mutable_hidden().plasticity_step(),
               std::logic_error);
  EXPECT_THROW(sc::prune_model(sparse, 0.5), std::logic_error);
  EXPECT_NE(sparse.summary().find("sparse"), std::string::npos);

  // Compactness: the CSR weight payload is far below the dense matrix
  // (traces, which dominated the dense replica, are gone entirely).
  const auto& csr = sparse.network().hidden().sparse_weights();
  const std::size_t dense_bytes = csr.rows() * csr.cols() * sizeof(float);
  EXPECT_LT(csr.memory_bytes(), dense_bytes / 2);
}

TEST(SparseGolden, DeepStackSparsifiesBitIdentically) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const FixtureData& data = fixture();
  sc::Model dense;
  dense.input(28, 10)
      .hidden(2, 16, 0.4)
      .hidden(1, 16, 0.6)
      .classifier(2, sc::HeadType::kBcpnn)
      .set_option("epochs", 2)
      .compile("simd", /*seed=*/5);
  dense.fit(data.x_train, data.y_train);
  sc::prune_model(dense, 0.2);
  const auto dense_labels = dense.predict(data.x_test);
  const auto dense_scores = dense.predict_scores(data.x_test);

  sc::Model sparse = dense.sparsify();
  ASSERT_TRUE(sparse.sparse());
  EXPECT_EQ(sparse.predict(data.x_test), dense_labels);
  const auto sparse_scores = sparse.predict_scores(data.x_test);
  for (std::size_t i = 0; i < dense_scores.size(); ++i) {
    ASSERT_EQ(sparse_scores[i], dense_scores[i]) << "deep row " << i;
  }

  // And the deep sparse checkpoint round-trips bitwise.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, sparse);
  sc::Model restored;
  sc::load_model(buffer, restored);
  EXPECT_EQ(restored.predict(data.x_test), dense_labels);
}
