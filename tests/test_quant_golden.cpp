// Golden-regression digests for the quantized subsystem:
// Model::quantize() round-trips against a committed digest under
// tests/golden/quant_*.txt, quantized accuracy within a fixed epsilon
// of the fp32 model it came from, the v4 quantized checkpoint
// reproducing predictions bitwise, and the full composition
// prune -> sparsify -> quantize. The quantized SUPPORT sums are
// bit-identical across dispatch tiers (asserted here on the trained
// artifact); full predictions still pass through the tier-dependent
// fp32 softmax, so digests are pinned to the scalar tier like the
// sparse suite's. Regenerate after an intentional behavior change with:
//   STREAMBRAIN_UPDATE_GOLDEN=1 ./test_quant_golden

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/pruning.hpp"
#include "core/serialization.hpp"
#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "golden_util.hpp"
#include "tensor/kernel_set.hpp"

namespace sc = streambrain::core;
namespace st = streambrain::tensor;
namespace sg = streambrain::testing;

namespace {

using sg::Digest;
using sg::ScopedDispatch;

/// Quantized accuracy must stay within this of the fp32 model on the
/// 200-row fixture: int8 with per-block scales perturbs scores by well
/// under one quantization step per support sum, which at most flips
/// rows already sitting on the decision boundary.
constexpr double kAccuracyEpsilon = 0.05;

struct FixtureData {
  st::MatrixF x_train;
  std::vector<int> y_train;
  st::MatrixF x_test;
  std::vector<int> y_test;
};

const FixtureData& fixture() {
  static const FixtureData data = [] {
    streambrain::data::SyntheticHiggsGenerator train_generator;
    const auto train = train_generator.generate(700);
    streambrain::data::HiggsGeneratorOptions opts;
    opts.seed = 4242;
    streambrain::data::SyntheticHiggsGenerator test_generator(opts);
    const auto test = test_generator.generate(200);
    streambrain::encode::OneHotEncoder encoder(10);
    FixtureData out;
    out.x_train = encoder.fit_transform(train.features);
    out.y_train = train.labels;
    out.x_test = encoder.transform(test.features);
    out.y_test = test.labels;
    return out;
  }();
  return data;
}

double binary_log_loss(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = std::min(std::max(scores[i], 1e-12), 1.0 - 1e-12);
    total -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
  }
  return scores.empty() ? 0.0 : total / static_cast<double>(scores.size());
}

sc::Model trained_model(sc::HeadType head) {
  const FixtureData& data = fixture();
  sc::Model model;
  model.input(28, 10)
      .hidden(1, 30, 0.4)
      .classifier(2, head)
      .set_option("epochs", 3)
      .compile("simd", /*seed=*/7);
  model.fit(data.x_train, data.y_train);
  return model;
}

Digest digest_of(sc::Model& model) {
  const FixtureData& data = fixture();
  Digest digest;
  digest.labels = model.predict(data.x_test);
  digest.scores = model.predict_scores(data.x_test);
  digest.accuracy = model.evaluate(data.x_test, data.y_test);
  digest.log_loss = binary_log_loss(digest.scores, data.y_test);
  return digest;
}

void check_against_golden(const std::string& name, const Digest& actual) {
  if (sg::update_mode()) {
    sg::write_digest(name, actual);
    GTEST_SKIP() << "regenerated " << sg::golden_path(name);
  }
  Digest expected;
  ASSERT_TRUE(sg::read_digest(name, expected))
      << "missing golden digest " << sg::golden_path(name)
      << " — run with STREAMBRAIN_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(actual.labels, expected.labels) << name << ": label drift";
  EXPECT_NEAR(actual.accuracy, expected.accuracy, 1e-9) << name;
  EXPECT_NEAR(actual.log_loss, expected.log_loss, 1e-7) << name;
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (std::size_t i = 0; i < actual.scores.size(); ++i) {
    EXPECT_NEAR(actual.scores[i], expected.scores[i], 1e-8)
        << name << ": score drift at row " << i;
  }
}

}  // namespace

TEST(QuantGolden, QuantizedAccuracyWithinEpsilonOfFp32BothHeads) {
  const FixtureData& data = fixture();
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    sc::Model dense = trained_model(head);
    const double fp32_accuracy = dense.evaluate(data.x_test, data.y_test);

    sc::Model quant = dense.quantize();
    ASSERT_TRUE(quant.quantized()) << sc::head_name(head);
    ASSERT_FALSE(dense.quantized()) << "quantize must not mutate the original";
    const double quant_accuracy = quant.evaluate(data.x_test, data.y_test);
    EXPECT_NEAR(quant_accuracy, fp32_accuracy, kAccuracyEpsilon)
        << sc::head_name(head);
  }
}

TEST(QuantGolden, QuantizedSupportBitIdenticalAcrossTiersOnTrainedWeights) {
  // The cross-tier contract the sparse path never had: the quantized
  // SUPPORT sums come out the SAME bytes from every dispatch tier
  // (exact integer block sums + fmaf-pinned combine). Full predictions
  // still pass through the tier-dependent fp32 softmax, so the
  // guarantee — and this test — lives at the support level, on the real
  // trained weight artifact (280 inputs / block 32 leaves a ragged
  // 24-wide tail block per row).
  const FixtureData& data = fixture();
  sc::Model quant = trained_model(sc::HeadType::kBcpnn).quantize();
  const auto& wt = quant.network().hidden().quant_weights();
  const auto& bias = quant.network().hidden().bias();
  ASSERT_EQ(wt.cols(), 280u);

  st::MatrixF ref;
  for (const st::DispatchLevel level :
       {st::DispatchLevel::kScalar, st::DispatchLevel::kSse42,
        st::DispatchLevel::kAvx2}) {
    if (st::kernel_set_for(level) == nullptr) continue;
    const ScopedDispatch pin(level);
    st::MatrixF s;
    st::quant_support(wt, data.x_test, bias.data(), s);
    if (ref.size() == 0) {
      ref = s;
      continue;
    }
    ASSERT_EQ(s.rows(), ref.rows());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(s.data()[i], ref.data()[i])
          << st::dispatch_level_name(level) << " elem " << i;
    }
  }
}

TEST(QuantGolden, QuantizeRoundTripMatchesCommittedDigest) {
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  sc::Model quant = trained_model(sc::HeadType::kBcpnn).quantize();
  // Digest through a full save/load cycle so the committed file pins the
  // v4 quantized wire format, not just the in-memory conversion.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, quant);
  sc::Model restored;
  sc::load_model(buffer, restored);
  ASSERT_TRUE(restored.quantized());
  check_against_golden("quant_quantize_roundtrip", digest_of(restored));
}

TEST(QuantGolden, QuantizedCheckpointRoundTripsBitwiseBothHeads) {
  const FixtureData& data = fixture();
  for (const sc::HeadType head : {sc::HeadType::kBcpnn, sc::HeadType::kSgd}) {
    sc::Model quant = trained_model(head).quantize(sc::QuantOptions{
        .block_size = 16});
    const auto labels = quant.predict(data.x_test);
    const auto scores = quant.predict_scores(data.x_test);

    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    sc::save_model(buffer, quant);
    sc::Model restored;
    sc::load_model(buffer, restored);
    ASSERT_TRUE(restored.quantized()) << sc::head_name(head);
    EXPECT_FALSE(restored.sparse()) << sc::head_name(head);
    EXPECT_EQ(restored.predict(data.x_test), labels) << sc::head_name(head);
    const auto restored_scores = restored.predict_scores(data.x_test);
    for (std::size_t i = 0; i < scores.size(); ++i) {
      ASSERT_EQ(restored_scores[i], scores[i])
          << sc::head_name(head) << " row " << i << " after round-trip";
    }
    // The restored clone preserved the block size, not just the codes.
    if (head == sc::HeadType::kBcpnn) {
      EXPECT_EQ(restored.network().hidden().quant_weights().block_size(), 16u);
    }
  }
}

TEST(QuantGolden, PruneSparsifyQuantizeComposesAndRoundTrips) {
  // The full pipeline of the subsystem: magnitude-prune, compact to CSR,
  // then quantize the surviving entries to int8 with per-row scales —
  // and the v4 quant-sparse checkpoint reproduces it bitwise.
  const FixtureData& data = fixture();
  sc::Model dense = trained_model(sc::HeadType::kBcpnn);
  sc::prune_model(dense, 0.1);
  sc::Model sparse = dense.sparsify();
  sc::Model quant = sparse.quantize();
  ASSERT_TRUE(quant.quantized());
  ASSERT_TRUE(quant.sparse()) << "quantizing a sparse model keeps the CSR form";
  ASSERT_FALSE(sparse.quantized());

  // Same index structure as the fp32 CSR, at ~0.1 density.
  const auto& qcsr = quant.network().hidden().quant_sparse_weights();
  EXPECT_EQ(qcsr.nnz(), sparse.network().hidden().sparse_weights().nnz());
  EXPECT_LE(qcsr.density(), 0.1 + 1e-9);
  EXPECT_LT(qcsr.memory_bytes(),
            sparse.network().hidden().sparse_weights().memory_bytes());

  const double sparse_accuracy = sparse.evaluate(data.x_test, data.y_test);
  const double quant_accuracy = quant.evaluate(data.x_test, data.y_test);
  EXPECT_NEAR(quant_accuracy, sparse_accuracy, kAccuracyEpsilon);

  const auto labels = quant.predict(data.x_test);
  const auto scores = quant.predict_scores(data.x_test);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, quant);
  sc::Model restored;
  sc::load_model(buffer, restored);
  ASSERT_TRUE(restored.quantized());
  ASSERT_TRUE(restored.sparse());
  EXPECT_EQ(restored.predict(data.x_test), labels);
  const auto restored_scores = restored.predict_scores(data.x_test);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    ASSERT_EQ(restored_scores[i], scores[i]) << "row " << i;
  }
}

TEST(QuantGolden, QuantizedModelIsReadOnlyAndStateMachineHolds) {
  const FixtureData& data = fixture();
  sc::Model dense = trained_model(sc::HeadType::kSgd);
  sc::Model quant = dense.quantize();

  EXPECT_THROW(quant.fit(data.x_train, data.y_train), std::logic_error);
  EXPECT_THROW(sc::prune_model(quant, 0.5), std::logic_error);
  // Order is prune -> sparsify -> quantize; the reverse composition
  // would quantize twice (once per scale granularity) and is rejected.
  EXPECT_THROW(quant.network().mutable_hidden().sparsify(), std::logic_error);
  EXPECT_NE(quant.summary().find("quantized"), std::string::npos);

  // quantize() of an already-quantized model is an idempotent clone.
  sc::Model again = quant.quantize();
  EXPECT_TRUE(again.quantized());
  EXPECT_EQ(again.predict(data.x_test), quant.predict(data.x_test));

  // Compactness: int8 codes + per-block scales land well under the fp32
  // weight matrix (and the traces are gone entirely).
  const auto& q = quant.network().hidden().quant_weights();
  const std::size_t dense_bytes = q.rows() * q.cols() * sizeof(float);
  EXPECT_LT(q.memory_bytes(), dense_bytes / 3);
}

TEST(QuantGolden, DeepStackQuantizesAndRoundTrips) {
  const FixtureData& data = fixture();
  sc::Model dense;
  dense.input(28, 10)
      .hidden(2, 16, 0.4)
      .hidden(1, 16, 0.6)
      .classifier(2, sc::HeadType::kBcpnn)
      .set_option("epochs", 2)
      .compile("simd", /*seed=*/5);
  dense.fit(data.x_train, data.y_train);
  const double fp32_accuracy = dense.evaluate(data.x_test, data.y_test);

  sc::Model quant = dense.quantize();
  ASSERT_TRUE(quant.quantized());
  EXPECT_NEAR(quant.evaluate(data.x_test, data.y_test), fp32_accuracy,
              kAccuracyEpsilon);

  const auto labels = quant.predict(data.x_test);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sc::save_model(buffer, quant);
  sc::Model restored;
  sc::load_model(buffer, restored);
  ASSERT_TRUE(restored.quantized());
  EXPECT_EQ(restored.predict(data.x_test), labels);
}

TEST(QuantGolden, SparsifyGuardrailPredicate) {
  // Satellite of the quant PR: Model::sparsify() warns (through
  // util::log) when the weight density is at or above the measured
  // pessimization threshold. The log stream has no capture hook, so the
  // predicate that drives the warning is pinned here instead.
  EXPECT_FALSE(sc::sparsify_is_pessimization(0.0));
  EXPECT_FALSE(sc::sparsify_is_pessimization(0.10));
  EXPECT_FALSE(sc::sparsify_is_pessimization(
      sc::kSparsePessimizationDensity - 1e-9));
  EXPECT_TRUE(sc::sparsify_is_pessimization(sc::kSparsePessimizationDensity));
  EXPECT_TRUE(sc::sparsify_is_pessimization(0.5));
  EXPECT_TRUE(sc::sparsify_is_pessimization(1.0));

  // And the guardrailed conversion still proceeds (the warning is
  // advisory — the memory win may be the point): an unpruned model sits
  // far above 25% density and must still sparsify correctly. Scalar
  // pin: dense-vs-sparse bit-identity only holds at the scalar tier.
  const ScopedDispatch pin(st::DispatchLevel::kScalar);
  const FixtureData& data = fixture();
  sc::Model dense = trained_model(sc::HeadType::kBcpnn);
  ASSERT_TRUE(sc::sparsify_is_pessimization(
      dense.network().hidden().weight_density()));
  sc::Model sparse = dense.sparsify();
  EXPECT_TRUE(sparse.sparse());
  EXPECT_EQ(sparse.predict(data.x_test), dense.predict(data.x_test));
}
