// Tests for src/parallel: thread pool, parallel_for, and cross-engine
// agreement of the BCPNN compute primitives (every engine must produce
// the same numbers as the naive reference, to float tolerance).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "parallel/engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace sp = streambrain::parallel;
namespace st = streambrain::tensor;
namespace su = streambrain::util;

// --------------------------------------------------------- thread pool ----

TEST(ThreadPool, ExecutesSubmittedTasks) {
  sp::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  sp::ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  sp::ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  sp::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  sp::ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

// -------------------------------------------------------- parallel_for ----

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  sp::parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunkedCoversRange) {
  std::vector<std::atomic<int>> hits(777);
  sp::parallel_for_chunked(0, 777, 50, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  sp::parallel_for_chunked(5, 5, 10,
                           [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PoolVariantCoversRange) {
  sp::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(321);
  sp::parallel_for_pool(pool, 0, 321, 32,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                        });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------------------- engines ----

namespace {

struct EngineFixture {
  std::size_t batch = 13;
  std::size_t n_in = 30;    // 3 hypercolumns x 10 bins
  std::size_t n_out = 12;   // 3 HCUs x 4 MCUs
  std::size_t mcus = 4;
  st::MatrixF x;
  st::MatrixF w;
  std::vector<float> bias;
  st::MatrixF a;

  EngineFixture() {
    su::Rng rng(2024);
    x = st::MatrixF(batch, n_in, 0.0f);
    // One-hot inputs: one active unit per input hypercolumn of 10.
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t hc = 0; hc < 3; ++hc) {
        x(r, hc * 10 + rng.uniform_index(10)) = 1.0f;
      }
    }
    w = st::MatrixF(n_in, n_out);
    for (float& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
    bias.resize(n_out);
    for (float& v : bias) v = static_cast<float>(rng.uniform(-0.2, 0.2));
    a = st::MatrixF(batch, n_out);
    for (float& v : a) v = static_cast<float>(rng.uniform(0.0, 1.0));
  }
};

}  // namespace

class EngineAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineAgreement, SupportMatchesNaive) {
  EngineFixture fx;
  auto reference = sp::make_engine("naive");
  auto engine = sp::make_engine(GetParam());
  st::MatrixF s_ref;
  st::MatrixF s;
  reference->support(fx.x, fx.w, fx.bias.data(), s_ref);
  engine->support(fx.x, fx.w, fx.bias.data(), s);
  ASSERT_EQ(s.rows(), s_ref.rows());
  ASSERT_EQ(s.cols(), s_ref.cols());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s.data()[i], s_ref.data()[i], 1e-4f);
  }
}

TEST_P(EngineAgreement, SoftmaxMatchesNaive) {
  EngineFixture fx;
  auto reference = sp::make_engine("naive");
  auto engine = sp::make_engine(GetParam());
  st::MatrixF s_ref = fx.a;
  st::MatrixF s = fx.a;
  reference->softmax_hcu(s_ref, fx.mcus, 1.5f);
  engine->softmax_hcu(s, fx.mcus, 1.5f);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s.data()[i], s_ref.data()[i], 1e-5f);
  }
}

TEST_P(EngineAgreement, TraceUpdateMatchesNaive) {
  EngineFixture fx;
  auto reference = sp::make_engine("naive");
  auto engine = sp::make_engine(GetParam());
  std::vector<float> pi_ref(fx.n_in, 0.1f);
  std::vector<float> pj_ref(fx.n_out, 0.25f);
  st::MatrixF pij_ref(fx.n_in, fx.n_out, 0.025f);
  auto pi = pi_ref;
  auto pj = pj_ref;
  st::MatrixF pij = pij_ref;
  reference->update_traces(fx.x, fx.a, 0.07f, pi_ref.data(), pj_ref.data(),
                           pij_ref);
  engine->update_traces(fx.x, fx.a, 0.07f, pi.data(), pj.data(), pij);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(pi[i], pi_ref[i], 1e-5f);
  }
  for (std::size_t j = 0; j < pj.size(); ++j) {
    EXPECT_NEAR(pj[j], pj_ref[j], 1e-5f);
  }
  for (std::size_t i = 0; i < pij.size(); ++i) {
    EXPECT_NEAR(pij.data()[i], pij_ref.data()[i], 1e-5f);
  }
}

TEST_P(EngineAgreement, WeightRecomputeMatchesNaive) {
  EngineFixture fx;
  su::Rng rng(5);
  std::vector<float> pi(fx.n_in);
  std::vector<float> pj(fx.n_out);
  st::MatrixF pij(fx.n_in, fx.n_out);
  for (auto& v : pi) v = static_cast<float>(rng.uniform(0.0, 0.3));
  for (auto& v : pj) v = static_cast<float>(rng.uniform(0.0, 0.3));
  for (auto& v : pij) v = static_cast<float>(rng.uniform(0.0, 0.1));

  auto reference = sp::make_engine("naive");
  auto engine = sp::make_engine(GetParam());
  st::MatrixF w_ref;
  st::MatrixF w;
  std::vector<float> b_ref(fx.n_out);
  std::vector<float> b(fx.n_out);
  reference->recompute_weights(pi.data(), pj.data(), pij, 1e-4f, 1.0f, w_ref,
                               b_ref.data());
  engine->recompute_weights(pi.data(), pj.data(), pij, 1e-4f, 1.0f, w,
                            b.data());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w.data()[i], w_ref.data()[i],
                1e-4f * (1.0f + std::abs(w_ref.data()[i])));
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    EXPECT_NEAR(b[j], b_ref[j], 1e-4f * (1.0f + std::abs(b_ref[j])));
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineAgreement,
                         ::testing::Values("openmp", "simd", "device_sim"));

TEST(Engines, FactoryRejectsUnknownName) {
  EXPECT_THROW(sp::make_engine("cuda"), std::invalid_argument);
}

TEST(Engines, AllRegisteredNamesConstruct) {
  for (const auto& name : sp::engine_names()) {
    const auto engine = sp::make_engine(name);
    EXPECT_EQ(engine->name(), name);
  }
}

TEST(Engines, HostEnginesReportZeroTransfers) {
  EngineFixture fx;
  for (const std::string name : {"naive", "openmp", "simd"}) {
    auto engine = sp::make_engine(name);
    st::MatrixF s;
    engine->support(fx.x, fx.w, fx.bias.data(), s);
    EXPECT_EQ(engine->transfer_bytes(), 0u) << name;
  }
}

TEST(Engines, DeviceSimAccountsTransfers) {
  EngineFixture fx;
  auto engine = sp::make_engine("device_sim");
  st::MatrixF s;
  engine->support(fx.x, fx.w, fx.bias.data(), s);
  const std::uint64_t expected =
      (fx.x.size() + fx.batch * fx.n_out) * sizeof(float);
  EXPECT_EQ(engine->transfer_bytes(), expected);
  // Device-side ops move nothing further.
  engine->softmax_hcu(s, fx.mcus, 1.0f);
  std::vector<float> pi(fx.n_in, 0.1f);
  std::vector<float> pj(fx.n_out, 0.1f);
  st::MatrixF pij(fx.n_in, fx.n_out, 0.01f);
  engine->update_traces(fx.x, fx.a, 0.1f, pi.data(), pj.data(), pij);
  EXPECT_EQ(engine->transfer_bytes(), expected);
}

TEST(Engines, SoftmaxRejectsBadBlocks) {
  for (const auto& name : sp::engine_names()) {
    auto engine = sp::make_engine(name);
    st::MatrixF s(2, 5);
    EXPECT_THROW(engine->softmax_hcu(s, 2, 1.0f), std::invalid_argument)
        << name;
  }
}
