#!/usr/bin/env python3
"""Unit tests for tools/sb_lint.py.

Two test families:
  - real-tree: the shipped sources must pass every check (this is the
    same gate CI runs, so a failure here is a real regression);
  - fixtures: minimal mutated sources that MUST be flagged — a linter
    that cannot catch the bug class it was built for is worse than no
    linter, because it launders confidence.

Runs under ctest (label `lint`) with plain unittest — no external deps.
"""

import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import sb_lint  # noqa: E402


SECTION_ENUM_OK = """
enum class Section : std::uint32_t {
  kLayer = 1,
  kClassifier = 2,
};
void f() {
  write_u32(out, static_cast<std::uint32_t>(Section::kLayer));
  if (tag != static_cast<std::uint32_t>(Section::kLayer)) {}
  write_u32(out, static_cast<std::uint32_t>(Section::kClassifier));
  if (tag == static_cast<std::uint32_t>(Section::kClassifier)) {}
}
"""

KERNEL_HEADER = """
struct KernelSet {
  DispatchLevel level = DispatchLevel::kScalar;
  const char* name = "scalar";
  std::size_t simd_width = 1;
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  float (*dot)(const float* x, const float* y, std::size_t n);
  void (*gemv)(const float* a, std::size_t lda, const float* x, float* y,
               std::size_t m, std::size_t k);
};
"""

TIER_OK = """
const KernelSet* kernel_set_scalar() noexcept {
  static const KernelSet set = {
      DispatchLevel::kScalar,
      dispatch_level_name(DispatchLevel::kScalar),
      dispatch_level_width(DispatchLevel::kScalar),
      &k_axpy,
      &k_dot,
      &k_gemv,
  };
  return &set;
}
"""

ASYNC_HPP_OK = """
struct AsyncPredictorStats {
  std::uint64_t batches = 0;
  std::uint64_t full_closes = 0;
  std::uint64_t deadline_closes = 0;
  [[nodiscard]] std::uint64_t close_reasons_total() const noexcept {
    return full_closes + deadline_closes;
  }
};
class AsyncPredictor {
  enum class CloseReason { kFull, kDeadline };
};
"""

ASYNC_CPP_OK = """
void AsyncPredictor::run_batch(BatchJob& job) {
  switch (job.reason) {
    case CloseReason::kFull: stats_.full_closes += 1; break;
    case CloseReason::kDeadline: stats_.deadline_closes += 1; break;
  }
}
"""


class RealTreeTest(unittest.TestCase):
    """The shipped repo must be lint-clean."""

    def test_repo_passes_all_checks(self):
        self.assertEqual(sb_lint.run_all(REPO_ROOT), [])


class CheckpointSectionTest(unittest.TestCase):
    def test_clean_fixture_passes(self):
        self.assertEqual(
            sb_lint.check_checkpoint_sections(SECTION_ENUM_OK), [])

    def test_duplicate_tag_is_flagged(self):
        mutated = SECTION_ENUM_OK.replace("kClassifier = 2", "kClassifier = 1")
        errors = sb_lint.check_checkpoint_sections(mutated)
        self.assertTrue(any("duplicate checkpoint tag 1" in e
                            for e in errors), errors)

    def test_tag_gap_is_flagged(self):
        mutated = SECTION_ENUM_OK.replace("kClassifier = 2", "kClassifier = 5")
        errors = sb_lint.check_checkpoint_sections(mutated)
        self.assertTrue(any("not contiguous" in e for e in errors), errors)

    def test_writer_without_reader_is_flagged(self):
        mutated = SECTION_ENUM_OK.replace(
            "  if (tag == static_cast<std::uint32_t>(Section::kClassifier)) {}\n",
            "")
        errors = sb_lint.check_checkpoint_sections(mutated)
        self.assertTrue(any("Section::kClassifier" in e and "1 time" in e
                            for e in errors), errors)


class KernelTierTest(unittest.TestCase):
    def test_clean_fixture_passes(self):
        self.assertEqual(
            sb_lint.check_kernel_tiers(KERNEL_HEADER, {"tier.cpp": TIER_OK}),
            [])

    def test_missing_entry_is_flagged(self):
        mutated = TIER_OK.replace("      &k_dot,\n", "")
        errors = sb_lint.check_kernel_tiers(
            KERNEL_HEADER, {"tier.cpp": mutated})
        self.assertTrue(any("missing &k_dot" in e for e in errors), errors)

    def test_swapped_order_is_flagged(self):
        mutated = TIER_OK.replace(
            "      &k_axpy,\n      &k_dot,\n",
            "      &k_dot,\n      &k_axpy,\n")
        errors = sb_lint.check_kernel_tiers(
            KERNEL_HEADER, {"tier.cpp": mutated})
        self.assertTrue(any("order diverges" in e for e in errors), errors)

    def test_unknown_entry_is_flagged(self):
        mutated = TIER_OK.replace("&k_gemv", "&k_gemm_fused")
        errors = sb_lint.check_kernel_tiers(
            KERNEL_HEADER, {"tier.cpp": mutated})
        self.assertTrue(any("unknown kernel" in e for e in errors), errors)

    def test_tier_without_initializer_is_flagged(self):
        errors = sb_lint.check_kernel_tiers(
            KERNEL_HEADER, {"tier.cpp": "int x;"})
        self.assertTrue(any("no `static const KernelSet" in e
                            for e in errors), errors)


class CloseReasonTest(unittest.TestCase):
    def test_clean_fixture_passes(self):
        self.assertEqual(
            sb_lint.check_close_reason_counters(ASYNC_HPP_OK, ASYNC_CPP_OK),
            [])

    def test_reason_without_counter_is_flagged(self):
        mutated = ASYNC_HPP_OK.replace("kFull, kDeadline",
                                       "kFull, kDeadline, kShutdown")
        errors = sb_lint.check_close_reason_counters(mutated, ASYNC_CPP_OK)
        self.assertTrue(any("shutdown_closes" in e for e in errors), errors)

    def test_missing_switch_bump_is_flagged(self):
        mutated = ASYNC_CPP_OK.replace(
            "    case CloseReason::kDeadline: stats_.deadline_closes += 1; "
            "break;\n", "")
        errors = sb_lint.check_close_reason_counters(ASYNC_HPP_OK, mutated)
        self.assertTrue(any("CloseReason::kDeadline" in e for e in errors),
                        errors)

    def test_total_omitting_counter_is_flagged(self):
        mutated = ASYNC_HPP_OK.replace(
            "return full_closes + deadline_closes;", "return full_closes;")
        errors = sb_lint.check_close_reason_counters(mutated, ASYNC_CPP_OK)
        self.assertTrue(any("omits deadline_closes" in e for e in errors),
                        errors)

    def test_camel_case_reason_maps_to_snake_counter(self):
        self.assertEqual(sb_lint._reason_to_counter("kDeadline"),
                         "deadline_closes")
        self.assertEqual(sb_lint._reason_to_counter("kQueueDrain"),
                         "queue_drain_closes")


if __name__ == "__main__":
    unittest.main()
