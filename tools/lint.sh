#!/usr/bin/env bash
# One-command local lint: the same three walls CI's static-analysis job
# runs, degraded gracefully to what the host toolchain has.
#
#   tools/lint.sh [build-dir]
#
#   1. tools/sb_lint.py        — always (needs only python3)
#   2. clang-tidy              — if clang-tidy is on PATH (uses the
#                                build dir's compile_commands.json,
#                                configuring one if needed)
#   3. tests/tsa wall          — if clang++ is on PATH (via ctest -L lint)
#
# Exits nonzero on the first wall that fails; prints SKIP for tools the
# host does not have so a partial pass cannot be mistaken for clean.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"${ROOT}/build"}"

echo "== sb_lint (repo invariants) =="
python3 "${ROOT}/tools/sb_lint.py" "${ROOT}"
python3 "${ROOT}/tests/lint/test_sb_lint.py" 2>&1 | tail -1

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "configuring ${BUILD_DIR} for compile_commands.json..."
    cmake -B "${BUILD_DIR}" -S "${ROOT}" >/dev/null
  fi
  # Headers are covered through HeaderFilterRegex in .clang-tidy; the
  # TU list is every first-party .cpp the build knows about.
  mapfile -t tus < <(python3 - "$BUILD_DIR" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1] + "/compile_commands.json")):
    f = entry["file"]
    if "/src/" in f or "/tests/" in f or "/bench/" in f:
        print(f)
EOF
)
  clang-tidy -p "${BUILD_DIR}" --quiet "${tus[@]}"
else
  echo "== clang-tidy == SKIP (clang-tidy not on PATH)"
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "== thread-safety wall (tests/tsa) =="
  if [[ ! -d "${BUILD_DIR}" ]]; then
    cmake -B "${BUILD_DIR}" -S "${ROOT}" >/dev/null
  fi
  ctest --test-dir "${BUILD_DIR}" -L lint --output-on-failure
else
  echo "== thread-safety wall == SKIP (clang++ not on PATH;" \
       "ran sb_lint tests only)"
  ctest --test-dir "${BUILD_DIR}" -L lint --output-on-failure \
    2>/dev/null || true
fi

echo "lint.sh: done"
