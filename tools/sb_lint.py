#!/usr/bin/env python3
"""Repo-specific invariant linter for streambrain.

Checks structural conventions that neither the compiler nor clang-tidy
can see, because they live in the *relationship* between distant pieces
of code:

1. checkpoint-sections — core/serialization.cpp's `enum class Section`
   tags must be unique, contiguous from 1 (a gap means a reader/writer
   pair was forgotten when a subsystem landed), and every tag must be
   referenced outside the enum at least twice (its write site and its
   read check; a tag referenced once has a writer with no reader or
   vice versa).

2. kernel-tiers — every dispatch tier (kernel_scalar.cpp,
   kernel_sse42.cpp, kernel_avx2.cpp) must aggregate-initialize its
   KernelSet with `&k_<field>` entries for *all* function-pointer fields
   of struct KernelSet, in declaration order. Aggregate init is
   positional, so a missing or swapped entry compiles fine and calls
   the wrong kernel — the exact class of bug this check exists for.

3. close-reason-counters — every enumerator of AsyncPredictor's
   CloseReason must have a matching `<reason>_closes` counter in
   AsyncPredictorStats, a `case CloseReason::kX:` bump in
   async_predictor.cpp, and close_reasons_total() must sum exactly the
   declared counters (so the "reasons partition batches" invariant the
   serving tests assert cannot silently lose a term).

Checks are plain functions over file *text* so the unit tests
(tests/lint/test_sb_lint.py) can feed fixtures; main() wires them to
the real tree. Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SERIALIZATION = "src/core/serialization.cpp"
KERNEL_SET_HEADER = "src/tensor/kernel_set.hpp"
KERNEL_TIERS = (
    "src/tensor/kernel_scalar.cpp",
    "src/tensor/kernel_sse42.cpp",
    "src/tensor/kernel_avx2.cpp",
)
ASYNC_HPP = "src/api/async_predictor.hpp"
ASYNC_CPP = "src/api/async_predictor.cpp"


# --- check 1: checkpoint section tags --------------------------------------

def parse_sections(text: str) -> list[tuple[str, int]]:
    """(name, tag) pairs from `enum class Section : ... { ... };`."""
    match = re.search(
        r"enum\s+class\s+Section[^{]*\{(?P<body>[^}]*)\}", text)
    if not match:
        raise ValueError("no `enum class Section` found")
    pairs = []
    for name, value in re.findall(
            r"(k\w+)\s*=\s*(\d+)", match.group("body")):
        pairs.append((name, int(value)))
    return pairs


def check_checkpoint_sections(text: str,
                              path: str = SERIALIZATION) -> list[str]:
    errors: list[str] = []
    try:
        sections = parse_sections(text)
    except ValueError as err:
        return [f"{path}: {err}"]
    if not sections:
        return [f"{path}: Section enum has no explicit tags"]

    by_value: dict[int, list[str]] = {}
    for name, value in sections:
        by_value.setdefault(value, []).append(name)
    for value, names in sorted(by_value.items()):
        if len(names) > 1:
            errors.append(
                f"{path}: duplicate checkpoint tag {value} "
                f"({', '.join(names)}) — two sections would parse "
                "identically on read")

    values = sorted(by_value)
    expected = list(range(1, len(sections) + 1))
    if values != expected and not errors:
        errors.append(
            f"{path}: checkpoint tags {values} are not contiguous from 1 "
            "— a retired tag must keep its enumerator (readers of old "
            "files need it), a new section must take the next value")

    enum_span = re.search(r"enum\s+class\s+Section[^{]*\{[^}]*\}", text)
    rest = text[:enum_span.start()] + text[enum_span.end():]
    for name, value in sections:
        uses = len(re.findall(rf"Section::{name}\b", rest))
        if uses < 2:
            errors.append(
                f"{path}: Section::{name} (tag {value}) referenced "
                f"{uses} time(s) outside the enum — expected a write "
                "site and a read check")
    return errors


# --- check 2: kernel dispatch tiers ----------------------------------------

def parse_kernel_fields(header_text: str) -> list[str]:
    """Function-pointer field names of struct KernelSet, in order."""
    match = re.search(
        r"struct\s+KernelSet\s*\{(?P<body>.*?)\n\};", header_text, re.S)
    if not match:
        raise ValueError("no `struct KernelSet` found")
    return re.findall(r"\(\s*\*\s*(\w+)\s*\)\s*\(", match.group("body"))


def parse_tier_entries(tier_text: str) -> list[str]:
    """&k_<name> entries of the tier's KernelSet initializer, in order."""
    match = re.search(
        r"static\s+const\s+KernelSet\s+\w+\s*=\s*\{(?P<body>.*?)\};",
        tier_text, re.S)
    if not match:
        raise ValueError("no `static const KernelSet ... = { ... };` "
                         "initializer found")
    return re.findall(r"&\s*k_(\w+)", match.group("body"))


def check_kernel_tiers(header_text: str,
                       tiers: dict[str, str]) -> list[str]:
    errors: list[str] = []
    try:
        fields = parse_kernel_fields(header_text)
    except ValueError as err:
        return [f"{KERNEL_SET_HEADER}: {err}"]
    if not fields:
        return [f"{KERNEL_SET_HEADER}: KernelSet has no function-pointer "
                "fields"]

    for path, text in tiers.items():
        try:
            entries = parse_tier_entries(text)
        except ValueError as err:
            errors.append(f"{path}: {err}")
            continue
        if entries == fields:
            continue
        missing = [f for f in fields if f not in entries]
        extra = [e for e in entries if e not in fields]
        if missing:
            errors.append(
                f"{path}: tier initializer is missing &k_{missing[0]} "
                f"(and {len(missing) - 1} more)" if len(missing) > 1 else
                f"{path}: tier initializer is missing &k_{missing[0]}")
        if extra:
            errors.append(
                f"{path}: tier initializer names unknown kernel(s): "
                + ", ".join(f"&k_{e}" for e in extra))
        if not missing and not extra:
            errors.append(
                f"{path}: tier initializer order diverges from struct "
                f"KernelSet field order (aggregate init is positional; "
                f"first mismatch at position "
                f"{next(i for i, (a, b) in enumerate(zip(entries, fields)) if a != b)})")
    return errors


# --- check 3: close-reason counter convention -------------------------------

def _reason_to_counter(enumerator: str) -> str:
    """kDeadline -> deadline_closes (CamelCase -> snake_case)."""
    stem = enumerator[1:] if enumerator.startswith("k") else enumerator
    snake = re.sub(r"(?<!^)(?=[A-Z])", "_", stem).lower()
    return f"{snake}_closes"


def parse_close_reasons(hpp_text: str) -> list[str]:
    match = re.search(
        r"enum\s+class\s+CloseReason\s*\{(?P<body>[^}]*)\}", hpp_text)
    if not match:
        raise ValueError("no `enum class CloseReason` found")
    return re.findall(r"k\w+", match.group("body"))


def check_close_reason_counters(hpp_text: str,
                                cpp_text: str) -> list[str]:
    errors: list[str] = []
    try:
        reasons = parse_close_reasons(hpp_text)
    except ValueError as err:
        return [f"{ASYNC_HPP}: {err}"]

    declared = re.findall(r"std::uint64_t\s+(\w+_closes)\b", hpp_text)
    for reason in reasons:
        counter = _reason_to_counter(reason)
        if counter not in declared:
            errors.append(
                f"{ASYNC_HPP}: CloseReason::{reason} has no "
                f"`{counter}` counter in AsyncPredictorStats")
        if not re.search(
                rf"case\s+CloseReason::{reason}\s*:.*?{counter}\s*\+=",
                cpp_text, re.S):
            errors.append(
                f"{ASYNC_CPP}: no `case CloseReason::{reason}:` bump of "
                f"`{counter}` — this close reason would not be counted")

    total = re.search(
        r"close_reasons_total\(\)\s*const\s*noexcept\s*\{(?P<body>.*?)\}",
        hpp_text, re.S)
    if not total:
        errors.append(
            f"{ASYNC_HPP}: AsyncPredictorStats::close_reasons_total() "
            "accessor is missing")
    else:
        summed = set(re.findall(r"(\w+_closes)\b", total.group("body")))
        if summed != set(declared):
            missing = sorted(set(declared) - summed)
            surplus = sorted(summed - set(declared))
            if missing:
                errors.append(
                    f"{ASYNC_HPP}: close_reasons_total() omits "
                    + ", ".join(missing))
            if surplus:
                errors.append(
                    f"{ASYNC_HPP}: close_reasons_total() sums unknown "
                    "counter(s): " + ", ".join(surplus))
    return errors


# --- driver -----------------------------------------------------------------

def run_all(root: Path) -> list[str]:
    def read(rel: str) -> str:
        return (root / rel).read_text(encoding="utf-8")

    errors = []
    errors += check_checkpoint_sections(read(SERIALIZATION))
    errors += check_kernel_tiers(
        read(KERNEL_SET_HEADER), {t: read(t) for t in KERNEL_TIERS})
    errors += check_close_reason_counters(read(ASYNC_HPP), read(ASYNC_CPP))
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else REPO_ROOT
    if not (root / SERIALIZATION).exists():
        print(f"sb_lint: {root} does not look like the streambrain repo "
              f"(missing {SERIALIZATION})", file=sys.stderr)
        return 2
    try:
        errors = run_all(root)
    except OSError as err:
        print(f"sb_lint: {err}", file=sys.stderr)
        return 2
    for error in errors:
        print(f"sb_lint: {error}")
    if errors:
        print(f"sb_lint: {len(errors)} invariant violation(s)")
        return 1
    print("sb_lint: all structural invariants hold "
          "(checkpoint-sections, kernel-tiers, close-reason-counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
