// sb_launch — minimal mpirun-style process launcher for the comm::
// transport layer. Forks N copies of the given command with the
// SB_COMM_* environment set so each process connects one rank of the
// world via comm::connect_env():
//
//   sb_launch -n 4 --backend shm -- ./example_distributed_training
//   sb_launch -n 2 --backend tcp -- ./my_rank_program --its args
//
// Flags (before the `--` separator):
//   -n / --np N          world size (default 2)
//   --backend NAME       inproc|shm|tcp (default shm; inproc is rejected
//                        for N > 1 — threads cannot span processes)
//   --base-port P        tcp only: rank r listens on P+r. Default: pick
//                        free ports by binding port 0 and passing the
//                        discovered list via SB_COMM_PORTS.
//   --session NAME       shm only: segment name (default: generated)
//   --timeout MS         per-operation timeout handed to the ranks
//                        (SB_COMM_OP_TIMEOUT_MS, default 60000)
//
// Fault contract (mirrors the transports'): if any rank exits nonzero or
// dies on a signal, the launcher SIGTERMs the surviving ranks — whose
// transports have typically already poisoned themselves on the broken
// pipe / vanished peer — and exits with the first failure's code.
//
// POSIX-only on purpose: fork/execvp/waitpid and one AF_INET socket for
// port discovery; no dependency on the streambrain library.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

[[noreturn]] void usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "sb_launch: %s\n", error);
  std::fprintf(stderr,
               "usage: %s [-n N] [--backend inproc|shm|tcp] [--base-port P]\n"
               "          [--session NAME] [--timeout MS] -- command [args...]\n",
               argv0);
  std::exit(2);
}

// Bind port 0 on loopback, read back the kernel-chosen port, and release
// it. There is a window between close() and the rank re-binding it, but
// SO_REUSEADDR plus the immediate exec makes collisions vanishingly rare
// on a test box — and a collision fails fast with EADDRINUSE, not a hang.
int pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  const int port = static_cast<int>(ntohs(addr.sin_port));
  ::close(fd);
  return port;
}

int parse_int(const char* argv0, const char* flag, const char* value) {
  if (value == nullptr) usage(argv0, "missing value");
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) {
    std::fprintf(stderr, "sb_launch: bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  int world = 2;
  std::string backend = "shm";
  std::string session;
  int base_port = 0;
  int timeout_ms = 0;
  int command_start = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      command_start = i + 1;
      break;
    } else if (arg == "-n" || arg == "--np") {
      world = parse_int(argv[0], arg.c_str(), argv[++i]);
    } else if (arg == "--backend") {
      if (++i >= argc) usage(argv[0], "missing value for --backend");
      backend = argv[i];
    } else if (arg == "--base-port") {
      base_port = parse_int(argv[0], arg.c_str(), argv[++i]);
    } else if (arg == "--session") {
      if (++i >= argc) usage(argv[0], "missing value for --session");
      session = argv[i];
    } else if (arg == "--timeout") {
      timeout_ms = parse_int(argv[0], arg.c_str(), argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
    } else {
      usage(argv[0], ("unknown flag: " + arg).c_str());
    }
  }
  if (command_start < 0 || command_start >= argc) {
    usage(argv[0], "no command given (separate it with --)");
  }
  if (backend != "inproc" && backend != "shm" && backend != "tcp") {
    usage(argv[0], "--backend must be inproc, shm, or tcp");
  }
  if (backend == "inproc" && world > 1) {
    usage(argv[0],
          "--backend inproc cannot span processes; use shm or tcp for -n > 1");
  }

  // Shared world config, identical in every child.
  if (session.empty()) {
    session = "sb_launch_" + std::to_string(static_cast<long>(::getpid()));
  }
  std::string ports_csv;
  if (backend == "tcp" && base_port == 0) {
    for (int r = 0; r < world; ++r) {
      const int port = pick_free_port();
      if (port < 0) {
        std::fprintf(stderr, "sb_launch: could not allocate a free port\n");
        return 1;
      }
      if (r > 0) ports_csv += ',';
      ports_csv += std::to_string(port);
    }
  }

  std::vector<char*> child_argv;
  for (int i = command_start; i < argc; ++i) child_argv.push_back(argv[i]);
  child_argv.push_back(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(world), -1);
  for (int r = 0; r < world; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("sb_launch: fork");
      for (int k = 0; k < r; ++k) ::kill(pids[static_cast<std::size_t>(k)],
                                         SIGTERM);
      return 1;
    }
    if (pid == 0) {
      ::setenv("SB_COMM_RANK", std::to_string(r).c_str(), 1);
      ::setenv("SB_COMM_WORLD", std::to_string(world).c_str(), 1);
      ::setenv("SB_COMM_BACKEND", backend.c_str(), 1);
      ::setenv("SB_COMM_SESSION", session.c_str(), 1);
      if (!ports_csv.empty()) ::setenv("SB_COMM_PORTS", ports_csv.c_str(), 1);
      if (base_port > 0) {
        ::setenv("SB_COMM_BASE_PORT", std::to_string(base_port).c_str(), 1);
      }
      if (timeout_ms > 0) {
        ::setenv("SB_COMM_OP_TIMEOUT_MS", std::to_string(timeout_ms).c_str(),
                 1);
      }
      ::execvp(child_argv[0], child_argv.data());
      std::fprintf(stderr, "sb_launch: exec %s: %s\n", child_argv[0],
                   std::strerror(errno));
      std::_Exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Reap; on the first failure, terminate the survivors so a wedged or
  // crashed world cannot hang the launcher (the ranks' own op timeouts
  // are the second line of defense).
  int exit_code = 0;
  int remaining = world;
  bool terminated_survivors = false;
  while (remaining > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    int rank = -1;
    for (int r = 0; r < world; ++r) {
      if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
    }
    if (rank < 0) continue;  // not ours (shouldn't happen)
    pids[static_cast<std::size_t>(rank)] = -1;
    --remaining;

    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
      std::fprintf(stderr, "sb_launch: rank %d killed by signal %d\n", rank,
                   WTERMSIG(status));
    }
    if (code != 0) {
      std::fprintf(stderr, "sb_launch: rank %d exited with code %d\n", rank,
                   code);
      if (exit_code == 0) exit_code = code;
      if (!terminated_survivors) {
        terminated_survivors = true;
        for (int r = 0; r < world; ++r) {
          if (pids[static_cast<std::size_t>(r)] > 0) {
            ::kill(pids[static_cast<std::size_t>(r)], SIGTERM);
          }
        }
      }
    }
  }
  return exit_code;
}
