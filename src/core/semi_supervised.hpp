#pragma once
// Semi-supervised training — the third training mode the paper attributes
// to BCPNN ("BCPNN supports supervised, semi-supervised, and — perhaps
// most importantly — unsupervised forms of training", Section I).
//
// Protocol: the hidden layer trains unsupervised on ALL examples
// (labeled + unlabeled — local learning does not need labels), then the
// classification layer trains only on the labeled subset. The benchmark
// question is how accuracy degrades as the labeled fraction shrinks;
// because the representation is learned from everything, BCPNN should
// hold up far better than a purely supervised model given the same few
// labels.

#include <cstddef>
#include <vector>

#include "core/network.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

inline constexpr int kUnlabeled = -1;

struct SemiSupervisedReport {
  std::size_t labeled_examples = 0;
  std::size_t unlabeled_examples = 0;
  FitReport fit;
};

/// Train `network` on encoded inputs `x` where labels[i] == kUnlabeled
/// marks an unlabeled example. The hidden layer consumes every row; the
/// head trains on the labeled subset only. Throws if no labels at all.
SemiSupervisedReport fit_semi_supervised(Network& network,
                                         const tensor::MatrixF& x,
                                         const std::vector<int>& labels);

}  // namespace streambrain::core
