#include "core/serialization.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace streambrain::core {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'R', 'N'};
constexpr std::uint32_t kVersion = 1;

enum class Section : std::uint32_t {
  kLayer = 1,
  kClassifier = 2,
  kSgdHead = 3,
};

// --- Primitive IO ---------------------------------------------------------

void write_u32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("checkpoint: truncated u32");
  return value;
}

void write_floats(std::ostream& out, const float* data, std::size_t count) {
  write_u32(out, static_cast<std::uint32_t>(count));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(float)));
}

void read_floats(std::istream& in, float* data, std::size_t expected) {
  const std::uint32_t count = read_u32(in);
  if (count != expected) {
    throw std::runtime_error("checkpoint: float array size mismatch");
  }
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(expected * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated float array");
}

void write_header(std::ostream& out) {
  out.write(kMagic, 4);
  write_u32(out, kVersion);
}

void read_header(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
}

void expect_section(std::istream& in, Section expected) {
  const std::uint32_t tag = read_u32(in);
  if (tag != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error("checkpoint: unexpected section tag " +
                             std::to_string(tag));
  }
}

// --- Sections --------------------------------------------------------------

void write_traces(std::ostream& out, const ProbabilityTraces& traces) {
  write_floats(out, traces.pi().data(), traces.pi().size());
  write_floats(out, traces.pj().data(), traces.pj().size());
  write_floats(out, traces.pij().data(), traces.pij().size());
}

void read_traces(std::istream& in, ProbabilityTraces& traces) {
  read_floats(in, traces.mutable_pi().data(), traces.pi().size());
  read_floats(in, traces.mutable_pj().data(), traces.pj().size());
  read_floats(in, traces.mutable_pij().data(), traces.pij().size());
}

void write_layer_section(std::ostream& out, const BcpnnLayer& layer) {
  write_u32(out, static_cast<std::uint32_t>(Section::kLayer));
  const auto& config = layer.config();
  write_u32(out, static_cast<std::uint32_t>(config.input_hypercolumns));
  write_u32(out, static_cast<std::uint32_t>(config.input_bins));
  write_u32(out, static_cast<std::uint32_t>(config.hcus));
  write_u32(out, static_cast<std::uint32_t>(config.mcus));
  write_traces(out, layer.traces());
  for (std::size_t h = 0; h < config.hcus; ++h) {
    const auto& mask = layer.masks().mask(h);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      out.put(mask[i] ? 1 : 0);
    }
  }
}

void read_layer_section(std::istream& in, BcpnnLayer& layer) {
  expect_section(in, Section::kLayer);
  const auto& config = layer.config();
  if (read_u32(in) != config.input_hypercolumns ||
      read_u32(in) != config.input_bins || read_u32(in) != config.hcus ||
      read_u32(in) != config.mcus) {
    throw std::runtime_error("checkpoint: layer geometry mismatch");
  }
  ProbabilityTraces traces(config.input_units(), config.input_bins,
                           config.hidden_units(), config.mcus);
  read_traces(in, traces);
  // Masks: rebuild from the stored bits (cardinality must match config).
  util::Rng scratch_rng(0);
  ReceptiveFieldMasks masks(config.hcus, config.input_hypercolumns,
                            config.mask_cardinality(), scratch_rng);
  for (std::size_t h = 0; h < config.hcus; ++h) {
    std::size_t active = 0;
    for (std::size_t i = 0; i < config.input_hypercolumns; ++i) {
      const int bit = in.get();
      if (bit == std::char_traits<char>::eof()) {
        throw std::runtime_error("checkpoint: truncated masks");
      }
      masks.set(h, i, bit != 0);
      active += bit != 0 ? 1 : 0;
    }
    if (active != config.mask_cardinality()) {
      throw std::runtime_error("checkpoint: mask cardinality mismatch");
    }
  }
  layer.set_state(traces, masks);
}

}  // namespace

void save_layer(const std::string& path, const BcpnnLayer& layer) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_layer: cannot open " + path);
  write_header(file);
  write_layer_section(file, layer);
  if (!file) throw std::runtime_error("save_layer: write failed");
}

void load_layer(const std::string& path, BcpnnLayer& layer) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_layer: cannot open " + path);
  read_header(file);
  read_layer_section(file, layer);
}

void save_network(const std::string& path, const Network& network) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_network: cannot open " + path);
  write_header(file);
  write_layer_section(file, network.hidden());
  if (const BcpnnClassifier* head = network.bcpnn_head()) {
    write_u32(file, static_cast<std::uint32_t>(Section::kClassifier));
    write_u32(file, static_cast<std::uint32_t>(head->classes()));
    write_traces(file, head->traces());
  } else if (const SgdHead* head = network.sgd_head()) {
    write_u32(file, static_cast<std::uint32_t>(Section::kSgdHead));
    write_u32(file, static_cast<std::uint32_t>(head->classes()));
    write_floats(file, head->weights().data(), head->weights().size());
    write_floats(file, head->bias().data(), head->bias().size());
  }
  if (!file) throw std::runtime_error("save_network: write failed");
}

void load_network(const std::string& path, Network& network) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_network: cannot open " + path);
  read_header(file);
  read_layer_section(file, network.mutable_hidden());
  if (BcpnnClassifier* head = network.bcpnn_head()) {
    expect_section(file, Section::kClassifier);
    if (read_u32(file) != head->classes()) {
      throw std::runtime_error("load_network: class count mismatch");
    }
    read_traces(file, head->mutable_traces());
    head->recompute_weights();
  } else if (SgdHead* head = network.sgd_head()) {
    expect_section(file, Section::kSgdHead);
    if (read_u32(file) != head->classes()) {
      throw std::runtime_error("load_network: class count mismatch");
    }
    tensor::MatrixF weights(head->weights().rows(), head->weights().cols());
    std::vector<float> bias(head->bias().size());
    read_floats(file, weights.data(), weights.size());
    read_floats(file, bias.data(), bias.size());
    head->set_state(weights, bias);
  }
}

}  // namespace streambrain::core
