#include "core/serialization.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/quant.hpp"

namespace streambrain::core {

namespace detail {

std::uint32_t checked_u32(std::size_t value, const char* what) {
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error(std::string("checkpoint: ") + what + " count " +
                             std::to_string(value) +
                             " does not fit in a u32 field");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace detail

namespace {

using detail::checked_u32;

constexpr char kMagic[4] = {'S', 'B', 'R', 'N'};
// Version 2 widened float-array counts from u32 to u64 (a >= 4 GiB trace
// array silently truncated its count under version 1). Version 3 added
// the sparse section tags (CSR weights + bias for a Model::sparsify()'d
// component) AND appended a prune keep-mask field to every dense
// layer/classifier/sgd_head section — dense v3 payloads are NOT
// byte-compatible with v2. Version 4 added the quantized section tags
// (int8 block-scaled weights for a Model::quantize()'d component, dense
// or CSR) without changing any existing section's bytes — a v4 file
// with no quantized component is byte-identical to v3 except for the
// version word. Version 1 through 3 files are still read.
constexpr std::uint32_t kVersion = 4;
constexpr std::uint32_t kOldestReadableVersion = 1;

enum class Section : std::uint32_t {
  kLayer = 1,
  kClassifier = 2,
  kSgdHead = 3,
  kModel = 4,
  kSparseLayer = 5,
  kSparseClassifier = 6,
  kSparseSgdHead = 7,
  kQuantLayer = 8,
  kQuantClassifier = 9,
  kQuantSgdHead = 10,
  kQuantSparseLayer = 11,
  kQuantSparseClassifier = 12,
  kQuantSparseSgdHead = 13,
};

// --- Primitive IO ---------------------------------------------------------

void write_u32(std::ostream& out, std::uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("checkpoint: truncated u32");
  return value;
}

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("checkpoint: truncated u64");
  return value;
}

void write_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

double read_f64(std::istream& in) {
  double value = 0.0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("checkpoint: truncated f64");
  return value;
}

void write_string(std::ostream& out, const std::string& value) {
  write_u32(out, checked_u32(value.size(), "string length"));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t size = read_u32(in);
  // Engine names and option keys are short; a large length here means a
  // corrupt file, and must not turn into a multi-GB allocation.
  if (size > 4096) {
    throw std::runtime_error("checkpoint: implausible string length " +
                             std::to_string(size));
  }
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("checkpoint: truncated string");
  return value;
}

void write_floats(std::ostream& out, const float* data, std::size_t count) {
  write_u64(out, static_cast<std::uint64_t>(count));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(float)));
}

void read_floats(std::istream& in, float* data, std::size_t expected,
                 std::uint32_t version) {
  // Version 1 stored float-array counts as u32 (and silently truncated
  // larger arrays on write); version 2 widened the field to u64.
  const std::uint64_t count =
      version >= 2 ? read_u64(in) : static_cast<std::uint64_t>(read_u32(in));
  if (count != expected) {
    throw std::runtime_error("checkpoint: float array size mismatch");
  }
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(expected * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated float array");
}

void write_header(std::ostream& out) {
  out.write(kMagic, 4);
  write_u32(out, kVersion);
}

/// Validates magic + version and returns the file's version so readers
/// can decode version-dependent fields (see read_floats).
std::uint32_t read_header(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const std::uint32_t version = read_u32(in);
  if (version < kOldestReadableVersion || version > kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  return version;
}

void expect_section(std::istream& in, Section expected) {
  const std::uint32_t tag = read_u32(in);
  if (tag != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error("checkpoint: unexpected section tag " +
                             std::to_string(tag));
  }
}

/// A u32 field with a plausibility ceiling. Corrupt bytes in a count or
/// geometry field must fail here with a clean error, not turn into a
/// multi-GB allocation or a four-billion-iteration loop downstream (the
/// checkpoint fuzz suite drives exactly these mutations). The limits are
/// generous for every model this codebase builds.
std::uint32_t read_u32_bounded(std::istream& in, std::uint32_t limit,
                               const char* what) {
  const std::uint32_t value = read_u32(in);
  if (value > limit) {
    throw std::runtime_error(std::string("checkpoint: implausible ") + what +
                             " " + std::to_string(value));
  }
  return value;
}

// --- Sparse (CSR) payloads -------------------------------------------------
// Wire format: u64 rows | u64 cols | u64 nnz | row_ptr[rows+1] u64 |
// col_idx[nnz] u32 | values[nnz] f32. The reader validates shape against
// the enclosing section's geometry BEFORE allocating, and the full CSR
// invariants (monotone row_ptr, ascending in-range columns) afterwards.

void write_csr(std::ostream& out, const tensor::CsrMatrix& csr) {
  write_u64(out, csr.rows());
  write_u64(out, csr.cols());
  write_u64(out, csr.nnz());
  out.write(reinterpret_cast<const char*>(csr.row_ptr().data()),
            static_cast<std::streamsize>(csr.row_ptr().size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(csr.col_idx().data()),
            static_cast<std::streamsize>(csr.col_idx().size() *
                                         sizeof(std::uint32_t)));
  out.write(reinterpret_cast<const char*>(csr.values().data()),
            static_cast<std::streamsize>(csr.values().size() * sizeof(float)));
}

// --- Prune keep-masks ------------------------------------------------------
// Version 3 appends an element keep-mask field to the dense layer /
// classifier / sgd_head sections: u8 flag (0 = unpruned), then one byte
// per weight when set. Without it, loading a magnitude-pruned model
// would silently regrow the pruned weights (BCPNN weights are a pure
// function of the traces), breaking the bit-for-bit load guarantee.

void write_prune_mask(std::ostream& out,
                      const std::vector<std::uint8_t>& mask) {
  out.put(mask.empty() ? 0 : 1);
  if (!mask.empty()) {
    out.write(reinterpret_cast<const char*>(mask.data()),
              static_cast<std::streamsize>(mask.size()));
  }
}

/// Returns an empty vector when the flag byte is 0. Only format
/// version >= 3 carries the field; callers must gate on that.
std::vector<std::uint8_t> read_prune_mask(std::istream& in,
                                          std::size_t expected_size) {
  const int flag = in.get();
  if (flag == std::char_traits<char>::eof()) {
    throw std::runtime_error("checkpoint: truncated prune-mask flag");
  }
  if (flag == 0) return {};
  if (flag != 1) {
    throw std::runtime_error("checkpoint: bad prune-mask flag " +
                             std::to_string(flag));
  }
  std::vector<std::uint8_t> mask(expected_size);
  in.read(reinterpret_cast<char*>(mask.data()),
          static_cast<std::streamsize>(expected_size));
  if (!in) throw std::runtime_error("checkpoint: truncated prune mask");
  for (const std::uint8_t bit : mask) {
    if (bit > 1) {
      throw std::runtime_error("checkpoint: corrupt prune-mask byte");
    }
  }
  return mask;
}

tensor::CsrMatrix read_csr(std::istream& in, std::size_t expected_rows,
                           std::size_t expected_cols) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  const std::uint64_t nnz = read_u64(in);
  if (rows != expected_rows || cols != expected_cols) {
    throw std::runtime_error("checkpoint: sparse matrix shape mismatch");
  }
  if (nnz > rows * cols) {
    throw std::runtime_error("checkpoint: implausible sparse entry count " +
                             std::to_string(nnz));
  }
  std::vector<std::uint64_t> row_ptr(rows + 1);
  in.read(reinterpret_cast<char*>(row_ptr.data()),
          static_cast<std::streamsize>(row_ptr.size() *
                                       sizeof(std::uint64_t)));
  std::vector<std::uint32_t> col_idx(nnz);
  in.read(reinterpret_cast<char*>(col_idx.data()),
          static_cast<std::streamsize>(col_idx.size() *
                                       sizeof(std::uint32_t)));
  std::vector<float> values(nnz);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated sparse matrix");
  try {
    return tensor::CsrMatrix::adopt(rows, cols, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("checkpoint: ") + error.what());
  }
}

// --- Quantized payloads -----------------------------------------------------
// Dense wire format: u64 rows | u64 cols | u64 block_size |
// codes[rows*cols] i8 | scales[rows*blocks_per_row] f32. Sparse wire
// format: u64 rows | u64 cols | u64 nnz | row_ptr[rows+1] u64 |
// col_idx[nnz] u32 | codes[nnz] i8 | row_scales[rows] f32. Array sizes
// are derived from the geometry fields, which the readers validate
// against the enclosing section's expected shape (and the block-size /
// nnz plausibility ceilings) BEFORE allocating; the adopt() calls then
// re-validate the full container invariants (code range, finite scales,
// CSR index ordering).

void write_quant(std::ostream& out, const tensor::QuantBlockMatrix& wt) {
  write_u64(out, wt.rows());
  write_u64(out, wt.cols());
  write_u64(out, wt.block_size());
  out.write(reinterpret_cast<const char*>(wt.codes().data()),
            static_cast<std::streamsize>(wt.codes().size()));
  out.write(reinterpret_cast<const char*>(wt.scales().data()),
            static_cast<std::streamsize>(wt.scales().size() * sizeof(float)));
}

tensor::QuantBlockMatrix read_quant(std::istream& in,
                                    std::size_t expected_rows,
                                    std::size_t expected_cols) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  const std::uint64_t block_size = read_u64(in);
  if (rows != expected_rows || cols != expected_cols) {
    throw std::runtime_error("checkpoint: quantized matrix shape mismatch");
  }
  if (block_size == 0 || block_size > tensor::kMaxQuantBlock) {
    throw std::runtime_error("checkpoint: implausible quant block size " +
                             std::to_string(block_size));
  }
  const std::uint64_t blocks =
      cols == 0 ? 0 : (cols + block_size - 1) / block_size;
  std::vector<std::int8_t> codes(rows * cols);
  in.read(reinterpret_cast<char*>(codes.data()),
          static_cast<std::streamsize>(codes.size()));
  std::vector<float> scales(rows * blocks);
  in.read(reinterpret_cast<char*>(scales.data()),
          static_cast<std::streamsize>(scales.size() * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint: truncated quantized matrix");
  try {
    return tensor::QuantBlockMatrix::adopt(rows, cols, block_size,
                                           std::move(codes),
                                           std::move(scales));
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("checkpoint: ") + error.what());
  }
}

void write_quant_csr(std::ostream& out, const tensor::QuantCsr& wt) {
  write_u64(out, wt.rows());
  write_u64(out, wt.cols());
  write_u64(out, wt.nnz());
  out.write(reinterpret_cast<const char*>(wt.row_ptr().data()),
            static_cast<std::streamsize>(wt.row_ptr().size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(wt.col_idx().data()),
            static_cast<std::streamsize>(wt.col_idx().size() *
                                         sizeof(std::uint32_t)));
  out.write(reinterpret_cast<const char*>(wt.codes().data()),
            static_cast<std::streamsize>(wt.codes().size()));
  out.write(reinterpret_cast<const char*>(wt.row_scales().data()),
            static_cast<std::streamsize>(wt.row_scales().size() *
                                         sizeof(float)));
}

tensor::QuantCsr read_quant_csr(std::istream& in, std::size_t expected_rows,
                                std::size_t expected_cols) {
  const std::uint64_t rows = read_u64(in);
  const std::uint64_t cols = read_u64(in);
  const std::uint64_t nnz = read_u64(in);
  if (rows != expected_rows || cols != expected_cols) {
    throw std::runtime_error(
        "checkpoint: quantized-sparse matrix shape mismatch");
  }
  if (nnz > rows * cols) {
    throw std::runtime_error("checkpoint: implausible sparse entry count " +
                             std::to_string(nnz));
  }
  std::vector<std::uint64_t> row_ptr(rows + 1);
  in.read(reinterpret_cast<char*>(row_ptr.data()),
          static_cast<std::streamsize>(row_ptr.size() *
                                       sizeof(std::uint64_t)));
  std::vector<std::uint32_t> col_idx(nnz);
  in.read(reinterpret_cast<char*>(col_idx.data()),
          static_cast<std::streamsize>(col_idx.size() *
                                       sizeof(std::uint32_t)));
  std::vector<std::int8_t> codes(nnz);
  in.read(reinterpret_cast<char*>(codes.data()),
          static_cast<std::streamsize>(codes.size()));
  std::vector<float> row_scales(rows);
  in.read(reinterpret_cast<char*>(row_scales.data()),
          static_cast<std::streamsize>(row_scales.size() * sizeof(float)));
  if (!in) {
    throw std::runtime_error("checkpoint: truncated quantized-sparse matrix");
  }
  try {
    return tensor::QuantCsr::adopt(rows, cols, std::move(row_ptr),
                                   std::move(col_idx), std::move(codes),
                                   std::move(row_scales));
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("checkpoint: ") + error.what());
  }
}

// --- Sections --------------------------------------------------------------

void write_traces(std::ostream& out, const ProbabilityTraces& traces) {
  write_floats(out, traces.pi().data(), traces.pi().size());
  write_floats(out, traces.pj().data(), traces.pj().size());
  write_floats(out, traces.pij().data(), traces.pij().size());
}

void read_traces(std::istream& in, ProbabilityTraces& traces,
                 std::uint32_t version) {
  read_floats(in, traces.mutable_pi().data(), traces.pi().size(), version);
  read_floats(in, traces.mutable_pj().data(), traces.pj().size(), version);
  read_floats(in, traces.mutable_pij().data(), traces.pij().size(), version);
}

/// Geometry prefix shared by every layer section variant.
void write_layer_geometry(std::ostream& out, const BcpnnConfig& config) {
  write_u32(out, checked_u32(config.input_hypercolumns, "hypercolumn"));
  write_u32(out, checked_u32(config.input_bins, "bin"));
  write_u32(out, checked_u32(config.hcus, "hcu"));
  write_u32(out, checked_u32(config.mcus, "mcu"));
}

void write_layer_section(std::ostream& out, const BcpnnLayer& layer) {
  const auto& config = layer.config();
  if (layer.quantized()) {
    // Quantized inference form: geometry, bias, int8 codes of W^T —
    // dense block-scaled or CSR per-row-scaled depending on whether the
    // model was sparsified before quantize().
    const bool sparse = layer.sparse();
    write_u32(out, static_cast<std::uint32_t>(sparse ? Section::kQuantSparseLayer
                                                     : Section::kQuantLayer));
    write_layer_geometry(out, config);
    write_floats(out, layer.bias().data(), layer.bias().size());
    if (sparse) {
      write_quant_csr(out, layer.quant_sparse_weights());
    } else {
      write_quant(out, layer.quant_weights());
    }
    return;
  }
  if (layer.sparse()) {
    // Sparse inference form: geometry, bias, CSR of W^T. No traces, no
    // masks — the CSR *is* the learned state of a read-only layer.
    write_u32(out, static_cast<std::uint32_t>(Section::kSparseLayer));
    write_layer_geometry(out, config);
    write_floats(out, layer.bias().data(), layer.bias().size());
    write_csr(out, layer.sparse_weights());
    return;
  }
  write_u32(out, static_cast<std::uint32_t>(Section::kLayer));
  write_layer_geometry(out, config);
  write_traces(out, layer.traces());
  for (std::size_t h = 0; h < config.hcus; ++h) {
    const auto& mask = layer.masks().mask(h);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      out.put(mask[i] ? 1 : 0);
    }
  }
  write_prune_mask(out, layer.prune_mask());
}

void check_layer_geometry(std::istream& in, const BcpnnConfig& config) {
  if (read_u32(in) != config.input_hypercolumns ||
      read_u32(in) != config.input_bins || read_u32(in) != config.hcus ||
      read_u32(in) != config.mcus) {
    throw std::runtime_error("checkpoint: layer geometry mismatch");
  }
}

void read_sparse_layer_body(std::istream& in, BcpnnLayer& layer,
                            std::uint32_t version) {
  const auto& config = layer.config();
  check_layer_geometry(in, config);
  std::vector<float> bias(config.hidden_units());
  read_floats(in, bias.data(), bias.size(), version);
  tensor::CsrMatrix wt =
      read_csr(in, config.hidden_units(), config.input_units());
  layer.adopt_sparse(std::move(wt), std::move(bias));
}

void read_quant_layer_body(std::istream& in, BcpnnLayer& layer,
                           std::uint32_t version, bool sparse) {
  const auto& config = layer.config();
  check_layer_geometry(in, config);
  std::vector<float> bias(config.hidden_units());
  read_floats(in, bias.data(), bias.size(), version);
  if (sparse) {
    layer.adopt_quant_sparse(
        read_quant_csr(in, config.hidden_units(), config.input_units()),
        std::move(bias));
  } else {
    layer.adopt_quant(
        read_quant(in, config.hidden_units(), config.input_units()),
        std::move(bias));
  }
}

void read_layer_section(std::istream& in, BcpnnLayer& layer,
                        std::uint32_t version) {
  const std::uint32_t tag = read_u32(in);
  if (tag == static_cast<std::uint32_t>(Section::kSparseLayer)) {
    read_sparse_layer_body(in, layer, version);
    return;
  }
  if (tag == static_cast<std::uint32_t>(Section::kQuantLayer) ||
      tag == static_cast<std::uint32_t>(Section::kQuantSparseLayer)) {
    read_quant_layer_body(
        in, layer, version,
        tag == static_cast<std::uint32_t>(Section::kQuantSparseLayer));
    return;
  }
  if (tag != static_cast<std::uint32_t>(Section::kLayer)) {
    throw std::runtime_error("checkpoint: unexpected section tag " +
                             std::to_string(tag));
  }
  const auto& config = layer.config();
  check_layer_geometry(in, config);
  ProbabilityTraces traces(config.input_units(), config.input_bins,
                           config.hidden_units(), config.mcus);
  read_traces(in, traces, version);
  // Masks: rebuild from the stored bits (cardinality must match config).
  util::Rng scratch_rng(0);
  ReceptiveFieldMasks masks(config.hcus, config.input_hypercolumns,
                            config.mask_cardinality(), scratch_rng);
  for (std::size_t h = 0; h < config.hcus; ++h) {
    std::size_t active = 0;
    for (std::size_t i = 0; i < config.input_hypercolumns; ++i) {
      const int bit = in.get();
      if (bit == std::char_traits<char>::eof()) {
        throw std::runtime_error("checkpoint: truncated masks");
      }
      masks.set(h, i, bit != 0);
      active += bit != 0 ? 1 : 0;
    }
    if (active != config.mask_cardinality()) {
      throw std::runtime_error("checkpoint: mask cardinality mismatch");
    }
  }
  std::vector<std::uint8_t> prune;
  if (version >= 3) {
    prune =
        read_prune_mask(in, config.input_units() * config.hidden_units());
  }
  layer.set_state(traces, masks);
  layer.set_prune_mask(std::move(prune));
}

void write_classifier_section(std::ostream& out, const BcpnnClassifier& head) {
  if (head.quantized()) {
    const bool sparse = head.sparse();
    write_u32(out,
              static_cast<std::uint32_t>(sparse ? Section::kQuantSparseClassifier
                                                : Section::kQuantClassifier));
    write_u32(out, checked_u32(head.classes(), "class"));
    write_floats(out, head.bias().data(), head.bias().size());
    if (sparse) {
      write_quant_csr(out, head.quant_sparse_weights());
    } else {
      write_quant(out, head.quant_weights());
    }
    return;
  }
  if (head.sparse()) {
    write_u32(out, static_cast<std::uint32_t>(Section::kSparseClassifier));
    write_u32(out, checked_u32(head.classes(), "class"));
    write_floats(out, head.bias().data(), head.bias().size());
    write_csr(out, head.sparse_weights());
    return;
  }
  write_u32(out, static_cast<std::uint32_t>(Section::kClassifier));
  write_u32(out, checked_u32(head.classes(), "class"));
  write_traces(out, head.traces());
  write_prune_mask(out, head.prune_mask());
}

void read_classifier_section(std::istream& in, BcpnnClassifier& head,
                             std::uint32_t version) {
  const std::uint32_t tag = read_u32(in);
  if (tag == static_cast<std::uint32_t>(Section::kQuantClassifier) ||
      tag == static_cast<std::uint32_t>(Section::kQuantSparseClassifier)) {
    if (read_u32(in) != head.classes()) {
      throw std::runtime_error("checkpoint: class count mismatch");
    }
    std::vector<float> bias(head.classes());
    read_floats(in, bias.data(), bias.size(), version);
    const std::size_t inputs = head.traces().inputs();
    if (tag == static_cast<std::uint32_t>(Section::kQuantSparseClassifier)) {
      head.adopt_quant_sparse(read_quant_csr(in, head.classes(), inputs),
                              std::move(bias));
    } else {
      head.adopt_quant(read_quant(in, head.classes(), inputs),
                       std::move(bias));
    }
    return;
  }
  if (tag == static_cast<std::uint32_t>(Section::kSparseClassifier)) {
    if (read_u32(in) != head.classes()) {
      throw std::runtime_error("checkpoint: class count mismatch");
    }
    std::vector<float> bias(head.classes());
    read_floats(in, bias.data(), bias.size(), version);
    const std::size_t inputs = head.traces().inputs();
    tensor::CsrMatrix wt = read_csr(in, head.classes(), inputs);
    head.adopt_sparse(std::move(wt), std::move(bias));
    return;
  }
  if (tag != static_cast<std::uint32_t>(Section::kClassifier)) {
    throw std::runtime_error("checkpoint: unexpected section tag " +
                             std::to_string(tag));
  }
  if (read_u32(in) != head.classes()) {
    throw std::runtime_error("checkpoint: class count mismatch");
  }
  read_traces(in, head.mutable_traces(), version);
  head.recompute_weights();
  if (version >= 3) {
    head.set_prune_mask(
        read_prune_mask(in, head.traces().inputs() * head.classes()));
  }
}

void write_sgd_section(std::ostream& out, const SgdHead& head) {
  if (head.quantized()) {
    const bool sparse = head.sparse();
    write_u32(out,
              static_cast<std::uint32_t>(sparse ? Section::kQuantSparseSgdHead
                                                : Section::kQuantSgdHead));
    write_u32(out, checked_u32(head.classes(), "class"));
    write_floats(out, head.bias().data(), head.bias().size());
    if (sparse) {
      write_quant_csr(out, head.quant_sparse_weights());
    } else {
      write_quant(out, head.quant_weights());
    }
    return;
  }
  if (head.sparse()) {
    write_u32(out, static_cast<std::uint32_t>(Section::kSparseSgdHead));
    write_u32(out, checked_u32(head.classes(), "class"));
    write_floats(out, head.bias().data(), head.bias().size());
    write_csr(out, head.sparse_weights());
    return;
  }
  write_u32(out, static_cast<std::uint32_t>(Section::kSgdHead));
  write_u32(out, checked_u32(head.classes(), "class"));
  write_floats(out, head.weights().data(), head.weights().size());
  write_floats(out, head.bias().data(), head.bias().size());
  write_prune_mask(out, head.prune_mask());
}

void read_sgd_section(std::istream& in, SgdHead& head,
                      std::uint32_t version) {
  const std::uint32_t tag = read_u32(in);
  if (tag == static_cast<std::uint32_t>(Section::kQuantSgdHead) ||
      tag == static_cast<std::uint32_t>(Section::kQuantSparseSgdHead)) {
    if (read_u32(in) != head.classes()) {
      throw std::runtime_error("checkpoint: class count mismatch");
    }
    std::vector<float> bias(head.bias().size());
    read_floats(in, bias.data(), bias.size(), version);
    const std::size_t inputs = head.weights().rows();
    if (tag == static_cast<std::uint32_t>(Section::kQuantSparseSgdHead)) {
      head.adopt_quant_sparse(read_quant_csr(in, head.classes(), inputs),
                              std::move(bias));
    } else {
      head.adopt_quant(read_quant(in, head.classes(), inputs),
                       std::move(bias));
    }
    return;
  }
  if (tag == static_cast<std::uint32_t>(Section::kSparseSgdHead)) {
    if (read_u32(in) != head.classes()) {
      throw std::runtime_error("checkpoint: class count mismatch");
    }
    std::vector<float> bias(head.bias().size());
    read_floats(in, bias.data(), bias.size(), version);
    tensor::CsrMatrix wt =
        read_csr(in, head.classes(), head.weights().rows());
    head.adopt_sparse(std::move(wt), std::move(bias));
    return;
  }
  if (tag != static_cast<std::uint32_t>(Section::kSgdHead)) {
    throw std::runtime_error("checkpoint: unexpected section tag " +
                             std::to_string(tag));
  }
  if (read_u32(in) != head.classes()) {
    throw std::runtime_error("checkpoint: class count mismatch");
  }
  tensor::MatrixF weights(head.weights().rows(), head.weights().cols());
  std::vector<float> bias(head.bias().size());
  read_floats(in, weights.data(), weights.size(), version);
  read_floats(in, bias.data(), bias.size(), version);
  head.set_state(weights, bias);
  if (version >= 3) {
    head.set_prune_mask(read_prune_mask(in, weights.size()));
  }
}

/// Hidden layer + head of a compiled three-layer network.
void write_network_state(std::ostream& out, const Network& network) {
  write_layer_section(out, network.hidden());
  if (const BcpnnClassifier* head = network.bcpnn_head()) {
    write_classifier_section(out, *head);
  } else if (const SgdHead* head = network.sgd_head()) {
    write_sgd_section(out, *head);
  }
}

void read_network_state(std::istream& in, Network& network,
                        std::uint32_t version) {
  read_layer_section(in, network.mutable_hidden(), version);
  if (BcpnnClassifier* head = network.bcpnn_head()) {
    read_classifier_section(in, *head, version);
  } else if (SgdHead* head = network.sgd_head()) {
    read_sgd_section(in, *head, version);
  }
}

}  // namespace

void save_layer(const std::string& path, const BcpnnLayer& layer) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_layer: cannot open " + path);
  write_header(file);
  write_layer_section(file, layer);
  if (!file) throw std::runtime_error("save_layer: write failed");
}

void load_layer(const std::string& path, BcpnnLayer& layer) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_layer: cannot open " + path);
  const std::uint32_t version = read_header(file);
  read_layer_section(file, layer, version);
}

void save_network(const std::string& path, const Network& network) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_network: cannot open " + path);
  write_header(file);
  write_network_state(file, network);
  if (!file) throw std::runtime_error("save_network: write failed");
}

void load_network(const std::string& path, Network& network) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_network: cannot open " + path);
  const std::uint32_t version = read_header(file);
  read_network_state(file, network, version);
}

void save_model(std::ostream& out, const Model& model) {
  if (!model.compiled()) {
    throw std::logic_error("save_model: model is not compiled");
  }
  write_header(out);

  // Topology section: everything needed to rebuild and re-compile the
  // facade before the learned state is streamed in.
  write_u32(out, static_cast<std::uint32_t>(Section::kModel));
  write_u32(out, checked_u32(model.input_hypercolumns(), "hypercolumn"));
  write_u32(out, checked_u32(model.input_bins(), "bin"));
  write_u32(out, checked_u32(model.hidden_specs().size(), "hidden layer"));
  for (const auto& spec : model.hidden_specs()) {
    write_u32(out, checked_u32(spec.hcus, "hcu"));
    write_u32(out, checked_u32(spec.mcus, "mcu"));
    write_f64(out, spec.receptive_field);
  }
  write_u32(out, checked_u32(model.classes(), "class"));
  write_u32(out, static_cast<std::uint32_t>(model.head()));
  write_string(out, model.engine_name());
  write_u64(out, model.seed());
  const auto option_keys = model.options().keys();
  write_u32(out, checked_u32(option_keys.size(), "option"));
  for (const auto& key : option_keys) {
    write_string(out, key);
    write_f64(out, model.options().get_double(key, 0.0));
  }

  if (model.hidden_specs().size() == 1) {
    write_network_state(out, model.network());
  } else {
    const DeepBcpnn& deep = model.deep();
    for (std::size_t l = 0; l < deep.depth(); ++l) {
      write_layer_section(out, deep.layer(l));
    }
    write_classifier_section(out, deep.head());
  }
  if (!out) throw std::runtime_error("save_model: write failed");
}

void save_model(const std::string& path, const Model& model) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_model: cannot open " + path);
  save_model(file, model);
}

void load_model(std::istream& in, Model& model) {
  if (model.compiled()) {
    throw std::logic_error("load_model: model is already compiled");
  }
  if (model.input_hypercolumns() != 0 || !model.hidden_specs().empty()) {
    throw std::logic_error(
        "load_model: model already has topology declared; load into a "
        "blank Model");
  }
  const std::uint32_t version = read_header(in);
  expect_section(in, Section::kModel);

  // Stage into a scratch Model so a failure at any point (truncated
  // weights, geometry mismatch) leaves the caller's object untouched
  // instead of compiled-with-random-weights. Geometry fields are
  // plausibility-bounded: compile() allocates traces from them before
  // any weight bytes are validated, so a corrupt field must be rejected
  // here rather than turn into a runaway allocation.
  constexpr std::uint32_t kMaxGeometry = 1u << 20;
  constexpr std::uint64_t kMaxLayerWeights = 1ull << 26;  // floats per layer
  Model staging;
  const std::uint32_t input_hypercolumns =
      read_u32_bounded(in, kMaxGeometry, "hypercolumn count");
  const std::uint32_t input_bins =
      read_u32_bounded(in, kMaxGeometry, "bin count");
  staging.input(input_hypercolumns, input_bins);
  const std::uint32_t depth = read_u32_bounded(in, 256, "hidden depth");
  if (depth == 0) throw std::runtime_error("load_model: no hidden layers");
  const std::uint64_t input_units =
      static_cast<std::uint64_t>(input_hypercolumns) * input_bins;
  std::uint64_t below_units = input_units;
  for (std::uint32_t l = 0; l < depth; ++l) {
    const std::uint32_t hcus = read_u32_bounded(in, kMaxGeometry, "hcu count");
    const std::uint32_t mcus = read_u32_bounded(in, kMaxGeometry, "mcu count");
    const double receptive_field = read_f64(in);
    const std::uint64_t units = static_cast<std::uint64_t>(hcus) * mcus;
    if (units > kMaxGeometry || below_units * units > kMaxLayerWeights) {
      throw std::runtime_error(
          "checkpoint: implausible layer geometry (weight matrix over " +
          std::to_string(kMaxLayerWeights) + " entries)");
    }
    below_units = units;
    staging.hidden(hcus, mcus, receptive_field);
  }
  const std::uint32_t classes =
      read_u32_bounded(in, kMaxGeometry, "class count");
  const std::uint32_t head_tag = read_u32(in);
  if (head_tag > 1) throw std::runtime_error("load_model: bad head tag");
  staging.classifier(classes, static_cast<HeadType>(head_tag));
  const std::string engine = read_string(in);
  const std::uint64_t seed = read_u64(in);
  const std::uint32_t option_count =
      read_u32_bounded(in, 4096, "option count");
  for (std::uint32_t i = 0; i < option_count; ++i) {
    const std::string key = read_string(in);
    const double value = read_f64(in);
    staging.set_option(key, value);
  }
  staging.compile(engine, seed);

  if (depth == 1) {
    read_network_state(in, staging.network(), version);
  } else {
    DeepBcpnn& deep = staging.deep();
    for (std::uint32_t l = 0; l < depth; ++l) {
      read_layer_section(in, deep.mutable_layer(l), version);
    }
    read_classifier_section(in, deep.head(), version);
  }
  model = std::move(staging);
}

void load_model(const std::string& path, Model& model) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_model: cannot open " + path);
  load_model(file, model);
}

Model clone_model(const Model& model) {
  // The checkpoint format is the one exact, engine-aware snapshot of a
  // compiled model, so cloning is a save/load round-trip through memory:
  // the replica compiles on the same engine and predicts bit-identically.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_model(buffer, model);
  Model replica;
  load_model(buffer, replica);
  return replica;
}

}  // namespace streambrain::core

