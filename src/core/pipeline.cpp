#include "core/pipeline.hpp"

#include "data/higgs.hpp"
#include "encode/one_hot.hpp"
#include "metrics/classification.hpp"
#include "metrics/roc.hpp"
#include "util/timer.hpp"

namespace streambrain::core {

ExperimentResult run_higgs_experiment(const HiggsExperimentConfig& config) {
  // --- Data: balanced events, split, quantile one-hot encoding ----------
  util::Rng rng(config.seed ^ 0xD1CE5EEDULL);
  const std::size_t total = config.train_events + config.test_events;
  data::Dataset dataset =
      data::load_or_generate_higgs(config.csv_path, total * 2, config.seed);
  // The synthetic generator is balanced by construction, but the real csv
  // is not; balanced_subset enforces the paper's protocol for both.
  const std::size_t per_class = total / 2;
  dataset = data::balanced_subset(dataset, per_class, rng);
  auto [train, test] = data::split(
      dataset, static_cast<double>(config.train_events) /
                   static_cast<double>(dataset.size()));

  encode::OneHotEncoder encoder(config.bins);
  const tensor::MatrixF x_train = encoder.fit_transform(train.features);
  const tensor::MatrixF x_test = encoder.transform(test.features);

  // --- Network -----------------------------------------------------------
  NetworkConfig net_config = config.network;
  net_config.bcpnn.input_hypercolumns = train.dim();
  net_config.bcpnn.input_bins = config.bins;
  net_config.bcpnn.seed = config.seed;
  Network network(net_config);
  if (config.catalyst != nullptr) {
    viz::CatalystAdaptor* catalyst = config.catalyst;
    network.set_epoch_callback(
        [catalyst](const EpochInfo& info, const BcpnnLayer& layer) {
          catalyst->co_process(info.epoch, layer.masks().all(),
                               layer.mi_map());
        });
  }

  util::Stopwatch watch;
  ExperimentResult result;
  result.fit = network.fit(x_train, train.labels);
  result.train_seconds = watch.seconds();

  // --- Evaluation ---------------------------------------------------------
  result.train_accuracy =
      metrics::accuracy(network.predict(x_train), train.labels);
  result.test_accuracy =
      metrics::accuracy(network.predict(x_test), test.labels);
  result.test_auc = metrics::auc(network.predict_scores(x_test), test.labels);
  result.final_masks = network.hidden().masks().all();
  return result;
}

std::vector<ExperimentResult> run_higgs_experiment_repeated(
    HiggsExperimentConfig config, std::size_t repeats) {
  std::vector<ExperimentResult> results;
  results.reserve(repeats);
  const std::uint64_t base_seed = config.seed;
  for (std::size_t r = 0; r < repeats; ++r) {
    config.seed = base_seed + r;
    results.push_back(run_higgs_experiment(config));
  }
  return results;
}

}  // namespace streambrain::core
