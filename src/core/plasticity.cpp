#include "core/plasticity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace streambrain::core {

ReceptiveFieldMasks::ReceptiveFieldMasks(std::size_t hcus,
                                         std::size_t input_hypercolumns,
                                         std::size_t cardinality,
                                         util::Rng& rng)
    : input_hypercolumns_(input_hypercolumns), cardinality_(cardinality) {
  if (cardinality == 0 || cardinality > input_hypercolumns) {
    throw std::invalid_argument(
        "ReceptiveFieldMasks: cardinality out of range");
  }
  masks_.resize(hcus);
  std::vector<std::size_t> candidates(input_hypercolumns);
  for (auto& mask : masks_) {
    mask.assign(input_hypercolumns, false);
    std::iota(candidates.begin(), candidates.end(), 0);
    rng.shuffle(candidates);
    for (std::size_t k = 0; k < cardinality; ++k) {
      mask[candidates[k]] = true;
    }
  }
}

std::size_t ReceptiveFieldMasks::active_count(std::size_t hcu) const {
  const auto& mask = masks_[hcu];
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), true));
}

double mutual_information(const ProbabilityTraces& traces,
                          std::size_t input_hc, std::size_t input_hc_size,
                          std::size_t hcu, std::size_t mcus_per_hcu,
                          float eps) {
  const auto& pij = traces.pij();
  const std::size_t i0 = input_hc * input_hc_size;
  const std::size_t j0 = hcu * mcus_per_hcu;

  // Re-normalize the joint block: with one-hot inputs and soft-WTA outputs
  // the block mass is ~1, but traces drift during annealing.
  double mass = 0.0;
  for (std::size_t bi = 0; bi < input_hc_size; ++bi) {
    for (std::size_t bj = 0; bj < mcus_per_hcu; ++bj) {
      mass += std::max<double>(pij(i0 + bi, j0 + bj), eps);
    }
  }
  if (mass <= 0.0) return 0.0;

  // Marginals of the normalized joint (consistent by construction, which
  // guarantees MI >= 0 up to float rounding).
  std::vector<double> pb(input_hc_size, 0.0);
  std::vector<double> qb(mcus_per_hcu, 0.0);
  for (std::size_t bi = 0; bi < input_hc_size; ++bi) {
    for (std::size_t bj = 0; bj < mcus_per_hcu; ++bj) {
      const double joint = std::max<double>(pij(i0 + bi, j0 + bj), eps) / mass;
      pb[bi] += joint;
      qb[bj] += joint;
    }
  }
  double mi = 0.0;
  for (std::size_t bi = 0; bi < input_hc_size; ++bi) {
    for (std::size_t bj = 0; bj < mcus_per_hcu; ++bj) {
      const double joint = std::max<double>(pij(i0 + bi, j0 + bj), eps) / mass;
      mi += joint * std::log(joint / (pb[bi] * qb[bj]));
    }
  }
  return std::max(0.0, mi);
}

std::vector<std::vector<float>> mutual_information_map(
    const ProbabilityTraces& traces, std::size_t input_hc_size,
    std::size_t hcus, std::size_t mcus_per_hcu, float eps) {
  const std::size_t input_hcs = traces.inputs() / input_hc_size;
  std::vector<std::vector<float>> map(hcus,
                                      std::vector<float>(input_hcs, 0.0f));
#pragma omp parallel for schedule(static) collapse(2)
  for (std::size_t h = 0; h < hcus; ++h) {
    for (std::size_t i = 0; i < input_hcs; ++i) {
      map[h][i] = static_cast<float>(
          mutual_information(traces, i, input_hc_size, h, mcus_per_hcu, eps));
    }
  }
  return map;
}

std::size_t structural_plasticity_step(ReceptiveFieldMasks& masks,
                                       const ProbabilityTraces& traces,
                                       std::size_t input_hc_size,
                                       std::size_t mcus_per_hcu, float eps,
                                       const PlasticityConfig& config) {
  const std::size_t input_hcs = masks.input_hypercolumns();
  const auto mi =
      mutual_information_map(traces, input_hc_size, masks.hcus(),
                             mcus_per_hcu, eps);
  std::size_t total_swaps = 0;
  for (std::size_t h = 0; h < masks.hcus(); ++h) {
    // Partition connections by mask state, sorted by MI.
    std::vector<std::size_t> active;
    std::vector<std::size_t> silent;
    for (std::size_t i = 0; i < input_hcs; ++i) {
      (masks.active(h, i) ? active : silent).push_back(i);
    }
    std::sort(active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
      return mi[h][a] < mi[h][b];  // worst active first
    });
    std::sort(silent.begin(), silent.end(), [&](std::size_t a, std::size_t b) {
      return mi[h][a] > mi[h][b];  // best silent first
    });
    const std::size_t swaps =
        std::min({config.swaps_per_hcu, active.size(), silent.size()});
    for (std::size_t s = 0; s < swaps; ++s) {
      const std::size_t worst_active = active[s];
      const std::size_t best_silent = silent[s];
      if (mi[h][best_silent] <=
          mi[h][worst_active] * (1.0 + config.hysteresis)) {
        break;  // remaining pairs are even less attractive
      }
      masks.set(h, worst_active, false);
      masks.set(h, best_silent, true);
      ++total_swaps;
    }
  }
  return total_swaps;
}

}  // namespace streambrain::core
