#include "core/semi_supervised.hpp"

#include <numeric>
#include <stdexcept>

#include "util/timer.hpp"

namespace streambrain::core {

SemiSupervisedReport fit_semi_supervised(Network& network,
                                         const tensor::MatrixF& x,
                                         const std::vector<int>& labels) {
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("fit_semi_supervised: rows != labels");
  }
  std::vector<std::size_t> labeled_rows;
  for (std::size_t r = 0; r < labels.size(); ++r) {
    if (labels[r] != kUnlabeled) labeled_rows.push_back(r);
  }
  if (labeled_rows.empty()) {
    throw std::invalid_argument(
        "fit_semi_supervised: need at least one labeled example");
  }

  SemiSupervisedReport report;
  report.labeled_examples = labeled_rows.size();
  report.unlabeled_examples = labels.size() - labeled_rows.size();

  // Phase 1 — the hidden layer learns from EVERY example; local learning
  // never touches a label.
  report.fit = network.fit_unsupervised(x);

  // Phase 2 — the classification layer sees only the labeled subset.
  util::Stopwatch head_watch;
  tensor::MatrixF x_labeled(labeled_rows.size(), x.cols());
  std::vector<int> y_labeled(labeled_rows.size());
  for (std::size_t i = 0; i < labeled_rows.size(); ++i) {
    std::copy_n(x.row(labeled_rows[i]), x.cols(), x_labeled.row(i));
    y_labeled[i] = labels[labeled_rows[i]];
  }
  network.fit_head(x_labeled, y_labeled);
  report.fit.head_seconds = head_watch.seconds();
  return report;
}

}  // namespace streambrain::core
