#include "core/hyperparams.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace streambrain::core {

std::size_t BcpnnConfig::mask_cardinality() const noexcept {
  const auto k = static_cast<std::size_t>(std::ceil(
      receptive_field * static_cast<double>(input_hypercolumns)));
  return std::clamp<std::size_t>(k, 1, input_hypercolumns);
}

void BcpnnConfig::apply(const util::Config& config) {
  hcus = static_cast<std::size_t>(config.get_int("hcus", static_cast<long long>(hcus)));
  mcus = static_cast<std::size_t>(config.get_int("mcus", static_cast<long long>(mcus)));
  receptive_field = config.get_double("receptive_field", receptive_field);
  alpha = static_cast<float>(config.get_double("alpha", alpha));
  alpha_supervised = static_cast<float>(
      config.get_double("alpha_supervised", alpha_supervised));
  k_beta = static_cast<float>(config.get_double("k_beta", k_beta));
  inverse_temperature = static_cast<float>(
      config.get_double("inverse_temperature", inverse_temperature));
  noise_start = static_cast<float>(config.get_double("noise_start", noise_start));
  noise_end = static_cast<float>(config.get_double("noise_end", noise_end));
  epochs = static_cast<std::size_t>(
      config.get_int("epochs", static_cast<long long>(epochs)));
  head_epochs = static_cast<std::size_t>(
      config.get_int("head_epochs", static_cast<long long>(head_epochs)));
  batch_size = static_cast<std::size_t>(
      config.get_int("batch_size", static_cast<long long>(batch_size)));
  plasticity_swaps = static_cast<std::size_t>(config.get_int(
      "plasticity_swaps", static_cast<long long>(plasticity_swaps)));
  prune_density = config.get_double("prune_density", prune_density);
  prune_cadence = static_cast<std::size_t>(config.get_int(
      "prune_cadence", static_cast<long long>(prune_cadence)));
  engine = config.get_string("engine", engine);
  seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<long long>(seed)));
}

void BcpnnConfig::validate() const {
  if (input_hypercolumns == 0) {
    throw std::invalid_argument("BcpnnConfig: input_hypercolumns must be > 0");
  }
  if (input_bins == 0) {
    throw std::invalid_argument("BcpnnConfig: input_bins must be > 0");
  }
  if (hcus == 0) throw std::invalid_argument("BcpnnConfig: hcus must be > 0");
  if (mcus == 0) throw std::invalid_argument("BcpnnConfig: mcus must be > 0");
  if (receptive_field < 0.0 || receptive_field > 1.0) {
    throw std::invalid_argument("BcpnnConfig: receptive_field not in [0,1]");
  }
  if (alpha <= 0.0f || alpha > 1.0f) {
    throw std::invalid_argument("BcpnnConfig: alpha not in (0,1]");
  }
  if (alpha_supervised <= 0.0f || alpha_supervised > 1.0f) {
    throw std::invalid_argument("BcpnnConfig: alpha_supervised not in (0,1]");
  }
  if (eps <= 0.0f) throw std::invalid_argument("BcpnnConfig: eps must be > 0");
  if (batch_size == 0) {
    throw std::invalid_argument("BcpnnConfig: batch_size must be > 0");
  }
  if (prune_density <= 0.0 || prune_density > 1.0) {
    throw std::invalid_argument("BcpnnConfig: prune_density not in (0,1]");
  }
}

}  // namespace streambrain::core
