#pragma once
// The unsupervised BCPNN hidden layer: HCU/MCU geometry, soft-WTA
// activation, local trace learning, Bayesian weight recomputation, and
// structural plasticity over the receptive-field masks.
//
// Learning is fully local (Section II-A): a batch update touches only the
// layer's own traces; nothing propagates backward. The layer is
// unsupervised — its training target is its own (noise-perturbed)
// activation, with the noise annealed to zero over the training schedule
// so minicolumns first explore and then commit to features.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/hyperparams.hpp"
#include "core/plasticity.hpp"
#include "core/traces.hpp"
#include "parallel/engine.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace streambrain::core {

class BcpnnLayer {
 public:
  /// `engine` must outlive the layer.
  BcpnnLayer(const BcpnnConfig& config, parallel::Engine& engine,
             util::Rng& rng);

  // --- Inference ---------------------------------------------------------
  /// Deterministic forward pass: activations = soft-WTA(support(x)).
  /// `x` is [batch x input_units()], activations resized to
  /// [batch x hidden_units()].
  void forward(const tensor::MatrixF& x, tensor::MatrixF& activations);

  /// Forward with additive Gaussian support noise (training-time only).
  void forward_noisy(const tensor::MatrixF& x, tensor::MatrixF& activations,
                     float noise_std);

  // --- Learning ----------------------------------------------------------
  /// One unsupervised batch: noisy forward, trace EMA update, weight
  /// recomputation. This is the inner loop the engines accelerate.
  void train_batch(const tensor::MatrixF& x, float noise_std);

  /// Recompute weights and biases from the traces and re-apply the masks.
  void recompute_weights();

  /// One structural-plasticity step (call once per epoch). Returns the
  /// number of connection swaps performed.
  std::size_t plasticity_step();

  /// Override the per-epoch swap budget (used by the adaptive-plasticity
  /// controller, the paper's future-work extension).
  void set_plasticity_swaps(std::size_t swaps) noexcept {
    config_.plasticity_swaps = swaps;
  }

  // --- Structural pruning --------------------------------------------------
  /// Magnitude-based element pruning: keep the `density` fraction of
  /// weight entries with the largest |w| (deterministic tie-break by
  /// ascending index), zero the rest, and remember the keep-mask so it
  /// survives every subsequent recompute_weights(). Calling it again
  /// re-selects the mask from the current magnitudes (the "rewire" half
  /// of the in-training prune/rewire cadence). Returns the number of
  /// zeroed entries. density must be in (0, 1].
  std::size_t prune_to_density(double density);

  /// Drop the element keep-mask (the receptive-field masks stay).
  void clear_pruning();

  /// Checkpointing access: the element keep-mask (empty when unpruned).
  [[nodiscard]] const std::vector<std::uint8_t>& prune_mask() const noexcept {
    return prune_keep_;
  }

  /// Adopt a checkpointed keep-mask (empty clears) and re-apply it —
  /// without this, loading a pruned model would silently regrow the
  /// pruned weights from the traces. Throws on size mismatch.
  void set_prune_mask(std::vector<std::uint8_t> mask);

  /// True when an element keep-mask is active.
  [[nodiscard]] bool pruned() const noexcept { return !prune_keep_.empty(); }

  /// Fraction of weight entries currently non-zero.
  [[nodiscard]] double weight_density() const noexcept;

  // --- Sparse inference form -----------------------------------------------
  /// Convert to the compact read-only inference form: compress the
  /// (masked, pruned) weights to CSR (transposed: one sparse row per
  /// hidden unit), then free the dense weights AND the probability
  /// traces. forward()/forward_spiking() keep working bit-identically
  /// (at scalar dispatch) through the sparse kernels; every training
  /// entry point throws std::logic_error afterwards. Irreversible.
  void sparsify();

  /// True for both the fp32-CSR and the quantized-CSR forms (either way
  /// the weights live on the CSR index structure).
  [[nodiscard]] bool sparse() const noexcept {
    return sparse_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  /// CSR of W^T (throws std::logic_error when not sparsified).
  [[nodiscard]] const tensor::CsrMatrix& sparse_weights() const;

  /// Adopt a deserialized sparse form directly (checkpoint read path).
  /// Shape-checked against the layer geometry; replaces any dense state.
  void adopt_sparse(tensor::CsrMatrix wt, std::vector<float> bias);

  // --- Quantized inference form --------------------------------------------
  /// Convert to the int8 read-only inference form: per-block symmetric
  /// quantization of the dense weights (QuantBlockMatrix of W^T), or of
  /// the CSR values (QuantCsr, per-row scales) when the layer already
  /// sparsified — quantization composes AFTER sparsify(). Frees the
  /// replaced weight storage and the traces; every training entry point
  /// throws std::logic_error afterwards. Irreversible and idempotent.
  void quantize(std::size_t block_size);

  [[nodiscard]] bool quantized() const noexcept {
    return quant_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  /// Block-quantized W^T (throws std::logic_error unless dense-quantized).
  [[nodiscard]] const tensor::QuantBlockMatrix& quant_weights() const;

  /// Quantized CSR of W^T (throws std::logic_error unless sparse-quantized).
  [[nodiscard]] const tensor::QuantCsr& quant_sparse_weights() const;

  /// Adopt a deserialized quantized form (checkpoint read path); shape
  /// checked against the layer geometry, replaces any other weight form.
  void adopt_quant(tensor::QuantBlockMatrix wt, std::vector<float> bias);
  void adopt_quant_sparse(tensor::QuantCsr wt, std::vector<float> bias);

  /// Spiking forward pass — BCPNN's spiking model of computation
  /// (Section II: "supports both spiking- and rate-based models").
  /// Each HCU emits one categorical spike per timestep drawn from its
  /// soft-WTA distribution; activations are normalized spike counts and
  /// converge to the rate-based forward() as timesteps grows.
  void forward_spiking(const tensor::MatrixF& x, tensor::MatrixF& activations,
                       std::size_t timesteps);

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] const BcpnnConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t input_units() const noexcept {
    return config_.input_units();
  }
  [[nodiscard]] std::size_t hidden_units() const noexcept {
    return config_.hidden_units();
  }
  [[nodiscard]] const ReceptiveFieldMasks& masks() const noexcept {
    return masks_;
  }
  [[nodiscard]] const ProbabilityTraces& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] ProbabilityTraces& mutable_traces() noexcept {
    return traces_;
  }
  [[nodiscard]] const tensor::MatrixF& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<float>& bias() const noexcept {
    return bias_;
  }
  /// MI map used by the last plasticity step (for visualization).
  [[nodiscard]] std::vector<std::vector<float>> mi_map() const;

  /// Overwrite traces and masks (used by the distributed trainer to adopt
  /// the synchronized state); recomputes the weights.
  void set_state(const ProbabilityTraces& traces,
                 const ReceptiveFieldMasks& masks);

 private:
  void apply_masks();
  void require_mutable(const char* what) const;

  BcpnnConfig config_;
  parallel::Engine* engine_;
  util::Rng rng_;
  ProbabilityTraces traces_;
  ReceptiveFieldMasks masks_;
  tensor::MatrixF weights_;   // [input_units x hidden_units]
  std::vector<float> bias_;   // [hidden_units]
  tensor::MatrixF noise_scratch_;
  /// Element keep-mask from prune_to_density (empty = no pruning);
  /// weights_.size() bytes, 1 = keep. Re-applied by apply_masks().
  std::vector<std::uint8_t> prune_keep_;
  /// Non-null once sparsify()/adopt_sparse() ran: CSR of W^T, the only
  /// weight storage of the read-only inference form.
  std::unique_ptr<tensor::CsrMatrix> sparse_wt_;
  /// At most one non-null: the int8 forms of quantize()/adopt_quant*().
  std::unique_ptr<tensor::QuantBlockMatrix> quant_wt_;
  std::unique_ptr<tensor::QuantCsr> quant_sparse_wt_;
};

}  // namespace streambrain::core
