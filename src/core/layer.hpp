#pragma once
// The unsupervised BCPNN hidden layer: HCU/MCU geometry, soft-WTA
// activation, local trace learning, Bayesian weight recomputation, and
// structural plasticity over the receptive-field masks.
//
// Learning is fully local (Section II-A): a batch update touches only the
// layer's own traces; nothing propagates backward. The layer is
// unsupervised — its training target is its own (noise-perturbed)
// activation, with the noise annealed to zero over the training schedule
// so minicolumns first explore and then commit to features.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/hyperparams.hpp"
#include "core/plasticity.hpp"
#include "core/traces.hpp"
#include "parallel/engine.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace streambrain::core {

class BcpnnLayer {
 public:
  /// `engine` must outlive the layer.
  BcpnnLayer(const BcpnnConfig& config, parallel::Engine& engine,
             util::Rng& rng);

  // --- Inference ---------------------------------------------------------
  /// Deterministic forward pass: activations = soft-WTA(support(x)).
  /// `x` is [batch x input_units()], activations resized to
  /// [batch x hidden_units()].
  void forward(const tensor::MatrixF& x, tensor::MatrixF& activations);

  /// Forward with additive Gaussian support noise (training-time only).
  void forward_noisy(const tensor::MatrixF& x, tensor::MatrixF& activations,
                     float noise_std);

  // --- Learning ----------------------------------------------------------
  /// One unsupervised batch: noisy forward, trace EMA update, weight
  /// recomputation. This is the inner loop the engines accelerate.
  void train_batch(const tensor::MatrixF& x, float noise_std);

  /// Recompute weights and biases from the traces and re-apply the masks.
  void recompute_weights();

  /// One structural-plasticity step (call once per epoch). Returns the
  /// number of connection swaps performed.
  std::size_t plasticity_step();

  /// Override the per-epoch swap budget (used by the adaptive-plasticity
  /// controller, the paper's future-work extension).
  void set_plasticity_swaps(std::size_t swaps) noexcept {
    config_.plasticity_swaps = swaps;
  }

  /// Spiking forward pass — BCPNN's spiking model of computation
  /// (Section II: "supports both spiking- and rate-based models").
  /// Each HCU emits one categorical spike per timestep drawn from its
  /// soft-WTA distribution; activations are normalized spike counts and
  /// converge to the rate-based forward() as timesteps grows.
  void forward_spiking(const tensor::MatrixF& x, tensor::MatrixF& activations,
                       std::size_t timesteps);

  // --- Introspection -------------------------------------------------------
  [[nodiscard]] const BcpnnConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t input_units() const noexcept {
    return config_.input_units();
  }
  [[nodiscard]] std::size_t hidden_units() const noexcept {
    return config_.hidden_units();
  }
  [[nodiscard]] const ReceptiveFieldMasks& masks() const noexcept {
    return masks_;
  }
  [[nodiscard]] const ProbabilityTraces& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] ProbabilityTraces& mutable_traces() noexcept {
    return traces_;
  }
  [[nodiscard]] const tensor::MatrixF& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<float>& bias() const noexcept {
    return bias_;
  }
  /// MI map used by the last plasticity step (for visualization).
  [[nodiscard]] std::vector<std::vector<float>> mi_map() const;

  /// Overwrite traces and masks (used by the distributed trainer to adopt
  /// the synchronized state); recomputes the weights.
  void set_state(const ProbabilityTraces& traces,
                 const ReceptiveFieldMasks& masks);

 private:
  void apply_masks();

  BcpnnConfig config_;
  parallel::Engine* engine_;
  util::Rng rng_;
  ProbabilityTraces traces_;
  ReceptiveFieldMasks masks_;
  tensor::MatrixF weights_;   // [input_units x hidden_units]
  std::vector<float> bias_;   // [hidden_units]
  tensor::MatrixF noise_scratch_;
};

}  // namespace streambrain::core
