#pragma once
// Probability traces: exponentially-weighted running estimates of the
// marginal and joint activation probabilities that the BCPNN learning
// rule turns into weights:
//
//   p_i  ~ P(input unit i active)
//   p_j  ~ P(output unit j active)
//   p_ij ~ P(i and j co-active)
//
// Traces are the only learned state BCPNN carries (weights are a pure
// function of them), which is also why data-parallel training only has to
// average traces — the property the comm substrate exercises.

#include <cstddef>
#include <vector>

#include "parallel/engine.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

class ProbabilityTraces {
 public:
  /// Initializes to the independent uniform prior: p_i = 1/input_hc_size,
  /// p_j = 1/output_hc_size, p_ij = p_i * p_j. The resulting initial
  /// weights are exactly zero (log of ratio 1).
  ProbabilityTraces(std::size_t n_inputs, std::size_t input_hc_size,
                    std::size_t n_outputs, std::size_t output_hc_size);

  /// One batch EMA update via the engine.
  void update(parallel::Engine& engine, const tensor::MatrixF& x,
              const tensor::MatrixF& a, float alpha);

  [[nodiscard]] std::size_t inputs() const noexcept { return pi_.size(); }
  [[nodiscard]] std::size_t outputs() const noexcept { return pj_.size(); }

  [[nodiscard]] const std::vector<float>& pi() const noexcept { return pi_; }
  [[nodiscard]] const std::vector<float>& pj() const noexcept { return pj_; }
  [[nodiscard]] const tensor::MatrixF& pij() const noexcept { return pij_; }

  [[nodiscard]] std::vector<float>& mutable_pi() noexcept { return pi_; }
  [[nodiscard]] std::vector<float>& mutable_pj() noexcept { return pj_; }
  [[nodiscard]] tensor::MatrixF& mutable_pij() noexcept { return pij_; }

  /// Free all trace storage (inputs()/outputs() become 0). Called when a
  /// layer enters the read-only sparse inference form: p_ij is as large
  /// as the dense weight matrix, and dropping it is most of the memory
  /// win of Model::sparsify(). Irreversible for this object.
  void release() noexcept {
    pi_.clear();
    pi_.shrink_to_fit();
    pj_.clear();
    pj_.shrink_to_fit();
    pij_ = tensor::MatrixF();
  }

  /// Sum of p_i within each input hypercolumn (should stay ~1 for one-hot
  /// inputs) — used by property tests.
  [[nodiscard]] std::vector<double> input_hypercolumn_mass() const;
  [[nodiscard]] std::vector<double> output_hypercolumn_mass() const;

 private:
  std::size_t input_hc_size_;
  std::size_t output_hc_size_;
  std::vector<float> pi_;
  std::vector<float> pj_;
  tensor::MatrixF pij_;  // [inputs x outputs]
};

}  // namespace streambrain::core
