#pragma once
// Online adaptation of the structural-plasticity schedule — the paper's
// stated future direction: "adapting hyperparameters associated with
// structural plasticity dynamically online" (Section VII).
//
// The controller replaces the fixed swaps-per-epoch budget with a simple
// feedback law on the quantity plasticity exists to maximize: the total
// mutual information captured by the active connections. After each
// epoch's swap step it measures the realized relative MI gain; sustained
// gains grow the swap budget (the masks are still migrating), stagnation
// shrinks it toward zero (the fields have converged, stop thrashing).

#include <cstddef>
#include <vector>

#include "core/layer.hpp"

namespace streambrain::core {

struct AdaptivePlasticityConfig {
  std::size_t initial_swaps = 4;
  std::size_t min_swaps = 0;
  std::size_t max_swaps = 10;
  /// Relative MI gain above which the budget grows by one.
  double grow_threshold = 0.02;
  /// Relative MI gain below which the budget shrinks by one.
  double shrink_threshold = 0.002;
};

struct AdaptivePlasticityEpoch {
  std::size_t epoch = 0;
  std::size_t budget = 0;        ///< swaps allowed this epoch
  std::size_t swaps = 0;         ///< swaps actually performed
  double mask_mi_before = 0.0;   ///< total active-connection MI
  double mask_mi_after = 0.0;
};

class AdaptivePlasticityController {
 public:
  explicit AdaptivePlasticityController(AdaptivePlasticityConfig config = {});

  /// Run one adaptive plasticity step on `layer` (call once per epoch in
  /// place of layer.plasticity_step()). Returns the epoch record.
  AdaptivePlasticityEpoch step(BcpnnLayer& layer);

  [[nodiscard]] std::size_t current_budget() const noexcept {
    return budget_;
  }
  [[nodiscard]] const std::vector<AdaptivePlasticityEpoch>& history()
      const noexcept {
    return history_;
  }

  /// Total MI over a layer's active connections (the controlled signal).
  static double mask_mutual_information(const BcpnnLayer& layer);

 private:
  AdaptivePlasticityConfig config_;
  std::size_t budget_;
  std::vector<AdaptivePlasticityEpoch> history_;
};

}  // namespace streambrain::core
