#include "core/classifier.hpp"

#include <stdexcept>
#include <string>

#include "core/pruning.hpp"
#include "tensor/kernels.hpp"

namespace streambrain::core {

BcpnnClassifier::BcpnnClassifier(std::size_t inputs, std::size_t input_hcs,
                                 std::size_t classes,
                                 parallel::Engine& engine, float alpha,
                                 float eps, float k_beta)
    : classes_(classes),
      engine_(&engine),
      alpha_(alpha),
      eps_(eps),
      k_beta_(k_beta),
      traces_(inputs, input_hcs == 0 ? inputs : inputs / input_hcs, classes,
              classes),
      weights_(inputs, classes, 0.0f),
      bias_(classes, 0.0f) {
  if (classes < 2) {
    throw std::invalid_argument("BcpnnClassifier: need at least 2 classes");
  }
  recompute_weights();
}

void BcpnnClassifier::train_batch(const tensor::MatrixF& hidden,
                                  const tensor::MatrixF& targets) {
  require_mutable("train_batch");
  if (targets.cols() != classes_ || targets.rows() != hidden.rows()) {
    throw std::invalid_argument("BcpnnClassifier::train_batch: shape");
  }
  traces_.update(*engine_, hidden, targets, alpha_);
  recompute_weights();
}

void BcpnnClassifier::recompute_weights() {
  require_mutable("recompute_weights");
  engine_->recompute_weights(traces_.pi().data(), traces_.pj().data(),
                             traces_.pij(), eps_, k_beta_, weights_,
                             bias_.data());
  apply_prune_mask();
}

void BcpnnClassifier::apply_prune_mask() {
  if (prune_keep_.empty()) return;
  float* w = weights_.data();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (prune_keep_[i] == 0) w[i] = 0.0f;
  }
}

void BcpnnClassifier::predict(const tensor::MatrixF& hidden,
                              tensor::MatrixF& probs) {
  if (quant_wt_) {
    tensor::quant_support(*quant_wt_, hidden, bias_.data(), probs);
  } else if (quant_sparse_wt_) {
    tensor::quant_sparse_support(*quant_sparse_wt_, hidden, bias_.data(),
                                 probs);
  } else if (sparse_wt_) {
    tensor::sparse_support(*sparse_wt_, hidden, bias_.data(), probs);
  } else {
    engine_->support(hidden, weights_, bias_.data(), probs);
  }
  engine_->softmax_hcu(probs, classes_, 1.0f);
}

std::size_t BcpnnClassifier::prune_to_density(double density) {
  require_mutable("prune_to_density");
  prune_keep_ = magnitude_keep_mask(weights_.data(), weights_.size(), density);
  std::size_t dropped = 0;
  for (const std::uint8_t keep : prune_keep_) dropped += keep == 0;
  apply_prune_mask();
  return dropped;
}

void BcpnnClassifier::set_prune_mask(std::vector<std::uint8_t> mask) {
  require_mutable("set_prune_mask");
  if (!mask.empty() && mask.size() != weights_.size()) {
    throw std::invalid_argument(
        "BcpnnClassifier::set_prune_mask: size mismatch");
  }
  prune_keep_ = std::move(mask);
  apply_prune_mask();
}

double BcpnnClassifier::weight_density() const noexcept {
  if (quant_sparse_wt_) return quant_sparse_wt_->density();
  if (quant_wt_) {
    std::size_t nnz = 0;
    for (const std::int8_t code : quant_wt_->codes()) nnz += code != 0;
    return quant_wt_->codes().empty()
               ? 1.0
               : static_cast<double>(nnz) /
                     static_cast<double>(quant_wt_->codes().size());
  }
  if (sparse_wt_) return sparse_wt_->density();
  if (weights_.empty()) return 1.0;
  std::size_t nnz = 0;
  for (const float w : weights_) nnz += w != 0.0f;
  return static_cast<double>(nnz) / static_cast<double>(weights_.size());
}

void BcpnnClassifier::sparsify() {
  if (quantized()) {
    throw std::logic_error(
        "BcpnnClassifier::sparsify: head is already quantized (sparsify "
        "before quantize, not after)");
  }
  if (sparse_wt_) return;  // idempotent
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(
      tensor::CsrMatrix::from_dense_transposed(weights_));
  weights_ = tensor::MatrixF();
  scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::CsrMatrix& BcpnnClassifier::sparse_weights() const {
  if (!sparse_wt_) {
    throw std::logic_error("BcpnnClassifier::sparse_weights: head is dense");
  }
  return *sparse_wt_;
}

void BcpnnClassifier::adopt_sparse(tensor::CsrMatrix wt,
                                   std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (traces_.inputs() != 0 && wt.cols() != traces_.inputs())) {
    throw std::invalid_argument("BcpnnClassifier::adopt_sparse: shape");
  }
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(std::move(wt));
  bias_ = std::move(bias);
  weights_ = tensor::MatrixF();
  scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnClassifier::quantize(std::size_t block_size) {
  if (quantized()) return;  // idempotent
  if (sparse_wt_) {
    quant_sparse_wt_ = std::make_unique<tensor::QuantCsr>(
        tensor::QuantCsr::from_csr(*sparse_wt_));
    sparse_wt_.reset();
    return;
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(
      tensor::QuantBlockMatrix::from_dense_transposed(weights_, block_size));
  weights_ = tensor::MatrixF();
  scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::QuantBlockMatrix& BcpnnClassifier::quant_weights() const {
  if (!quant_wt_) {
    throw std::logic_error(
        "BcpnnClassifier::quant_weights: head is not dense-quantized");
  }
  return *quant_wt_;
}

const tensor::QuantCsr& BcpnnClassifier::quant_sparse_weights() const {
  if (!quant_sparse_wt_) {
    throw std::logic_error(
        "BcpnnClassifier::quant_sparse_weights: head is not sparse-quantized");
  }
  return *quant_sparse_wt_;
}

void BcpnnClassifier::adopt_quant(tensor::QuantBlockMatrix wt,
                                  std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (traces_.inputs() != 0 && wt.cols() != traces_.inputs())) {
    throw std::invalid_argument("BcpnnClassifier::adopt_quant: shape");
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(std::move(wt));
  quant_sparse_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnClassifier::adopt_quant_sparse(tensor::QuantCsr wt,
                                         std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (traces_.inputs() != 0 && wt.cols() != traces_.inputs())) {
    throw std::invalid_argument("BcpnnClassifier::adopt_quant_sparse: shape");
  }
  quant_sparse_wt_ = std::make_unique<tensor::QuantCsr>(std::move(wt));
  quant_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnClassifier::require_mutable(const char* what) const {
  if (sparse_wt_) {
    throw std::logic_error(std::string("BcpnnClassifier::") + what +
                           ": head is in the read-only sparse form");
  }
  if (quantized()) {
    throw std::logic_error(std::string("BcpnnClassifier::") + what +
                           ": head is in the read-only quantized form");
  }
}

std::vector<int> BcpnnClassifier::predict_labels(
    const tensor::MatrixF& hidden) {
  predict(hidden, scratch_);
  std::vector<std::size_t> best(scratch_.rows());
  tensor::argmax_rows(scratch_, best.data());
  std::vector<int> labels(scratch_.rows());
  for (std::size_t r = 0; r < scratch_.rows(); ++r) {
    labels[r] = static_cast<int>(best[r]);
  }
  return labels;
}

std::vector<double> BcpnnClassifier::predict_scores(
    const tensor::MatrixF& hidden) {
  predict(hidden, scratch_);
  std::vector<double> scores(scratch_.rows());
  for (std::size_t r = 0; r < scratch_.rows(); ++r) {
    scores[r] = scratch_(r, 1);
  }
  return scores;
}

}  // namespace streambrain::core
