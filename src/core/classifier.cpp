#include "core/classifier.hpp"

#include <stdexcept>

#include "tensor/kernels.hpp"

namespace streambrain::core {

BcpnnClassifier::BcpnnClassifier(std::size_t inputs, std::size_t input_hcs,
                                 std::size_t classes,
                                 parallel::Engine& engine, float alpha,
                                 float eps, float k_beta)
    : classes_(classes),
      engine_(&engine),
      alpha_(alpha),
      eps_(eps),
      k_beta_(k_beta),
      traces_(inputs, input_hcs == 0 ? inputs : inputs / input_hcs, classes,
              classes),
      weights_(inputs, classes, 0.0f),
      bias_(classes, 0.0f) {
  if (classes < 2) {
    throw std::invalid_argument("BcpnnClassifier: need at least 2 classes");
  }
  recompute_weights();
}

void BcpnnClassifier::train_batch(const tensor::MatrixF& hidden,
                                  const tensor::MatrixF& targets) {
  if (targets.cols() != classes_ || targets.rows() != hidden.rows()) {
    throw std::invalid_argument("BcpnnClassifier::train_batch: shape");
  }
  traces_.update(*engine_, hidden, targets, alpha_);
  recompute_weights();
}

void BcpnnClassifier::recompute_weights() {
  engine_->recompute_weights(traces_.pi().data(), traces_.pj().data(),
                             traces_.pij(), eps_, k_beta_, weights_,
                             bias_.data());
}

void BcpnnClassifier::predict(const tensor::MatrixF& hidden,
                              tensor::MatrixF& probs) {
  engine_->support(hidden, weights_, bias_.data(), probs);
  engine_->softmax_hcu(probs, classes_, 1.0f);
}

std::vector<int> BcpnnClassifier::predict_labels(
    const tensor::MatrixF& hidden) {
  predict(hidden, scratch_);
  std::vector<std::size_t> best(scratch_.rows());
  tensor::argmax_rows(scratch_, best.data());
  std::vector<int> labels(scratch_.rows());
  for (std::size_t r = 0; r < scratch_.rows(); ++r) {
    labels[r] = static_cast<int>(best[r]);
  }
  return labels;
}

std::vector<double> BcpnnClassifier::predict_scores(
    const tensor::MatrixF& hidden) {
  predict(hidden, scratch_);
  std::vector<double> scores(scratch_.rows());
  for (std::size_t r = 0; r < scratch_.rows(); ++r) {
    scores[r] = scratch_(r, 1);
  }
  return scores;
}

}  // namespace streambrain::core
