#pragma once
// Data-parallel BCPNN training over the comm substrate — the pattern of
// StreamBrain's MPI backend. Because BCPNN learning is local, the only
// state that must be synchronized is the probability traces: each rank
// trains on its shard and the ranks average traces after every batch
// (a single allreduce; weights are recomputed locally from the averaged
// traces). Section II-B's claim — "one can conceptually launch different
// BCPNN instances and scale horizontally without the limiting factor on
// communication" — is exactly what bench_scaling measures with this
// trainer.

#include <cstddef>
#include <cstdint>

#include "core/layer.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

struct DistributedReport {
  int ranks = 1;
  double seconds = 0.0;
  std::uint64_t bytes_per_rank = 0;    ///< logical network traffic, one rank
  std::uint64_t total_bytes = 0;       ///< across all ranks
  std::size_t sync_count = 0;          ///< number of trace allreduces
};

/// Unsupervised data-parallel training of `layer` on encoded inputs `x`.
///
/// Rows are sharded round-robin across `ranks` simulated ranks; every rank
/// runs the identical annealing schedule and plasticity steps (which stay
/// deterministic because traces are identical after each allreduce). On
/// return, `layer` holds the synchronized state. With ranks == 1 this
/// degenerates to ordinary training.
DistributedReport distributed_unsupervised_fit(BcpnnLayer& layer,
                                               const tensor::MatrixF& x,
                                               int ranks);

}  // namespace streambrain::core
