#pragma once
// Data-parallel BCPNN training over the comm substrate — the pattern of
// StreamBrain's MPI backend. Because BCPNN learning is local, the only
// state that must be synchronized is the probability traces (plus the
// read-out head's state): each rank trains on its shard and the ranks
// exchange one reduction per batch; weights are recomputed locally from
// the synchronized traces. Section II-B's claim — "one can conceptually
// launch different BCPNN instances and scale horizontally without the
// limiting factor on communication" — is exactly what bench_scaling
// measures with this trainer.
//
// DistributedTrainer trains *full* models (hidden BCPNN layer + BCPNN or
// SGD read-out head, and deep:: stacks) and is rank-count invariant by
// construction: every global batch is partitioned into a fixed number of
// *virtual shards* (independent of the rank count), each rank computes
// the partial batch statistics of the virtual shards it owns, one
// zero-padded allreduce exchanges them (exact — the shards' slots are
// disjoint, so every addition is x + 0), and every rank then combines the
// shards in fixed order and applies the identical update. The result is
// bit-identical at 1, 2, 3, 4, ... ranks as long as `virtual_shards`
// stays fixed.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "core/layer.hpp"
#include "core/model.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

struct DistributedOptions {
  /// Rank threads when fit() runs the world itself.
  int ranks = 1;
  /// Transport the ranks communicate over. kInProcess (default) uses the
  /// original mailbox substrate; kShm and kTcp run the same schedules
  /// over a real shared-memory segment / loopback TCP mesh — results are
  /// bit-identical, only the wire (and wire_bytes accounting) changes.
  comm::Backend backend = comm::Backend::kInProcess;
  /// Allreduce algorithm used for every synchronization; changes the
  /// communication pattern and byte accounting, never the result.
  comm::AllreduceAlgorithm algorithm = comm::AllreduceAlgorithm::kFlat;
  /// Batches between synchronizations. 1 (default) is the exact mode:
  /// one statistics reduction per batch, bit-identical across rank
  /// counts. k >= 2 trades fidelity for k-fold less traffic: ranks apply
  /// local updates and average traces/weights every k-th batch (plus at
  /// every epoch end, so structural plasticity stays rank-synchronized).
  /// Still deterministic, but dependent on (ranks, sync_cadence).
  std::size_t sync_cadence = 1;
  /// Fixed data decomposition width for the exact mode. Results are
  /// invariant to the rank count but NOT to this value; any rank count
  /// (including ranks > virtual_shards) is supported. Reproducibility has
  /// a bandwidth price: the exact mode's per-batch payload is
  /// virtual_shards * the trace-statistics block (the zero padding that
  /// makes the reduction exact), so traffic scales linearly with this
  /// knob. Lower it (or raise sync_cadence) to trade traffic for
  /// parallel width / fidelity.
  int virtual_shards = 8;
  /// Issue the per-batch reduction as a nonblocking iallreduce and pack
  /// the next batch's shard rows before waiting on it (exact mode only).
  bool overlap = true;
};

struct DistributedReport {
  int ranks = 1;
  comm::Backend backend = comm::Backend::kInProcess;
  comm::AllreduceAlgorithm algorithm = comm::AllreduceAlgorithm::kFlat;
  double seconds = 0.0;
  std::uint64_t bytes_per_rank = 0;    ///< logical network traffic, rank 0
  std::uint64_t total_bytes = 0;       ///< true sum over all ranks
  std::uint64_t wire_bytes_per_rank = 0;  ///< bytes on the wire, rank 0
  std::uint64_t total_wire_bytes = 0;     ///< wire bytes, sum over ranks
  std::size_t sync_count = 0;          ///< number of reductions (rank 0)
};

/// Full-model data-parallel trainer. Equivalent to `model.fit(x, labels)`
/// in schedule shape (unsupervised hidden phase(s), then the supervised
/// head), but sharded over `options.ranks` simulated ranks. With the
/// default sync_cadence == 1 the trained state is bit-identical for every
/// rank count.
class DistributedTrainer {
 public:
  explicit DistributedTrainer(DistributedOptions options = {});

  [[nodiscard]] const DistributedOptions& options() const noexcept {
    return options_;
  }

  /// Train `model` (compiled, shallow or deep, either head type) on the
  /// full dataset; on return the model holds the rank-synchronized state.
  DistributedReport fit(Model& model, const tensor::MatrixF& x,
                        const std::vector<int>& labels);

  /// Multi-process mode: train this process's rank of an already
  /// connected world (comm::connect_env(), as launched by
  /// tools/sb_launch). Every process passes the identically built model
  /// and the full dataset; `options().ranks` is ignored in favor of the
  /// communicator's world size. On return `model` holds the
  /// rank-synchronized state — bit-identical on every rank, and to a
  /// single-process fit() with the same options and rank count. Returns
  /// the number of reductions this rank issued.
  std::size_t fit_rank(comm::Communicator& comm, Model& model,
                       const tensor::MatrixF& x,
                       const std::vector<int>& labels);

 private:
  DistributedOptions options_;
};

/// Convenience wrapper: DistributedTrainer(options).fit(model, x, labels).
DistributedReport fit_distributed(Model& model, const tensor::MatrixF& x,
                                  const std::vector<int>& labels,
                                  const DistributedOptions& options = {});

/// Unsupervised data-parallel training of `layer` on encoded inputs `x` —
/// the legacy single-layer entry point (one trace allreduce_mean per
/// batch, rows sharded round-robin). New code should train a full model
/// through DistributedTrainer instead.
///
/// Rows are sharded round-robin across `ranks` simulated ranks; every rank
/// runs the identical annealing schedule and plasticity steps (which stay
/// deterministic because traces are identical after each allreduce). On
/// return, `layer` holds the synchronized state. With ranks == 1 this
/// degenerates to ordinary training.
DistributedReport distributed_unsupervised_fit(BcpnnLayer& layer,
                                               const tensor::MatrixF& x,
                                               int ranks);

}  // namespace streambrain::core
