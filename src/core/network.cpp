#include "core/network.hpp"

#include <numeric>
#include <stdexcept>

#include "data/dataset.hpp"
#include "parallel/engine_registry.hpp"
#include "util/timer.hpp"

namespace streambrain::core {

Network::Network(NetworkConfig config)
    : config_(std::move(config)),
      engine_(parallel::EngineRegistry::instance().create(config_.bcpnn.engine)),
      rng_(config_.bcpnn.seed) {
  config_.bcpnn.validate();
  hidden_ = std::make_unique<BcpnnLayer>(config_.bcpnn, *engine_, rng_);
  if (config_.head == HeadType::kBcpnn) {
    bcpnn_head_ = std::make_unique<BcpnnClassifier>(
        config_.bcpnn.hidden_units(), config_.bcpnn.hcus, config_.classes,
        *engine_, config_.bcpnn.alpha_supervised, config_.bcpnn.eps,
        config_.bcpnn.k_beta);
  } else {
    SgdHeadConfig sgd = config_.sgd;
    sgd.batch_size = config_.bcpnn.batch_size;
    sgd_head_ = std::make_unique<SgdHead>(config_.bcpnn.hidden_units(),
                                          config_.classes, sgd);
  }
}

FitReport Network::fit_unsupervised(const tensor::MatrixF& x) {
  FitReport report;
  const auto& cfg = config_.bcpnn;
  const std::size_t n = x.rows();

  util::Stopwatch unsup_watch;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  tensor::MatrixF batch;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    const float progress =
        cfg.epochs > 1
            ? static_cast<float>(epoch) / static_cast<float>(cfg.epochs - 1)
            : 1.0f;
    const float noise =
        cfg.noise_start + (cfg.noise_end - cfg.noise_start) * progress;
    rng_.shuffle(order);
    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, n);
      batch.resize(end - start, x.cols());
      for (std::size_t r = start; r < end; ++r) {
        std::copy_n(x.row(order[r]), x.cols(), batch.row(r - start));
      }
      hidden_->train_batch(batch, noise);
    }
    EpochInfo info;
    info.epoch = epoch;
    info.noise_std = noise;
    info.plasticity_swaps = hidden_->plasticity_step();
    report.total_plasticity_swaps += info.plasticity_swaps;
    // In-training prune/rewire cadence: re-select the magnitude keep-mask
    // right after the structural-plasticity step, so a swapped-in
    // connection competes for survival on its fresh weights.
    if (cfg.prune_cadence > 0 && cfg.prune_density < 1.0 &&
        (epoch + 1) % cfg.prune_cadence == 0) {
      hidden_->prune_to_density(cfg.prune_density);
    }
    if (epoch_callback_) epoch_callback_(info, *hidden_);
  }
  report.unsupervised_seconds = unsup_watch.seconds();
  return report;
}

FitReport Network::fit(const tensor::MatrixF& x,
                       const std::vector<int>& labels) {
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("Network::fit: rows != labels");
  }
  // Phase 1: unsupervised hidden layer; phase 2: supervised head on the
  // frozen representation.
  FitReport report = fit_unsupervised(x);
  util::Stopwatch head_watch;
  fit_head(x, labels);
  report.head_seconds = head_watch.seconds();
  return report;
}

double Network::fit_head(const tensor::MatrixF& x,
                         const std::vector<int>& labels) {
  const auto& cfg = config_.bcpnn;
  const tensor::MatrixF hidden_repr = transform(x);
  const tensor::MatrixF targets =
      data::one_hot_labels(labels, config_.classes);
  double last_loss = 0.0;
  const bool head_prune_cadence =
      cfg.prune_cadence > 0 && cfg.prune_density < 1.0;
  if (config_.head == HeadType::kSgd) {
    for (std::size_t epoch = 0; epoch < cfg.head_epochs; ++epoch) {
      last_loss = sgd_head_->train_epoch(hidden_repr, targets);
      // Same prune/rewire cadence as the hidden layer (applied to either
      // head type): the mask pins pruned weights at zero between
      // re-selections.
      if (head_prune_cadence && (epoch + 1) % cfg.prune_cadence == 0) {
        sgd_head_->prune_to_density(cfg.prune_density);
      }
    }
    return last_loss;
  }
  // BCPNN head: batched trace updates over the epochs.
  const std::size_t n = hidden_repr.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  tensor::MatrixF batch_h;
  tensor::MatrixF batch_t;
  for (std::size_t epoch = 0; epoch < cfg.head_epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, n);
      batch_h.resize(end - start, hidden_repr.cols());
      batch_t.resize(end - start, config_.classes);
      for (std::size_t r = start; r < end; ++r) {
        std::copy_n(hidden_repr.row(order[r]), hidden_repr.cols(),
                    batch_h.row(r - start));
        std::copy_n(targets.row(order[r]), config_.classes,
                    batch_t.row(r - start));
      }
      bcpnn_head_->train_batch(batch_h, batch_t);
    }
    if (head_prune_cadence && (epoch + 1) % cfg.prune_cadence == 0) {
      bcpnn_head_->prune_to_density(cfg.prune_density);
    }
  }
  return 0.0;
}

void Network::partial_fit(const tensor::MatrixF& x,
                          const std::vector<int>& labels) {
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("Network::partial_fit: rows != labels");
  }
  if (x.rows() == 0) return;
  // Hidden step at the schedule's terminal noise: a streaming batch
  // arrives "after" the annealing window, so it trains the way the last
  // fit() epoch did.
  hidden_->train_batch(x, config_.bcpnn.noise_end);
  const tensor::MatrixF hidden_repr = transform(x);
  const tensor::MatrixF targets =
      data::one_hot_labels(labels, config_.classes);
  if (config_.head == HeadType::kSgd) {
    sgd_head_->train_epoch(hidden_repr, targets);
  } else {
    bcpnn_head_->train_batch(hidden_repr, targets);
  }
}

tensor::MatrixF Network::transform(const tensor::MatrixF& x) {
  tensor::MatrixF activations;
  hidden_->forward(x, activations);
  return activations;
}

std::vector<int> Network::predict(const tensor::MatrixF& x) {
  const tensor::MatrixF hidden_repr = transform(x);
  return config_.head == HeadType::kBcpnn
             ? bcpnn_head_->predict_labels(hidden_repr)
             : sgd_head_->predict_labels(hidden_repr);
}

std::vector<double> Network::predict_scores(const tensor::MatrixF& x) {
  const tensor::MatrixF hidden_repr = transform(x);
  return config_.head == HeadType::kBcpnn
             ? bcpnn_head_->predict_scores(hidden_repr)
             : sgd_head_->predict_scores(hidden_repr);
}

void Network::sparsify() {
  hidden_->sparsify();
  if (bcpnn_head_) {
    bcpnn_head_->sparsify();
  } else {
    sgd_head_->sparsify();
  }
}

bool Network::sparse() const noexcept { return hidden_->sparse(); }

void Network::quantize(std::size_t block_size) {
  hidden_->quantize(block_size);
  if (bcpnn_head_) {
    bcpnn_head_->quantize(block_size);
  } else {
    sgd_head_->quantize(block_size);
  }
}

bool Network::quantized() const noexcept { return hidden_->quantized(); }

}  // namespace streambrain::core
