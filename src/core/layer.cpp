#include "core/layer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pruning.hpp"
#include "tensor/csr.hpp"

namespace streambrain::core {

BcpnnLayer::BcpnnLayer(const BcpnnConfig& config, parallel::Engine& engine,
                       util::Rng& rng)
    : config_(config),
      engine_(&engine),
      rng_(rng.split()),
      traces_(config.input_units(), config.input_bins, config.hidden_units(),
              config.mcus),
      masks_(config.hcus, config.input_hypercolumns,
             config.mask_cardinality(), rng),
      weights_(config.input_units(), config.hidden_units(), 0.0f),
      bias_(config.hidden_units(), 0.0f) {
  config_.validate();
  recompute_weights();
}

void BcpnnLayer::forward(const tensor::MatrixF& x,
                         tensor::MatrixF& activations) {
  if (x.cols() != input_units()) {
    throw std::invalid_argument("BcpnnLayer::forward: input width mismatch");
  }
  if (quant_wt_) {
    tensor::quant_support(*quant_wt_, x, bias_.data(), activations);
  } else if (quant_sparse_wt_) {
    tensor::quant_sparse_support(*quant_sparse_wt_, x, bias_.data(),
                                 activations);
  } else if (sparse_wt_) {
    tensor::sparse_support(*sparse_wt_, x, bias_.data(), activations);
  } else {
    engine_->support(x, weights_, bias_.data(), activations);
  }
  engine_->softmax_hcu(activations, config_.mcus, config_.inverse_temperature);
}

void BcpnnLayer::forward_noisy(const tensor::MatrixF& x,
                               tensor::MatrixF& activations, float noise_std) {
  if (noise_std <= 0.0f) {
    forward(x, activations);
    return;
  }
  require_mutable("forward_noisy");
  engine_->support(x, weights_, bias_.data(), activations);
  for (float& v : activations) {
    v += static_cast<float>(rng_.normal(0.0, noise_std));
  }
  engine_->softmax_hcu(activations, config_.mcus, config_.inverse_temperature);
}

void BcpnnLayer::forward_spiking(const tensor::MatrixF& x,
                                 tensor::MatrixF& activations,
                                 std::size_t timesteps) {
  if (timesteps == 0) {
    throw std::invalid_argument("forward_spiking: need at least 1 timestep");
  }
  // Rate distribution first, then Poisson-style categorical sampling.
  forward(x, activations);
  const std::size_t mcus = config_.mcus;
  const float spike_value = 1.0f / static_cast<float>(timesteps);
  std::vector<double> block(mcus);
  for (std::size_t r = 0; r < activations.rows(); ++r) {
    float* row = activations.row(r);
    for (std::size_t h = 0; h < config_.hcus; ++h) {
      float* unit = row + h * mcus;
      for (std::size_t m = 0; m < mcus; ++m) block[m] = unit[m];
      for (std::size_t m = 0; m < mcus; ++m) unit[m] = 0.0f;
      for (std::size_t t = 0; t < timesteps; ++t) {
        unit[rng_.categorical(block)] += spike_value;
      }
    }
  }
}

void BcpnnLayer::train_batch(const tensor::MatrixF& x, float noise_std) {
  require_mutable("train_batch");
  forward_noisy(x, noise_scratch_, noise_std);
  traces_.update(*engine_, x, noise_scratch_, config_.alpha);
  recompute_weights();
}

void BcpnnLayer::recompute_weights() {
  require_mutable("recompute_weights");
  engine_->recompute_weights(traces_.pi().data(), traces_.pj().data(),
                             traces_.pij(), config_.eps, config_.k_beta,
                             weights_, bias_.data());
  apply_masks();
}

void BcpnnLayer::apply_masks() {
  // A silent connection contributes nothing to the support: zero the
  // weight block (all input units of hypercolumn i) x (all MCUs of HCU h).
  const std::size_t bins = config_.input_bins;
  const std::size_t mcus = config_.mcus;
#pragma omp parallel for schedule(static) collapse(2)
  for (std::size_t h = 0; h < config_.hcus; ++h) {
    for (std::size_t i = 0; i < config_.input_hypercolumns; ++i) {
      if (masks_.active(h, i)) continue;
      for (std::size_t bi = 0; bi < bins; ++bi) {
        float* w_row = weights_.row(i * bins + bi);
        for (std::size_t bj = 0; bj < mcus; ++bj) {
          w_row[h * mcus + bj] = 0.0f;
        }
      }
    }
  }
  // Element-level magnitude pruning rides on top of the block masks: the
  // keep-mask survives every weight recomputation until re-pruned.
  if (!prune_keep_.empty()) {
    float* w = weights_.data();
    const std::size_t n = weights_.size();
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      if (prune_keep_[i] == 0) w[i] = 0.0f;
    }
  }
}

std::size_t BcpnnLayer::prune_to_density(double density) {
  require_mutable("prune_to_density");
  prune_keep_ = magnitude_keep_mask(weights_.data(), weights_.size(), density);
  std::size_t dropped = 0;
  for (const std::uint8_t keep : prune_keep_) dropped += keep == 0;
  apply_masks();
  return dropped;
}

void BcpnnLayer::clear_pruning() {
  require_mutable("clear_pruning");
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
  recompute_weights();
}

void BcpnnLayer::set_prune_mask(std::vector<std::uint8_t> mask) {
  require_mutable("set_prune_mask");
  if (!mask.empty() && mask.size() != weights_.size()) {
    throw std::invalid_argument("BcpnnLayer::set_prune_mask: size mismatch");
  }
  prune_keep_ = std::move(mask);
  apply_masks();
}

double BcpnnLayer::weight_density() const noexcept {
  if (quant_sparse_wt_) return quant_sparse_wt_->density();
  if (quant_wt_) {
    std::size_t nnz = 0;
    for (const std::int8_t code : quant_wt_->codes()) nnz += code != 0;
    return quant_wt_->codes().empty()
               ? 1.0
               : static_cast<double>(nnz) /
                     static_cast<double>(quant_wt_->codes().size());
  }
  if (sparse_wt_) return sparse_wt_->density();
  if (weights_.empty()) return 1.0;
  std::size_t nnz = 0;
  for (const float w : weights_) nnz += w != 0.0f;
  return static_cast<double>(nnz) / static_cast<double>(weights_.size());
}

void BcpnnLayer::sparsify() {
  if (quantized()) {
    throw std::logic_error(
        "BcpnnLayer::sparsify: layer is already quantized (sparsify before "
        "quantize, not after)");
  }
  if (sparse_wt_) return;  // idempotent
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(
      tensor::CsrMatrix::from_dense_transposed(weights_));
  weights_ = tensor::MatrixF();
  noise_scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::CsrMatrix& BcpnnLayer::sparse_weights() const {
  if (!sparse_wt_) {
    throw std::logic_error("BcpnnLayer::sparse_weights: layer is dense");
  }
  return *sparse_wt_;
}

void BcpnnLayer::adopt_sparse(tensor::CsrMatrix wt, std::vector<float> bias) {
  if (wt.rows() != hidden_units() || wt.cols() != input_units() ||
      bias.size() != hidden_units()) {
    throw std::invalid_argument("BcpnnLayer::adopt_sparse: shape mismatch");
  }
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(std::move(wt));
  bias_ = std::move(bias);
  weights_ = tensor::MatrixF();
  noise_scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnLayer::quantize(std::size_t block_size) {
  if (quantized()) return;  // idempotent
  if (sparse_wt_) {
    quant_sparse_wt_ =
        std::make_unique<tensor::QuantCsr>(tensor::QuantCsr::from_csr(*sparse_wt_));
    sparse_wt_.reset();
    return;
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(
      tensor::QuantBlockMatrix::from_dense_transposed(weights_, block_size));
  weights_ = tensor::MatrixF();
  noise_scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::QuantBlockMatrix& BcpnnLayer::quant_weights() const {
  if (!quant_wt_) {
    throw std::logic_error("BcpnnLayer::quant_weights: layer is not in the "
                           "dense-quantized form");
  }
  return *quant_wt_;
}

const tensor::QuantCsr& BcpnnLayer::quant_sparse_weights() const {
  if (!quant_sparse_wt_) {
    throw std::logic_error("BcpnnLayer::quant_sparse_weights: layer is not "
                           "in the sparse-quantized form");
  }
  return *quant_sparse_wt_;
}

void BcpnnLayer::adopt_quant(tensor::QuantBlockMatrix wt,
                             std::vector<float> bias) {
  if (wt.rows() != hidden_units() || wt.cols() != input_units() ||
      bias.size() != hidden_units()) {
    throw std::invalid_argument("BcpnnLayer::adopt_quant: shape mismatch");
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(std::move(wt));
  quant_sparse_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  noise_scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnLayer::adopt_quant_sparse(tensor::QuantCsr wt,
                                    std::vector<float> bias) {
  if (wt.rows() != hidden_units() || wt.cols() != input_units() ||
      bias.size() != hidden_units()) {
    throw std::invalid_argument(
        "BcpnnLayer::adopt_quant_sparse: shape mismatch");
  }
  quant_sparse_wt_ = std::make_unique<tensor::QuantCsr>(std::move(wt));
  quant_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  noise_scratch_ = tensor::MatrixF();
  traces_.release();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void BcpnnLayer::require_mutable(const char* what) const {
  if (sparse_wt_) {
    throw std::logic_error(std::string("BcpnnLayer::") + what +
                           ": layer is in the read-only sparse form");
  }
  if (quantized()) {
    throw std::logic_error(std::string("BcpnnLayer::") + what +
                           ": layer is in the read-only quantized form");
  }
}

std::size_t BcpnnLayer::plasticity_step() {
  require_mutable("plasticity_step");
  PlasticityConfig plasticity;
  plasticity.swaps_per_hcu = config_.plasticity_swaps;
  plasticity.hysteresis = config_.plasticity_hysteresis;
  const std::size_t swaps = structural_plasticity_step(
      masks_, traces_, config_.input_bins, config_.mcus, config_.eps,
      plasticity);
  if (swaps > 0) recompute_weights();
  return swaps;
}

void BcpnnLayer::set_state(const ProbabilityTraces& traces,
                           const ReceptiveFieldMasks& masks) {
  require_mutable("set_state");
  if (traces.inputs() != traces_.inputs() ||
      traces.outputs() != traces_.outputs()) {
    throw std::invalid_argument("BcpnnLayer::set_state: trace shape mismatch");
  }
  traces_ = traces;
  masks_ = masks;
  recompute_weights();
}

std::vector<std::vector<float>> BcpnnLayer::mi_map() const {
  require_mutable("mi_map");
  return mutual_information_map(traces_, config_.input_bins, config_.hcus,
                                config_.mcus, config_.eps);
}

}  // namespace streambrain::core
