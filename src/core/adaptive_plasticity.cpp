#include "core/adaptive_plasticity.hpp"

#include <algorithm>
#include <cmath>

namespace streambrain::core {

AdaptivePlasticityController::AdaptivePlasticityController(
    AdaptivePlasticityConfig config)
    : config_(config), budget_(config.initial_swaps) {}

double AdaptivePlasticityController::mask_mutual_information(
    const BcpnnLayer& layer) {
  const auto mi = layer.mi_map();
  double total = 0.0;
  for (std::size_t h = 0; h < mi.size(); ++h) {
    for (std::size_t i = 0; i < mi[h].size(); ++i) {
      if (layer.masks().active(h, i)) total += mi[h][i];
    }
  }
  return total;
}

AdaptivePlasticityEpoch AdaptivePlasticityController::step(BcpnnLayer& layer) {
  AdaptivePlasticityEpoch record;
  record.epoch = history_.size();
  record.budget = budget_;
  record.mask_mi_before = mask_mutual_information(layer);

  layer.set_plasticity_swaps(budget_);
  record.swaps = layer.plasticity_step();
  record.mask_mi_after = mask_mutual_information(layer);

  const double base = std::max(record.mask_mi_before, 1e-9);
  const double relative_gain = (record.mask_mi_after - record.mask_mi_before) / base;
  if (relative_gain > config_.grow_threshold) {
    budget_ = std::min(budget_ + 1, config_.max_swaps);
  } else if (relative_gain < config_.shrink_threshold) {
    budget_ = budget_ > config_.min_swaps ? budget_ - 1 : config_.min_swaps;
  }
  history_.push_back(record);
  return record;
}

}  // namespace streambrain::core
