#pragma once
// Model checkpointing: versioned binary serialization of trained BCPNN
// state. Because BCPNN's only learned state is the probability traces
// plus the receptive-field masks (weights are a pure function of them),
// checkpoints are small and exact — loading reproduces the saved model's
// predictions bit-for-bit on the same engine.
//
// Format (little-endian, version 4):
//   magic "SBRN" | u32 version | u32 section tag | section payload ...
// Sections: layer (geometry, traces, masks), classifier (traces),
// sgd_head (weights, bias); for Model::sparsify()'d components —
// sparse_layer / sparse_classifier / sparse_sgd_head (geometry, bias,
// CSR weight payload: the traces are gone by design, the CSR is the
// learned state); and for Model::quantize()'d components — quant_* /
// quant_sparse_* (geometry, bias, int8 codes + fp32 scales, dense
// block-scaled or CSR per-row-scaled). Network files chain hidden +
// head sections.
// Version 2 widened float-array counts from u32 to u64 (version 1
// silently truncated counts >= 2^32); version 3 added the sparse
// section tags and appended a prune keep-mask field to the dense
// sections (so pruned models load bit-for-bit); version 4 added the
// quantized section tags without changing any existing section's bytes.
// Version 1 through 3 files are still read. Every count field that stays
// u32 is overflow-checked on write and plausibility-bounded on read —
// corrupt or fuzzed bytes fail with std::runtime_error, never a crash
// or a runaway allocation.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/classifier.hpp"
#include "core/layer.hpp"
#include "core/model.hpp"
#include "core/network.hpp"

namespace streambrain::core {

/// Save / load a hidden layer's learned state. Loading requires a layer
/// constructed with the identical geometry (input units, bins, hcus,
/// mcus); throws std::runtime_error on mismatch or corrupt files.
void save_layer(const std::string& path, const BcpnnLayer& layer);
void load_layer(const std::string& path, BcpnnLayer& layer);

/// Save / load a full three-layer network (hidden layer + head).
/// The network passed to load must have been constructed with the same
/// NetworkConfig (geometry and head type are validated).
void save_network(const std::string& path, const Network& network);
void load_network(const std::string& path, Network& network);

/// Save / load the full Model facade: a topology section (input geometry,
/// hidden specs, classes, head, engine name, seed, set_option overrides)
/// followed by the learned state of every layer and the head. Unlike
/// load_network, load_model needs no pre-built object — it rebuilds the
/// topology, compiles on the stored engine, and restores the weights, so
/// `Model m; m.load(path);` reproduces the saved model bit-for-bit.
/// save_model requires a compiled model; load_model an un-compiled one.
void save_model(const std::string& path, const Model& model);
void load_model(const std::string& path, Model& model);

/// Stream variants of the Model checkpoint — the building block for
/// in-memory replica cloning (serve::ShardPool) and network transports.
void save_model(std::ostream& out, const Model& model);
void load_model(std::istream& in, Model& model);

/// Clone a compiled model via an in-memory checkpoint round-trip. The
/// replica is an independent object (own engine instance, own weights)
/// whose predictions are bit-identical to the original's.
[[nodiscard]] Model clone_model(const Model& model);

namespace detail {

/// Narrow a size to u32 for a checkpoint count field, throwing
/// std::runtime_error instead of truncating when it does not fit.
std::uint32_t checked_u32(std::size_t value, const char* what);

}  // namespace detail

}  // namespace streambrain::core
