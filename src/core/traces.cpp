#include "core/traces.hpp"

#include <stdexcept>

namespace streambrain::core {

ProbabilityTraces::ProbabilityTraces(std::size_t n_inputs,
                                     std::size_t input_hc_size,
                                     std::size_t n_outputs,
                                     std::size_t output_hc_size)
    : input_hc_size_(input_hc_size),
      output_hc_size_(output_hc_size),
      pi_(n_inputs, 0.0f),
      pj_(n_outputs, 0.0f),
      pij_(n_inputs, n_outputs, 0.0f) {
  if (input_hc_size == 0 || n_inputs % input_hc_size != 0) {
    throw std::invalid_argument(
        "ProbabilityTraces: inputs not divisible into hypercolumns");
  }
  if (output_hc_size == 0 || n_outputs % output_hc_size != 0) {
    throw std::invalid_argument(
        "ProbabilityTraces: outputs not divisible into hypercolumns");
  }
  const float prior_i = 1.0f / static_cast<float>(input_hc_size);
  const float prior_j = 1.0f / static_cast<float>(output_hc_size);
  for (auto& p : pi_) p = prior_i;
  for (auto& p : pj_) p = prior_j;
  pij_.fill(prior_i * prior_j);
}

void ProbabilityTraces::update(parallel::Engine& engine,
                               const tensor::MatrixF& x,
                               const tensor::MatrixF& a, float alpha) {
  if (x.cols() != pi_.size() || a.cols() != pj_.size() ||
      x.rows() != a.rows()) {
    throw std::invalid_argument("ProbabilityTraces::update: shape mismatch");
  }
  engine.update_traces(x, a, alpha, pi_.data(), pj_.data(), pij_);
}

std::vector<double> ProbabilityTraces::input_hypercolumn_mass() const {
  std::vector<double> mass(pi_.size() / input_hc_size_, 0.0);
  for (std::size_t i = 0; i < pi_.size(); ++i) {
    mass[i / input_hc_size_] += pi_[i];
  }
  return mass;
}

std::vector<double> ProbabilityTraces::output_hypercolumn_mass() const {
  std::vector<double> mass(pj_.size() / output_hc_size_, 0.0);
  for (std::size_t j = 0; j < pj_.size(); ++j) {
    mass[j / output_hc_size_] += pj_[j];
  }
  return mass;
}

}  // namespace streambrain::core
