#include "core/model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/pruning.hpp"
#include "core/serialization.hpp"
#include "metrics/classification.hpp"
#include "util/log.hpp"

namespace streambrain::core {

Model& Model::input(std::size_t hypercolumns, std::size_t bins) {
  if (compiled()) throw std::logic_error("Model: input() after compile()");
  input_hypercolumns_ = hypercolumns;
  input_bins_ = bins;
  return *this;
}

Model& Model::hidden(std::size_t hcus, std::size_t mcus,
                     double receptive_field) {
  if (compiled()) throw std::logic_error("Model: hidden() after compile()");
  hidden_.push_back({hcus, mcus, receptive_field});
  return *this;
}

Model& Model::classifier(std::size_t classes, HeadType head) {
  if (compiled()) {
    throw std::logic_error("Model: classifier() after compile()");
  }
  classes_ = classes;
  head_ = head;
  return *this;
}

const std::vector<std::string>& Model::option_keys() {
  static const std::vector<std::string> keys = {
      "alpha",       "alpha_supervised", "batch_size",
      "epochs",      "head_epochs",      "inverse_temperature",
      "k_beta",      "noise_end",        "noise_start",
      "plasticity_swaps",                "prune_cadence",
      "prune_density"};
  return keys;
}

Model& Model::set_option(const std::string& key, double value) {
  if (compiled()) throw std::logic_error("Model: set_option() after compile()");
  const auto& keys = option_keys();
  if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
    std::ostringstream message;
    message << "Model::set_option: unknown key '" << key << "' (recognized:";
    for (const auto& known : keys) message << ' ' << known;
    message << ')';
    throw std::invalid_argument(message.str());
  }
  options_.set_double(key, value);
  return *this;
}

Model& Model::compile(const std::string& engine, std::uint64_t seed) {
  if (compiled()) throw std::logic_error("Model: already compiled");
  if (input_hypercolumns_ == 0 || input_bins_ == 0) {
    throw std::logic_error("Model: input() not declared");
  }
  if (hidden_.empty()) {
    throw std::logic_error("Model: no hidden layers");
  }
  engine_name_ = engine;
  seed_ = seed;

  if (hidden_.size() == 1) {
    NetworkConfig config;
    config.bcpnn.input_hypercolumns = input_hypercolumns_;
    config.bcpnn.input_bins = input_bins_;
    config.bcpnn.hcus = hidden_[0].hcus;
    config.bcpnn.mcus = hidden_[0].mcus;
    config.bcpnn.receptive_field = hidden_[0].receptive_field;
    config.bcpnn.engine = engine;
    config.bcpnn.seed = seed;
    config.bcpnn.apply(options_);  // schedule overrides
    config.classes = classes_;
    config.head = head_;
    network_ = std::make_unique<Network>(std::move(config));
    return *this;
  }

  // The deep schedule only consumes a subset of the option keys; reject
  // the rest instead of silently dropping a validated option.
  for (const char* key :
       {"alpha_supervised", "inverse_temperature", "k_beta", "noise_end",
        "plasticity_swaps", "prune_cadence", "prune_density"}) {
    if (options_.has(key)) {
      throw std::invalid_argument(
          std::string("Model: option '") + key +
          "' is not supported for deep (multi-hidden-layer) models");
    }
  }

  DeepBcpnnConfig config;
  config.input_hypercolumns = input_hypercolumns_;
  config.input_bins = input_bins_;
  config.layers.clear();
  for (const auto& spec : hidden_) {
    config.layers.push_back({spec.hcus, spec.mcus, spec.receptive_field});
  }
  config.classes = classes_;
  config.engine = engine;
  config.seed = seed;
  config.alpha = static_cast<float>(options_.get_double("alpha", config.alpha));
  config.epochs_per_layer = static_cast<std::size_t>(options_.get_double(
      "epochs", static_cast<double>(config.epochs_per_layer)));
  config.head_epochs = static_cast<std::size_t>(options_.get_double(
      "head_epochs", static_cast<double>(config.head_epochs)));
  config.batch_size = static_cast<std::size_t>(options_.get_double(
      "batch_size", static_cast<double>(config.batch_size)));
  config.noise_start = static_cast<float>(
      options_.get_double("noise_start", config.noise_start));
  if (head_ == HeadType::kSgd) {
    // The deep variant always uses the BCPNN head; the hybrid read-out is
    // only wired for the paper's three-layer topology.
    throw std::invalid_argument(
        "Model: SGD head is only supported for single-hidden-layer models");
  }
  deep_ = std::make_unique<DeepBcpnn>(std::move(config));
  return *this;
}

std::string Model::name() const {
  std::ostringstream out;
  out << "bcpnn(depth=" << hidden_.size() << ",head=" << head_name(head_)
      << ')';
  return out.str();
}

namespace {

/// Largest weight density across the model's components — the value the
/// sparsify guardrail judges, since the densest matrix dominates the
/// sparse path's throughput.
double max_component_density(const Network* network, const DeepBcpnn* deep) {
  double density = 0.0;
  if (network != nullptr) {
    density = network->hidden().weight_density();
    const double head_density = network->bcpnn_head() != nullptr
                                    ? network->bcpnn_head()->weight_density()
                                    : network->sgd_head()->weight_density();
    density = std::max(density, head_density);
  } else if (deep != nullptr) {
    for (std::size_t l = 0; l < deep->depth(); ++l) {
      density = std::max(density, deep->layer(l).weight_density());
    }
    density = std::max(density, deep->head().weight_density());
  }
  return density;
}

}  // namespace

Model Model::sparsify() const {
  if (!compiled()) {
    throw std::logic_error("Model: sparsify() before compile()");
  }
  Model replica = clone_model(*this);
  if (!replica.sparse()) {
    // Guardrail: at >= 25% density the CSR kernels measurably LOSE to
    // the dense GEMM path (BENCH_sparse.json) — proceed (the memory win
    // may still be the point) but say so. Prune first to go faster.
    const double density = max_component_density(network_.get(), deep_.get());
    if (sparsify_is_pessimization(density)) {
      SB_LOG_WARN() << "Model::sparsify: weight density "
                    << static_cast<int>(100.0 * density)
                    << "% is at or above the "
                    << static_cast<int>(100.0 * kSparsePessimizationDensity)
                    << "% threshold where sparse kernels are slower than "
                       "dense GEMM; prune_model() first (sparse replicas "
                       "still save memory)";
    }
    // Fresh dense clone (the checkpoint round-trip already made it an
    // independent object); convert its components in place.
    if (replica.network_) {
      replica.network_->sparsify();
    } else {
      replica.deep_->sparsify();
    }
  }
  return replica;
}

bool Model::sparse() const noexcept {
  if (network_) return network_->sparse();
  if (deep_) return deep_->sparse();
  return false;
}

Model Model::quantize(QuantOptions options) const {
  if (!compiled()) {
    throw std::logic_error("Model: quantize() before compile()");
  }
  Model replica = clone_model(*this);
  if (!replica.quantized()) {
    if (replica.network_) {
      replica.network_->quantize(options.block_size);
    } else {
      replica.deep_->quantize(options.block_size);
    }
  }
  return replica;
}

bool Model::quantized() const noexcept {
  if (network_) return network_->quantized();
  if (deep_) return deep_->quantized();
  return false;
}

void Model::fit(const tensor::MatrixF& x, const std::vector<int>& labels) {
  if (!compiled()) throw std::logic_error("Model: fit() before compile()");
  if (quantized()) {
    throw std::logic_error(
        "Model: fit() on a quantized model (read-only inference form)");
  }
  if (sparse()) {
    throw std::logic_error(
        "Model: fit() on a sparsified model (read-only inference form)");
  }
  if (network_) {
    network_->fit(x, labels);
  } else {
    deep_->fit(x, labels);
  }
}

void Model::partial_fit(const tensor::MatrixF& x,
                        const std::vector<int>& labels) {
  if (!compiled()) {
    throw std::logic_error("Model: partial_fit() before compile()");
  }
  if (quantized()) {
    throw std::logic_error(
        "Model: partial_fit() on a quantized model (read-only inference "
        "form)");
  }
  if (sparse()) {
    throw std::logic_error(
        "Model: partial_fit() on a sparsified model (read-only inference "
        "form)");
  }
  if (deep_) {
    throw std::logic_error(
        "Model: partial_fit() on a deep stack (the layer-wise greedy "
        "schedule has no incremental counterpart)");
  }
  network_->partial_fit(x, labels);
}

bool Model::supports_partial_fit() const {
  return network_ != nullptr && !sparse() && !quantized();
}

std::vector<int> Model::predict(const tensor::MatrixF& x) {
  if (!compiled()) throw std::logic_error("Model: predict() before compile()");
  return network_ ? network_->predict(x) : deep_->predict(x);
}

std::vector<double> Model::predict_scores(const tensor::MatrixF& x) {
  if (!compiled()) throw std::logic_error("Model: predict() before compile()");
  return network_ ? network_->predict_scores(x) : deep_->predict_scores(x);
}

double Model::evaluate(const tensor::MatrixF& x,
                       const std::vector<int>& labels) {
  return metrics::accuracy(predict(x), labels);
}

void Model::save(const std::string& path) const {
  if (!compiled()) throw std::logic_error("Model: save() before compile()");
  save_model(path, *this);
}

void Model::load(const std::string& path) {
  if (compiled()) {
    throw std::logic_error("Model: load() requires an un-compiled model");
  }
  load_model(path, *this);
}

Network& Model::network() {
  if (!network_) {
    throw std::logic_error("Model::network(): not a compiled 3-layer model");
  }
  return *network_;
}

const Network& Model::network() const {
  if (!network_) {
    throw std::logic_error("Model::network(): not a compiled 3-layer model");
  }
  return *network_;
}

DeepBcpnn& Model::deep() {
  if (!deep_) {
    throw std::logic_error("Model::deep(): not a compiled deep model");
  }
  return *deep_;
}

const DeepBcpnn& Model::deep() const {
  if (!deep_) {
    throw std::logic_error("Model::deep(): not a compiled deep model");
  }
  return *deep_;
}

std::string Model::summary() const {
  std::ostringstream out;
  const char* state = "compiled";
  if (quantized()) {
    state = sparse() ? "compiled, quantized sparse read-only"
                     : "compiled, quantized read-only";
  } else if (sparse()) {
    state = "compiled, sparse read-only";
  }
  out << "Model (" << (compiled() ? state : "not compiled") << ")\n";
  out << "  input        : " << input_hypercolumns_ << " hypercolumns x "
      << input_bins_ << " units = " << input_hypercolumns_ * input_bins_
      << "\n";
  for (std::size_t l = 0; l < hidden_.size(); ++l) {
    out << "  hidden[" << l << "]    : " << hidden_[l].hcus << " HCUs x "
        << hidden_[l].mcus << " MCUs, receptive field "
        << static_cast<int>(100.0 * hidden_[l].receptive_field) << "%\n";
  }
  out << "  classifier   : " << classes_ << " classes, "
      << (head_ == HeadType::kBcpnn ? "BCPNN" : "SGD") << " head\n";
  return out.str();
}

}  // namespace streambrain::core
