#include "core/deep.hpp"

#include <numeric>
#include <stdexcept>

#include "data/dataset.hpp"
#include "parallel/engine_registry.hpp"
#include "tensor/kernels.hpp"

namespace streambrain::core {

DeepBcpnn::DeepBcpnn(DeepBcpnnConfig config)
    : config_(std::move(config)),
      engine_(parallel::EngineRegistry::instance().create(config_.engine)),
      rng_(config_.seed) {
  if (config_.layers.empty()) {
    throw std::invalid_argument("DeepBcpnn: need at least one hidden layer");
  }
  // Layer l consumes the hypercolumn geometry of layer l-1's output.
  std::size_t below_hcs = config_.input_hypercolumns;
  std::size_t below_units = config_.input_bins;
  for (const auto& spec : config_.layers) {
    BcpnnConfig layer_config;
    layer_config.input_hypercolumns = below_hcs;
    layer_config.input_bins = below_units;
    layer_config.hcus = spec.hcus;
    layer_config.mcus = spec.mcus;
    layer_config.receptive_field = spec.receptive_field;
    layer_config.alpha = config_.alpha;
    layer_config.epochs = config_.epochs_per_layer;
    layer_config.batch_size = config_.batch_size;
    layer_config.noise_start = config_.noise_start;
    layer_config.engine = config_.engine;
    layer_config.seed = config_.seed;
    layers_.push_back(
        std::make_unique<BcpnnLayer>(layer_config, *engine_, rng_));
    below_hcs = spec.hcus;
    below_units = spec.mcus;
  }
  head_ = std::make_unique<BcpnnClassifier>(
      config_.layers.back().hcus * config_.layers.back().mcus,
      config_.layers.back().hcus, config_.classes, *engine_, 0.1f);
}

void DeepBcpnn::train_layer_unsupervised(std::size_t index,
                                         const tensor::MatrixF& x) {
  BcpnnLayer& layer = *layers_[index];
  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  tensor::MatrixF batch;
  const std::size_t epochs = config_.epochs_per_layer;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const float progress =
        epochs > 1 ? static_cast<float>(epoch) / static_cast<float>(epochs - 1)
                   : 1.0f;
    const float noise = config_.noise_start * (1.0f - progress);
    rng_.shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      batch.resize(end - start, x.cols());
      for (std::size_t r = start; r < end; ++r) {
        std::copy_n(x.row(order[r]), x.cols(), batch.row(r - start));
      }
      layer.train_batch(batch, noise);
    }
    layer.plasticity_step();
  }
}

void DeepBcpnn::propagate(std::size_t index, const tensor::MatrixF& in,
                          tensor::MatrixF& out) {
  layers_[index]->forward(in, out);
  if (config_.propagate_wta) {
    tensor::wta_blocks(out, config_.layers[index].mcus);
  }
}

void DeepBcpnn::fit(const tensor::MatrixF& x, const std::vector<int>& labels) {
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("DeepBcpnn::fit: rows != labels");
  }
  // Greedy stack: train layer 0 on the input, freeze, propagate, repeat.
  tensor::MatrixF current = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    train_layer_unsupervised(l, current);
    tensor::MatrixF next;
    propagate(l, current, next);
    current = std::move(next);
  }
  // Supervised head on the top code — recomputed via transform() so the
  // head trains on exactly the representation it will see at inference
  // (soft top layer, WTA below).
  current = transform(x);
  const tensor::MatrixF targets =
      data::one_hot_labels(labels, config_.classes);
  const std::size_t n = current.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  tensor::MatrixF batch_h;
  tensor::MatrixF batch_t;
  for (std::size_t epoch = 0; epoch < config_.head_epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      batch_h.resize(end - start, current.cols());
      batch_t.resize(end - start, config_.classes);
      for (std::size_t r = start; r < end; ++r) {
        std::copy_n(current.row(order[r]), current.cols(),
                    batch_h.row(r - start));
        std::copy_n(targets.row(order[r]), config_.classes,
                    batch_t.row(r - start));
      }
      head_->train_batch(batch_h, batch_t);
    }
  }
}

tensor::MatrixF DeepBcpnn::transform(const tensor::MatrixF& x) {
  tensor::MatrixF current = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    tensor::MatrixF next;
    if (l + 1 == layers_.size()) {
      // Keep the top code soft: the head benefits from graded evidence.
      layers_[l]->forward(current, next);
    } else {
      propagate(l, current, next);
    }
    current = std::move(next);
  }
  return current;
}

std::vector<int> DeepBcpnn::predict(const tensor::MatrixF& x) {
  return head_->predict_labels(transform(x));
}

std::vector<double> DeepBcpnn::predict_scores(const tensor::MatrixF& x) {
  return head_->predict_scores(transform(x));
}

void DeepBcpnn::sparsify() {
  for (auto& layer : layers_) layer->sparsify();
  head_->sparsify();
}

bool DeepBcpnn::sparse() const noexcept {
  return !layers_.empty() && layers_.front()->sparse();
}

void DeepBcpnn::quantize(std::size_t block_size) {
  for (auto& layer : layers_) layer->quantize(block_size);
  head_->quantize(block_size);
}

bool DeepBcpnn::quantized() const noexcept {
  return !layers_.empty() && layers_.front()->quantized();
}

}  // namespace streambrain::core
