#pragma once
// SGD-trained softmax-regression read-out head. Combined with the
// unsupervised BCPNN hidden layer this is the paper's hybrid
// "BCPNN+SGD" configuration, its best result (69.15% accuracy /
// 76.4% AUC on the Higgs task).

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace streambrain::core {

struct SgdHeadConfig {
  float learning_rate = 0.1f;
  float learning_rate_decay = 0.97f;  ///< multiplicative, per epoch
  float momentum = 0.9f;
  float l2 = 1e-4f;
  std::size_t batch_size = 64;
  std::uint64_t seed = 3;
};

class SgdHead {
 public:
  SgdHead(std::size_t inputs, std::size_t classes, SgdHeadConfig config = {});

  /// One epoch of minibatch SGD over (features, one-hot targets), in a
  /// deterministic shuffled order. Returns mean cross-entropy loss.
  double train_epoch(const tensor::MatrixF& features,
                     const tensor::MatrixF& targets);

  /// Class probabilities, [batch x classes].
  void predict(const tensor::MatrixF& features, tensor::MatrixF& probs) const;

  [[nodiscard]] std::vector<int> predict_labels(
      const tensor::MatrixF& features) const;
  [[nodiscard]] std::vector<double> predict_scores(
      const tensor::MatrixF& features) const;

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] const SgdHeadConfig& config() const noexcept { return config_; }

  // --- Distributed-training hooks ---------------------------------------
  /// Apply one momentum step from an externally reduced mean gradient —
  /// the same update train_epoch performs per batch, exposed so the
  /// data-parallel trainer can reduce gradients across ranks first.
  void apply_gradient(const tensor::MatrixF& grad,
                      const std::vector<float>& bias_grad);

  /// Per-epoch learning-rate decay (train_epoch applies this internally).
  void end_epoch() noexcept { current_lr_ *= config_.learning_rate_decay; }

  /// Overwrite parameters mid-training, keeping the momentum buffers
  /// (unlike set_state, which zeroes them) — used by the cadence-mode
  /// trainer when averaging replicated weights across ranks.
  void set_parameters(const tensor::MatrixF& weights,
                      const std::vector<float>& bias);

  // --- Checkpointing access ---------------------------------------------
  [[nodiscard]] const tensor::MatrixF& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<float>& bias() const noexcept {
    return bias_;
  }
  /// Restore trained parameters (momentum buffers reset to zero).
  void set_state(const tensor::MatrixF& weights,
                 const std::vector<float>& bias);

 private:
  void forward(const tensor::MatrixF& features, tensor::MatrixF& probs) const;

  std::size_t classes_;
  SgdHeadConfig config_;
  float current_lr_;
  tensor::MatrixF weights_;    // [inputs x classes]
  std::vector<float> bias_;
  tensor::MatrixF velocity_;   // momentum buffer, same shape as weights
  std::vector<float> bias_velocity_;
  util::Rng rng_;
};

}  // namespace streambrain::core
