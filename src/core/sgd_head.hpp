#pragma once
// SGD-trained softmax-regression read-out head. Combined with the
// unsupervised BCPNN hidden layer this is the paper's hybrid
// "BCPNN+SGD" configuration, its best result (69.15% accuracy /
// 76.4% AUC on the Higgs task).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace streambrain::core {

struct SgdHeadConfig {
  float learning_rate = 0.1f;
  float learning_rate_decay = 0.97f;  ///< multiplicative, per epoch
  float momentum = 0.9f;
  float l2 = 1e-4f;
  std::size_t batch_size = 64;
  std::uint64_t seed = 3;
};

class SgdHead {
 public:
  SgdHead(std::size_t inputs, std::size_t classes, SgdHeadConfig config = {});

  /// One epoch of minibatch SGD over (features, one-hot targets), in a
  /// deterministic shuffled order. Returns mean cross-entropy loss.
  double train_epoch(const tensor::MatrixF& features,
                     const tensor::MatrixF& targets);

  /// Class probabilities, [batch x classes].
  void predict(const tensor::MatrixF& features, tensor::MatrixF& probs) const;

  [[nodiscard]] std::vector<int> predict_labels(
      const tensor::MatrixF& features) const;
  [[nodiscard]] std::vector<double> predict_scores(
      const tensor::MatrixF& features) const;

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] const SgdHeadConfig& config() const noexcept { return config_; }

  // --- Distributed-training hooks ---------------------------------------
  /// Apply one momentum step from an externally reduced mean gradient —
  /// the same update train_epoch performs per batch, exposed so the
  /// data-parallel trainer can reduce gradients across ranks first.
  void apply_gradient(const tensor::MatrixF& grad,
                      const std::vector<float>& bias_grad);

  /// Per-epoch learning-rate decay (train_epoch applies this internally).
  void end_epoch() noexcept { current_lr_ *= config_.learning_rate_decay; }

  /// Overwrite parameters mid-training, keeping the momentum buffers
  /// (unlike set_state, which zeroes them) — used by the cadence-mode
  /// trainer when averaging replicated weights across ranks.
  void set_parameters(const tensor::MatrixF& weights,
                      const std::vector<float>& bias);

  // --- Structural pruning -------------------------------------------------
  /// Magnitude-based element pruning: keep the `density` fraction of
  /// weights with the largest |w| (deterministic tie-break), zero the
  /// rest together with their momentum, and pin the mask — subsequent
  /// train_epoch()/apply_gradient() updates cannot regrow a pruned
  /// weight until the next prune re-selects the mask ("rewire").
  /// Returns the number of zeroed entries.
  std::size_t prune_to_density(double density);

  [[nodiscard]] bool pruned() const noexcept { return !prune_keep_.empty(); }

  /// Checkpointing access: the element keep-mask (empty when unpruned).
  [[nodiscard]] const std::vector<std::uint8_t>& prune_mask() const noexcept {
    return prune_keep_;
  }

  /// Adopt a checkpointed keep-mask (empty clears) and re-apply it, so
  /// training resumed from a pruned checkpoint keeps the pruned weights
  /// pinned at zero. Throws on size mismatch.
  void set_prune_mask(std::vector<std::uint8_t> mask);

  /// Fraction of weight entries currently non-zero.
  [[nodiscard]] double weight_density() const noexcept;

  // --- Sparse inference form ------------------------------------------------
  /// Convert to the compact read-only inference form: weights compressed
  /// to CSR (transposed: one sparse row per class), dense weights and
  /// momentum freed. predict paths keep working bit-identically at
  /// scalar dispatch; training entry points throw std::logic_error.
  void sparsify();

  [[nodiscard]] bool sparse() const noexcept {
    return sparse_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  /// CSR of W^T (throws std::logic_error when dense).
  [[nodiscard]] const tensor::CsrMatrix& sparse_weights() const;

  /// Adopt a deserialized sparse form (checkpoint read path).
  void adopt_sparse(tensor::CsrMatrix wt, std::vector<float> bias);

  // --- Quantized inference form ---------------------------------------------
  /// Int8 read-only form (per-block over dense weights, per-row over an
  /// existing CSR form); same contract as BcpnnLayer::quantize.
  void quantize(std::size_t block_size);

  [[nodiscard]] bool quantized() const noexcept {
    return quant_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  [[nodiscard]] const tensor::QuantBlockMatrix& quant_weights() const;
  [[nodiscard]] const tensor::QuantCsr& quant_sparse_weights() const;

  /// Adopt a deserialized quantized form (checkpoint read path).
  void adopt_quant(tensor::QuantBlockMatrix wt, std::vector<float> bias);
  void adopt_quant_sparse(tensor::QuantCsr wt, std::vector<float> bias);

  // --- Checkpointing access ---------------------------------------------
  [[nodiscard]] const tensor::MatrixF& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] const std::vector<float>& bias() const noexcept {
    return bias_;
  }
  /// Restore trained parameters (momentum buffers reset to zero).
  void set_state(const tensor::MatrixF& weights,
                 const std::vector<float>& bias);

 private:
  void forward(const tensor::MatrixF& features, tensor::MatrixF& probs) const;
  void apply_prune_mask();
  void require_mutable(const char* what) const;

  std::size_t classes_;
  SgdHeadConfig config_;
  float current_lr_;
  tensor::MatrixF weights_;    // [inputs x classes]
  std::vector<float> bias_;
  tensor::MatrixF velocity_;   // momentum buffer, same shape as weights
  std::vector<float> bias_velocity_;
  util::Rng rng_;
  /// Keep-mask from prune_to_density (empty = dense training); 1 = keep.
  std::vector<std::uint8_t> prune_keep_;
  std::unique_ptr<tensor::CsrMatrix> sparse_wt_;
  std::unique_ptr<tensor::QuantBlockMatrix> quant_wt_;
  std::unique_ptr<tensor::QuantCsr> quant_sparse_wt_;
};

}  // namespace streambrain::core
