#include "core/sgd_head.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/pruning.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels.hpp"

namespace streambrain::core {

SgdHead::SgdHead(std::size_t inputs, std::size_t classes, SgdHeadConfig config)
    : classes_(classes),
      config_(config),
      current_lr_(config.learning_rate),
      weights_(inputs, classes, 0.0f),
      bias_(classes, 0.0f),
      velocity_(inputs, classes, 0.0f),
      bias_velocity_(classes, 0.0f),
      rng_(config.seed) {
  if (classes < 2) {
    throw std::invalid_argument("SgdHead: need at least 2 classes");
  }
  // Small symmetric init so momentum has gradients to work with.
  for (float& w : weights_) {
    w = static_cast<float>(rng_.normal(0.0, 0.01));
  }
}

void SgdHead::forward(const tensor::MatrixF& features,
                      tensor::MatrixF& probs) const {
  if (quant_wt_) {
    tensor::quant_support(*quant_wt_, features, bias_.data(), probs);
  } else if (quant_sparse_wt_) {
    tensor::quant_sparse_support(*quant_sparse_wt_, features, bias_.data(),
                                 probs);
  } else if (sparse_wt_) {
    tensor::sparse_support(*sparse_wt_, features, bias_.data(), probs);
  } else {
    probs.resize(features.rows(), classes_);
    tensor::gemm(tensor::Transpose::kNo, tensor::Transpose::kNo, 1.0f,
                 features, weights_, 0.0f, probs);
    tensor::add_row_bias(probs, bias_.data());
  }
  tensor::softmax_blocks(probs, classes_);
}

double SgdHead::train_epoch(const tensor::MatrixF& features,
                            const tensor::MatrixF& targets) {
  require_mutable("train_epoch");
  if (features.rows() != targets.rows() || targets.cols() != classes_) {
    throw std::invalid_argument("SgdHead::train_epoch: shape mismatch");
  }
  const std::size_t n = features.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);

  tensor::MatrixF batch_x;
  tensor::MatrixF batch_t;
  tensor::MatrixF probs;
  tensor::MatrixF grad(weights_.rows(), classes_);
  std::vector<float> bias_grad(classes_);
  double total_loss = 0.0;
  std::size_t batches = 0;

  for (std::size_t start = 0; start < n; start += config_.batch_size) {
    const std::size_t end = std::min(start + config_.batch_size, n);
    const std::size_t b = end - start;
    batch_x.resize(b, features.cols());
    batch_t.resize(b, classes_);
    for (std::size_t r = 0; r < b; ++r) {
      std::copy_n(features.row(order[start + r]), features.cols(),
                  batch_x.row(r));
      std::copy_n(targets.row(order[start + r]), classes_, batch_t.row(r));
    }

    forward(batch_x, probs);

    // Cross-entropy loss + softmax gradient (probs - targets).
    for (std::size_t r = 0; r < b; ++r) {
      for (std::size_t c = 0; c < classes_; ++c) {
        if (batch_t(r, c) > 0.5f) {
          total_loss -= std::log(std::max(probs(r, c), 1e-12f));
        }
        probs(r, c) -= batch_t(r, c);
      }
    }
    ++batches;

    // grad = X^T (probs - targets) / b  (+ L2)
    tensor::gemm(tensor::Transpose::kYes, tensor::Transpose::kNo,
                 1.0f / static_cast<float>(b), batch_x, probs, 0.0f, grad);

    const float lr = current_lr_;
    const float l2 = config_.l2;
    const float mu = config_.momentum;
    tensor::momentum_update(mu, lr, l2, grad.data(), weights_.data(),
                            velocity_.data(), weights_.size());
    // Bias gradient: column means of (probs - targets), then the same
    // fused momentum kernel as the weights (l2 = 0 for biases).
    tensor::col_sums(probs, bias_grad.data());
    tensor::scale(1.0f / static_cast<float>(b), bias_grad.data(), classes_);
    tensor::momentum_update(mu, lr, 0.0f, bias_grad.data(), bias_.data(),
                            bias_velocity_.data(), classes_);
    apply_prune_mask();
  }
  current_lr_ *= config_.learning_rate_decay;
  return batches > 0 ? total_loss / static_cast<double>(n) : 0.0;
}

void SgdHead::apply_gradient(const tensor::MatrixF& grad,
                             const std::vector<float>& bias_grad) {
  require_mutable("apply_gradient");
  if (grad.rows() != weights_.rows() || grad.cols() != weights_.cols() ||
      bias_grad.size() != bias_.size()) {
    throw std::invalid_argument("SgdHead::apply_gradient: shape mismatch");
  }
  tensor::momentum_update(config_.momentum, current_lr_, config_.l2,
                          grad.data(), weights_.data(), velocity_.data(),
                          weights_.size());
  tensor::momentum_update(config_.momentum, current_lr_, 0.0f,
                          bias_grad.data(), bias_.data(),
                          bias_velocity_.data(), classes_);
  apply_prune_mask();
}

void SgdHead::set_parameters(const tensor::MatrixF& weights,
                             const std::vector<float>& bias) {
  require_mutable("set_parameters");
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols() ||
      bias.size() != bias_.size()) {
    throw std::invalid_argument("SgdHead::set_parameters: shape mismatch");
  }
  weights_ = weights;
  bias_ = bias;
  apply_prune_mask();
}

void SgdHead::set_state(const tensor::MatrixF& weights,
                        const std::vector<float>& bias) {
  require_mutable("set_state");
  if (weights.rows() != weights_.rows() || weights.cols() != weights_.cols() ||
      bias.size() != bias_.size()) {
    throw std::invalid_argument("SgdHead::set_state: shape mismatch");
  }
  weights_ = weights;
  bias_ = bias;
  velocity_.fill(0.0f);
  std::fill(bias_velocity_.begin(), bias_velocity_.end(), 0.0f);
  apply_prune_mask();
}

std::size_t SgdHead::prune_to_density(double density) {
  require_mutable("prune_to_density");
  prune_keep_ = magnitude_keep_mask(weights_.data(), weights_.size(), density);
  std::size_t dropped = 0;
  for (const std::uint8_t keep : prune_keep_) dropped += keep == 0;
  apply_prune_mask();
  return dropped;
}

void SgdHead::set_prune_mask(std::vector<std::uint8_t> mask) {
  require_mutable("set_prune_mask");
  if (!mask.empty() && mask.size() != weights_.size()) {
    throw std::invalid_argument("SgdHead::set_prune_mask: size mismatch");
  }
  prune_keep_ = std::move(mask);
  apply_prune_mask();
}

double SgdHead::weight_density() const noexcept {
  if (quant_sparse_wt_) return quant_sparse_wt_->density();
  if (quant_wt_) {
    std::size_t nnz = 0;
    for (const std::int8_t code : quant_wt_->codes()) nnz += code != 0;
    return quant_wt_->codes().empty()
               ? 1.0
               : static_cast<double>(nnz) /
                     static_cast<double>(quant_wt_->codes().size());
  }
  if (sparse_wt_) return sparse_wt_->density();
  if (weights_.empty()) return 1.0;
  std::size_t nnz = 0;
  for (const float w : weights_) nnz += w != 0.0f;
  return static_cast<double>(nnz) / static_cast<double>(weights_.size());
}

void SgdHead::sparsify() {
  if (quantized()) {
    throw std::logic_error(
        "SgdHead::sparsify: head is already quantized (sparsify before "
        "quantize, not after)");
  }
  if (sparse_wt_) return;  // idempotent
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(
      tensor::CsrMatrix::from_dense_transposed(weights_));
  weights_ = tensor::MatrixF();
  velocity_ = tensor::MatrixF();
  bias_velocity_.clear();
  bias_velocity_.shrink_to_fit();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::CsrMatrix& SgdHead::sparse_weights() const {
  if (!sparse_wt_) {
    throw std::logic_error("SgdHead::sparse_weights: head is dense");
  }
  return *sparse_wt_;
}

void SgdHead::adopt_sparse(tensor::CsrMatrix wt, std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (weights_.size() != 0 && wt.cols() != weights_.rows())) {
    throw std::invalid_argument("SgdHead::adopt_sparse: shape mismatch");
  }
  sparse_wt_ = std::make_unique<tensor::CsrMatrix>(std::move(wt));
  bias_ = std::move(bias);
  weights_ = tensor::MatrixF();
  velocity_ = tensor::MatrixF();
  bias_velocity_.clear();
  bias_velocity_.shrink_to_fit();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void SgdHead::apply_prune_mask() {
  if (prune_keep_.empty()) return;
  float* w = weights_.data();
  float* v = velocity_.data();
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (prune_keep_[i] == 0) {
      w[i] = 0.0f;
      v[i] = 0.0f;
    }
  }
}

void SgdHead::quantize(std::size_t block_size) {
  if (quantized()) return;  // idempotent
  if (sparse_wt_) {
    quant_sparse_wt_ = std::make_unique<tensor::QuantCsr>(
        tensor::QuantCsr::from_csr(*sparse_wt_));
    sparse_wt_.reset();
    return;
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(
      tensor::QuantBlockMatrix::from_dense_transposed(weights_, block_size));
  weights_ = tensor::MatrixF();
  velocity_ = tensor::MatrixF();
  bias_velocity_.clear();
  bias_velocity_.shrink_to_fit();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

const tensor::QuantBlockMatrix& SgdHead::quant_weights() const {
  if (!quant_wt_) {
    throw std::logic_error(
        "SgdHead::quant_weights: head is not dense-quantized");
  }
  return *quant_wt_;
}

const tensor::QuantCsr& SgdHead::quant_sparse_weights() const {
  if (!quant_sparse_wt_) {
    throw std::logic_error(
        "SgdHead::quant_sparse_weights: head is not sparse-quantized");
  }
  return *quant_sparse_wt_;
}

void SgdHead::adopt_quant(tensor::QuantBlockMatrix wt,
                          std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (weights_.size() != 0 && wt.cols() != weights_.rows())) {
    throw std::invalid_argument("SgdHead::adopt_quant: shape mismatch");
  }
  quant_wt_ = std::make_unique<tensor::QuantBlockMatrix>(std::move(wt));
  quant_sparse_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  velocity_ = tensor::MatrixF();
  bias_velocity_.clear();
  bias_velocity_.shrink_to_fit();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void SgdHead::adopt_quant_sparse(tensor::QuantCsr wt,
                                 std::vector<float> bias) {
  if (wt.rows() != classes_ || bias.size() != classes_ ||
      (weights_.size() != 0 && wt.cols() != weights_.rows())) {
    throw std::invalid_argument("SgdHead::adopt_quant_sparse: shape mismatch");
  }
  quant_sparse_wt_ = std::make_unique<tensor::QuantCsr>(std::move(wt));
  quant_wt_.reset();
  bias_ = std::move(bias);
  sparse_wt_.reset();
  weights_ = tensor::MatrixF();
  velocity_ = tensor::MatrixF();
  bias_velocity_.clear();
  bias_velocity_.shrink_to_fit();
  prune_keep_.clear();
  prune_keep_.shrink_to_fit();
}

void SgdHead::require_mutable(const char* what) const {
  if (sparse_wt_) {
    throw std::logic_error(std::string("SgdHead::") + what +
                           ": head is in the read-only sparse form");
  }
  if (quantized()) {
    throw std::logic_error(std::string("SgdHead::") + what +
                           ": head is in the read-only quantized form");
  }
}

void SgdHead::predict(const tensor::MatrixF& features,
                      tensor::MatrixF& probs) const {
  forward(features, probs);
}

std::vector<int> SgdHead::predict_labels(const tensor::MatrixF& features) const {
  tensor::MatrixF probs;
  forward(features, probs);
  std::vector<std::size_t> best(probs.rows());
  tensor::argmax_rows(probs, best.data());
  std::vector<int> labels(probs.rows());
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    labels[r] = static_cast<int>(best[r]);
  }
  return labels;
}

std::vector<double> SgdHead::predict_scores(
    const tensor::MatrixF& features) const {
  tensor::MatrixF probs;
  forward(features, probs);
  std::vector<double> scores(probs.rows());
  for (std::size_t r = 0; r < probs.rows(); ++r) scores[r] = probs(r, 1);
  return scores;
}

}  // namespace streambrain::core
