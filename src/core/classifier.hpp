#pragma once
// Supervised BCPNN classification layer — the output layer of the paper's
// three-layer (input -> hidden -> classification) network. Structurally a
// single hypercolumn with one minicolumn per class; learning uses the same
// local trace rule as the hidden layer but with the label one-hot as the
// training target ("BCPNN ... uses only supervised learning in the
// classification layer").

#include <cstddef>
#include <vector>

#include "core/traces.hpp"
#include "parallel/engine.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

class BcpnnClassifier {
 public:
  /// `inputs` is the hidden-layer width; the input side is treated as
  /// `input_hcs` hypercolumns of `inputs / input_hcs` units each.
  BcpnnClassifier(std::size_t inputs, std::size_t input_hcs,
                  std::size_t classes, parallel::Engine& engine, float alpha,
                  float eps = 1e-4f, float k_beta = 1.0f);

  /// One supervised batch: hidden activations + one-hot targets.
  void train_batch(const tensor::MatrixF& hidden,
                   const tensor::MatrixF& targets);

  /// Class probabilities, [batch x classes], rows sum to 1.
  void predict(const tensor::MatrixF& hidden, tensor::MatrixF& probs);

  /// Argmax class ids.
  [[nodiscard]] std::vector<int> predict_labels(const tensor::MatrixF& hidden);

  /// P(class == 1) per row — the binary-score view used for AUC.
  [[nodiscard]] std::vector<double> predict_scores(
      const tensor::MatrixF& hidden);

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  /// Trace EMA rate — the distributed trainer replays the same update
  /// from externally reduced batch statistics.
  [[nodiscard]] float alpha() const noexcept { return alpha_; }
  [[nodiscard]] const ProbabilityTraces& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] ProbabilityTraces& mutable_traces() noexcept {
    return traces_;
  }

  void recompute_weights();

 private:
  std::size_t classes_;
  parallel::Engine* engine_;
  float alpha_;
  float eps_;
  float k_beta_;
  ProbabilityTraces traces_;
  tensor::MatrixF weights_;
  std::vector<float> bias_;
  tensor::MatrixF scratch_;
};

}  // namespace streambrain::core
