#pragma once
// Supervised BCPNN classification layer — the output layer of the paper's
// three-layer (input -> hidden -> classification) network. Structurally a
// single hypercolumn with one minicolumn per class; learning uses the same
// local trace rule as the hidden layer but with the label one-hot as the
// training target ("BCPNN ... uses only supervised learning in the
// classification layer").

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/traces.hpp"
#include "parallel/engine.hpp"
#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quant.hpp"

namespace streambrain::core {

class BcpnnClassifier {
 public:
  /// `inputs` is the hidden-layer width; the input side is treated as
  /// `input_hcs` hypercolumns of `inputs / input_hcs` units each.
  BcpnnClassifier(std::size_t inputs, std::size_t input_hcs,
                  std::size_t classes, parallel::Engine& engine, float alpha,
                  float eps = 1e-4f, float k_beta = 1.0f);

  /// One supervised batch: hidden activations + one-hot targets.
  void train_batch(const tensor::MatrixF& hidden,
                   const tensor::MatrixF& targets);

  /// Class probabilities, [batch x classes], rows sum to 1.
  void predict(const tensor::MatrixF& hidden, tensor::MatrixF& probs);

  /// Argmax class ids.
  [[nodiscard]] std::vector<int> predict_labels(const tensor::MatrixF& hidden);

  /// P(class == 1) per row — the binary-score view used for AUC.
  [[nodiscard]] std::vector<double> predict_scores(
      const tensor::MatrixF& hidden);

  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  /// Trace EMA rate — the distributed trainer replays the same update
  /// from externally reduced batch statistics.
  [[nodiscard]] float alpha() const noexcept { return alpha_; }
  [[nodiscard]] const ProbabilityTraces& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] ProbabilityTraces& mutable_traces() noexcept {
    return traces_;
  }
  /// Recomputed bias term (checkpointed directly for the sparse form,
  /// where the traces it derives from are gone).
  [[nodiscard]] const std::vector<float>& bias() const noexcept {
    return bias_;
  }

  void recompute_weights();

  // --- Structural pruning -------------------------------------------------
  /// Magnitude-based element pruning with a pinned keep-mask that
  /// survives recompute_weights() (re-applied after every trace update).
  /// Returns the number of zeroed entries.
  std::size_t prune_to_density(double density);

  [[nodiscard]] bool pruned() const noexcept { return !prune_keep_.empty(); }

  /// Checkpointing access: the element keep-mask (empty when unpruned).
  [[nodiscard]] const std::vector<std::uint8_t>& prune_mask() const noexcept {
    return prune_keep_;
  }

  /// Adopt a checkpointed keep-mask (empty clears) and re-apply it.
  void set_prune_mask(std::vector<std::uint8_t> mask);

  /// Fraction of weight entries currently non-zero.
  [[nodiscard]] double weight_density() const noexcept;

  // --- Sparse inference form ------------------------------------------------
  /// Convert to the compact read-only form: weights to CSR (transposed),
  /// dense weights and traces freed. predict paths keep working
  /// bit-identically at scalar dispatch; training throws afterwards.
  void sparsify();

  [[nodiscard]] bool sparse() const noexcept {
    return sparse_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  /// CSR of W^T (throws std::logic_error when dense).
  [[nodiscard]] const tensor::CsrMatrix& sparse_weights() const;

  /// Adopt a deserialized sparse form (checkpoint read path).
  void adopt_sparse(tensor::CsrMatrix wt, std::vector<float> bias);

  // --- Quantized inference form ---------------------------------------------
  /// Int8 read-only form (per-block over dense weights, per-row over an
  /// existing CSR form); same contract as BcpnnLayer::quantize.
  void quantize(std::size_t block_size);

  [[nodiscard]] bool quantized() const noexcept {
    return quant_wt_ != nullptr || quant_sparse_wt_ != nullptr;
  }

  [[nodiscard]] const tensor::QuantBlockMatrix& quant_weights() const;
  [[nodiscard]] const tensor::QuantCsr& quant_sparse_weights() const;

  /// Adopt a deserialized quantized form (checkpoint read path).
  void adopt_quant(tensor::QuantBlockMatrix wt, std::vector<float> bias);
  void adopt_quant_sparse(tensor::QuantCsr wt, std::vector<float> bias);

 private:
  void apply_prune_mask();
  void require_mutable(const char* what) const;

  std::size_t classes_;
  parallel::Engine* engine_;
  float alpha_;
  float eps_;
  float k_beta_;
  ProbabilityTraces traces_;
  tensor::MatrixF weights_;
  std::vector<float> bias_;
  tensor::MatrixF scratch_;
  /// Keep-mask from prune_to_density (empty = no pruning); 1 = keep.
  std::vector<std::uint8_t> prune_keep_;
  std::unique_ptr<tensor::CsrMatrix> sparse_wt_;
  std::unique_ptr<tensor::QuantBlockMatrix> quant_wt_;
  std::unique_ptr<tensor::QuantCsr> quant_sparse_wt_;
};

}  // namespace streambrain::core
