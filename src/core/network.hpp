#pragma once
// Three-layer BCPNN network (input -> hidden -> classification), the
// paper's standard topology, with either a supervised BCPNN read-out
// ("pure BCPNN") or an SGD softmax-regression read-out ("BCPNN+SGD",
// Section V-A's best configuration).
//
// Training follows StreamBrain's layer-wise schedule: the hidden layer
// first learns unsupervised (annealed support noise, one structural-
// plasticity step per epoch), then the head is trained supervised on the
// frozen hidden representation.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/classifier.hpp"
#include "core/head.hpp"
#include "core/hyperparams.hpp"
#include "core/layer.hpp"
#include "core/sgd_head.hpp"
#include "parallel/engine.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::core {

struct NetworkConfig {
  BcpnnConfig bcpnn;
  HeadType head = HeadType::kBcpnn;
  std::size_t classes = 2;
  SgdHeadConfig sgd;
};

/// Per-epoch progress snapshot handed to the epoch callback (this is the
/// hook the CatalystAdaptor subscribes through).
struct EpochInfo {
  std::size_t epoch = 0;       ///< unsupervised epoch index
  float noise_std = 0.0f;      ///< annealed support noise this epoch
  std::size_t plasticity_swaps = 0;
};

struct FitReport {
  double unsupervised_seconds = 0.0;
  double head_seconds = 0.0;
  std::size_t total_plasticity_swaps = 0;
  [[nodiscard]] double total_seconds() const noexcept {
    return unsupervised_seconds + head_seconds;
  }
};

class Network {
 public:
  explicit Network(NetworkConfig config);

  using EpochCallback =
      std::function<void(const EpochInfo&, const BcpnnLayer&)>;
  void set_epoch_callback(EpochCallback callback) {
    epoch_callback_ = std::move(callback);
  }

  /// Full training schedule on encoded inputs + integer labels.
  FitReport fit(const tensor::MatrixF& x, const std::vector<int>& labels);

  /// One incremental step on a labeled mini-batch (streaming learning):
  /// a hidden train_batch at the annealed-schedule's final noise level,
  /// then one supervised pass of the head on the batch's hidden
  /// representation. No shuffling, no plasticity swap, no pruning —
  /// those remain epoch-cadence concerns of fit(). Safe to call on a
  /// fit()-trained network to keep refining it.
  void partial_fit(const tensor::MatrixF& x, const std::vector<int>& labels);

  /// Phase 1 only: unsupervised hidden-layer training on unlabeled rows
  /// (annealed noise + per-epoch structural plasticity). Used directly by
  /// the semi-supervised mode.
  FitReport fit_unsupervised(const tensor::MatrixF& x);

  /// Hidden representation of a batch (deterministic forward).
  [[nodiscard]] tensor::MatrixF transform(const tensor::MatrixF& x);

  [[nodiscard]] std::vector<int> predict(const tensor::MatrixF& x);
  /// P(class == 1) per row, for AUC.
  [[nodiscard]] std::vector<double> predict_scores(const tensor::MatrixF& x);

  [[nodiscard]] const BcpnnLayer& hidden() const noexcept { return *hidden_; }
  [[nodiscard]] BcpnnLayer& mutable_hidden() noexcept { return *hidden_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] parallel::Engine& engine() noexcept { return *engine_; }

  /// Train only the head on a frozen (e.g. distributed-trained) hidden
  /// layer. Exposed so the distributed path reuses the head logic.
  double fit_head(const tensor::MatrixF& x, const std::vector<int>& labels);

  /// Convert hidden layer + head to the compact read-only sparse
  /// inference form (see BcpnnLayer::sparsify). Irreversible; training
  /// entry points throw std::logic_error afterwards.
  void sparsify();

  [[nodiscard]] bool sparse() const noexcept;

  /// Convert hidden layer + head to the int8 read-only quantized form
  /// (see BcpnnLayer::quantize) — composable after sparsify().
  void quantize(std::size_t block_size);

  [[nodiscard]] bool quantized() const noexcept;

  /// Head access for checkpointing; exactly one is non-null depending on
  /// the configured head type.
  [[nodiscard]] BcpnnClassifier* bcpnn_head() noexcept {
    return bcpnn_head_.get();
  }
  [[nodiscard]] const BcpnnClassifier* bcpnn_head() const noexcept {
    return bcpnn_head_.get();
  }
  [[nodiscard]] SgdHead* sgd_head() noexcept { return sgd_head_.get(); }
  [[nodiscard]] const SgdHead* sgd_head() const noexcept {
    return sgd_head_.get();
  }

 private:
  NetworkConfig config_;
  std::unique_ptr<parallel::Engine> engine_;
  util::Rng rng_;
  std::unique_ptr<BcpnnLayer> hidden_;
  std::unique_ptr<BcpnnClassifier> bcpnn_head_;
  std::unique_ptr<SgdHead> sgd_head_;
  EpochCallback epoch_callback_;
};

}  // namespace streambrain::core
