#pragma once
// Structural plasticity — the paper's signature feature. Each hidden HCU
// holds a fixed-cardinality boolean mask over the *input hypercolumns*
// (not individual units): the receptive field. Once per epoch the rule
// "tries to exchange active (used) connections with low-entropy for silent
// (inactive) high-entropy connections" (Section III-B). Our information
// score is the mutual information between each input hypercolumn's unit
// distribution and the HCU's minicolumn distribution, estimated directly
// from the p_ij traces (which are maintained for silent connections too —
// that is what makes the silent candidates scoreable).

#include <cstddef>
#include <vector>

#include "core/traces.hpp"
#include "util/rng.hpp"

namespace streambrain::core {

/// Receptive-field masks for all hidden HCUs.
class ReceptiveFieldMasks {
 public:
  /// `cardinality` active input hypercolumns per HCU, sampled uniformly
  /// without replacement (the paper: "each HCU is initiated with a sparse
  /// and random receptive field").
  ReceptiveFieldMasks(std::size_t hcus, std::size_t input_hypercolumns,
                      std::size_t cardinality, util::Rng& rng);

  [[nodiscard]] std::size_t hcus() const noexcept { return masks_.size(); }
  [[nodiscard]] std::size_t input_hypercolumns() const noexcept {
    return input_hypercolumns_;
  }
  [[nodiscard]] std::size_t cardinality() const noexcept {
    return cardinality_;
  }

  [[nodiscard]] bool active(std::size_t hcu, std::size_t input_hc) const {
    return masks_[hcu][input_hc];
  }
  [[nodiscard]] const std::vector<bool>& mask(std::size_t hcu) const {
    return masks_[hcu];
  }
  [[nodiscard]] const std::vector<std::vector<bool>>& all() const noexcept {
    return masks_;
  }

  void set(std::size_t hcu, std::size_t input_hc, bool value) {
    masks_[hcu][input_hc] = value;
  }

  /// Number of active entries for an HCU (invariant: == cardinality()).
  [[nodiscard]] std::size_t active_count(std::size_t hcu) const;

 private:
  std::size_t input_hypercolumns_;
  std::size_t cardinality_;
  std::vector<std::vector<bool>> masks_;
};

struct PlasticityConfig {
  std::size_t swaps_per_hcu = 2;
  double hysteresis = 0.05;  ///< silent MI must exceed active MI by this factor
};

/// Mutual information between input hypercolumn `input_hc` and the MCU
/// distribution of `hcu`, from the traces. Non-negative.
double mutual_information(const ProbabilityTraces& traces,
                          std::size_t input_hc, std::size_t input_hc_size,
                          std::size_t hcu, std::size_t mcus_per_hcu,
                          float eps);

/// MI scores for every (hcu, input_hc) pair; [hcus][input_hypercolumns].
std::vector<std::vector<float>> mutual_information_map(
    const ProbabilityTraces& traces, std::size_t input_hc_size,
    std::size_t hcus, std::size_t mcus_per_hcu, float eps);

/// One plasticity step: for each HCU, swap up to `swaps_per_hcu` of the
/// lowest-MI active connections for the highest-MI silent ones, provided
/// the silent candidate's MI exceeds the active one by the hysteresis
/// factor. Mask cardinality is preserved exactly. Returns the number of
/// swaps performed.
std::size_t structural_plasticity_step(ReceptiveFieldMasks& masks,
                                       const ProbabilityTraces& traces,
                                       std::size_t input_hc_size,
                                       std::size_t mcus_per_hcu, float eps,
                                       const PlasticityConfig& config);

}  // namespace streambrain::core
