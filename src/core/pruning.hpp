#pragma once
// Magnitude-based structural pruning. Trained BCPNN weight matrices are
// dominated by near-zero log-ratio entries (independent input/output
// pairs have p_ij ~ p_i p_j, i.e. w ~ 0); dropping the smallest-|w|
// entries barely moves the support sums but is what turns the sparse
// inference path (tensor::CsrMatrix + spmv/spmm) into a real speedup
// and a real memory win.
//
// Two ways in:
//   - prune_model(model, density): one-shot post-training prune of every
//     hidden layer and the read-out head;
//   - set_option("prune_density", d) + set_option("prune_cadence", k)
//     before compile(): in-training prune/rewire — the keep-mask is
//     re-selected from fresh magnitudes every k epochs (hooked after the
//     structural-plasticity step for the hidden layer and after each
//     supervised epoch for the head, either type), so pruned-then-regrown
//     connections can displace weaker survivors.
//
// Pruning keeps the model dense in memory (zeros in place, masks pinned
// across weight recomputation); Model::sparsify() is the step that
// compacts the zeros away.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streambrain::core {

class Model;

/// Keep-mask (1 = keep) over `n` weights retaining the
/// ceil(density * n) entries with the largest |w|. Deterministic: ties
/// at the threshold magnitude resolve by ascending index. density must
/// be in (0, 1]; throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<std::uint8_t> magnitude_keep_mask(const float* w,
                                                            std::size_t n,
                                                            double density);

/// Prune every hidden layer and the head of a compiled model to the
/// given keep density (magnitude-based, per component). The model stays
/// dense and trainable — further fit() calls keep the masks; call
/// Model::sparsify() afterwards for the compact read-only form. Throws
/// std::logic_error for un-compiled or already-sparsified models.
void prune_model(Model& model, double density);

/// Density at and above which the sparse kernels measurably LOSE to the
/// dense GEMM path. BENCH_sparse.json: at 25% density spmm reaches only
/// 0.70x (scalar) / 0.47x (AVX2) of the dense throughput, and every
/// tier loses from 50% up — the gather/index overhead needs enough
/// skipped multiplies to pay for itself.
inline constexpr double kSparsePessimizationDensity = 0.25;

/// True when sparsifying at this weight density is expected to be a
/// throughput pessimization (Model::sparsify() warns through util::log
/// when it proceeds anyway — the memory win may still be worth it).
[[nodiscard]] inline bool sparsify_is_pessimization(double density) noexcept {
  return density >= kSparsePessimizationDensity;
}

}  // namespace streambrain::core
