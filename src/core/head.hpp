#pragma once
// The single public read-out (head) enum. Historically `Model::Head` and
// `core::HeadType` coexisted with identical meaning; every layer of the
// stack — NetworkConfig, the Model builder, serialization — now speaks
// this one type.
//
//   kBcpnn : supervised BCPNN classification layer ("pure BCPNN")
//   kSgd   : softmax-regression read-out trained by SGD on the frozen
//            hidden code ("BCPNN+SGD", the paper's best configuration)

namespace streambrain::core {

enum class HeadType { kBcpnn, kSgd };

/// Short lowercase tag ("bcpnn" / "sgd") for summaries and logs.
constexpr const char* head_name(HeadType head) noexcept {
  return head == HeadType::kBcpnn ? "bcpnn" : "sgd";
}

}  // namespace streambrain::core
