#pragma once
// Hyper-parameters of the BCPNN model. The paper (Section IV) notes that
// "the formulation of BCPNN implies a larger number of hyperparameters
// that are use-case-dependent" — this struct is the single source of
// truth for them, and the HPO module mutates it through Config keys.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/config.hpp"

namespace streambrain::core {

struct BcpnnConfig {
  // --- Geometry ---------------------------------------------------------
  std::size_t input_hypercolumns = 28;  ///< F: one per raw feature
  std::size_t input_bins = 10;          ///< units per input hypercolumn
  std::size_t hcus = 1;                 ///< hidden hypercolumn units
  std::size_t mcus = 300;               ///< minicolumn units per HCU

  /// Fraction of input hypercolumns each hidden HCU connects to
  /// (the paper's "receptive field", swept 0..100% in Fig. 4).
  double receptive_field = 0.30;

  // --- Learning rule ----------------------------------------------------
  float alpha = 0.05f;             ///< trace EMA rate, unsupervised layer
  float alpha_supervised = 0.10f;  ///< trace EMA rate, class layer
  float eps = 1e-4f;               ///< probability floor in log ratios
  float k_beta = 1.0f;             ///< bias gain
  float inverse_temperature = 1.0f;

  // --- Unsupervised annealing -------------------------------------------
  /// Gaussian support noise for symmetry breaking, linearly annealed from
  /// `noise_start` to `noise_end` across the unsupervised epochs.
  float noise_start = 3.0f;
  float noise_end = 0.0f;

  // --- Structural plasticity --------------------------------------------
  std::size_t plasticity_swaps = 2;   ///< connection swaps per HCU per epoch
  double plasticity_hysteresis = 0.05;  ///< silent must beat active by 5%

  // --- Structural pruning ------------------------------------------------
  /// Fraction of hidden-layer weights the in-training prune/rewire
  /// cadence keeps (magnitude-based, re-selected at every prune so a
  /// connection that grows back in can displace a weaker one). 1 = dense.
  double prune_density = 1.0;
  /// Prune every this many epochs (after the plasticity step for the
  /// hidden layer, after each supervised epoch for the head). 0 disables the
  /// cadence; one-shot post-training pruning goes through
  /// core::prune_model instead.
  std::size_t prune_cadence = 0;

  // --- Training schedule -------------------------------------------------
  std::size_t epochs = 12;        ///< unsupervised epochs (hidden layer)
  std::size_t head_epochs = 24;   ///< supervised epochs (classifier head)
  std::size_t batch_size = 64;

  // --- Execution ----------------------------------------------------------
  std::string engine = "simd";    ///< naive | openmp | simd | device_sim
  std::uint64_t seed = 1;

  /// Hidden-layer width.
  [[nodiscard]] std::size_t hidden_units() const noexcept {
    return hcus * mcus;
  }
  /// Encoded input width.
  [[nodiscard]] std::size_t input_units() const noexcept {
    return input_hypercolumns * input_bins;
  }
  /// Active input hypercolumns per hidden HCU (at least 1).
  [[nodiscard]] std::size_t mask_cardinality() const noexcept;

  /// Overlay values from a Config (keys: hcus, mcus, receptive_field,
  /// alpha, alpha_supervised, k_beta, inverse_temperature, noise_start,
  /// epochs, head_epochs, batch_size, plasticity_swaps, prune_density,
  /// prune_cadence, engine, seed).
  void apply(const util::Config& config);

  /// Validate invariants; throws std::invalid_argument on violations.
  void validate() const;
};

}  // namespace streambrain::core
