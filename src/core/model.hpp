#pragma once
// Keras-style model facade — StreamBrain's user-facing API design:
// "The StreamBrain interface (or language) is heavily inspired by Keras,
// where the user constructs the network layer-by-layer after finally
// calling the training function" (Section III-A).
//
//   Model model;
//   model.input(28, 10)                       // 28 features x 10 quantiles
//        .hidden(1, 300, 0.40)                // 1 HCU x 300 MCUs, RF 40%
//        .classifier(2, Model::Head::kSgd)    // BCPNN+SGD hybrid read-out
//        .compile("simd", /*seed=*/42);
//   model.fit(x_train, y_train);
//   double acc = model.evaluate(x_test, y_test);
//
// One hidden() call builds the paper's three-layer network; several stack
// a DeepBcpnn. All hyper-parameters have paper defaults and can be
// overridden through set_option() before compile().

#include <memory>
#include <string>
#include <vector>

#include "core/deep.hpp"
#include "core/network.hpp"
#include "util/config.hpp"

namespace streambrain::core {

class Model {
 public:
  enum class Head { kBcpnn, kSgd };

  Model() = default;

  /// Declare the encoded input geometry (hypercolumns x units each).
  Model& input(std::size_t hypercolumns, std::size_t bins);

  /// Append one hidden BCPNN layer.
  Model& hidden(std::size_t hcus, std::size_t mcus, double receptive_field);

  /// Set the classification layer.
  Model& classifier(std::size_t classes, Head head = Head::kBcpnn);

  /// Override schedule/learning options before compile(). Recognized
  /// keys: alpha, epochs, head_epochs, batch_size, noise_start,
  /// plasticity_swaps, inverse_temperature.
  Model& set_option(const std::string& key, double value);

  /// Materialize the network. Throws std::logic_error if input() or
  /// hidden() were never called, or on a second compile.
  Model& compile(const std::string& engine = "simd", std::uint64_t seed = 1);

  [[nodiscard]] bool compiled() const noexcept {
    return network_ != nullptr || deep_ != nullptr;
  }

  /// Train (unsupervised hidden phase + supervised head phase).
  void fit(const tensor::MatrixF& x, const std::vector<int>& labels);

  [[nodiscard]] std::vector<int> predict(const tensor::MatrixF& x);
  [[nodiscard]] std::vector<double> predict_scores(const tensor::MatrixF& x);

  /// Test accuracy.
  [[nodiscard]] double evaluate(const tensor::MatrixF& x,
                                const std::vector<int>& labels);

  /// Human-readable layer summary (Keras's model.summary()).
  [[nodiscard]] std::string summary() const;

  /// Access the underlying single-hidden-layer network (throws when the
  /// model is deep or not compiled).
  [[nodiscard]] Network& network();

 private:
  struct HiddenSpec {
    std::size_t hcus;
    std::size_t mcus;
    double receptive_field;
  };

  std::size_t input_hypercolumns_ = 0;
  std::size_t input_bins_ = 0;
  std::vector<HiddenSpec> hidden_;
  std::size_t classes_ = 2;
  Head head_ = Head::kBcpnn;
  util::Config options_;

  std::unique_ptr<Network> network_;   // depth == 1
  std::unique_ptr<DeepBcpnn> deep_;    // depth > 1
};

}  // namespace streambrain::core
