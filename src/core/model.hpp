#pragma once
// Keras-style model facade — StreamBrain's user-facing API design:
// "The StreamBrain interface (or language) is heavily inspired by Keras,
// where the user constructs the network layer-by-layer after finally
// calling the training function" (Section III-A).
//
//   Model model;
//   model.input(28, 10)                       // 28 features x 10 quantiles
//        .hidden(1, 300, 0.40)                // 1 HCU x 300 MCUs, RF 40%
//        .classifier(2, core::HeadType::kSgd) // BCPNN+SGD hybrid read-out
//        .compile("simd", /*seed=*/42);
//   model.fit(x_train, y_train);
//   double acc = model.evaluate(x_test, y_test);
//
// One hidden() call builds the paper's three-layer network; several stack
// a DeepBcpnn. All hyper-parameters have paper defaults and can be
// overridden through set_option() before compile().
//
// Model implements the streambrain::Estimator contract, so it is
// interchangeable with the baselines in experiment drivers and can be
// snapshotted into a serving Predictor. save()/load() round-trip the full
// facade: topology, options, engine choice, and learned state.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/estimator.hpp"
#include "core/deep.hpp"
#include "core/head.hpp"
#include "core/network.hpp"
#include "util/config.hpp"

namespace streambrain::core {

/// Knobs of Model::quantize().
struct QuantOptions {
  /// Weights per fp32 scale block of the dense int8 form, in
  /// [1, tensor::kMaxQuantBlock]. Smaller blocks track local weight
  /// magnitude more tightly (lower reconstruction error, more scale
  /// overhead: 4 bytes per block per output unit). Ignored by already-
  /// sparsified models, whose codes carry one scale per CSR row.
  std::size_t block_size = 32;
};

class Model final : public Estimator {
 public:
  /// Compatibility alias — the head enum is core::HeadType everywhere.
  using Head = HeadType;

  Model() = default;

  /// Declare the encoded input geometry (hypercolumns x units each).
  Model& input(std::size_t hypercolumns, std::size_t bins);

  /// Append one hidden BCPNN layer.
  Model& hidden(std::size_t hcus, std::size_t mcus, double receptive_field);

  /// Set the classification layer.
  Model& classifier(std::size_t classes, HeadType head = HeadType::kBcpnn);

  /// Override schedule/learning options before compile(). Unknown keys
  /// are rejected with std::invalid_argument naming the key and the
  /// recognized set (see option_keys()). Keys alpha_supervised,
  /// inverse_temperature, k_beta, noise_end, and plasticity_swaps apply
  /// only to single-hidden-layer models; compile() rejects them for deep
  /// stacks instead of silently dropping them.
  Model& set_option(const std::string& key, double value);

  /// The recognized set of set_option() keys.
  [[nodiscard]] static const std::vector<std::string>& option_keys();

  /// Materialize the network. The engine name is resolved through
  /// parallel::EngineRegistry, so user-registered engines work here too.
  /// Throws std::logic_error if input() or hidden() were never called, or
  /// on a second compile.
  Model& compile(const std::string& engine = "simd", std::uint64_t seed = 1);

  [[nodiscard]] bool compiled() const noexcept {
    return network_ != nullptr || deep_ != nullptr;
  }

  // --- Estimator contract -------------------------------------------------

  /// "bcpnn(depth=D,head=H)" once the topology is declared.
  [[nodiscard]] std::string name() const override;

  /// Train (unsupervised hidden phase + supervised head phase).
  void fit(const tensor::MatrixF& x, const std::vector<int>& labels) override;

  /// Incremental step on one labeled mini-batch (see Network::
  /// partial_fit): streaming refinement of a compiled 3-layer model.
  /// Throws std::logic_error before compile(), on read-only inference
  /// forms (sparsified/quantized), and on deep stacks (whose layer-wise
  /// greedy schedule has no incremental counterpart).
  void partial_fit(const tensor::MatrixF& x,
                   const std::vector<int>& labels) override;

  /// True for a compiled, dense (non-sparse, non-quantized) 3-layer
  /// model — the states partial_fit() accepts.
  [[nodiscard]] bool supports_partial_fit() const override;

  [[nodiscard]] std::vector<int> predict(const tensor::MatrixF& x) override;
  [[nodiscard]] std::vector<double> predict_scores(
      const tensor::MatrixF& x) override;

  /// Test accuracy.
  [[nodiscard]] double evaluate(const tensor::MatrixF& x,
                                const std::vector<int>& labels) override;

  [[nodiscard]] bool supports_save() const override { return true; }

  /// Checkpoint the full facade (topology + options + engine + learned
  /// state). Requires a compiled model.
  void save(const std::string& path) const override;

  /// Restore a checkpoint written by save() into this (un-compiled)
  /// model: rebuilds the topology, compiles on the stored engine, and
  /// loads the learned state. Predictions reproduce the saved model
  /// bit-for-bit on the same engine.
  void load(const std::string& path) override;

  // --- Sparse inference form ----------------------------------------------

  /// Compact read-only sparse clone of this trained model: the clone's
  /// weights are compressed to CSR (only the entries the receptive-field
  /// masks and magnitude pruning left non-zero) and the probability
  /// traces — as large as the dense weights — are dropped entirely, so a
  /// serving replica costs a fraction of the dense clone and
  /// serve::ShardPool fits more shards per host. The clone predicts
  /// bit-identically (at scalar dispatch) to this model, serves through
  /// Predictor / AsyncPredictor / ShardPool transparently, and
  /// round-trips through save()/load() as a version-3 checkpoint.
  /// fit()/load() on the clone throw std::logic_error. Prune first
  /// (core::prune_model or the prune_density/prune_cadence options) —
  /// sparsifying an unpruned model mostly stores the dense matrix as CSR.
  [[nodiscard]] Model sparsify() const;

  /// True when this model is a read-only sparse inference form.
  [[nodiscard]] bool sparse() const noexcept;

  // --- Quantized inference form ---------------------------------------------

  /// Compact read-only int8 clone of this trained model: weights become
  /// per-block symmetric int8 codes (tensor::QuantBlockMatrix of W^T),
  /// another ~4x replica shrink on top of the trace drop — or, when this
  /// model is already a sparse clone, int8 codes with per-row scales on
  /// the CSR index structure (tensor::QuantCsr), composing both wins:
  ///   model -> prune_model -> sparsify() -> quantize()
  /// The clone serves bit-stably through Predictor / AsyncPredictor /
  /// ShardPool (the quantized kernels are bit-identical across dispatch
  /// tiers, so replica cloning and batch splits can never change
  /// results) and round-trips through save()/load() as a version-4
  /// checkpoint. fit()/load() on the clone throw std::logic_error;
  /// sparsify() after quantize() throws — order is prune, sparsify,
  /// quantize.
  [[nodiscard]] Model quantize(QuantOptions options = {}) const;

  /// True when this model is a read-only quantized inference form.
  [[nodiscard]] bool quantized() const noexcept;

  // --- Introspection ------------------------------------------------------

  /// Human-readable layer summary (Keras's model.summary()).
  [[nodiscard]] std::string summary() const;

  /// Access the underlying single-hidden-layer network (throws when the
  /// model is deep or not compiled).
  [[nodiscard]] Network& network();
  [[nodiscard]] const Network& network() const;

  /// Access the underlying deep stack (throws when the model is shallow
  /// or not compiled).
  [[nodiscard]] DeepBcpnn& deep();
  [[nodiscard]] const DeepBcpnn& deep() const;

  struct HiddenSpec {
    std::size_t hcus;
    std::size_t mcus;
    double receptive_field;
  };

  [[nodiscard]] std::size_t input_hypercolumns() const noexcept {
    return input_hypercolumns_;
  }
  [[nodiscard]] std::size_t input_bins() const noexcept { return input_bins_; }
  [[nodiscard]] const std::vector<HiddenSpec>& hidden_specs() const noexcept {
    return hidden_;
  }
  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] HeadType head() const noexcept { return head_; }
  [[nodiscard]] const util::Config& options() const noexcept {
    return options_;
  }
  /// Engine name and seed passed to compile() (empty / 0 before compile).
  [[nodiscard]] const std::string& engine_name() const noexcept {
    return engine_name_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::size_t input_hypercolumns_ = 0;
  std::size_t input_bins_ = 0;
  std::vector<HiddenSpec> hidden_;
  std::size_t classes_ = 2;
  HeadType head_ = HeadType::kBcpnn;
  util::Config options_;
  std::string engine_name_;
  std::uint64_t seed_ = 0;

  std::unique_ptr<Network> network_;   // depth == 1
  std::unique_ptr<DeepBcpnn> deep_;    // depth > 1
};

}  // namespace streambrain::core
