#pragma once
// End-to-end Higgs experiment driver — the exact protocol of Section V:
// extract a balanced subset, compute 10-quantiles, one-hot encode, train
// the three-layer network, evaluate accuracy and AUC on the held-out
// test set. Every figure bench and two of the examples run through this
// single entry point so the protocol cannot drift between experiments.

#include <cstddef>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "data/dataset.hpp"
#include "viz/catalyst.hpp"

namespace streambrain::core {

struct HiggsExperimentConfig {
  /// Real UCI csv path; empty or missing file falls back to the synthetic
  /// generator (see data/higgs.hpp for the substitution rationale).
  std::string csv_path;
  std::size_t train_events = 6000;
  std::size_t test_events = 2000;
  std::size_t bins = 10;  ///< quantile groups (paper: 10)
  NetworkConfig network;
  std::uint64_t seed = 42;
  /// Optional in-situ visualization sink (nullptr = off).
  viz::CatalystAdaptor* catalyst = nullptr;
};

struct ExperimentResult {
  double test_accuracy = 0.0;
  double test_auc = 0.0;
  double train_accuracy = 0.0;
  double train_seconds = 0.0;
  FitReport fit;
  std::vector<std::vector<bool>> final_masks;  ///< per hidden HCU
};

/// Run one full experiment. Deterministic given the config.
ExperimentResult run_higgs_experiment(const HiggsExperimentConfig& config);

/// Run the experiment `repeats` times with seeds seed, seed+1, ... and
/// return all results (the paper averages 10 runs per configuration).
std::vector<ExperimentResult> run_higgs_experiment_repeated(
    HiggsExperimentConfig config, std::size_t repeats);

}  // namespace streambrain::core
