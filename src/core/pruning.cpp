#include "core/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/model.hpp"

namespace streambrain::core {

std::vector<std::uint8_t> magnitude_keep_mask(const float* w, std::size_t n,
                                              double density) {
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("magnitude_keep_mask: density not in (0,1]");
  }
  std::vector<std::uint8_t> keep(n, 1);
  if (n == 0 || density == 1.0) return keep;
  const std::size_t target = std::min<std::size_t>(
      n, static_cast<std::size_t>(
             std::ceil(density * static_cast<double>(n))));
  if (target == n) return keep;

  // Threshold = target-th largest magnitude; entries strictly above it
  // are always kept, the remaining quota is filled from the == threshold
  // ties in ascending index order (fully deterministic, so the golden
  // digests of pruned training are stable).
  std::vector<float> magnitudes(n);
  for (std::size_t i = 0; i < n; ++i) magnitudes[i] = std::abs(w[i]);
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (target - 1),
                   magnitudes.end(), std::greater<float>());
  const float threshold = magnitudes[target - 1];

  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(w[i]) > threshold) {
      ++kept;
    } else {
      keep[i] = 0;
    }
  }
  for (std::size_t i = 0; i < n && kept < target; ++i) {
    if (keep[i] == 0 && std::abs(w[i]) == threshold) {
      keep[i] = 1;
      ++kept;
    }
  }
  return keep;
}

void prune_model(Model& model, double density) {
  if (!model.compiled()) {
    throw std::logic_error("prune_model: model is not compiled");
  }
  if (model.quantized()) {
    throw std::logic_error(
        "prune_model: model is already in the quantized form; prune before "
        "quantize()");
  }
  if (model.sparse()) {
    throw std::logic_error(
        "prune_model: model is already in the sparse form; prune before "
        "sparsify()");
  }
  if (model.hidden_specs().size() == 1) {
    Network& network = model.network();
    network.mutable_hidden().prune_to_density(density);
    if (BcpnnClassifier* head = network.bcpnn_head()) {
      head->prune_to_density(density);
    } else if (SgdHead* head = network.sgd_head()) {
      head->prune_to_density(density);
    }
    return;
  }
  DeepBcpnn& deep = model.deep();
  for (std::size_t l = 0; l < deep.depth(); ++l) {
    deep.mutable_layer(l).prune_to_density(density);
  }
  deep.head().prune_to_density(density);
}

}  // namespace streambrain::core
