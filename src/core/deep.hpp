#pragma once
// Stacked BCPNN: several hidden layers trained greedily layer-by-layer,
// each unsupervised on the (frozen) activations of the layer below —
// StreamBrain's layer-wise training generalized past the paper's
// three-layer topology ("Among the future direction is to use more HCUs
// and hybrid training", §VII). Because each hidden layer's output is a
// stack of per-HCU simplexes, it is exactly the modular one-active-ish
// code the next layer's probability model expects; only the geometry
// metadata (hypercolumn count/size) changes between layers.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/classifier.hpp"
#include "core/hyperparams.hpp"
#include "core/layer.hpp"
#include "core/sgd_head.hpp"

namespace streambrain::core {

struct DeepBcpnnConfig {
  /// Geometry of the encoded input.
  std::size_t input_hypercolumns = 28;
  std::size_t input_bins = 10;
  /// One entry per hidden layer: (hcus, mcus, receptive_field).
  struct LayerSpec {
    std::size_t hcus = 1;
    std::size_t mcus = 100;
    double receptive_field = 0.4;
  };
  std::vector<LayerSpec> layers = {{2, 64, 0.4}, {1, 64, 0.6}};
  std::size_t classes = 2;
  /// Propagate hard winner-take-all codes between layers (default). The
  /// lower layer's soft simplex is low-contrast (mass 1 spread over M
  /// MCUs), which starves the next layer's support; WTA restores the
  /// exactly-one-active-unit-per-hypercolumn code the BCPNN probability
  /// model is built on.
  bool propagate_wta = true;
  /// Shared schedule knobs (applied to every layer).
  float alpha = 0.05f;
  std::size_t epochs_per_layer = 8;
  std::size_t head_epochs = 16;
  std::size_t batch_size = 64;
  float noise_start = 3.0f;
  std::string engine = "simd";
  std::uint64_t seed = 1;
};

class DeepBcpnn {
 public:
  explicit DeepBcpnn(DeepBcpnnConfig config);

  /// Greedy layer-wise unsupervised training, then the supervised head.
  void fit(const tensor::MatrixF& x, const std::vector<int>& labels);

  /// Activations of the top hidden layer.
  [[nodiscard]] tensor::MatrixF transform(const tensor::MatrixF& x);

  [[nodiscard]] std::vector<int> predict(const tensor::MatrixF& x);
  [[nodiscard]] std::vector<double> predict_scores(const tensor::MatrixF& x);

  /// Convert every hidden layer and the head to the compact read-only
  /// sparse inference form. Irreversible; fit() throws afterwards.
  void sparsify();

  [[nodiscard]] bool sparse() const noexcept;

  /// Convert every hidden layer and the head to the int8 read-only
  /// quantized form — composable after sparsify(). fit() throws after.
  void quantize(std::size_t block_size);

  [[nodiscard]] bool quantized() const noexcept;

  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }
  [[nodiscard]] const BcpnnLayer& layer(std::size_t i) const {
    return *layers_.at(i);
  }
  [[nodiscard]] BcpnnLayer& mutable_layer(std::size_t i) {
    return *layers_.at(i);
  }
  [[nodiscard]] const DeepBcpnnConfig& config() const noexcept {
    return config_;
  }
  /// Supervised head over the top hidden code (for checkpointing).
  [[nodiscard]] BcpnnClassifier& head() noexcept { return *head_; }
  [[nodiscard]] const BcpnnClassifier& head() const noexcept { return *head_; }
  /// Compute backend shared by all layers (the distributed trainer drives
  /// per-shard forwards through it).
  [[nodiscard]] parallel::Engine& engine() noexcept { return *engine_; }

 private:
  void train_layer_unsupervised(std::size_t index, const tensor::MatrixF& x);
  /// Forward through layer `index`, applying WTA when configured.
  void propagate(std::size_t index, const tensor::MatrixF& in,
                 tensor::MatrixF& out);

  DeepBcpnnConfig config_;
  std::unique_ptr<parallel::Engine> engine_;
  util::Rng rng_;
  std::vector<std::unique_ptr<BcpnnLayer>> layers_;
  std::unique_ptr<BcpnnClassifier> head_;
};

}  // namespace streambrain::core
