#include "core/distributed.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/classifier.hpp"
#include "core/deep.hpp"
#include "core/network.hpp"
#include "core/serialization.hpp"
#include "core/sgd_head.hpp"
#include "data/dataset.hpp"
#include "parallel/engine_registry.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels.hpp"
#include "util/annotated_mutex.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace streambrain::core {

namespace {

// ---------------------------------------------------------------------------
// Rank-invariant building blocks. Everything here is a function of the
// data, the schedule, and the fixed virtual-shard decomposition — never of
// the rank count — which is what makes N-rank training bit-identical to
// 1-rank training (see distributed.hpp).

std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (0x9E3779B97F4A7C15ULL * (b + 1));
  return util::splitmix64(s);
}

/// Deterministic per-(phase, epoch, batch, shard) noise stream: the noise
/// a virtual shard's rows receive depends only on the shard identity, so
/// it is identical whichever rank owns the shard.
util::Rng shard_noise_rng(std::uint64_t stream, std::size_t epoch,
                          std::size_t batch, std::size_t shard) {
  return util::Rng(mix(mix(mix(stream, epoch), batch), shard));
}

/// The rows of one global batch, split round-robin over the fixed virtual
/// shards; only the shards owned by this rank are materialized.
struct BatchShards {
  std::vector<tensor::MatrixF> x;            // per shard, owned only
  std::vector<tensor::MatrixF> t;            // optional targets, owned only
  std::vector<std::size_t> rows_per_shard;   // all shards
  std::size_t batch_rows = 0;
  std::size_t local_rows = 0;
};

bool owns_shard(std::size_t shard, int rank, int world) noexcept {
  return static_cast<int>(shard % static_cast<std::size_t>(world)) == rank;
}

/// Gather the rows of batch positions [start, end) of `order` into the
/// per-shard matrices (position i -> shard (i - start) % shards).
void pack_batch(const tensor::MatrixF& src_x, const tensor::MatrixF* src_t,
                const std::vector<std::size_t>& order, std::size_t start,
                std::size_t end, std::size_t shards, int rank, int world,
                BatchShards& out) {
  out.x.resize(shards);
  out.t.resize(src_t != nullptr ? shards : 0);
  out.rows_per_shard.assign(shards, 0);
  out.batch_rows = end - start;
  out.local_rows = 0;
  for (std::size_t i = start; i < end; ++i) {
    ++out.rows_per_shard[(i - start) % shards];
  }
  for (std::size_t v = 0; v < shards; ++v) {
    if (!owns_shard(v, rank, world)) continue;
    const std::size_t rows = out.rows_per_shard[v];
    out.local_rows += rows;
    out.x[v].resize(rows, src_x.cols());
    if (src_t != nullptr) out.t[v].resize(rows, src_t->cols());
    std::size_t filled = 0;
    for (std::size_t i = start + v; i < end;
         i += shards, ++filled) {
      std::copy_n(src_x.row(order[i]), src_x.cols(), out.x[v].row(filled));
      if (src_t != nullptr) {
        std::copy_n(src_t->row(order[i]), src_t->cols(), out.t[v].row(filled));
      }
    }
  }
}

/// Zero-padded per-shard statistics buffer + the fixed-order combine.
/// Each shard's statistics live in a disjoint slot, so the allreduce adds
/// x + 0 everywhere — exact for both algorithms — and the subsequent
/// left-to-right combine over shards is identical on every rank.
struct LeafExchange {
  std::size_t shards = 0;
  std::size_t block = 0;
  std::vector<float> buffer;  // shards * block
  std::vector<float> total;   // block

  void configure(std::size_t shard_count, std::size_t block_size) {
    shards = shard_count;
    block = block_size;
    buffer.assign(shards * block, 0.0f);
    total.assign(block, 0.0f);
  }

  void reset() { std::fill(buffer.begin(), buffer.end(), 0.0f); }

  [[nodiscard]] float* slot(std::size_t shard) noexcept {
    return buffer.data() + shard * block;
  }

  /// allreduce the padded buffer, then combine shards in fixed order.
  /// `overlap_work` runs between issuing the nonblocking reduction and
  /// waiting on it (compute/communication overlap).
  void exchange(comm::Communicator& comm, comm::AllreduceAlgorithm algorithm,
                const std::function<void()>& overlap_work) {
    comm::Request request = comm.iallreduce(buffer.data(), buffer.size(),
                                            comm::ReduceOp::kSum, algorithm);
    if (overlap_work) overlap_work();
    request.wait();
    combine_all();
  }

  /// Combine every shard's slot (after an exchange).
  void combine_all() {
    std::fill(total.begin(), total.end(), 0.0f);
    for (std::size_t v = 0; v < shards; ++v) {
      const float* part = slot(v);
      for (std::size_t i = 0; i < block; ++i) total[i] += part[i];
    }
  }

  /// Combine only the shards this rank owns (approximate mode).
  void combine_owned(int rank, int world) {
    std::fill(total.begin(), total.end(), 0.0f);
    for (std::size_t v = 0; v < shards; ++v) {
      if (!owns_shard(v, rank, world)) continue;
      const float* part = slot(v);
      for (std::size_t i = 0; i < block; ++i) total[i] += part[i];
    }
  }
};

// --- Trace-based updates (hidden layers and the BCPNN head) ----------------

/// Stat block layout for a trace update over (x, a): col-sums of x, col-
/// sums of a, and x^T a, concatenated.
std::size_t trace_block_size(std::size_t n_in, std::size_t n_out) noexcept {
  return n_in + n_out + n_in * n_out;
}

void accumulate_trace_stats(const tensor::MatrixF& x, const tensor::MatrixF& a,
                            tensor::MatrixF& pij_scratch, float* slot) {
  const std::size_t n_in = x.cols();
  const std::size_t n_out = a.cols();
  tensor::col_sums(x, slot);
  tensor::col_sums(a, slot + n_in);
  pij_scratch.resize(n_in, n_out);
  tensor::gemm(tensor::Transpose::kYes, tensor::Transpose::kNo, 1.0f, x, a,
               0.0f, pij_scratch);
  std::copy_n(pij_scratch.data(), n_in * n_out, slot + n_in + n_out);
}

/// p += alpha * (sum / rows - p), the engine's trace EMA replayed from
/// externally combined batch statistics. Plain serial loops: identical on
/// every rank.
void apply_trace_ema(const float* totals, std::size_t rows, float alpha,
                     ProbabilityTraces& traces) {
  const float inv = 1.0f / static_cast<float>(rows);
  auto& pi = traces.mutable_pi();
  auto& pj = traces.mutable_pj();
  auto& pij = traces.mutable_pij();
  const std::size_t n_in = pi.size();
  const std::size_t n_out = pj.size();
  const float* sum_pi = totals;
  const float* sum_pj = totals + n_in;
  const float* sum_pij = totals + n_in + n_out;
  for (std::size_t i = 0; i < n_in; ++i) {
    pi[i] += alpha * (sum_pi[i] * inv - pi[i]);
  }
  for (std::size_t j = 0; j < n_out; ++j) {
    pj[j] += alpha * (sum_pj[j] * inv - pj[j]);
  }
  float* pij_data = pij.data();
  for (std::size_t i = 0; i < n_in * n_out; ++i) {
    pij_data[i] += alpha * (sum_pij[i] * inv - pij_data[i]);
  }
}

/// Pack / unpack traces into a flat buffer for cadence-mode averaging.
void traces_to_buffer(const ProbabilityTraces& traces, float* out) {
  std::copy(traces.pi().begin(), traces.pi().end(), out);
  out += traces.pi().size();
  std::copy(traces.pj().begin(), traces.pj().end(), out);
  out += traces.pj().size();
  std::copy_n(traces.pij().data(), traces.pij().size(), out);
}

void buffer_to_traces(const float* in, ProbabilityTraces& traces) {
  std::copy_n(in, traces.mutable_pi().size(), traces.mutable_pi().data());
  in += traces.pi().size();
  std::copy_n(in, traces.mutable_pj().size(), traces.mutable_pj().data());
  in += traces.pj().size();
  std::copy_n(in, traces.pij().size(), traces.mutable_pij().data());
}

/// Everything one synchronized trace-training phase needs.
struct TracePhase {
  ProbabilityTraces& traces;
  std::function<void()> recompute;          ///< weights from traces
  std::function<void(const tensor::MatrixF&, tensor::MatrixF&, float,
                     util::Rng&)>
      forward;  ///< shard rows -> activations (empty: targets provided)
  float alpha;
  std::size_t epochs;
  std::size_t batch_size;
  std::function<float(std::size_t)> noise_for_epoch;  ///< 0 => none
  std::function<void()> end_epoch;          ///< e.g. plasticity (may be {})
  std::uint64_t stream;                     ///< schedule / noise rng tag
};

/// One full trace-training phase (all epochs) over `x` with optional
/// supervised targets. This is the core of the data-parallel trainer.
void run_trace_phase(comm::Communicator& comm, const DistributedOptions& opts,
                     TracePhase&& phase, const tensor::MatrixF& x,
                     const tensor::MatrixF* targets, std::size_t n_out,
                     std::size_t& sync_count) {
  const int rank = comm.rank();
  const int world = comm.size();
  const std::size_t n = x.rows();
  const std::size_t shards = static_cast<std::size_t>(opts.virtual_shards);
  const bool exact = opts.sync_cadence <= 1;

  LeafExchange exchange;
  exchange.configure(shards, trace_block_size(x.cols(), n_out));
  std::vector<float> trace_buffer;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng order_rng(mix(phase.stream, 0x5A55C0DEULL));
  tensor::MatrixF activations;
  tensor::MatrixF pij_scratch;
  BatchShards current;
  BatchShards next;

  const std::size_t batches = (n + phase.batch_size - 1) / phase.batch_size;
  for (std::size_t epoch = 0; epoch < phase.epochs; ++epoch) {
    const float noise =
        phase.noise_for_epoch ? phase.noise_for_epoch(epoch) : 0.0f;
    order_rng.shuffle(order);
    pack_batch(x, targets, order, 0,
               std::min(phase.batch_size, n), shards, rank, world, current);
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t start = b * phase.batch_size;
      const std::size_t next_start = start + phase.batch_size;
      exchange.reset();
      for (std::size_t v = 0; v < shards; ++v) {
        if (!owns_shard(v, rank, world) || current.rows_per_shard[v] == 0) {
          continue;
        }
        const tensor::MatrixF& shard_x = current.x[v];
        const tensor::MatrixF* shard_a;
        if (targets != nullptr) {
          shard_a = &current.t[v];
        } else {
          util::Rng noise_rng = shard_noise_rng(phase.stream, epoch, b, v);
          phase.forward(shard_x, activations, noise, noise_rng);
          shard_a = &activations;
        }
        accumulate_trace_stats(shard_x, *shard_a, pij_scratch,
                               exchange.slot(v));
      }

      const auto pack_next = [&] {
        if (next_start < n) {
          pack_batch(x, targets, order, next_start,
                     std::min(next_start + phase.batch_size, n), shards, rank,
                     world, next);
        }
      };

      if (exact) {
        // One reduction per batch; packing the next batch's shard rows
        // overlaps the (logical) network transfer.
        exchange.exchange(comm, opts.algorithm,
                          opts.overlap ? std::function<void()>(pack_next)
                                       : std::function<void()>{});
        if (!opts.overlap) pack_next();
        apply_trace_ema(exchange.total.data(), current.batch_rows, phase.alpha,
                        phase.traces);
        phase.recompute();
        ++sync_count;
      } else {
        // Approximate mode: local update now, trace averaging on cadence.
        exchange.combine_owned(rank, world);
        if (current.local_rows > 0) {
          apply_trace_ema(exchange.total.data(), current.local_rows,
                          phase.alpha, phase.traces);
          phase.recompute();
        }
        pack_next();
        const bool last_batch = b + 1 == batches;
        if ((b + 1) % opts.sync_cadence == 0 || last_batch) {
          trace_buffer.resize(exchange.block);
          traces_to_buffer(phase.traces, trace_buffer.data());
          comm.allreduce_mean(trace_buffer.data(), trace_buffer.size(),
                              opts.algorithm);
          buffer_to_traces(trace_buffer.data(), phase.traces);
          phase.recompute();
          ++sync_count;
        }
      }
      std::swap(current, next);
    }
    // Traces are rank-identical here (exact every batch; approximate via
    // the forced epoch-end average), so per-epoch structural plasticity
    // makes the same swaps on every rank.
    if (phase.end_epoch) phase.end_epoch();
  }
}

/// Unsupervised hidden-layer phase: schedule parameters all come from the
/// layer's own config, so the same code drives shallow networks and every
/// layer of a deep stack.
void run_unsupervised_phase(comm::Communicator& comm,
                            const DistributedOptions& opts,
                            parallel::Engine& engine, BcpnnLayer& layer,
                            const tensor::MatrixF& x, std::uint64_t stream,
                            std::size_t& sync_count) {
  const BcpnnConfig& cfg = layer.config();
  TracePhase phase{
      layer.mutable_traces(),
      [&layer] { layer.recompute_weights(); },
      [&engine, &layer, &cfg](const tensor::MatrixF& shard_x,
                              tensor::MatrixF& activations, float noise_std,
                              util::Rng& noise_rng) {
        engine.support(shard_x, layer.weights(), layer.bias().data(),
                       activations);
        if (noise_std > 0.0f) {
          for (float& v : activations) {
            v += static_cast<float>(noise_rng.normal(0.0, noise_std));
          }
        }
        engine.softmax_hcu(activations, cfg.mcus, cfg.inverse_temperature);
      },
      cfg.alpha,
      cfg.epochs,
      cfg.batch_size,
      [&cfg](std::size_t epoch) {
        const float progress =
            cfg.epochs > 1 ? static_cast<float>(epoch) /
                                 static_cast<float>(cfg.epochs - 1)
                           : 1.0f;
        return cfg.noise_start + (cfg.noise_end - cfg.noise_start) * progress;
      },
      [&layer] { layer.plasticity_step(); },
      mix(cfg.seed, stream)};
  run_trace_phase(comm, opts, std::move(phase), x, nullptr,
                  layer.hidden_units(), sync_count);
}

/// Supervised BCPNN head phase (shallow kBcpnn head and deep heads).
void run_bcpnn_head_phase(comm::Communicator& comm,
                          const DistributedOptions& opts,
                          BcpnnClassifier& head,
                          const tensor::MatrixF& hidden,
                          const tensor::MatrixF& targets, std::size_t epochs,
                          std::size_t batch_size, std::uint64_t stream,
                          std::size_t& sync_count) {
  TracePhase phase{head.mutable_traces(),
                   [&head] { head.recompute_weights(); },
                   {},
                   head.alpha(),
                   epochs,
                   batch_size,
                   {},
                   {},
                   stream};
  run_trace_phase(comm, opts, std::move(phase), hidden, &targets,
                  targets.cols(), sync_count);
}

// --- SGD head --------------------------------------------------------------

void run_sgd_head_phase(comm::Communicator& comm,
                        const DistributedOptions& opts, SgdHead& head,
                        const tensor::MatrixF& hidden,
                        const tensor::MatrixF& targets, std::size_t epochs,
                        std::size_t batch_size, std::uint64_t stream,
                        std::size_t& sync_count) {
  const int rank = comm.rank();
  const int world = comm.size();
  const std::size_t n = hidden.rows();
  const std::size_t n_feat = hidden.cols();
  const std::size_t classes = targets.cols();
  const std::size_t shards = static_cast<std::size_t>(opts.virtual_shards);
  const bool exact = opts.sync_cadence <= 1;

  LeafExchange exchange;
  exchange.configure(shards, n_feat * classes + classes);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng order_rng(mix(stream, 0x5A55C0DEULL));
  tensor::MatrixF probs;
  tensor::MatrixF grad_scratch(n_feat, classes);
  tensor::MatrixF grad(n_feat, classes);
  std::vector<float> bias_grad(classes);
  std::vector<float> weight_buffer;
  BatchShards current;
  BatchShards next;

  const std::size_t batches = (n + batch_size - 1) / batch_size;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    order_rng.shuffle(order);
    pack_batch(hidden, &targets, order, 0, std::min(batch_size, n), shards,
               rank, world, current);
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t next_start = (b + 1) * batch_size;
      exchange.reset();
      for (std::size_t v = 0; v < shards; ++v) {
        if (!owns_shard(v, rank, world) || current.rows_per_shard[v] == 0) {
          continue;
        }
        const tensor::MatrixF& shard_x = current.x[v];
        const tensor::MatrixF& shard_t = current.t[v];
        head.predict(shard_x, probs);
        // Softmax-cross-entropy residual, then the un-normalized partial
        // gradient X^T (p - t) and its bias column sums.
        for (std::size_t r = 0; r < probs.rows(); ++r) {
          for (std::size_t c = 0; c < classes; ++c) {
            probs(r, c) -= shard_t(r, c);
          }
        }
        float* slot = exchange.slot(v);
        tensor::gemm(tensor::Transpose::kYes, tensor::Transpose::kNo, 1.0f,
                     shard_x, probs, 0.0f, grad_scratch);
        std::copy_n(grad_scratch.data(), n_feat * classes, slot);
        tensor::col_sums(probs, slot + n_feat * classes);
      }

      const auto pack_next = [&] {
        if (next_start < n) {
          pack_batch(hidden, &targets, order, next_start,
                     std::min(next_start + batch_size, n), shards, rank, world,
                     next);
        }
      };

      const auto apply_totals = [&](std::size_t rows) {
        const float inv = 1.0f / static_cast<float>(rows);
        std::copy_n(exchange.total.data(), n_feat * classes, grad.data());
        tensor::scale(inv, grad.data(), grad.size());
        std::copy_n(exchange.total.data() + n_feat * classes, classes,
                    bias_grad.data());
        tensor::scale(inv, bias_grad.data(), classes);
        head.apply_gradient(grad, bias_grad);
      };

      if (exact) {
        exchange.exchange(comm, opts.algorithm,
                          opts.overlap ? std::function<void()>(pack_next)
                                       : std::function<void()>{});
        if (!opts.overlap) pack_next();
        apply_totals(current.batch_rows);
        ++sync_count;
      } else {
        exchange.combine_owned(rank, world);
        if (current.local_rows > 0) apply_totals(current.local_rows);
        pack_next();
        const bool last_batch = b + 1 == batches;
        if ((b + 1) % opts.sync_cadence == 0 || last_batch) {
          // Average the replicated parameters (momentum stays local).
          weight_buffer.resize(n_feat * classes + classes);
          std::copy_n(head.weights().data(), n_feat * classes,
                      weight_buffer.data());
          std::copy_n(head.bias().data(), classes,
                      weight_buffer.data() + n_feat * classes);
          comm.allreduce_mean(weight_buffer.data(), weight_buffer.size(),
                              opts.algorithm);
          tensor::MatrixF averaged(n_feat, classes);
          std::copy_n(weight_buffer.data(), n_feat * classes, averaged.data());
          std::vector<float> averaged_bias(
              weight_buffer.begin() +
                  static_cast<std::ptrdiff_t>(n_feat * classes),
              weight_buffer.end());
          head.set_parameters(averaged, averaged_bias);  // momentum kept
          ++sync_count;
        }
      }
      std::swap(current, next);
    }
    head.end_epoch();
  }
}

// --- Replica plumbing ------------------------------------------------------

void train_replica(comm::Communicator& comm, const DistributedOptions& opts,
                   Model& replica, const tensor::MatrixF& x,
                   const std::vector<int>& labels, std::size_t& sync_count) {
  if (replica.hidden_specs().size() == 1) {
    Network& net = replica.network();
    const BcpnnConfig& cfg = net.config().bcpnn;
    run_unsupervised_phase(comm, opts, net.engine(), net.mutable_hidden(), x,
                           /*stream=*/1, sync_count);

    tensor::MatrixF hidden;
    net.mutable_hidden().forward(x, hidden);  // replicated, deterministic
    const tensor::MatrixF targets =
        data::one_hot_labels(labels, net.config().classes);
    if (net.sgd_head() != nullptr) {
      run_sgd_head_phase(comm, opts, *net.sgd_head(), hidden, targets,
                         cfg.head_epochs, cfg.batch_size,
                         mix(cfg.seed, /*stream=*/2), sync_count);
    } else {
      run_bcpnn_head_phase(comm, opts, *net.bcpnn_head(), hidden,
                           targets, cfg.head_epochs, cfg.batch_size,
                           mix(cfg.seed, /*stream=*/2), sync_count);
    }
  } else {
    DeepBcpnn& deep = replica.deep();
    const DeepBcpnnConfig& cfg = deep.config();
    tensor::MatrixF current = x;
    for (std::size_t l = 0; l < deep.depth(); ++l) {
      run_unsupervised_phase(comm, opts, deep.engine(), deep.mutable_layer(l),
                             current, /*stream=*/16 + l, sync_count);
      tensor::MatrixF next;
      deep.mutable_layer(l).forward(current, next);
      if (cfg.propagate_wta) {
        tensor::wta_blocks(next, cfg.layers[l].mcus);
      }
      current = std::move(next);
    }
    const tensor::MatrixF head_input = deep.transform(x);
    const tensor::MatrixF targets =
        data::one_hot_labels(labels, cfg.classes);
    run_bcpnn_head_phase(comm, opts, deep.head(), head_input,
                         targets, cfg.head_epochs, cfg.batch_size,
                         mix(cfg.seed, /*stream=*/2), sync_count);
  }

  // Schedule-agreement invariant over the new uint64 collective: a rank
  // that desynchronized its reduction schedule would have deadlocked or
  // corrupted results — make the failure loud instead.
  std::uint64_t lo = sync_count;
  std::uint64_t hi = sync_count;
  comm.allreduce(&lo, 1, comm::ReduceOp::kMin);
  comm.allreduce(&hi, 1, comm::ReduceOp::kMax);
  if (lo != hi) {
    throw std::logic_error(
        "DistributedTrainer: ranks disagree on the sync schedule");
  }
}

/// Copy the trained state of `src` (a replica) into `dst` (the caller's
/// compiled model with identical topology).
void adopt_state(const Model& src, Model& dst) {
  if (src.hidden_specs().size() == 1) {
    const Network& from = src.network();
    Network& to = dst.network();
    to.mutable_hidden().set_state(from.hidden().traces(),
                                  from.hidden().masks());
    if (from.sgd_head() != nullptr) {
      to.sgd_head()->set_state(from.sgd_head()->weights(),
                               from.sgd_head()->bias());
    } else {
      to.bcpnn_head()->mutable_traces() = from.bcpnn_head()->traces();
      to.bcpnn_head()->recompute_weights();
    }
  } else {
    const DeepBcpnn& from = src.deep();
    DeepBcpnn& to = dst.deep();
    for (std::size_t l = 0; l < from.depth(); ++l) {
      to.mutable_layer(l).set_state(from.layer(l).traces(),
                                    from.layer(l).masks());
    }
    to.head().mutable_traces() = from.head().traces();
    to.head().recompute_weights();
  }
}

}  // namespace

DistributedTrainer::DistributedTrainer(DistributedOptions options)
    : options_(options) {
  if (options_.ranks < 1) {
    throw std::invalid_argument("DistributedTrainer: ranks must be >= 1");
  }
  if (options_.virtual_shards < 1) {
    throw std::invalid_argument(
        "DistributedTrainer: virtual_shards must be >= 1");
  }
  if (options_.sync_cadence < 1) {
    throw std::invalid_argument(
        "DistributedTrainer: sync_cadence must be >= 1");
  }
}

DistributedReport DistributedTrainer::fit(Model& model,
                                          const tensor::MatrixF& x,
                                          const std::vector<int>& labels) {
  if (!model.compiled()) {
    throw std::logic_error("DistributedTrainer::fit: model not compiled");
  }
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("DistributedTrainer::fit: rows != labels");
  }
  if (x.rows() == 0) {
    throw std::invalid_argument("DistributedTrainer::fit: empty dataset");
  }

  DistributedReport report;
  report.ranks = options_.ranks;
  report.backend = options_.backend;
  report.algorithm = options_.algorithm;
  util::Stopwatch watch;

  // One independent replica per rank (own engine, identical initial
  // state); all ranks finish bit-identical, rank 0's state is adopted.
  std::vector<Model> replicas;
  replicas.reserve(static_cast<std::size_t>(options_.ranks));
  for (int r = 0; r < options_.ranks; ++r) {
    replicas.push_back(clone_model(model));
  }
  std::vector<std::size_t> sync_counts(
      static_cast<std::size_t>(options_.ranks), 0);

  const comm::RunStats stats = comm::run_transport(
      options_.backend, options_.ranks, [&](comm::Communicator& comm) {
        train_replica(comm, options_,
                      replicas[static_cast<std::size_t>(comm.rank())], x,
                      labels, sync_counts[static_cast<std::size_t>(comm.rank())]);
      });

  adopt_state(replicas[0], model);
  report.seconds = watch.seconds();
  report.bytes_per_rank = stats.bytes_per_rank.empty()
                              ? 0
                              : stats.bytes_per_rank[0];
  report.total_bytes = stats.total_bytes;
  report.wire_bytes_per_rank = stats.wire_bytes_per_rank.empty()
                                   ? 0
                                   : stats.wire_bytes_per_rank[0];
  report.total_wire_bytes = stats.total_wire_bytes;
  report.sync_count = sync_counts[0];
  return report;
}

std::size_t DistributedTrainer::fit_rank(comm::Communicator& comm,
                                         Model& model,
                                         const tensor::MatrixF& x,
                                         const std::vector<int>& labels) {
  if (!model.compiled()) {
    throw std::logic_error("DistributedTrainer::fit_rank: model not compiled");
  }
  if (x.rows() != labels.size()) {
    throw std::invalid_argument("DistributedTrainer::fit_rank: rows != labels");
  }
  if (x.rows() == 0) {
    throw std::invalid_argument("DistributedTrainer::fit_rank: empty dataset");
  }
  // Train a clone and adopt it, exactly like fit() does per rank, so the
  // multi-process path shares fit()'s state handling bit for bit.
  Model replica = clone_model(model);
  std::size_t sync_count = 0;
  train_replica(comm, options_, replica, x, labels, sync_count);
  adopt_state(replica, model);
  return sync_count;
}

DistributedReport fit_distributed(Model& model, const tensor::MatrixF& x,
                                  const std::vector<int>& labels,
                                  const DistributedOptions& options) {
  return DistributedTrainer(options).fit(model, x, labels);
}

DistributedReport distributed_unsupervised_fit(BcpnnLayer& layer,
                                               const tensor::MatrixF& x,
                                               int ranks) {
  const BcpnnConfig cfg = layer.config();
  DistributedReport report;
  report.ranks = ranks;
  util::Stopwatch watch;

  // Final state captured from rank 0.
  std::unique_ptr<ProbabilityTraces> final_traces;
  std::unique_ptr<ReceptiveFieldMasks> final_masks;
  // Only rank 0 writes and the writes happen-before the join, but the
  // lock keeps the capture protocol explicit (and future-proof against a
  // multi-writer capture).
  sb::Mutex result_mutex;
  std::size_t sync_count = 0;

  const comm::RunStats stats = comm::run_reported(
      ranks, [&](comm::Communicator& comm) {
    const int rank = comm.rank();
    const int world = comm.size();

    // Same seed everywhere: identical initial masks and traces. Only the
    // noise RNG is split per rank (different shards explore differently;
    // trace averaging merges them).
    auto engine = parallel::EngineRegistry::instance().create(cfg.engine);
    util::Rng mask_rng(cfg.seed);
    BcpnnLayer local(cfg, *engine, mask_rng);
    util::Rng noise_rng(cfg.seed ^ (0x9E3779B9ULL * (rank + 1)));

    // Round-robin shard of the row indices.
    std::vector<std::size_t> shard;
    for (std::size_t r = static_cast<std::size_t>(rank); r < x.rows();
         r += static_cast<std::size_t>(world)) {
      shard.push_back(r);
    }
    // Every rank must execute the same number of batches so the allreduce
    // schedule matches; pad the smallest shards by wrapping.
    const std::size_t max_shard = (x.rows() + world - 1) / world;
    const std::size_t original_size = shard.size();
    while (shard.size() < max_shard && original_size > 0) {
      shard.push_back(shard[(shard.size() - original_size) % original_size]);
    }
    const std::size_t batches_per_epoch =
        (max_shard + cfg.batch_size - 1) / cfg.batch_size;

    tensor::MatrixF batch;
    std::size_t local_syncs = 0;
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      const float progress =
          cfg.epochs > 1
              ? static_cast<float>(epoch) / static_cast<float>(cfg.epochs - 1)
              : 1.0f;
      const float noise =
          cfg.noise_start + (cfg.noise_end - cfg.noise_start) * progress;
      noise_rng.shuffle(shard);
      for (std::size_t b = 0; b < batches_per_epoch; ++b) {
        const std::size_t start = b * cfg.batch_size;
        const std::size_t end = std::min(start + cfg.batch_size, shard.size());
        if (start >= end) break;
        batch.resize(end - start, x.cols());
        for (std::size_t r = start; r < end; ++r) {
          std::copy_n(x.row(shard[r]), x.cols(), batch.row(r - start));
        }
        local.train_batch(batch, noise);

        // Synchronize traces: one allreduce per batch. This is ALL the
        // communication BCPNN data-parallelism needs.
        auto& traces = local.mutable_traces();
        comm.allreduce_mean(traces.mutable_pi().data(), traces.pi().size());
        comm.allreduce_mean(traces.mutable_pj().data(), traces.pj().size());
        comm.allreduce_mean(traces.mutable_pij().data(),
                            traces.pij().size());
        local.recompute_weights();
        ++local_syncs;
      }
      // Identical traces -> identical plasticity decision on every rank.
      local.plasticity_step();
    }

    if (rank == 0) {
      const sb::MutexLock lock(result_mutex);
      final_traces = std::make_unique<ProbabilityTraces>(local.traces());
      final_masks = std::make_unique<ReceptiveFieldMasks>(local.masks());
      sync_count = local_syncs;
    }
    comm.barrier();
  });

  if (final_traces && final_masks) {
    layer.set_state(*final_traces, *final_masks);
  }
  report.seconds = watch.seconds();
  report.bytes_per_rank = stats.bytes_per_rank.empty()
                              ? 0
                              : stats.bytes_per_rank[0];
  // True per-rank sum — NOT rank 0's counter times the world size, which
  // over- or under-counts whenever traffic is asymmetric across ranks.
  report.total_bytes = stats.total_bytes;
  report.sync_count = sync_count;
  return report;
}

}  // namespace streambrain::core
