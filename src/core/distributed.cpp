#include "core/distributed.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "comm/communicator.hpp"
#include "parallel/engine_registry.hpp"
#include "util/timer.hpp"

namespace streambrain::core {

DistributedReport distributed_unsupervised_fit(BcpnnLayer& layer,
                                               const tensor::MatrixF& x,
                                               int ranks) {
  const BcpnnConfig cfg = layer.config();
  DistributedReport report;
  report.ranks = ranks;
  util::Stopwatch watch;

  // Final state captured from rank 0.
  std::unique_ptr<ProbabilityTraces> final_traces;
  std::unique_ptr<ReceptiveFieldMasks> final_masks;
  std::mutex result_mutex;
  std::uint64_t bytes_rank0 = 0;
  std::size_t sync_count = 0;

  comm::run(ranks, [&](comm::Communicator& comm) {
    const int rank = comm.rank();
    const int world = comm.size();

    // Same seed everywhere: identical initial masks and traces. Only the
    // noise RNG is split per rank (different shards explore differently;
    // trace averaging merges them).
    auto engine = parallel::EngineRegistry::instance().create(cfg.engine);
    util::Rng mask_rng(cfg.seed);
    BcpnnLayer local(cfg, *engine, mask_rng);
    util::Rng noise_rng(cfg.seed ^ (0x9E3779B9ULL * (rank + 1)));

    // Round-robin shard of the row indices.
    std::vector<std::size_t> shard;
    for (std::size_t r = static_cast<std::size_t>(rank); r < x.rows();
         r += static_cast<std::size_t>(world)) {
      shard.push_back(r);
    }
    // Every rank must execute the same number of batches so the allreduce
    // schedule matches; pad the smallest shards by wrapping.
    const std::size_t max_shard = (x.rows() + world - 1) / world;
    const std::size_t original_size = shard.size();
    while (shard.size() < max_shard && original_size > 0) {
      shard.push_back(shard[(shard.size() - original_size) % original_size]);
    }
    const std::size_t batches_per_epoch =
        (max_shard + cfg.batch_size - 1) / cfg.batch_size;

    tensor::MatrixF batch;
    std::size_t local_syncs = 0;
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      const float progress =
          cfg.epochs > 1
              ? static_cast<float>(epoch) / static_cast<float>(cfg.epochs - 1)
              : 1.0f;
      const float noise =
          cfg.noise_start + (cfg.noise_end - cfg.noise_start) * progress;
      noise_rng.shuffle(shard);
      for (std::size_t b = 0; b < batches_per_epoch; ++b) {
        const std::size_t start = b * cfg.batch_size;
        const std::size_t end = std::min(start + cfg.batch_size, shard.size());
        if (start >= end) break;
        batch.resize(end - start, x.cols());
        for (std::size_t r = start; r < end; ++r) {
          std::copy_n(x.row(shard[r]), x.cols(), batch.row(r - start));
        }
        local.train_batch(batch, noise);

        // Synchronize traces: one allreduce per batch. This is ALL the
        // communication BCPNN data-parallelism needs.
        auto& traces = local.mutable_traces();
        comm.allreduce_mean(traces.mutable_pi().data(), traces.pi().size());
        comm.allreduce_mean(traces.mutable_pj().data(), traces.pj().size());
        comm.allreduce_mean(traces.mutable_pij().data(),
                            traces.pij().size());
        local.recompute_weights();
        ++local_syncs;
      }
      // Identical traces -> identical plasticity decision on every rank.
      local.plasticity_step();
    }

    if (rank == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      final_traces = std::make_unique<ProbabilityTraces>(local.traces());
      final_masks = std::make_unique<ReceptiveFieldMasks>(local.masks());
      bytes_rank0 = comm.bytes_sent();
      sync_count = local_syncs;
    }
    comm.barrier();
  });

  if (final_traces && final_masks) {
    layer.set_state(*final_traces, *final_masks);
  }
  report.seconds = watch.seconds();
  report.bytes_per_rank = bytes_rank0;
  report.total_bytes = bytes_rank0 * static_cast<std::uint64_t>(ranks);
  report.sync_count = sync_count;
  return report;
}

}  // namespace streambrain::core
