#pragma once
// Precision-recall analysis and proper scoring rules, complementing the
// ROC/AUC module. On imbalanced selections (the realistic collider
// setting — signal is rare) PR curves are the more informative view.

#include <cstddef>
#include <vector>

namespace streambrain::metrics {

struct PrPoint {
  double recall;
  double precision;
  double threshold;
};

/// Precision-recall curve, thresholds descending; starts at the highest
/// score. Labels in {0,1}.
std::vector<PrPoint> pr_curve(const std::vector<double>& scores,
                              const std::vector<int>& labels);

/// Average precision (area under the PR curve by the step-wise
/// interpolation used by scikit-learn). Returns the positive base rate
/// when scores are uninformative.
double average_precision(const std::vector<double>& scores,
                         const std::vector<int>& labels);

/// Brier score: mean squared error of probabilistic predictions.
/// 0 = perfect, 0.25 = constant 0.5 prediction on balanced data.
double brier_score(const std::vector<double>& scores,
                   const std::vector<int>& labels);

}  // namespace streambrain::metrics
