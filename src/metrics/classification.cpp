#include "metrics/classification.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace streambrain::metrics {

double accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: need at least one class");
  }
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  if (true_label < 0 || predicted_label < 0 ||
      static_cast<std::size_t>(true_label) >= classes_ ||
      static_cast<std::size_t>(predicted_label) >= classes_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(true_label) * classes_ +
            static_cast<std::size_t>(predicted_label)];
  ++total_;
}

void ConfusionMatrix::add_all(const std::vector<int>& predictions,
                              const std::vector<int>& labels) {
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("ConfusionMatrix::add_all: size mismatch");
  }
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    add(labels[i], predictions[i]);
  }
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  if (true_label < 0 || predicted_label < 0 ||
      static_cast<std::size_t>(true_label) >= classes_ ||
      static_cast<std::size_t>(predicted_label) >= classes_) {
    throw std::out_of_range("ConfusionMatrix::count: label out of range");
  }
  return counts_[static_cast<std::size_t>(true_label) * classes_ +
                 static_cast<std::size_t>(predicted_label)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t diagonal = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    diagonal += counts_[c * classes_ + c];
  }
  return static_cast<double>(diagonal) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < classes_; ++t) predicted += counts_[t * classes_ + c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[c * classes_ + c]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual = 0;
  for (std::size_t p = 0; p < classes_; ++p) actual += counts_[c * classes_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[c * classes_ + c]) /
         static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  out << "confusion (rows=true, cols=pred):\n";
  for (std::size_t t = 0; t < classes_; ++t) {
    for (std::size_t p = 0; p < classes_; ++p) {
      out << counts_[t * classes_ + p];
      out << (p + 1 == classes_ ? '\n' : '\t');
    }
  }
  return out.str();
}

double log_loss(const std::vector<double>& scores,
                const std::vector<int>& labels, double eps) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("log_loss: size mismatch");
  }
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double p = std::clamp(scores[i], eps, 1.0 - eps);
    total += labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(scores.size());
}

double expected_calibration_error(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  std::size_t bins) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("calibration: size mismatch");
  }
  if (scores.empty() || bins == 0) return 0.0;
  std::vector<double> bin_score(bins, 0.0);
  std::vector<double> bin_positive(bins, 0.0);
  std::vector<std::size_t> bin_count(bins, 0);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    std::size_t b = static_cast<std::size_t>(
        std::clamp(scores[i], 0.0, 1.0) * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    bin_score[b] += scores[i];
    bin_positive[b] += labels[i] == 1 ? 1.0 : 0.0;
    ++bin_count[b];
  }
  double ece = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) continue;
    const double n = static_cast<double>(bin_count[b]);
    ece += (n / static_cast<double>(scores.size())) *
           std::abs(bin_score[b] / n - bin_positive[b] / n);
  }
  return ece;
}

}  // namespace streambrain::metrics
