#pragma once
// Approximate Median Significance — the metric of the HiggsML Kaggle
// challenge the paper's related-work section discusses. AMS scores a
// selection region rather than a ranking:
//
//   AMS = sqrt( 2 * ( (s + b + b_reg) * ln(1 + s/(b + b_reg)) - s ) )
//
// where s / b are the weighted signal / background counts passing the
// selection and b_reg is a regularization term (10 in the challenge).

#include <cstddef>
#include <vector>

namespace streambrain::metrics {

/// AMS for given selected signal weight `s` and background weight `b`.
double ams(double s, double b, double b_reg = 10.0);

/// Sweep thresholds over `scores` and return the best AMS achievable,
/// with unit event weights. Labels in {0,1} (1 = signal).
struct AmsScan {
  double best_ams = 0.0;
  double best_threshold = 0.0;
};
AmsScan best_ams(const std::vector<double>& scores,
                 const std::vector<int>& labels, double b_reg = 10.0);

}  // namespace streambrain::metrics
