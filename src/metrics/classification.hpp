#pragma once
// Classification quality metrics: accuracy, confusion matrix, precision /
// recall / F1, and log-loss. Labels are integer class ids.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace streambrain::metrics {

/// Fraction of predictions equal to labels. Throws on size mismatch.
double accuracy(const std::vector<int>& predictions,
                const std::vector<int>& labels);

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int true_label, int predicted_label);
  void add_all(const std::vector<int>& predictions,
               const std::vector<int>& labels);

  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t count(int true_label,
                                  int predicted_label) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  [[nodiscard]] double accuracy() const noexcept;
  /// One-vs-rest precision / recall / F1 for a class; 0 when undefined.
  [[nodiscard]] double precision(int cls) const;
  [[nodiscard]] double recall(int cls) const;
  [[nodiscard]] double f1(int cls) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t classes_;
  std::vector<std::size_t> counts_;  // row-major classes_ x classes_
  std::size_t total_ = 0;
};

/// Binary cross-entropy: labels in {0,1}, scores are P(class=1).
/// Scores are clamped to [eps, 1-eps].
double log_loss(const std::vector<double>& scores,
                const std::vector<int>& labels, double eps = 1e-12);

/// Expected calibration error with `bins` equal-width probability bins.
double expected_calibration_error(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  std::size_t bins = 10);

}  // namespace streambrain::metrics
