#pragma once
// ROC curve and Area Under the Curve. The paper reports AUC as its second
// headline metric (76.4% for BCPNN+SGD); this implementation is tie-aware
// (equivalent to the Mann-Whitney U statistic).

#include <cstddef>
#include <vector>

namespace streambrain::metrics {

struct RocPoint {
  double false_positive_rate;
  double true_positive_rate;
  double threshold;
};

/// Full ROC curve, thresholds descending. Labels in {0,1}; higher score
/// means "more likely class 1".
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Tie-aware AUC via the rank-sum formulation. Returns 0.5 when either
/// class is absent (undefined, but benign for sweeps).
double auc(const std::vector<double>& scores, const std::vector<int>& labels);

}  // namespace streambrain::metrics
