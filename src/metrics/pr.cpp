#include "metrics/pr.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace streambrain::metrics {

std::vector<PrPoint> pr_curve(const std::vector<double>& scores,
                              const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("pr_curve: size mismatch");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t positives = 0;
  for (int label : labels) positives += label == 1 ? 1 : 0;

  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  std::size_t selected = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    ++selected;
    if (labels[i] == 1) ++tp;
    const bool boundary =
        k + 1 == order.size() || scores[order[k + 1]] != scores[i];
    if (!boundary) continue;
    curve.push_back(
        {positives ? static_cast<double>(tp) / positives : 0.0,
         static_cast<double>(tp) / static_cast<double>(selected), scores[i]});
  }
  return curve;
}

double average_precision(const std::vector<double>& scores,
                         const std::vector<int>& labels) {
  const auto curve = pr_curve(scores, labels);
  double ap = 0.0;
  double previous_recall = 0.0;
  for (const auto& point : curve) {
    ap += (point.recall - previous_recall) * point.precision;
    previous_recall = point.recall;
  }
  return ap;
}

double brier_score(const std::vector<double>& scores,
                   const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("brier_score: size mismatch");
  }
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double error = scores[i] - static_cast<double>(labels[i]);
    total += error * error;
  }
  return total / static_cast<double>(scores.size());
}

}  // namespace streambrain::metrics
