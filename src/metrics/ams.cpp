#include "metrics/ams.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace streambrain::metrics {

double ams(double s, double b, double b_reg) {
  if (s < 0.0 || b < 0.0) {
    throw std::invalid_argument("ams: counts must be non-negative");
  }
  const double denom = b + b_reg;
  if (denom <= 0.0) return 0.0;
  const double radicand = 2.0 * ((s + denom) * std::log1p(s / denom) - s);
  return radicand > 0.0 ? std::sqrt(radicand) : 0.0;
}

AmsScan best_ams(const std::vector<double>& scores,
                 const std::vector<int>& labels, double b_reg) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("best_ams: size mismatch");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b2) {
    return scores[a] > scores[b2];
  });
  // Walk thresholds from the highest score down, accumulating the selected
  // region; track the best AMS seen.
  AmsScan scan;
  double s = 0.0;
  double b = 0.0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (labels[i] == 1) {
      s += 1.0;
    } else {
      b += 1.0;
    }
    const bool boundary =
        k + 1 == order.size() || scores[order[k + 1]] != scores[i];
    if (!boundary) continue;
    const double value = ams(s, b, b_reg);
    if (value > scan.best_ams) {
      scan.best_ams = value;
      scan.best_threshold = scores[i];
    }
  }
  return scan;
}

}  // namespace streambrain::metrics
