#include "metrics/roc.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace streambrain::metrics {

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_curve: size mismatch");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::size_t positives = 0;
  for (int label : labels) positives += label == 1 ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t i = order[k];
    if (labels[i] == 1) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit a point only at threshold boundaries (handles ties correctly).
    const bool last = k + 1 == order.size();
    if (last || scores[order[k + 1]] != scores[i]) {
      curve.push_back(
          {negatives ? static_cast<double>(fp) / negatives : 0.0,
           positives ? static_cast<double>(tp) / positives : 0.0,
           scores[i]});
    }
  }
  return curve;
}

double auc(const std::vector<double>& scores, const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("auc: size mismatch");
  }
  std::size_t positives = 0;
  for (int label : labels) positives += label == 1 ? 1 : 0;
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum (Mann-Whitney) with midranks for ties.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  double positive_rank_sum = 0.0;
  std::size_t k = 0;
  while (k < order.size()) {
    std::size_t j = k;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[k]]) {
      ++j;
    }
    // Midrank for the tie group [k, j] (1-based ranks).
    const double midrank = 0.5 * (static_cast<double>(k + 1) +
                                  static_cast<double>(j + 1));
    for (std::size_t t = k; t <= j; ++t) {
      if (labels[order[t]] == 1) positive_rank_sum += midrank;
    }
    k = j + 1;
  }
  const double np = static_cast<double>(positives);
  const double nn = static_cast<double>(negatives);
  return (positive_rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

}  // namespace streambrain::metrics
