#include "util/config.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace streambrain::util {

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (const auto* v = std::get_if<long long>(&it->second)) return *v;
  if (const auto* v = std::get_if<double>(&it->second)) {
    return static_cast<long long>(*v);
  }
  return fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (const auto* v = std::get_if<double>(&it->second)) return *v;
  if (const auto* v = std::get_if<long long>(&it->second)) {
    return static_cast<double>(*v);
  }
  return fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (const auto* v = std::get_if<bool>(&it->second)) return *v;
  return fallback;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (const auto* v = std::get_if<std::string>(&it->second)) return *v;
  return fallback;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out << ' ';
    first = false;
    out << key << '=';
    std::visit(
        [&out](const auto& v) {
          if constexpr (std::is_same_v<std::decay_t<decltype(v)>, bool>) {
            out << (v ? "true" : "false");
          } else {
            out << v;
          }
        },
        value);
  }
  return out.str();
}

Config Config::parse(const std::string& text) {
  Config config;
  for (const auto& piece : split(text, ',')) {
    const std::string_view trimmed = trim(piece);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("Config::parse: malformed pair '" +
                                  std::string(trimmed) + "'");
    }
    const std::string key(trim(trimmed.substr(0, eq)));
    const std::string value(trim(trimmed.substr(eq + 1)));
    if (const auto as_int = parse_int(value)) {
      config.set_int(key, *as_int);
    } else if (const auto as_double = parse_double(value)) {
      config.set_double(key, *as_double);
    } else if (value == "true" || value == "false") {
      config.set_bool(key, value == "true");
    } else {
      config.set_string(key, value);
    }
  }
  return config;
}

}  // namespace streambrain::util
