#pragma once
// ASCII table printer used by the benchmark harness to render the paper's
// figures as aligned text tables (paper reference vs measured).

#include <string>
#include <vector>

namespace streambrain::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

  /// Render with box-drawing rules, column-aligned.
  [[nodiscard]] std::string to_string() const;

  /// Render directly to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace streambrain::util
