#include "util/rng.hpp"

#include <cmath>

namespace streambrain::util {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 then correct (Marsaglia-Tsang appendix).
    const double boosted = gamma(shape + 1.0, scale);
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 0.0);
    return boosted * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace streambrain::util
