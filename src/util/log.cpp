#include "util/log.hpp"

#include <chrono>
#include <cstdio>

#include "util/annotated_mutex.hpp"

namespace streambrain::util {

std::atomic<LogLevel> Log::level_{LogLevel::kInfo};

namespace {
sb::Mutex& log_mutex() {
  static sb::Mutex m;
  return m;
}
}  // namespace

void Log::set_level(LogLevel level) noexcept {
  level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return level_.load(std::memory_order_relaxed);
}

const char* Log::level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

void Log::write(LogLevel level, const std::string& message) {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      now.time_since_epoch())
                      .count();
  const double seconds = static_cast<double>(us) * 1e-6;
  const sb::MutexLock lock(log_mutex());
  std::fprintf(stderr, "[%14.6f] [%s] %s\n", seconds, level_name(level),
               message.c_str());
}

}  // namespace streambrain::util
