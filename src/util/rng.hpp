#pragma once
// Deterministic, splittable random number generation.
//
// All stochastic components in the library (data generators, weight
// initialisation, plasticity tie-breaking, HPO samplers) draw from Rng so
// that every experiment is reproducible from a single seed. The generator
// is xoshiro256**, seeded through SplitMix64 per Blackman & Vigna's
// recommendation; `split()` derives statistically independent streams for
// parallel workers.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace streambrain::util {

/// SplitMix64: used for seeding and cheap hash-style mixing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream (for per-thread / per-run use).
  [[nodiscard]] Rng split() noexcept {
    std::uint64_t s = (*this)() ^ 0xA5A5A5A5A5A5A5A5ULL;
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(s);
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang.
  double gamma(double shape, double scale) noexcept;

  /// Sample an index according to (unnormalised, non-negative) weights.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index range stored in `indices`.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace streambrain::util
