#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace streambrain::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buffer(trimmed);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return std::nullopt;
  std::string buffer(trimmed);
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace streambrain::util
