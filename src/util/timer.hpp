#pragma once
// Wall-clock timing utilities used throughout the benchmark harness.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace streambrain::util {

/// Monotonic stopwatch with pause/resume semantics.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  // Bench timings (BENCH_*.json) must be monotonic: a wall-clock step —
  // NTP slew, suspend/resume — must never produce negative or inflated
  // intervals, so the clock choice is a compile-time contract.
  static_assert(Clock::is_steady,
                "Stopwatch requires a monotonic (steady) clock");

  Stopwatch() : start_(Clock::now()) {}

  /// Restart from zero and begin running.
  void reset() {
    accumulated_ = Clock::duration::zero();
    start_ = Clock::now();
    running_ = true;
  }

  void pause() {
    if (running_) {
      accumulated_ += Clock::now() - start_;
      running_ = false;
    }
  }

  void resume() {
    if (!running_) {
      start_ = Clock::now();
      running_ = true;
    }
  }

  [[nodiscard]] double seconds() const {
    auto total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const { return seconds() * 1e6; }

 private:
  Clock::time_point start_;
  Clock::duration accumulated_ = Clock::duration::zero();
  bool running_ = true;
};

/// Logs the elapsed wall time of a scope at destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label, LogLevel level = LogLevel::kDebug)
      : label_(std::move(label)), level_(level) {}

  ~ScopedTimer() {
    SB_LOG(level_) << label_ << " took " << watch_.milliseconds() << " ms";
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] double seconds() const { return watch_.seconds(); }

 private:
  std::string label_;
  LogLevel level_;
  Stopwatch watch_;
};

}  // namespace streambrain::util
