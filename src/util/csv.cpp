#include "util/csv.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace streambrain::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c > 0 ? "," : "") << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c > 0 ? "," : "") << escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void CsvWriter::write(const std::string& path) const {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path());
  }
  std::ofstream file(path);
  if (!file) throw std::runtime_error("CsvWriter: cannot open " + path);
  file << to_string();
  if (!file) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace streambrain::util
