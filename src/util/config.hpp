#pragma once
// Typed key-value configuration store. Used to thread hyper-parameter
// assignments from the HPO module into trainer construction without a
// compile-time dependency between them.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace streambrain::util {

class Config {
 public:
  using Value = std::variant<long long, double, bool, std::string>;

  void set_int(const std::string& key, long long value) { values_[key] = value; }
  void set_double(const std::string& key, double value) { values_[key] = value; }
  void set_bool(const std::string& key, bool value) { values_[key] = value; }
  void set_string(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

  /// Keys in sorted order (deterministic iteration for logging).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// "key=value key=value ..." representation for logs.
  [[nodiscard]] std::string to_string() const;

  /// Parse "k=v,k2=v2" style strings (values inferred: int, double, bool,
  /// else string). Throws std::invalid_argument on malformed pairs.
  static Config parse(const std::string& text);

 private:
  std::map<std::string, Value> values_;
};

}  // namespace streambrain::util
