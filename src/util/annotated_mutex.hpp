#pragma once
// Annotation-capable synchronization primitives. Drop-in wrappers over
// std::mutex / std::condition_variable that carry the Clang Thread
// Safety Analysis attributes, so a locking contract written as
//
//   sb::Mutex mutex_;
//   std::deque<Item> items_ GUARDED_BY(mutex_);
//   void drain_locked() REQUIRES(mutex_);
//
// is enforced by the compiler (CI builds with -Werror=thread-safety)
// instead of by a comment and the TSan interleaving lottery. Off Clang
// the attributes vanish and these classes are zero-overhead forwarding
// shims over the std primitives they wrap.
//
// Waiting convention: CondVar::wait takes the sb::Mutex itself (absl
// style), not a lock object, so the REQUIRES(mutex) contract is
// expressible and checked. Predicate waits are written as explicit
// loops in the caller —
//
//   sb::MutexLock lock(mutex_);
//   while (items_.empty() && !closed_) not_empty_.wait(mutex_);
//
// — because a predicate lambda is analyzed as a separate function that
// does not hold the capability, which would either warn spuriously or
// require a NO_THREAD_SAFETY_ANALYSIS hole exactly where the checking
// matters most.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace streambrain::sb {

class CondVar;

/// std::mutex carrying the `capability` attribute. Lockable directly or
/// (preferably) through the scoped MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped std::mutex, for interop with APIs that demand one
  /// (std::scoped_lock, std::condition_variable_any). Lock state changes
  /// made through it are invisible to the analysis — prefer the
  /// annotated interface.
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for sb::Mutex (the annotated std::lock_guard/unique_lock
/// replacement). Supports early unlock() and re-lock(), which the
/// waiter-gated notify pattern uses to signal outside the critical
/// section.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release early (e.g. to notify a condition variable off the lock).
  void unlock() RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

  /// Re-acquire after an early unlock().
  void lock() ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable paired with sb::Mutex. wait() declares
/// REQUIRES(mutex): the compiler proves every waiter actually holds the
/// lock it is about to release. Re-acquisition on wakeup restores the
/// capability, so the analysis state is unchanged across a wait —
/// guarded reads in the caller's wait loop check out.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mutex` and sleep; re-acquires before returning.
  /// Spurious wakeups happen — always wait in a condition loop.
  void wait(Mutex& mutex) REQUIRES(mutex) {
    // Adopt the caller's hold so std::condition_variable gets the
    // unique_lock it requires; release() hands the hold straight back,
    // keeping the net lock state (and the analysis state) unchanged.
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    (void)lock.release();
  }

  /// Timed wait; returns false when `deadline` passed without a notify
  /// (the caller re-checks its condition either way — a notify and a
  /// timeout can race).
  template <typename Clock, typename Duration>
  [[nodiscard]] bool wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    (void)lock.release();
    return status == std::cv_status::no_timeout;
  }

  template <typename Rep, typename Period>
  [[nodiscard]] bool wait_for(
      Mutex& mutex, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    (void)lock.release();
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace streambrain::sb
