#include "util/cli.hpp"

#include "util/string_util.hpp"

namespace streambrain::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself an option.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> ArgParser::raw(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto value = raw(name);
  return value && !value->empty() ? *value : fallback;
}

long long ArgParser::get_int(const std::string& name,
                             long long fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  const auto parsed = parse_int(*value);
  return parsed ? *parsed : fallback;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  const auto parsed = parse_double(*value);
  return parsed ? *parsed : fallback;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto value = raw(name);
  if (!value) return fallback;
  if (value->empty()) return true;  // bare flag means "on"
  const std::string lowered = to_lower(*value);
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return fallback;
}

}  // namespace streambrain::util
