#pragma once
// Clang Thread Safety Analysis attribute macros — the vocabulary the
// whole concurrency surface uses to state its locking contracts in a
// compiler-checkable form. Under Clang with -Wthread-safety (the CI
// static-analysis job builds with -Werror=thread-safety) every
// GUARDED_BY field access, REQUIRES call, and ACQUIRE/RELEASE pairing
// is verified at compile time; under any other compiler every macro
// expands to nothing, so GCC builds are byte-identical to before the
// annotations existed.
//
// Quick guide (full walkthrough in README "Static analysis &
// concurrency contracts"):
//   CAPABILITY("mutex")   - on a class: instances are lockable things.
//   SCOPED_CAPABILITY     - on a class: RAII object that holds a
//                           capability from constructor to destructor.
//   GUARDED_BY(mu)        - on a field: access requires holding mu.
//   PT_GUARDED_BY(mu)     - on a pointer field: the pointee requires mu.
//   REQUIRES(mu)          - on a function: caller must already hold mu
//                           (the *_locked-method contract).
//   ACQUIRE(mu)/RELEASE(mu) - function acquires/releases mu itself.
//   TRY_ACQUIRE(ok, mu)   - acquires mu iff the return value == ok.
//   EXCLUDES(mu)          - caller must NOT hold mu (the public-method
//                           side of a private REQUIRES contract;
//                           catches self-deadlock at compile time).
//   ACQUIRED_BEFORE/AFTER - global lock ordering; inversions are
//                           diagnosed under -Wthread-safety-beta.
//   ASSERT_CAPABILITY(mu) - runtime-checked claim that mu is held.
//   RETURN_CAPABILITY(mu) - function returns a reference to mu.
//   NO_THREAD_SAFETY_ANALYSIS - escape hatch; every use needs a comment
//                           explaining why the analysis cannot see the
//                           invariant (and what enforces it instead).

#if defined(__clang__) && defined(__has_attribute)
#define SB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) SB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) SB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) SB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  SB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
#endif
