#pragma once
// Lightweight leveled logger. Thread-safe line-at-a-time output; no global
// locks on the hot path when the level is filtered out.

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace streambrain::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. Defaults to kInfo on stderr.
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static LogLevel level() noexcept;

  /// Emit one formatted line (already composed). Thread-safe.
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level) noexcept;

 private:
  /// Atomic because SB_LOG reads it from every thread while tests (and
  /// embedders) call set_level() concurrently — as a plain LogLevel this
  /// was a data race the thread-safety rollout flagged. Relaxed ordering
  /// is enough: the level is an independent filter knob, not a
  /// synchronization point for the messages themselves.
  static std::atomic<LogLevel> level_;
};

namespace detail {

/// Stream-style accumulator that flushes a single log line on destruction.
class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { Log::write(level_, stream_.str()); }

  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace streambrain::util

#define SB_LOG(sb_log_level)                                                 \
  if (::streambrain::util::Log::level() <= (sb_log_level))                   \
  ::streambrain::util::detail::LineLogger(sb_log_level)

#define SB_LOG_TRACE() SB_LOG(::streambrain::util::LogLevel::kTrace)
#define SB_LOG_DEBUG() SB_LOG(::streambrain::util::LogLevel::kDebug)
#define SB_LOG_INFO() SB_LOG(::streambrain::util::LogLevel::kInfo)
#define SB_LOG_WARN() SB_LOG(::streambrain::util::LogLevel::kWarn)
#define SB_LOG_ERROR() SB_LOG(::streambrain::util::LogLevel::kError)
