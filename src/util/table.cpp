#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace streambrain::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch: expected " +
                                std::to_string(headers_.size()) + ", got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  return format("%.*f", precision, value);
}

std::string Table::pct(double fraction, int precision) {
  return format("%.*f%%", precision, fraction * 100.0);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&](char left, char mid, char right) {
    std::string line(1, left);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      line.append(widths[c] + 2, '-');
      line += (c + 1 == widths.size()) ? right : mid;
    }
    return line + "\n";
  };
  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    return line + "\n";
  };

  std::ostringstream out;
  out << rule('+', '+', '+');
  out << render_row(headers_);
  out << rule('+', '+', '+');
  for (const auto& row : rows_) out << render_row(row);
  out << rule('+', '+', '+');
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace streambrain::util
