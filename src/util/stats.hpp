#pragma once
// Numerically stable descriptive statistics (Welford online moments,
// order statistics) used by the benchmark harness and tests.

#include <cstddef>
#include <vector>

namespace streambrain::util {

/// Online mean/variance accumulator (Welford). O(1) space, stable.
class RunningStat {
 public:
  void add(double value) noexcept {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a vector; 0 for empty input.
double mean(const std::vector<double>& values) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(const std::vector<double>& values) noexcept;

/// Median (copies and partially sorts the input).
double median(std::vector<double> values) noexcept;

/// Linear-interpolated quantile, q in [0,1] (type-7, same as NumPy default).
double quantile(std::vector<double> values, double q) noexcept;

/// All k-quantile cut points for `groups` equal-mass groups (e.g. groups=10
/// returns the 9 deciles). Matches the paper's "compute the 10-quantiles".
std::vector<double> quantile_cuts(std::vector<double> values,
                                  std::size_t groups) noexcept;

}  // namespace streambrain::util
