#pragma once
// Small string helpers shared by the CSV loader, CLI parser and table
// printers. No locale dependence; ASCII-only semantics.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace streambrain::util {

/// Split on a single character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Case-sensitive prefix/suffix checks.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Lower-case an ASCII string.
std::string to_lower(std::string_view text);

/// Strict numeric parses; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text) noexcept;
std::optional<long long> parse_int(std::string_view text) noexcept;

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

}  // namespace streambrain::util
