#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace streambrain::util {

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(const std::vector<double>& values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) noexcept {
  if (values.size() < 2) return 0.0;
  RunningStat stat;
  for (double v : values) stat.add(v);
  return stat.stddev();
}

double median(std::vector<double> values) noexcept {
  return quantile(std::move(values), 0.5);
}

double quantile(std::vector<double> values, double q) noexcept {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> quantile_cuts(std::vector<double> values,
                                  std::size_t groups) noexcept {
  std::vector<double> cuts;
  if (groups < 2 || values.empty()) return cuts;
  std::sort(values.begin(), values.end());
  cuts.reserve(groups - 1);
  for (std::size_t g = 1; g < groups; ++g) {
    const double q = static_cast<double>(g) / static_cast<double>(groups);
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    cuts.push_back(values[lo] * (1.0 - frac) + values[hi] * frac);
  }
  return cuts;
}

}  // namespace streambrain::util
