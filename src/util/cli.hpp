#pragma once
// Minimal declarative command-line parser for examples and bench drivers.
// Supports --flag, --key value, and --key=value forms.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace streambrain::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True when --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace streambrain::util
