#pragma once
// One-hot encoding of quantile-binned features — the paper's input
// representation: "The features are then encoded as a one-hot vector of
// size ten, with the component being hot indicating which quantile the
// feature belongs to."
//
// Each original feature becomes one *input hypercolumn* of `bins` units,
// exactly one of which is active; this matches BCPNN's modular input
// assumption (each hypercolumn is a discrete random variable). A
// thermometer variant is provided as an ablation (preserves ordering
// information at the cost of the simplex property).

#include <cstddef>
#include <utility>
#include <vector>

#include "encode/quantile.hpp"
#include "tensor/matrix.hpp"

namespace streambrain::encode {

enum class CodeStyle {
  kOneHot,       // exactly one unit active per hypercolumn
  kThermometer,  // units 0..bin are active
};

class OneHotEncoder {
 public:
  explicit OneHotEncoder(std::size_t bins = 10,
                         CodeStyle style = CodeStyle::kOneHot);

  /// Fit the underlying quantile binner.
  void fit(const tensor::MatrixF& data);

  /// Encode to a dense [rows x (features*bins)] 0/1 matrix.
  [[nodiscard]] tensor::MatrixF transform(const tensor::MatrixF& data) const;

  /// fit + transform in one step.
  [[nodiscard]] tensor::MatrixF fit_transform(const tensor::MatrixF& data);

  [[nodiscard]] bool fitted() const noexcept { return binner_.fitted(); }
  [[nodiscard]] std::size_t bins() const noexcept { return binner_.bins(); }
  [[nodiscard]] std::size_t input_features() const noexcept {
    return binner_.features();
  }
  [[nodiscard]] std::size_t encoded_width() const noexcept {
    return binner_.features() * binner_.bins();
  }
  [[nodiscard]] CodeStyle style() const noexcept { return style_; }
  [[nodiscard]] const QuantileBinner& binner() const noexcept {
    return binner_;
  }

  /// Map an encoded column index back to (feature, bin) — used by the
  /// visualization module to label receptive-field masks.
  [[nodiscard]] std::pair<std::size_t, std::size_t> decode_column(
      std::size_t column) const;

 private:
  QuantileBinner binner_;
  CodeStyle style_;
};

}  // namespace streambrain::encode
