#include "encode/quantile.hpp"

#include <algorithm>
#include <stdexcept>

namespace streambrain::encode {

QuantileBinner::QuantileBinner(std::size_t bins) : bins_(bins) {
  if (bins < 2) {
    throw std::invalid_argument("QuantileBinner: need at least 2 bins");
  }
}

void QuantileBinner::fit(const tensor::MatrixF& data) {
  if (data.rows() == 0) {
    throw std::invalid_argument("QuantileBinner::fit: empty data");
  }
  const std::size_t features = data.cols();
  cuts_.assign(features, {});
  std::vector<float> column(data.rows());
#pragma omp parallel for schedule(static) firstprivate(column)
  for (std::size_t f = 0; f < features; ++f) {
    for (std::size_t r = 0; r < data.rows(); ++r) column[r] = data(r, f);
    std::sort(column.begin(), column.end());
    std::vector<float> cuts;
    cuts.reserve(bins_ - 1);
    for (std::size_t g = 1; g < bins_; ++g) {
      const double q = static_cast<double>(g) / static_cast<double>(bins_);
      const double pos = q * static_cast<double>(column.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(lo + 1, column.size() - 1);
      const double frac = pos - static_cast<double>(lo);
      cuts.push_back(static_cast<float>(column[lo] * (1.0 - frac) +
                                        column[hi] * frac));
    }
    cuts_[f] = std::move(cuts);
  }
}

std::size_t QuantileBinner::bin_of(std::size_t feature, float value) const {
  if (feature >= cuts_.size()) {
    throw std::out_of_range("QuantileBinner::bin_of: feature out of range");
  }
  const auto& cuts = cuts_[feature];
  // First cut strictly greater than value == index of the bin.
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
  return static_cast<std::size_t>(it - cuts.begin());
}

std::vector<std::vector<std::size_t>> QuantileBinner::transform(
    const tensor::MatrixF& data) const {
  if (!fitted()) {
    throw std::logic_error("QuantileBinner::transform before fit");
  }
  if (data.cols() != cuts_.size()) {
    throw std::invalid_argument("QuantileBinner::transform: feature mismatch");
  }
  std::vector<std::vector<std::size_t>> out(data.rows());
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < data.rows(); ++r) {
    auto& row = out[r];
    row.resize(data.cols());
    for (std::size_t f = 0; f < data.cols(); ++f) {
      row[f] = bin_of(f, data(r, f));
    }
  }
  return out;
}

const std::vector<float>& QuantileBinner::cuts(std::size_t feature) const {
  if (feature >= cuts_.size()) {
    throw std::out_of_range("QuantileBinner::cuts: feature out of range");
  }
  return cuts_[feature];
}

}  // namespace streambrain::encode
