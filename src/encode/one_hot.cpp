#include "encode/one_hot.hpp"

#include <stdexcept>

namespace streambrain::encode {

OneHotEncoder::OneHotEncoder(std::size_t bins, CodeStyle style)
    : binner_(bins), style_(style) {}

void OneHotEncoder::fit(const tensor::MatrixF& data) { binner_.fit(data); }

tensor::MatrixF OneHotEncoder::transform(const tensor::MatrixF& data) const {
  if (!fitted()) {
    throw std::logic_error("OneHotEncoder::transform before fit");
  }
  if (data.cols() != binner_.features()) {
    throw std::invalid_argument("OneHotEncoder::transform: feature mismatch");
  }
  const std::size_t bins = binner_.bins();
  tensor::MatrixF encoded(data.rows(), data.cols() * bins, 0.0f);
#pragma omp parallel for schedule(static)
  for (std::size_t r = 0; r < data.rows(); ++r) {
    float* row = encoded.row(r);
    for (std::size_t f = 0; f < data.cols(); ++f) {
      const std::size_t bin = binner_.bin_of(f, data(r, f));
      if (style_ == CodeStyle::kOneHot) {
        row[f * bins + bin] = 1.0f;
      } else {
        for (std::size_t b = 0; b <= bin; ++b) row[f * bins + b] = 1.0f;
      }
    }
  }
  return encoded;
}

tensor::MatrixF OneHotEncoder::fit_transform(const tensor::MatrixF& data) {
  fit(data);
  return transform(data);
}

std::pair<std::size_t, std::size_t> OneHotEncoder::decode_column(
    std::size_t column) const {
  if (column >= encoded_width()) {
    throw std::out_of_range("OneHotEncoder::decode_column");
  }
  return {column / binner_.bins(), column % binner_.bins()};
}

}  // namespace streambrain::encode
