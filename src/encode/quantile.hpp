#pragma once
// Per-feature quantile binning. The paper: "we compute the 10-quantiles
// and split the distribution into ten groups with approximately even
// sizes". QuantileBinner fits the cut points on training data and maps
// raw feature values to bin indices; it is the first half of the one-hot
// input encoding BCPNN consumes.

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace streambrain::encode {

class QuantileBinner {
 public:
  /// `bins` groups per feature (paper uses 10).
  explicit QuantileBinner(std::size_t bins = 10);

  /// Learn per-feature cut points from the rows of `data`.
  void fit(const tensor::MatrixF& data);

  [[nodiscard]] bool fitted() const noexcept { return !cuts_.empty(); }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }
  [[nodiscard]] std::size_t features() const noexcept { return cuts_.size(); }

  /// Bin index in [0, bins) for one value of one feature. Values below the
  /// first cut map to 0; values at or above the last cut map to bins-1.
  [[nodiscard]] std::size_t bin_of(std::size_t feature, float value) const;

  /// Bin all entries; result is [rows x features] of bin indices.
  [[nodiscard]] std::vector<std::vector<std::size_t>> transform(
      const tensor::MatrixF& data) const;

  /// The fitted cut points of one feature (bins-1 ascending values).
  [[nodiscard]] const std::vector<float>& cuts(std::size_t feature) const;

 private:
  std::size_t bins_;
  std::vector<std::vector<float>> cuts_;  // per feature, ascending
};

}  // namespace streambrain::encode
