#include "serve/score_cache.hpp"

#include <cstring>

namespace streambrain::serve {

namespace {

std::string_view row_view(const float* row, std::size_t cols) {
  return {reinterpret_cast<const char*>(row), cols * sizeof(float)};
}

}  // namespace

std::size_t ScoreCache::RowDigest::operator()(
    std::string_view key) const noexcept {
  // FNV-1a (64-bit), folding 8 row bytes per step: hashing is on the
  // cache-hit fast path and must stay well under the model's per-row
  // cost. Rows are float arrays, so the 8-byte tail loop rarely runs.
  std::uint64_t digest = 14695981039346656037ull;
  const char* cursor = key.data();
  std::size_t remaining = key.size();
  while (remaining >= sizeof(std::uint64_t)) {
    std::uint64_t word = 0;
    std::memcpy(&word, cursor, sizeof(word));
    digest = (digest ^ word) * 1099511628211ull;
    cursor += sizeof(word);
    remaining -= sizeof(word);
  }
  while (remaining-- > 0) {
    digest ^= static_cast<unsigned char>(*cursor++);
    digest *= 1099511628211ull;
  }
  return static_cast<std::size_t>(digest);
}

ScoreCache::ScoreCache(std::size_t capacity) : capacity_(capacity) {}

bool ScoreCache::lookup(const float* row, std::size_t cols,
                        std::uint64_t generation, double& score) {
  if (!enabled()) return false;
  const std::string_view key = row_view(row, cols);
  const sb::MutexLock lock(mutex_);
  if (generation != generation_) {
    // A batch pinned to a retired model: its version's scores are gone
    // (epoch-cleared at publish) and the current entries belong to a
    // model it is not running — serve the miss, keep version purity.
    ++stats_.stale_drops;
    ++stats_.misses;
    return false;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  score = it->second->score;
  ++stats_.hits;
  return true;
}

void ScoreCache::insert(const float* row, std::size_t cols,
                        std::uint64_t generation, double score) {
  if (!enabled()) return;
  const std::string_view key = row_view(row, cols);
  const sb::MutexLock lock(mutex_);
  if (generation != generation_) {
    ++stats_.stale_drops;  // straggler batch on a retired model
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->score = score;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{std::string(key), score});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
}

std::uint64_t ScoreCache::generation() const {
  const sb::MutexLock lock(mutex_);
  return generation_;
}

void ScoreCache::set_generation(std::uint64_t generation) {
  const sb::MutexLock lock(mutex_);
  if (generation == generation_) return;
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
  generation_ = generation;
}

ScoreCache::Stats ScoreCache::stats() const {
  const sb::MutexLock lock(mutex_);
  return stats_;
}

std::size_t ScoreCache::size() const {
  const sb::MutexLock lock(mutex_);
  return lru_.size();
}

void ScoreCache::clear() {
  const sb::MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace streambrain::serve
