#include "serve/request_pool.hpp"

#include <utility>

namespace streambrain::serve {

RequestPool::RequestPool(std::size_t max_pooled)
    : core_(std::make_shared<Core>(max_pooled)) {}

std::shared_ptr<ServeRequest> RequestPool::acquire(RequestKind kind) {
  std::unique_ptr<ServeRequest> request;
  {
    const sb::MutexLock lock(core_->mutex);
    if (!core_->free.empty()) {
      request = std::move(core_->free.back());
      core_->free.pop_back();
      ++core_->reused;
    }
  }
  if (!request) request = std::make_unique<ServeRequest>();
  request->prepare(kind);
  return std::shared_ptr<ServeRequest>(request.release(), Recycler{core_});
}

void RequestPool::Recycler::operator()(ServeRequest* request) const noexcept {
  // Drop the (possibly large) input matrix now — only the object and its
  // result-vector capacity are worth keeping warm.
  request->x = tensor::MatrixF();
  try {
    const sb::MutexLock lock(core->mutex);
    if (core->free.size() < core->max_pooled) {
      core->free.emplace_back(request);
      return;
    }
  } catch (...) {
    // fall through to delete
  }
  delete request;
}

std::size_t RequestPool::pooled() const {
  const sb::MutexLock lock(core_->mutex);
  return core_->free.size();
}

std::uint64_t RequestPool::reused() const {
  const sb::MutexLock lock(core_->mutex);
  return core_->reused;
}

}  // namespace streambrain::serve
