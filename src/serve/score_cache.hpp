#pragma once
// LRU score cache for the serving layer, keyed by row digest and gated
// by model generation. Repeated traffic (hot feature vectors, retried
// requests) skips the model entirely; because the cached value is the
// exact double the model produced and keys compare the full row bytes
// (the 64-bit FNV-1a digest is only the hash-table index), a hit is
// bit-identical to a recompute and a digest collision can never alias
// two distinct rows.
//
// Model identity: every cached score belongs to exactly one published
// model generation. set_generation() (called on every hot-swap publish)
// clears the cache in one epoch — the swap-time invalidation — and both
// lookup() and insert() carry the caller's pinned generation:
//   - a lookup whose generation is not the cache's current one misses
//     (an in-flight batch pinned to a retired model must not read the
//     new model's scores);
//   - an insert whose generation is not current is dropped (a straggler
//     batch on the retired model must not poison the fresh cache).
// Net: a cached score can never cross model versions in either
// direction — the stale-serving bug where raw row-byte keys survived a
// swap is structurally gone.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::serve {

/// Thread-safe LRU map from (generation, feature row) -> model score.
/// Capacity 0 disables the cache (lookup always misses, insert is a
/// no-op).
class ScoreCache {
 public:
  explicit ScoreCache(std::size_t capacity);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  /// If `row` (cols floats) is cached for the current generation — and
  /// `generation` IS the current one — write its score and promote it to
  /// most-recently-used. Counts a hit or a miss.
  bool lookup(const float* row, std::size_t cols, std::uint64_t generation,
              double& score) EXCLUDES(mutex_);

  /// Insert/refresh a row's score for `generation`, evicting the
  /// least-recently-used entry when at capacity. Dropped (counted in
  /// stats().stale_drops) when `generation` is not current.
  void insert(const float* row, std::size_t cols, std::uint64_t generation,
              double score) EXCLUDES(mutex_);

  /// The generation whose scores the cache currently holds.
  [[nodiscard]] std::uint64_t generation() const EXCLUDES(mutex_);

  /// Advance to `generation`, clearing every cached score when it
  /// actually changes (the swap-time epoch clear). Moving backwards is
  /// treated the same way — the cache never holds two generations.
  void set_generation(std::uint64_t generation) EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Lookups/inserts refused because the caller's pinned generation
    /// was not the cache's current one (in-flight batches straddling a
    /// hot swap). Stale lookups also count a miss.
    std::uint64_t stale_drops = 0;
    /// Entries invalidated by set_generation() epoch clears.
    std::uint64_t invalidations = 0;
  };

  [[nodiscard]] Stats stats() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear() EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string key;
    double score = 0.0;
  };
  /// Word-wise FNV-1a over the raw row bytes — the digest that buckets
  /// the keys. Lookups hash a zero-copy string_view over the caller's
  /// row instead of allocating a key (the hit path must be far cheaper
  /// than the model, or the cache defeats itself).
  struct RowDigest {
    std::size_t operator()(std::string_view key) const noexcept;
  };

  using LruList = std::list<Entry>;

  const std::size_t capacity_;
  mutable sb::Mutex mutex_;
  /// Single-generation invariant: every entry in lru_ belongs to
  /// generation_; set_generation() clears before advancing.
  std::uint64_t generation_ GUARDED_BY(mutex_) = 1;
  LruList lru_ GUARDED_BY(mutex_);  // front = most recently used
  /// Keys view the owning Entry's bytes (list nodes never move), so each
  /// row's bytes are stored once, not duplicated into the map.
  std::unordered_map<std::string_view, LruList::iterator, RowDigest>
      index_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace streambrain::serve
