#pragma once
// The serving layer's inbound side: one in-flight inference request and
// the bounded MPMC queue that carries requests from client threads to
// the AsyncPredictor's batching dispatcher.
//
// A ServeRequest completes through chunk accounting: the dispatcher may
// split a large request across several micro-batches (and several
// shards), so the request holds a chunk counter and fulfills its
// promise when the last chunk lands. Result rows are written by shard
// workers into disjoint ranges of the request's result vector, which is
// race-free by construction.
//
// The queue is bounded for backpressure: when it is full, push() either
// blocks the client (OverflowPolicy::kBlock) or refuses the request
// (kReject) so overload turns into explicit load-shedding instead of
// unbounded memory growth.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::serve {

enum class RequestKind { kLabels, kScores };

/// The documented admission-control rejection: carried by the future of
/// a request shed because accepted-but-unfulfilled rows already sit at
/// AsyncPredictorOptions::max_inflight_rows. Overload degrades to this
/// fast failure (no queue wait, no model time) instead of unbounded
/// queueing; clients catch it to back off or divert.
class OverloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class OverflowPolicy {
  kBlock,   ///< push() blocks until the queue has room.
  kReject,  ///< push() returns false immediately when full.
};

/// One inference request travelling through the async serving path.
/// Created by AsyncPredictor::submit*, completed by shard workers.
class ServeRequest {
 public:
  tensor::MatrixF x;
  RequestKind kind = RequestKind::kLabels;
  std::chrono::steady_clock::time_point enqueued_at{};

  /// Result storage, sized by the dispatcher; shard workers fill
  /// disjoint row ranges. Only the vector matching `kind` is used.
  std::vector<int> labels;
  std::vector<double> scores;

  [[nodiscard]] std::future<std::vector<int>> labels_future() {
    return labels_promise_.get_future();
  }
  [[nodiscard]] std::future<std::vector<double>> scores_future() {
    return scores_promise_.get_future();
  }

  /// Arm the request for (re)use with `kind`: reconstructs whichever
  /// promise the previous use consumed, clears the failure flag and
  /// chunk counter, and empties the result vectors (keeping their
  /// capacity). Called by RequestPool::acquire, so a recycled request
  /// costs one promise-state allocation instead of a full construction.
  void prepare(RequestKind new_kind);

  /// Size the result vector matching `kind` to x.rows() if it is not
  /// already — called by the dispatcher before a batch that scatters
  /// into row ranges is handed to shard workers (the whole-request
  /// zero-copy path skips it and moves the model's output in directly).
  void ensure_result_storage();

  /// Register `count` more outstanding chunks. The dispatcher arms the
  /// request with one guard chunk before splitting, so the promise can
  /// never fire while chunks are still being created.
  void add_chunks(std::size_t count);

  /// Mark one chunk finished; the last one fulfills the promise with the
  /// accumulated result (unless the request already failed). Returns
  /// true when THIS call retired the final chunk — the request is now
  /// complete, and exactly one caller observes it (the latency-
  /// accounting hook).
  bool complete_chunk();

  /// Fail the request (first failure wins; later chunks still count
  /// down normally but the promise already holds `error`).
  void fail(std::exception_ptr error);

  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

 private:
  /// The promises are NOT mutex-guarded: complete_chunk() settles them
  /// lock-free after winning the final chunk decrement, and fail() under
  /// fail_mutex_ — std::promise's internal shared-state synchronization
  /// plus the first-settle-wins catch blocks arbitrate the race, so no
  /// GUARDED_BY contract can be stated (or needed) here.
  std::promise<std::vector<int>> labels_promise_;
  std::promise<std::vector<double>> scores_promise_;
  std::atomic<std::size_t> chunks_remaining_{0};
  std::atomic<bool> failed_{false};
  sb::Mutex fail_mutex_;  ///< serializes fail() so the first error wins
  /// Which promises gave their shared state away (set_value /
  /// set_exception) — prepare() reconstructs exactly those on reuse.
  /// Atomic (relaxed) because a failing batch and the final completing
  /// chunk of the same request may both mark consumption; the reuse read
  /// is ordered by the shared_ptr refcount release that precedes it.
  std::atomic<bool> labels_consumed_{false};
  std::atomic<bool> scores_consumed_{false};
};

/// Bounded MPMC queue of requests with close/interrupt support for
/// clean shutdown and explicit flushes.
class RequestQueue {
 public:
  RequestQueue(std::size_t capacity, OverflowPolicy policy);

  /// Enqueue. Returns false when the queue is full under kReject; blocks
  /// until room under kBlock. Throws std::runtime_error after close().
  bool push(std::shared_ptr<ServeRequest> request) EXCLUDES(mutex_);

  /// Dequeue, blocking until an item, an interrupt(), or close()-drained.
  /// Returns nullptr in the latter two cases.
  [[nodiscard]] std::shared_ptr<ServeRequest> pop() EXCLUDES(mutex_);

  /// Dequeue with a deadline; nullptr on timeout/interrupt/drained.
  [[nodiscard]] std::shared_ptr<ServeRequest> pop_until(
      std::chrono::steady_clock::time_point deadline) EXCLUDES(mutex_);

  /// Wake every blocked pop() once (each returns nullptr). Used by
  /// flush(): the dispatcher re-evaluates its open batch immediately.
  void interrupt() EXCLUDES(mutex_);

  /// Stop accepting pushes. Queued items still drain through pop().
  void close() EXCLUDES(mutex_);

  [[nodiscard]] bool closed() const EXCLUDES(mutex_);
  [[nodiscard]] bool drained() const EXCLUDES(mutex_);  ///< closed and empty
  [[nodiscard]] bool empty() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t rejected() const EXCLUDES(mutex_);  ///< kReject refusals

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;

  mutable sb::Mutex mutex_;
  sb::CondVar not_empty_;
  sb::CondVar not_full_;
  std::deque<std::shared_ptr<ServeRequest>> items_ GUARDED_BY(mutex_);
  std::size_t interrupts_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
  /// Waiter counts gate the per-push/per-pop notifies: with nobody
  /// blocked (the dispatcher keeping up, no kBlock submitter stalled),
  /// the hot path skips the condition-variable call entirely instead of
  /// broadcasting into the void once per request.
  std::size_t pop_waiters_ GUARDED_BY(mutex_) = 0;
  std::size_t push_waiters_ GUARDED_BY(mutex_) = 0;
};

}  // namespace streambrain::serve
