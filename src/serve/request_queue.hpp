#pragma once
// The serving layer's inbound side: one in-flight inference request and
// the bounded MPMC queue that carries requests from client threads to
// the AsyncPredictor's batching dispatcher.
//
// A ServeRequest completes through chunk accounting: the dispatcher may
// split a large request across several micro-batches (and several
// shards), so the request holds a chunk counter and fulfills its
// promise when the last chunk lands. Result rows are written by shard
// workers into disjoint ranges of the request's result vector, which is
// race-free by construction.
//
// The queue is bounded for backpressure: when it is full, push() either
// blocks the client (OverflowPolicy::kBlock) or refuses the request
// (kReject) so overload turns into explicit load-shedding instead of
// unbounded memory growth.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/matrix.hpp"

namespace streambrain::serve {

enum class RequestKind { kLabels, kScores };

enum class OverflowPolicy {
  kBlock,   ///< push() blocks until the queue has room.
  kReject,  ///< push() returns false immediately when full.
};

/// One inference request travelling through the async serving path.
/// Created by AsyncPredictor::submit*, completed by shard workers.
class ServeRequest {
 public:
  tensor::MatrixF x;
  RequestKind kind = RequestKind::kLabels;
  std::chrono::steady_clock::time_point enqueued_at{};

  /// Result storage, sized by the dispatcher; shard workers fill
  /// disjoint row ranges. Only the vector matching `kind` is used.
  std::vector<int> labels;
  std::vector<double> scores;

  [[nodiscard]] std::future<std::vector<int>> labels_future() {
    return labels_promise_.get_future();
  }
  [[nodiscard]] std::future<std::vector<double>> scores_future() {
    return scores_promise_.get_future();
  }

  /// Register `count` more outstanding chunks. The dispatcher arms the
  /// request with one guard chunk before splitting, so the promise can
  /// never fire while chunks are still being created.
  void add_chunks(std::size_t count);

  /// Mark one chunk finished; the last one fulfills the promise with the
  /// accumulated result (unless the request already failed). Returns
  /// true when THIS call retired the final chunk — the request is now
  /// complete, and exactly one caller observes it (the latency-
  /// accounting hook).
  bool complete_chunk();

  /// Fail the request (first failure wins; later chunks still count
  /// down normally but the promise already holds `error`).
  void fail(std::exception_ptr error);

  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

 private:
  std::promise<std::vector<int>> labels_promise_;
  std::promise<std::vector<double>> scores_promise_;
  std::atomic<std::size_t> chunks_remaining_{0};
  std::atomic<bool> failed_{false};
  std::mutex fail_mutex_;
};

/// Bounded MPMC queue of requests with close/interrupt support for
/// clean shutdown and explicit flushes.
class RequestQueue {
 public:
  RequestQueue(std::size_t capacity, OverflowPolicy policy);

  /// Enqueue. Returns false when the queue is full under kReject; blocks
  /// until room under kBlock. Throws std::runtime_error after close().
  bool push(std::shared_ptr<ServeRequest> request);

  /// Dequeue, blocking until an item, an interrupt(), or close()-drained.
  /// Returns nullptr in the latter two cases.
  [[nodiscard]] std::shared_ptr<ServeRequest> pop();

  /// Dequeue with a deadline; nullptr on timeout/interrupt/drained.
  [[nodiscard]] std::shared_ptr<ServeRequest> pop_until(
      std::chrono::steady_clock::time_point deadline);

  /// Wake every blocked pop() once (each returns nullptr). Used by
  /// flush(): the dispatcher re-evaluates its open batch immediately.
  void interrupt();

  /// Stop accepting pushes. Queued items still drain through pop().
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] bool drained() const;  ///< closed and empty
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t rejected() const;  ///< kReject refusals

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::shared_ptr<ServeRequest>> items_;
  std::size_t interrupts_ = 0;
  std::uint64_t rejected_ = 0;
  bool closed_ = false;
};

}  // namespace streambrain::serve
