#include "serve/request_queue.hpp"

#include <stdexcept>
#include <utility>

namespace streambrain::serve {

// --- ServeRequest -----------------------------------------------------------

void ServeRequest::prepare(RequestKind new_kind) {
  // Only the consumed promise needs a fresh shared state; the other one
  // (if any) was never armed and is still usable. A recycled request
  // therefore costs one allocation here instead of two promise states
  // plus the object itself.
  if (labels_consumed_.load(std::memory_order_relaxed)) {
    labels_promise_ = std::promise<std::vector<int>>();
    labels_consumed_.store(false, std::memory_order_relaxed);
  }
  if (scores_consumed_.load(std::memory_order_relaxed)) {
    scores_promise_ = std::promise<std::vector<double>>();
    scores_consumed_.store(false, std::memory_order_relaxed);
  }
  kind = new_kind;
  chunks_remaining_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  labels.clear();
  scores.clear();
}

void ServeRequest::ensure_result_storage() {
  if (kind == RequestKind::kLabels) {
    if (labels.size() != x.rows()) labels.assign(x.rows(), 0);
  } else {
    if (scores.size() != x.rows()) scores.assign(x.rows(), 0.0);
  }
}

void ServeRequest::add_chunks(std::size_t count) {
  chunks_remaining_.fetch_add(count, std::memory_order_acq_rel);
}

bool ServeRequest::complete_chunk() {
  // acq_rel: the release publishes this chunk's result rows, the acquire
  // on the final decrement makes every chunk's rows visible before the
  // promise is fulfilled.
  if (chunks_remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return false;
  }
  if (!failed_.load(std::memory_order_acquire)) {
    // First settle wins: a concurrent fail() from another batch of the
    // same request may have beaten us to the shared state.
    try {
      if (kind == RequestKind::kLabels) {
        labels_promise_.set_value(std::move(labels));
      } else {
        scores_promise_.set_value(std::move(scores));
      }
    } catch (const std::future_error&) {
    }
    if (kind == RequestKind::kLabels) {
      labels_consumed_.store(true, std::memory_order_relaxed);
    } else {
      scores_consumed_.store(true, std::memory_order_relaxed);
    }
  }
  return true;
}

void ServeRequest::fail(std::exception_ptr error) {
  const sb::MutexLock lock(fail_mutex_);
  if (failed_.load(std::memory_order_acquire)) return;
  failed_.store(true, std::memory_order_release);
  try {
    if (kind == RequestKind::kLabels) {
      labels_promise_.set_exception(std::move(error));
    } else {
      scores_promise_.set_exception(std::move(error));
    }
  } catch (const std::future_error&) {
    // A racing complete_chunk() settled first; the client gets the value.
  }
  if (kind == RequestKind::kLabels) {
    labels_consumed_.store(true, std::memory_order_relaxed);
  } else {
    scores_consumed_.store(true, std::memory_order_relaxed);
  }
}

// --- RequestQueue -----------------------------------------------------------

RequestQueue::RequestQueue(std::size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be > 0");
  }
}

bool RequestQueue::push(std::shared_ptr<ServeRequest> request) {
  sb::MutexLock lock(mutex_);
  if (closed_) throw std::runtime_error("RequestQueue: push after close");
  if (items_.size() >= capacity_) {
    if (policy_ == OverflowPolicy::kReject) {
      ++rejected_;
      return false;
    }
    ++push_waiters_;
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(mutex_);
    --push_waiters_;
    if (closed_) throw std::runtime_error("RequestQueue: push after close");
  }
  items_.push_back(std::move(request));
  // Targeted wakeup: signal only when a pop() is actually blocked. With
  // the dispatcher keeping up this skips a futex call per request.
  const bool wake = pop_waiters_ > 0;
  lock.unlock();
  if (wake) not_empty_.notify_one();
  return true;
}

std::shared_ptr<ServeRequest> RequestQueue::pop() {
  return pop_until(std::chrono::steady_clock::time_point::max());
}

std::shared_ptr<ServeRequest> RequestQueue::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  sb::MutexLock lock(mutex_);
  if (items_.empty() && !closed_ && interrupts_ == 0) {
    ++pop_waiters_;
    if (deadline == std::chrono::steady_clock::time_point::max()) {
      while (items_.empty() && !closed_ && interrupts_ == 0) {
        not_empty_.wait(mutex_);
      }
    } else {
      bool timed_out = false;
      while (items_.empty() && !closed_ && interrupts_ == 0 && !timed_out) {
        timed_out = !not_empty_.wait_until(mutex_, deadline);
      }
      if (items_.empty() && !closed_ && interrupts_ == 0) {
        --pop_waiters_;
        return nullptr;  // timeout
      }
    }
    --pop_waiters_;
  }
  if (interrupts_ > 0 && items_.empty()) {
    --interrupts_;
    return nullptr;
  }
  if (items_.empty()) return nullptr;  // closed and drained
  std::shared_ptr<ServeRequest> request = std::move(items_.front());
  items_.pop_front();
  // Only a kBlock submitter stalled on a full queue needs the signal.
  const bool wake = push_waiters_ > 0;
  lock.unlock();
  if (wake) not_full_.notify_one();
  return request;
}

void RequestQueue::interrupt() {
  {
    const sb::MutexLock lock(mutex_);
    ++interrupts_;
  }
  not_empty_.notify_all();
}

void RequestQueue::close() {
  {
    const sb::MutexLock lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  const sb::MutexLock lock(mutex_);
  return closed_;
}

bool RequestQueue::drained() const {
  const sb::MutexLock lock(mutex_);
  return closed_ && items_.empty();
}

bool RequestQueue::empty() const {
  const sb::MutexLock lock(mutex_);
  return items_.empty();
}

std::size_t RequestQueue::size() const {
  const sb::MutexLock lock(mutex_);
  return items_.size();
}

std::uint64_t RequestQueue::rejected() const {
  const sb::MutexLock lock(mutex_);
  return rejected_;
}

}  // namespace streambrain::serve
