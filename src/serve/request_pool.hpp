#pragma once
// Freelist recycler for ServeRequest objects — the fix for the async
// path's per-request allocation churn. A fresh ServeRequest costs the
// object itself plus TWO std::promise shared states (labels and scores,
// even though each request uses exactly one); at serving rates that
// dominated the dispatch overhead the mutex Predictor never pays. A
// recycled request costs one promise reconstruction (the one the
// previous use consumed) and keeps its result-vector capacity.
//
// Lifetime: acquire() hands out a shared_ptr whose deleter returns the
// object to the pool. The freelist core is itself shared with every
// deleter, so a request released late (e.g. by a thread-pool closure
// destroyed after the owning AsyncPredictor) recycles into a core that
// simply dies with its last holder — never a dangling pool pointer.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/request_queue.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::serve {

class RequestPool {
 public:
  /// `max_pooled` caps the freelist so a traffic spike cannot pin an
  /// unbounded number of idle request objects.
  explicit RequestPool(std::size_t max_pooled = 1024);

  /// A request armed for `kind` (fresh promises where needed, counters
  /// and result vectors reset); recycled from the freelist when one is
  /// available, newly allocated otherwise.
  [[nodiscard]] std::shared_ptr<ServeRequest> acquire(RequestKind kind);

  [[nodiscard]] std::size_t pooled() const;   ///< free objects held
  [[nodiscard]] std::uint64_t reused() const; ///< acquisitions served from the freelist

 private:
  struct Core {
    explicit Core(std::size_t cap) : max_pooled(cap) {}
    sb::Mutex mutex;
    std::vector<std::unique_ptr<ServeRequest>> free GUARDED_BY(mutex);
    const std::size_t max_pooled;
    std::uint64_t reused GUARDED_BY(mutex) = 0;
  };

  struct Recycler {
    std::shared_ptr<Core> core;
    void operator()(ServeRequest* request) const noexcept;
  };

  std::shared_ptr<Core> core_;
};

}  // namespace streambrain::serve
