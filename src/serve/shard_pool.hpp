#pragma once
// A pool of read-only model replicas ("shards") for concurrent serving,
// with RCU-style versioned rotation. The mutex-serialized Predictor runs
// every batch on one model object; a ShardPool instead clones the
// trained model N times via the checkpoint round-trip
// (core::clone_model), so N batches run truly concurrently — one per
// replica — with zero shared mutable state between them. Replicas
// predict bit-identically to the primary.
//
// Shards are handed out as RAII leases: acquire() blocks until a
// replica of the CURRENT version is free, which doubles as natural
// backpressure on the batch dispatcher (at most N batches in flight).
//
// Hot swap (publish): a new immutable replica set becomes the current
// ModelVersion under the pool mutex — reader-side RCU semantics without
// ever blocking serving:
//   - leases taken before the publish keep serving the version they
//     pinned (a micro-batch can never mix model versions);
//   - leases taken after the publish get the new version (acquire
//     waiters re-check the current version on wakeup, so a saturated
//     pool rolls over the moment the swap lands);
//   - a retired version is destroyed when its last lease drops — the
//     lease's shared ownership of the version IS the grace period.
// The replica count is fixed at construction; publish() preserves it
// (per-shard serving scratch is sized once against it).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/estimator.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::serve {

class ShardPool {
 public:
  /// Clone `primary` into `shards` independent replicas (generation 1).
  /// shards == 1 serves through `primary` directly (no clone); more
  /// shards require a core::Model (cloned in-memory via the checkpoint
  /// round-trip) — for other estimator types, build the replicas
  /// yourself and use the adopting constructor.
  ShardPool(std::shared_ptr<Estimator> primary, std::size_t shards);

  /// Adopt pre-built replicas (for estimators that cannot checkpoint —
  /// the caller asserts they are equivalent and thread-compatible).
  explicit ShardPool(std::vector<std::shared_ptr<Estimator>> replicas);

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

 private:
  /// One published model generation: a monotonic id plus an immutable
  /// replica set. `free` (the per-version stack of idle shard indices)
  /// is guarded by the owning pool's mutex_ — it lives here rather than
  /// on the pool so a retired version's releases cannot collide with the
  /// current version's free list. Destroyed (replicas and all) when the
  /// pool has moved on AND the last lease into it drops.
  struct ModelVersion {
    std::uint64_t generation = 0;
    std::vector<std::shared_ptr<Estimator>> replicas;
    std::vector<std::size_t> free;  // guarded by the pool's mutex_
    /// Live-version gauge shared with the pool (decremented on destroy)
    /// — lets tests and operators observe retirement actually happening.
    std::shared_ptr<std::atomic<std::uint64_t>> live_gauge;
    ~ModelVersion();
  };

 public:
  /// Exclusive RAII hold on one replica of one version; releases (and
  /// wakes a waiting acquire) on destruction. The lease shares ownership
  /// of its ModelVersion, so the replica it points at cannot be retired
  /// mid-use — this is the only way to reach a replica.
  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] Estimator& model() const noexcept { return *model_; }
    [[nodiscard]] std::size_t shard() const noexcept { return shard_; }
    /// The model generation this lease pinned at acquire time.
    [[nodiscard]] std::uint64_t generation() const noexcept {
      return version_->generation;
    }

   private:
    friend class ShardPool;
    Lease(ShardPool* pool, std::shared_ptr<ModelVersion> version,
          std::size_t shard) noexcept
        : pool_(pool),
          version_(std::move(version)),
          shard_(shard),
          model_(version_->replicas[shard].get()) {}

    ShardPool* pool_;
    std::shared_ptr<ModelVersion> version_;
    std::size_t shard_;
    Estimator* model_;
  };

  /// Block until a replica of the current version is free and lease it.
  /// A publish() that lands mid-wait redirects the waiter to the new
  /// version (whose replicas are all free).
  [[nodiscard]] Lease acquire() EXCLUDES(mutex_);

  /// Block until the specific shard `shard` of the current version is
  /// free and lease it. Verification access (shard-equivalence tests)
  /// — unlike the raw reference this used to be, the lease pins both
  /// the replica and its version for the caller's whole use.
  [[nodiscard]] Lease acquire_shard(std::size_t shard) EXCLUDES(mutex_);

  /// Publish a new model generation cloned from `primary` (same cloning
  /// contract as the constructor: shard count > 1 requires a
  /// checkpointable core::Model). Cloning runs outside the pool lock —
  /// serving proceeds on the old version throughout — and the swap
  /// itself is one pointer exchange. Returns the new generation.
  std::uint64_t publish(std::shared_ptr<Estimator> primary) EXCLUDES(mutex_);

  /// Publish pre-built replicas (adopting-constructor counterpart).
  /// Must match the pool's fixed shard count.
  std::uint64_t publish(std::vector<std::shared_ptr<Estimator>> replicas)
      EXCLUDES(mutex_);

  /// Replicas of the current version not currently leased. A snapshot —
  /// but with a single acquiring thread (the batch dispatcher) a nonzero
  /// result guarantees its next acquire() will not block, which is what
  /// the adaptive batcher's "is a shard idle right now" check needs.
  [[nodiscard]] std::size_t free_count() const EXCLUDES(mutex_);

  /// Fixed replica count (identical across every published version).
  [[nodiscard]] std::size_t size() const noexcept { return shard_count_; }

  /// Generation of the current version (starts at 1, bumped by publish).
  [[nodiscard]] std::uint64_t generation() const EXCLUDES(mutex_);

  /// Versions still alive: the current one plus any retired version a
  /// lease is still pinning. Returns to 1 once every pre-swap batch has
  /// finished — the observable form of "retired versions are destroyed
  /// when their last lease drops".
  [[nodiscard]] std::uint64_t live_versions() const noexcept {
    return live_gauge_->load(std::memory_order_acquire);
  }

 private:
  void release(ModelVersion& version, std::size_t shard) EXCLUDES(mutex_);
  std::uint64_t install(std::vector<std::shared_ptr<Estimator>> replicas)
      EXCLUDES(mutex_);
  [[nodiscard]] static std::shared_ptr<ModelVersion> make_version(
      std::uint64_t generation,
      std::vector<std::shared_ptr<Estimator>> replicas,
      const std::shared_ptr<std::atomic<std::uint64_t>>& gauge);

  /// Fixed at construction; every ModelVersion carries exactly this many
  /// replicas (per-shard scratch in the serving layer is sized once).
  std::size_t shard_count_ = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> live_gauge_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);

  mutable sb::Mutex mutex_;
  sb::CondVar free_cv_;
  /// The RCU pointer: swapped wholesale by publish(), never mutated.
  std::shared_ptr<ModelVersion> current_ GUARDED_BY(mutex_);
  /// Acquires blocked; gates the release/publish notify.
  std::size_t waiters_ GUARDED_BY(mutex_) = 0;
};

/// Clone a trained core::Model estimator through the in-memory
/// checkpoint round-trip. Throws std::invalid_argument for estimator
/// types that cannot be cloned this way.
[[nodiscard]] std::shared_ptr<Estimator> clone_estimator(
    const std::shared_ptr<Estimator>& primary);

}  // namespace streambrain::serve
