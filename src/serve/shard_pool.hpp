#pragma once
// A pool of read-only model replicas ("shards") for concurrent serving.
// The mutex-serialized Predictor runs every batch on one model object;
// a ShardPool instead clones the trained model N times via the
// checkpoint round-trip (core::clone_model), so N batches run truly
// concurrently — one per replica — with zero shared mutable state
// between them. Replicas predict bit-identically to the primary.
//
// Shards are handed out as RAII leases: acquire() blocks until a
// replica is free, which doubles as natural backpressure on the batch
// dispatcher (at most N batches in flight).

#include <cstddef>
#include <memory>
#include <vector>

#include "api/estimator.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::serve {

class ShardPool {
 public:
  /// Clone `primary` into `shards` independent replicas. shards == 1
  /// serves through `primary` directly (no clone); more shards require a
  /// core::Model (cloned in-memory via the checkpoint round-trip) — for
  /// other estimator types, build the replicas yourself and use the
  /// adopting constructor.
  ShardPool(std::shared_ptr<Estimator> primary, std::size_t shards);

  /// Adopt pre-built replicas (for estimators that cannot checkpoint —
  /// the caller asserts they are equivalent and thread-compatible).
  explicit ShardPool(std::vector<std::shared_ptr<Estimator>> replicas);

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Exclusive RAII hold on one replica; releases (and wakes a waiting
  /// acquire) on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] Estimator& model() const noexcept { return *model_; }
    [[nodiscard]] std::size_t shard() const noexcept { return shard_; }

   private:
    friend class ShardPool;
    Lease(ShardPool* pool, std::size_t shard, Estimator* model) noexcept
        : pool_(pool), shard_(shard), model_(model) {}

    ShardPool* pool_;
    std::size_t shard_;
    Estimator* model_;
  };

  /// Block until a replica is free and lease it.
  [[nodiscard]] Lease acquire() EXCLUDES(mutex_);

  /// Replicas not currently leased. A snapshot — but with a single
  /// acquiring thread (the batch dispatcher) a nonzero result guarantees
  /// its next acquire() will not block, which is what the adaptive
  /// batcher's "is a shard idle right now" check needs.
  [[nodiscard]] std::size_t free_count() const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }

  /// Replica access for verification (e.g. shard-equivalence tests).
  /// The caller must not run it concurrently with serving traffic.
  [[nodiscard]] Estimator& replica(std::size_t shard) {
    return *replicas_.at(shard);
  }

 private:
  void release(std::size_t shard) EXCLUDES(mutex_);

  /// Written only during construction, then read-only: leases hand out
  /// raw replica pointers concurrently, so this vector must never change
  /// while the pool is live (the RCU hot-swap on the roadmap will
  /// replace it wholesale, not mutate it).
  std::vector<std::shared_ptr<Estimator>> replicas_;
  mutable sb::Mutex mutex_;
  sb::CondVar free_cv_;
  /// Stack of free shard indices.
  std::vector<std::size_t> free_ GUARDED_BY(mutex_);
  /// Acquires blocked; gates the release notify.
  std::size_t waiters_ GUARDED_BY(mutex_) = 0;
};

/// Clone a trained core::Model estimator through the in-memory
/// checkpoint round-trip. Throws std::invalid_argument for estimator
/// types that cannot be cloned this way.
[[nodiscard]] std::shared_ptr<Estimator> clone_estimator(
    const std::shared_ptr<Estimator>& primary);

}  // namespace streambrain::serve
