#include "serve/shard_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/model.hpp"
#include "core/serialization.hpp"

namespace streambrain::serve {

std::shared_ptr<Estimator> clone_estimator(
    const std::shared_ptr<Estimator>& primary) {
  if (!primary) throw std::invalid_argument("clone_estimator: null model");
  if (const auto* model = dynamic_cast<const core::Model*>(primary.get())) {
    return std::make_shared<core::Model>(core::clone_model(*model));
  }
  throw std::invalid_argument(
      "clone_estimator: '" + primary->name() +
      "' cannot be replicated via the checkpoint round-trip; construct "
      "the replicas yourself and use ShardPool's adopting constructor");
}

namespace {

/// Replica set for one generation: `primary` serves shard 0, clones fill
/// the rest. Runs outside any pool lock — this is the expensive part of
/// a publish and must never stall serving.
std::vector<std::shared_ptr<Estimator>> build_replicas(
    std::shared_ptr<Estimator> primary, std::size_t shards) {
  if (!primary) throw std::invalid_argument("ShardPool: null model");
  if (shards == 0) throw std::invalid_argument("ShardPool: shards must be > 0");
  std::vector<std::shared_ptr<Estimator>> replicas;
  replicas.reserve(shards);
  replicas.push_back(std::move(primary));
  for (std::size_t s = 1; s < shards; ++s) {
    replicas.push_back(clone_estimator(replicas.front()));
  }
  return replicas;
}

void validate_replicas(
    const std::vector<std::shared_ptr<Estimator>>& replicas) {
  if (replicas.empty()) {
    throw std::invalid_argument("ShardPool: no replicas");
  }
  for (const auto& replica : replicas) {
    if (!replica) throw std::invalid_argument("ShardPool: null replica");
  }
}

}  // namespace

ShardPool::ModelVersion::~ModelVersion() {
  if (live_gauge) live_gauge->fetch_sub(1, std::memory_order_acq_rel);
}

std::shared_ptr<ShardPool::ModelVersion> ShardPool::make_version(
    std::uint64_t generation, std::vector<std::shared_ptr<Estimator>> replicas,
    const std::shared_ptr<std::atomic<std::uint64_t>>& gauge) {
  auto version = std::make_shared<ModelVersion>();
  version->generation = generation;
  version->replicas = std::move(replicas);
  version->free.reserve(version->replicas.size());
  for (std::size_t s = 0; s < version->replicas.size(); ++s) {
    version->free.push_back(version->replicas.size() - 1 - s);
  }
  version->live_gauge = gauge;
  gauge->fetch_add(1, std::memory_order_acq_rel);
  return version;
}

ShardPool::ShardPool(std::shared_ptr<Estimator> primary, std::size_t shards) {
  std::vector<std::shared_ptr<Estimator>> replicas =
      build_replicas(std::move(primary), shards);
  shard_count_ = replicas.size();
  const sb::MutexLock lock(mutex_);
  current_ = make_version(1, std::move(replicas), live_gauge_);
}

ShardPool::ShardPool(std::vector<std::shared_ptr<Estimator>> replicas) {
  validate_replicas(replicas);
  shard_count_ = replicas.size();
  const sb::MutexLock lock(mutex_);
  current_ = make_version(1, std::move(replicas), live_gauge_);
}

ShardPool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      version_(std::move(other.version_)),
      shard_(other.shard_),
      model_(other.model_) {}

ShardPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(*version_, shard_);
  // version_ drops after release: a retired version's last lease
  // destroys it here, replicas and all.
}

ShardPool::Lease ShardPool::acquire() {
  const sb::MutexLock lock(mutex_);
  // Re-read current_ after every wakeup: a publish() swaps the version
  // mid-wait and the waiter must lease from the NEW (all-free) set, not
  // keep watching the retired one.
  while (current_->free.empty()) {
    ++waiters_;
    free_cv_.wait(mutex_);
    --waiters_;
  }
  const std::size_t shard = current_->free.back();
  current_->free.pop_back();
  return Lease(this, current_, shard);
}

ShardPool::Lease ShardPool::acquire_shard(std::size_t shard) {
  if (shard >= shard_count_) {
    throw std::out_of_range("ShardPool::acquire_shard: no such shard");
  }
  const sb::MutexLock lock(mutex_);
  for (;;) {
    auto& free = current_->free;
    const auto it = std::find(free.begin(), free.end(), shard);
    if (it != free.end()) {
      free.erase(it);
      return Lease(this, current_, shard);
    }
    ++waiters_;
    free_cv_.wait(mutex_);
    --waiters_;
  }
}

std::uint64_t ShardPool::publish(std::shared_ptr<Estimator> primary) {
  return install(build_replicas(std::move(primary), shard_count_));
}

std::uint64_t ShardPool::publish(
    std::vector<std::shared_ptr<Estimator>> replicas) {
  validate_replicas(replicas);
  if (replicas.size() != shard_count_) {
    throw std::invalid_argument(
        "ShardPool::publish: replica count must match the pool's fixed "
        "shard count");
  }
  return install(std::move(replicas));
}

std::uint64_t ShardPool::install(
    std::vector<std::shared_ptr<Estimator>> replicas) {
  std::shared_ptr<ModelVersion> retired;
  std::uint64_t generation = 0;
  bool wake = false;
  {
    const sb::MutexLock lock(mutex_);
    generation = current_->generation + 1;
    retired = std::move(current_);
    current_ = make_version(generation, std::move(replicas), live_gauge_);
    // Every waiter was watching a now-retired free list; all of the new
    // version's replicas are free, so wake them all to re-check.
    wake = waiters_ > 0;
  }
  if (wake) free_cv_.notify_all();
  // `retired` drops here, outside the lock: if no lease pins it, the old
  // replica set is destroyed on the publisher's thread, not a server's.
  return generation;
}

std::size_t ShardPool::free_count() const {
  const sb::MutexLock lock(mutex_);
  return current_->free.size();
}

std::uint64_t ShardPool::generation() const {
  const sb::MutexLock lock(mutex_);
  return current_->generation;
}

void ShardPool::release(ModelVersion& version, std::size_t shard) {
  bool wake;
  {
    const sb::MutexLock lock(mutex_);
    version.free.push_back(shard);
    // Releases outnumber blocked acquires except at saturation; skip the
    // futex call when nobody is waiting (one release per served batch).
    // A release into a retired version frees nothing a waiter could
    // lease, so it never signals.
    wake = waiters_ > 0 && &version == current_.get();
  }
  // notify_all, not _one: acquire_shard() waiters are shard-specific, so
  // a single wakeup could land on a waiter the freed shard cannot serve
  // while the right one keeps sleeping.
  if (wake) free_cv_.notify_all();
}

}  // namespace streambrain::serve
