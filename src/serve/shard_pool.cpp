#include "serve/shard_pool.hpp"

#include <stdexcept>
#include <utility>

#include "core/model.hpp"
#include "core/serialization.hpp"

namespace streambrain::serve {

std::shared_ptr<Estimator> clone_estimator(
    const std::shared_ptr<Estimator>& primary) {
  if (!primary) throw std::invalid_argument("clone_estimator: null model");
  if (const auto* model = dynamic_cast<const core::Model*>(primary.get())) {
    return std::make_shared<core::Model>(core::clone_model(*model));
  }
  throw std::invalid_argument(
      "clone_estimator: '" + primary->name() +
      "' cannot be replicated via the checkpoint round-trip; construct "
      "the replicas yourself and use ShardPool's adopting constructor");
}

ShardPool::ShardPool(std::shared_ptr<Estimator> primary, std::size_t shards) {
  if (!primary) throw std::invalid_argument("ShardPool: null model");
  if (shards == 0) throw std::invalid_argument("ShardPool: shards must be > 0");
  replicas_.reserve(shards);
  replicas_.push_back(std::move(primary));
  for (std::size_t s = 1; s < shards; ++s) {
    replicas_.push_back(clone_estimator(replicas_.front()));
  }
  free_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) free_.push_back(shards - 1 - s);
}

ShardPool::ShardPool(std::vector<std::shared_ptr<Estimator>> replicas)
    : replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ShardPool: no replicas");
  }
  for (const auto& replica : replicas_) {
    if (!replica) throw std::invalid_argument("ShardPool: null replica");
  }
  free_.reserve(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    free_.push_back(replicas_.size() - 1 - s);
  }
}

ShardPool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      shard_(other.shard_),
      model_(other.model_) {}

ShardPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(shard_);
}

ShardPool::Lease ShardPool::acquire() {
  const sb::MutexLock lock(mutex_);
  if (free_.empty()) {
    ++waiters_;
    while (free_.empty()) free_cv_.wait(mutex_);
    --waiters_;
  }
  const std::size_t shard = free_.back();
  free_.pop_back();
  return Lease(this, shard, replicas_[shard].get());
}

std::size_t ShardPool::free_count() const {
  const sb::MutexLock lock(mutex_);
  return free_.size();
}

void ShardPool::release(std::size_t shard) {
  bool wake;
  {
    const sb::MutexLock lock(mutex_);
    free_.push_back(shard);
    // Releases outnumber blocked acquires except at saturation; skip the
    // futex call when nobody is waiting (one release per served batch).
    wake = waiters_ > 0;
  }
  if (wake) free_cv_.notify_one();
}

}  // namespace streambrain::serve
