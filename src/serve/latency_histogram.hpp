#pragma once
// Lock-free end-to-end latency histogram for the async serving path.
// Request completions land on shard workers and the dispatcher thread
// concurrently, and the record path must not serialize them — so the
// histogram is a fixed array of atomic counters over geometric
// (power-of-two microsecond) buckets: record() is one relaxed
// fetch_add, and percentiles are computed only when a stats() snapshot
// asks for them.
//
// Bucket b counts latencies in [2^(b-1), 2^b) microseconds (bucket 0:
// anything under 1 us), so the quantile estimate returns a bucket UPPER
// edge — at most 2x the true value, never an underestimate. That
// resolution is plenty for the p50/p99 serving dashboards this feeds;
// exact order statistics would need per-request storage and a lock.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace streambrain::serve {

class LatencyHistogram {
 public:
  /// 2^39 us ~= 6.4 days in the top bucket — effectively unbounded.
  static constexpr std::size_t kBuckets = 40;

  /// Count one completed request. Thread-safe and lock-free; negative
  /// durations (clock weirdness) count into the lowest bucket.
  void record(double seconds) noexcept {
    counts_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper-edge estimate of the q-quantile (q in [0, 1]) in seconds over
  /// everything recorded so far; 0 when nothing was recorded. Reads are
  /// relaxed: concurrent record() calls may or may not be included,
  /// which is the usual monitoring-snapshot contract.
  [[nodiscard]] double quantile(double q) const noexcept {
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] = counts_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    if (total == 0) return 0.0;
    // Rank of the quantile observation, 1-based, clamped to [1, total].
    const auto rank = static_cast<std::uint64_t>(
        q <= 0.0 ? 1
                 : (q >= 1.0 ? total
                             : static_cast<std::uint64_t>(
                                   q * static_cast<double>(total)) +
                                   1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return bucket_upper_seconds(b);
    }
    return bucket_upper_seconds(kBuckets - 1);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& bucket : counts_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Bucket for a latency: floor(log2(us)) + 1, i.e. [2^(b-1), 2^b) us.
  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept {
    if (!(seconds > 0.0)) return 0;
    const double micros = seconds * 1e6;
    if (micros < 1.0) return 0;
    constexpr double kHuge = 9e18;  // below 2^63, far above any bucket
    const auto us = static_cast<std::uint64_t>(micros < kHuge ? micros : kHuge);
    const std::size_t index = std::bit_width(us);
    return index < kBuckets ? index : kBuckets - 1;
  }

  /// The upper edge 2^b us of bucket b, in seconds.
  [[nodiscard]] static double bucket_upper_seconds(std::size_t bucket) noexcept {
    return static_cast<double>(std::uint64_t{1} << bucket) * 1e-6;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

}  // namespace streambrain::serve
