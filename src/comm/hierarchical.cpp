#include "comm/hierarchical.hpp"

#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport_internal.hpp"

namespace streambrain::comm {

void HierarchicalComm::allreduce(float* data, std::size_t count, ReduceOp op,
                                 AllreduceAlgorithm inter_algorithm) {
  intra_->allreduce(data, count, op, AllreduceAlgorithm::kFlat);
  if (hosts_ > 1) {
    if (inter_ != nullptr) {
      inter_->allreduce(data, count, op, inter_algorithm);
    }
    // Every rank already holds the intra-host result; the broadcast
    // replaces it with the leader's global one.
    intra_->broadcast(data, count, /*root=*/0);
  }
}

void HierarchicalComm::allreduce_mean(float* data, std::size_t count) {
  allreduce(data, count, ReduceOp::kSum);
  const float inv = 1.0f / static_cast<float>(world());
  for (std::size_t i = 0; i < count; ++i) data[i] *= inv;
}

void HierarchicalComm::barrier() {
  intra_->barrier();
  if (hosts_ > 1) {
    if (inter_ != nullptr) inter_->barrier();
    intra_->barrier();  // non-leaders wait for the leader's return
  }
}

RunStats run_hierarchical(const HierarchicalOptions& options,
                          const std::function<void(HierarchicalComm&)>& body) {
  const int hosts = options.hosts;
  const int rph = options.ranks_per_host;
  if (hosts <= 0 || rph <= 0) {
    throw std::invalid_argument(
        "run_hierarchical: hosts and ranks_per_host must be positive");
  }

  // One shm world per simulated host, one tcp world linking the leaders.
  std::vector<std::vector<std::unique_ptr<Transport>>> intra;
  intra.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    intra.push_back(detail::make_shm_world(rph, options.base));
  }
  std::vector<std::unique_ptr<Transport>> inter =
      detail::make_tcp_world(hosts, options.base);

  const int world = hosts * rph;
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world));
  threads.reserve(static_cast<std::size_t>(world));
  for (int h = 0; h < hosts; ++h) {
    for (int l = 0; l < rph; ++l) {
      const int g = h * rph + l;
      Transport* intra_t = intra[static_cast<std::size_t>(h)]
                               [static_cast<std::size_t>(l)]
                                   .get();
      Transport* inter_t =
          (l == 0) ? inter[static_cast<std::size_t>(h)].get() : nullptr;
      threads.emplace_back([&body, &errors, intra_t, inter_t, h, hosts, g] {
        try {
          intra_t->establish();
          if (inter_t != nullptr) inter_t->establish();
          Communicator intra_comm(*intra_t);
          Communicator inter_comm(inter_t != nullptr ? *inter_t : *intra_t);
          HierarchicalComm comm(intra_comm,
                                inter_t != nullptr ? &inter_comm : nullptr,
                                h, hosts);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(g)] = std::current_exception();
          std::string reason = "global rank " + std::to_string(g) + " failed: ";
          try {
            throw;
          } catch (const std::exception& e) {
            reason += e.what();
          } catch (...) {
            reason += "unknown exception";
          }
          // Poison both levels: intra wakes this host's ranks, inter (via
          // the leader's transport) wakes the other hosts' leaders, whose
          // intra failures then cascade. Timeouts bound the stragglers.
          intra_t->poison(g, reason);
          if (inter_t != nullptr) inter_t->poison(h, reason);
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();

  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  RunStats stats;
  stats.bytes_per_rank.reserve(static_cast<std::size_t>(world));
  stats.wire_bytes_per_rank.reserve(static_cast<std::size_t>(world));
  for (int h = 0; h < hosts; ++h) {
    for (int l = 0; l < rph; ++l) {
      std::uint64_t logical =
          intra[static_cast<std::size_t>(h)][static_cast<std::size_t>(l)]
              ->logical_bytes_sent();
      std::uint64_t wire =
          intra[static_cast<std::size_t>(h)][static_cast<std::size_t>(l)]
              ->wire_bytes_sent();
      if (l == 0) {
        logical += inter[static_cast<std::size_t>(h)]->logical_bytes_sent();
        wire += inter[static_cast<std::size_t>(h)]->wire_bytes_sent();
      }
      stats.bytes_per_rank.push_back(logical);
      stats.wire_bytes_per_rank.push_back(wire);
      stats.total_bytes += logical;
      stats.total_wire_bytes += wire;
    }
  }
  return stats;
}

}  // namespace streambrain::comm
