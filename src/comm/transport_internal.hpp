#pragma once
// Internal seams between the transport factory (collectives.cpp) and the
// per-backend TUs. Not installed; include only from src/comm/*.cpp.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace streambrain::comm::detail {

// Tags below this are reserved for internal protocol traffic; user-facing
// send/recv enforces tag >= 0.
inline constexpr int kCollTag = -2;     // collective payload frames
inline constexpr int kBarrierTag = -3;  // TCP dissemination-barrier tokens

/// Whole thread-mode worlds: `world` transports sharing one PoisonState
/// (and, for shm/tcp, one pre-created segment / pre-bound listener set).
std::vector<std::unique_ptr<Transport>> make_inproc_world(
    int world, const TransportOptions& base);
std::vector<std::unique_ptr<Transport>> make_shm_world(
    int world, const TransportOptions& base);
std::vector<std::unique_ptr<Transport>> make_tcp_world(
    int world, const TransportOptions& base);

/// Single multi-process endpoints (options.rank identifies this process).
std::unique_ptr<Transport> make_shm_transport(const TransportOptions& options);
std::unique_ptr<Transport> make_tcp_transport(const TransportOptions& options);

/// Unique-enough session id for auto-named thread-mode shm segments
/// (pid + monotonic counter; no wall clock so runs are reproducible).
std::string generate_session();

}  // namespace streambrain::comm::detail
