#include "comm/communicator.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace streambrain::comm {

const char* algorithm_name(AllreduceAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case AllreduceAlgorithm::kFlat:
      return "flat";
    case AllreduceAlgorithm::kRing:
      return "ring";
  }
  return "?";
}

World::World(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("World: size must be positive");
  deposit_.assign(static_cast<std::size_t>(size), nullptr);
  bytes_sent_.assign(static_cast<std::size_t>(size), 0);
}

void World::barrier_wait() {
  const sb::MutexLock lock(barrier_mutex_);
  const bool my_sense = barrier_sense_;
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else {
    while (barrier_sense_ == my_sense) barrier_cv_.wait(barrier_mutex_);
  }
}

int Communicator::size() const noexcept { return world_->size(); }

void Communicator::barrier() { world_->barrier_wait(); }

namespace {

template <typename T>
void apply_reduce(T* acc, const T* other, std::size_t count,
                  ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] += other[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::min(acc[i], other[i]);
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::max(acc[i], other[i]);
      }
      break;
  }
}

}  // namespace

template <typename T>
static void allreduce_flat(World& world, Communicator& comm, T* data,
                           std::size_t count, ReduceOp op,
                           std::vector<const void*>& deposit,
                           std::vector<std::uint64_t>& bytes_sent,
                           std::atomic<std::uint64_t>& total_bytes) {
  const int rank = comm.rank();
  const int size = comm.size();
  deposit[static_cast<std::size_t>(rank)] = data;
  comm.barrier();  // everyone's buffer is visible

  // Deterministic reduction: every rank walks buffers in rank order into a
  // private accumulator (rank 0's values first), so results are identical
  // across ranks and across runs regardless of thread timing — and
  // bitwise equal to a serial left-to-right reduction over the ranks.
  std::vector<T> acc(static_cast<const T*>(deposit[0]),
                     static_cast<const T*>(deposit[0]) + count);
  for (int r = 1; r < size; ++r) {
    apply_reduce(acc.data(), static_cast<const T*>(
                                 deposit[static_cast<std::size_t>(r)]),
                 count, op);
  }
  comm.barrier();  // all reads done before anyone overwrites their buffer
  std::copy(acc.begin(), acc.end(), data);

  // Flat cost model: every rank's buffer must reach all P-1 peers, so
  // each rank sends (P-1)*n elements.
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count * sizeof(T)) *
      static_cast<std::uint64_t>(size - 1);
  bytes_sent[static_cast<std::size_t>(rank)] += bytes;
  total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  comm.barrier();
  (void)world;
}

template <typename T>
static void allreduce_ring(World& world, Communicator& comm, T* data,
                           std::size_t count, ReduceOp op,
                           std::vector<const void*>& deposit,
                           std::vector<std::uint64_t>& bytes_sent,
                           std::atomic<std::uint64_t>& total_bytes) {
  const int rank = comm.rank();
  const int size = comm.size();
  if (size == 1) return;  // nothing crosses the (virtual) network

  // Each rank reduces into a private working copy; the deposited pointer
  // lets the downstream neighbor pull chunks, which is the shared-memory
  // equivalent of the ring's send/recv pairs.
  std::vector<T> work(data, data + count);
  deposit[static_cast<std::size_t>(rank)] = work.data();
  comm.barrier();

  const auto chunk_begin = [count, size](int c) {
    return count * static_cast<std::size_t>(c) /
           static_cast<std::size_t>(size);
  };

  // Reduce-scatter phase: at step s, rank r pulls chunk (r-s-1) mod P
  // from rank r-1 and accumulates it into its working copy. After P-1
  // steps rank r holds the fully reduced chunk (r+1) mod P. The schedule
  // is fixed, so the association per element is deterministic.
  for (int step = 0; step < size - 1; ++step) {
    const int src = (rank - 1 + size) % size;
    const int c = ((rank - step - 1) % size + size) % size;
    const T* neighbor = static_cast<const T*>(
        deposit[static_cast<std::size_t>(src)]);
    const std::size_t b0 = chunk_begin(c);
    const std::size_t b1 = chunk_begin(c + 1);
    apply_reduce(work.data() + b0, neighbor + b0, b1 - b0, op);
    comm.barrier();  // chunk finished before the neighbor pulls it
  }

  // Allgather phase: every chunk c is complete on rank (c-1) mod P; pull
  // each completed chunk straight from its owner.
  for (int c = 0; c < size; ++c) {
    const int owner = (c - 1 + size) % size;
    const T* src = static_cast<const T*>(
        deposit[static_cast<std::size_t>(owner)]);
    const std::size_t b0 = chunk_begin(c);
    const std::size_t b1 = chunk_begin(c + 1);
    std::copy(src + b0, src + b1, data + b0);
  }

  // Ring cost model: reduce-scatter + allgather each move (P-1)/P * n
  // elements per rank.
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      2.0 * (size - 1) / static_cast<double>(size) *
      static_cast<double>(count * sizeof(T)));
  bytes_sent[static_cast<std::size_t>(rank)] += bytes;
  total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  comm.barrier();  // all pulls done before `work` is destroyed
  (void)world;
}

template <typename T>
void Communicator::allreduce_dispatch(T* data, std::size_t count, ReduceOp op,
                                      AllreduceAlgorithm algorithm) {
  if (algorithm == AllreduceAlgorithm::kRing) {
    allreduce_ring(*world_, *this, data, count, op, world_->deposit_,
                   world_->bytes_sent_, world_->total_bytes_);
  } else {
    allreduce_flat(*world_, *this, data, count, op, world_->deposit_,
                   world_->bytes_sent_, world_->total_bytes_);
  }
}

void Communicator::allreduce(float* data, std::size_t count, ReduceOp op,
                             AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce(double* data, std::size_t count, ReduceOp op,
                             AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce(std::uint64_t* data, std::size_t count,
                             ReduceOp op, AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce_mean(float* data, std::size_t count,
                                  AllreduceAlgorithm algorithm) {
  allreduce(data, count, ReduceOp::kSum, algorithm);
  const float inv = 1.0f / static_cast<float>(size());
  for (std::size_t i = 0; i < count; ++i) data[i] *= inv;
}

void Communicator::allreduce_mean(double* data, std::size_t count,
                                  AllreduceAlgorithm algorithm) {
  allreduce(data, count, ReduceOp::kSum, algorithm);
  const double inv = 1.0 / static_cast<double>(size());
  for (std::size_t i = 0; i < count; ++i) data[i] *= inv;
}

Request Communicator::iallreduce(float* data, std::size_t count, ReduceOp op,
                                 AllreduceAlgorithm algorithm) {
  return Request([this, data, count, op, algorithm] {
    allreduce(data, count, op, algorithm);
  });
}

Request Communicator::iallreduce(double* data, std::size_t count, ReduceOp op,
                                 AllreduceAlgorithm algorithm) {
  return Request([this, data, count, op, algorithm] {
    allreduce(data, count, op, algorithm);
  });
}

void Request::wait() {
  if (!complete_) return;
  // Clear first so a throwing collective cannot be re-entered.
  std::function<void()> complete = std::move(complete_);
  complete_ = nullptr;
  complete();
}

void Communicator::broadcast(float* data, std::size_t count, int root) {
  world_->deposit_[static_cast<std::size_t>(rank_)] = data;
  barrier();
  if (rank_ != root) {
    const float* src = static_cast<const float*>(
        world_->deposit_[static_cast<std::size_t>(root)]);
    std::copy(src, src + count, data);
  } else {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count * sizeof(float)) *
        static_cast<std::uint64_t>(size() - 1);
    world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
    world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  barrier();
}

void Communicator::allgather(const float* data, std::size_t count,
                             float* out) {
  world_->deposit_[static_cast<std::size_t>(rank_)] = data;
  barrier();
  for (int r = 0; r < size(); ++r) {
    const float* src = static_cast<const float*>(
        world_->deposit_[static_cast<std::size_t>(r)]);
    std::copy(src, src + count, out + static_cast<std::size_t>(r) * count);
  }
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count * sizeof(float)) *
      static_cast<std::uint64_t>(size() - 1);
  world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
  world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  barrier();
}

void Communicator::gather(const float* data, std::size_t count, float* out,
                          int root) {
  world_->deposit_[static_cast<std::size_t>(rank_)] = data;
  barrier();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      const float* src = static_cast<const float*>(
          world_->deposit_[static_cast<std::size_t>(r)]);
      std::copy(src, src + count, out + static_cast<std::size_t>(r) * count);
    }
  } else {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count * sizeof(float));
    world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
    world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  barrier();
}

void Communicator::scatter(const float* data, std::size_t count, float* out,
                           int root) {
  world_->deposit_[static_cast<std::size_t>(rank_)] = data;
  barrier();
  const float* src = static_cast<const float*>(
      world_->deposit_[static_cast<std::size_t>(root)]);
  std::copy(src + static_cast<std::size_t>(rank_) * count,
            src + static_cast<std::size_t>(rank_ + 1) * count, out);
  if (rank_ == root) {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count * sizeof(float)) *
        static_cast<std::uint64_t>(size() - 1);
    world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
    world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  barrier();
}

void Communicator::reduce_scatter(const float* data, std::size_t count,
                                  float* out) {
  world_->deposit_[static_cast<std::size_t>(rank_)] = data;
  barrier();
  // Each rank reduces only its own destination block, in rank order
  // (deterministic), directly from the deposited buffers.
  const std::size_t offset = static_cast<std::size_t>(rank_) * count;
  const float* rank0 = static_cast<const float*>(world_->deposit_[0]);
  std::copy(rank0 + offset, rank0 + offset + count, out);
  for (int r = 1; r < size(); ++r) {
    const float* src = static_cast<const float*>(
        world_->deposit_[static_cast<std::size_t>(r)]);
    for (std::size_t i = 0; i < count; ++i) out[i] += src[offset + i];
  }
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      static_cast<double>(size() - 1) / size() *
      static_cast<double>(count) * static_cast<double>(size()) *
      sizeof(float));
  world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
  world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  barrier();
}

void Communicator::send(const float* data, std::size_t count, int dest,
                        int tag) {
  World::Message message;
  message.payload.assign(data, data + count);
  {
    const sb::MutexLock lock(world_->mailbox_mutex_);
    world_->mailboxes_[{rank_, dest, tag}].push_back(std::move(message));
  }
  world_->mailbox_cv_.notify_all();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(count * sizeof(float));
  world_->bytes_sent_[static_cast<std::size_t>(rank_)] += bytes;
  world_->total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void Communicator::recv(float* data, std::size_t count, int source, int tag) {
  World::Message message;
  {
    const sb::MutexLock lock(world_->mailbox_mutex_);
    const auto key = std::make_tuple(source, rank_, tag);
    auto it = world_->mailboxes_.find(key);
    while (it == world_->mailboxes_.end() || it->second.empty()) {
      world_->mailbox_cv_.wait(world_->mailbox_mutex_);
      it = world_->mailboxes_.find(key);
    }
    auto& queue = it->second;
    message = std::move(queue.front());
    queue.erase(queue.begin());
  }
  if (message.payload.size() != count) {
    throw std::runtime_error("recv: message size mismatch");
  }
  std::copy(message.payload.begin(), message.payload.end(), data);
}

std::uint64_t Communicator::bytes_sent() const noexcept {
  return world_->bytes_sent_[static_cast<std::size_t>(rank_)];
}

RunStats run_reported(int size,
                      const std::function<void(Communicator&)>& body) {
  World world(size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      try {
        Communicator comm(world, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  RunStats stats;
  stats.total_bytes = world.total_bytes_sent();
  stats.bytes_per_rank.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    Communicator comm(world, r);
    stats.bytes_per_rank.push_back(comm.bytes_sent());
  }
  return stats;
}

void run(int size, const std::function<void(Communicator&)>& body) {
  (void)run_reported(size, body);
}

}  // namespace streambrain::comm
