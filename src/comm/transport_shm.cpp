// POSIX shared-memory backend: ranks are processes on one host, frames
// cross per-directed-channel SPSC byte rings inside one shm_open+mmap
// segment. The segment also carries the cross-process poison word and a
// sense-reversing barrier, so rank failures and barriers work without
// any additional IPC. Thread-mode worlds (run_transport) share a single
// private mapping that is unlinked at creation; multi-process worlds
// rendezvous on /streambrain-<session> and the creator unlinks it once
// every rank has attached, so no segment outlives the world.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "comm/transport_internal.hpp"

namespace streambrain::comm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kMagic = 0x5362436du;  // "SbCm"
constexpr std::size_t kRingBytes = std::size_t{1} << 16;
constexpr std::size_t kReasonBytes = 240;

// Frame layout inside a ring: header then payload, both chunk-copied
// through the ring modulo wrap.
struct FrameHeader {
  std::int32_t tag;
  std::uint32_t reserved;
  std::uint64_t size;
};
static_assert(sizeof(FrameHeader) == 16);

struct alignas(64) ShmChannel {
  // Monotonic byte counters: producer owns head, consumer owns tail;
  // ring occupancy is head - tail.
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
  unsigned char ring[kRingBytes];
};

struct alignas(64) ShmHeader {
  std::atomic<std::uint32_t> magic;  // set (release) after init completes
  std::int32_t world;
  std::atomic<int> attached;
  // Poison: claim CAS serializes writers; reason is written before the
  // word is release-published. word = 0 clean, else failed_rank + 2
  // (so rank -1 "unknown" encodes as 1).
  std::atomic<int> poison_claim;
  std::atomic<int> poison_word;
  char poison_reason[kReasonBytes];
  // Sense-reversing barrier.
  std::atomic<int> barrier_arrived;
  std::atomic<int> barrier_sense;
};

std::size_t segment_bytes(int world) {
  return sizeof(ShmHeader) + static_cast<std::size_t>(world) *
                                 static_cast<std::size_t>(world) *
                                 sizeof(ShmChannel);
}

std::string segment_name(const std::string& session) {
  return "/streambrain-" + session;
}

/// One mmap'ed world segment; unmapped when the last rank drops it.
class Segment {
 public:
  Segment(std::string name, void* map, std::size_t bytes)
      : name_(std::move(name)), map_(map), bytes_(bytes) {}
  ~Segment() { ::munmap(map_, bytes_); }
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] ShmHeader* header() const {
    return static_cast<ShmHeader*>(map_);
  }
  [[nodiscard]] ShmChannel* channel(int src, int dst, int world) const {
    auto* base = reinterpret_cast<ShmChannel*>(
        static_cast<unsigned char*>(map_) + sizeof(ShmHeader));
    return base + static_cast<std::size_t>(src) * world + dst;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  void* map_;
  std::size_t bytes_;
};

std::shared_ptr<Segment> create_segment(const std::string& session,
                                        int world) {
  const std::string name = segment_name(session);
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Stale segment from a crashed run with the same session id.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) {
    throw CommError(-1, "shm_open(" + name + ") failed: " +
                            std::strerror(errno));
  }
  const std::size_t bytes = segment_bytes(world);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw CommError(-1, "ftruncate(" + name + ") failed: " +
                            std::strerror(err));
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw CommError(-1, "mmap(" + name + ") failed: " + std::strerror(errno));
  }
  auto segment = std::make_shared<Segment>(name, map, bytes);
  // ftruncate gave zero pages — a valid initial state for every counter —
  // so only the world size and the magic (published last) need stores.
  segment->header()->world = world;
  segment->header()->magic.store(kMagic, std::memory_order_release);
  return segment;
}

std::shared_ptr<Segment> attach_segment(const std::string& session, int world,
                                        int connect_timeout_ms) {
  const std::string name = segment_name(session);
  const std::size_t bytes = segment_bytes(world);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(connect_timeout_ms);
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd >= 0) {
      // Wait for the creator's ftruncate before mapping, or the first
      // touch past the real size is a SIGBUS.
      struct stat st {};
      if (::fstat(fd, &st) == 0 &&
          static_cast<std::size_t>(st.st_size) >= bytes) {
        void* map =
            ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
        ::close(fd);
        if (map == MAP_FAILED) {
          throw CommError(-1, "mmap(" + name + ") failed: " +
                                  std::strerror(errno));
        }
        auto segment = std::make_shared<Segment>(name, map, bytes);
        while (segment->header()->magic.load(std::memory_order_acquire) !=
               kMagic) {
          if (Clock::now() >= deadline) {
            throw CommError(-1, "shm segment " + name +
                                    " never finished initializing");
          }
          std::this_thread::yield();
        }
        return segment;
      }
      ::close(fd);
    }
    if (Clock::now() >= deadline) {
      throw CommError(
          -1, "timed out attaching shm segment " + name + " after " +
                  std::to_string(connect_timeout_ms) +
                  " ms (was the world creator, rank 0, ever launched?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Incremental parser for one inbound ring: consumes raw bytes, yields
/// completed frames.
struct ChannelParse {
  bool have_header = false;
  FrameHeader header{};
  std::size_t header_got = 0;
  std::vector<unsigned char> payload;
  std::size_t payload_got = 0;
};

class ShmTransport final : public Transport {
 public:
  ShmTransport(const TransportOptions& options,
               std::shared_ptr<PoisonState> poison,
               std::shared_ptr<Segment> segment)
      : Transport(options.rank, options.world, std::move(poison)),
        options_(options),
        segment_(std::move(segment)),
        parse_(static_cast<std::size_t>(options.world)) {}

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kShm;
  }

  void establish() override {
    if (segment_ == nullptr) {
      // Multi-process: rank 0 creates, everyone else attaches.
      if (rank_ == 0) {
        segment_ = create_segment(options_.session, size_);
      } else {
        segment_ = attach_segment(options_.session, size_,
                                  options_.connect_timeout_ms);
      }
      ShmHeader* header = segment_->header();
      header->attached.fetch_add(1, std::memory_order_acq_rel);
      const auto deadline =
          Clock::now() +
          std::chrono::milliseconds(options_.connect_timeout_ms);
      while (header->attached.load(std::memory_order_acquire) < size_) {
        if (Clock::now() >= deadline) {
          if (rank_ == 0) ::shm_unlink(segment_->name().c_str());
          throw CommError(
              -1, "timed out waiting for all " + std::to_string(size_) +
                      " ranks to attach shm segment " + segment_->name());
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Every rank holds a mapping now; the name can go away so a crash
      // never leaks a segment.
      if (rank_ == 0) ::shm_unlink(segment_->name().c_str());
    }
  }

  void barrier() override {
    sync_poison();
    if (size_ == 1) return;
    ShmHeader* header = segment_->header();
    const int my_sense = 1 - local_sense_;
    local_sense_ = my_sense;
    if (header->barrier_arrived.fetch_add(1, std::memory_order_acq_rel) ==
        size_ - 1) {
      header->barrier_arrived.store(0, std::memory_order_relaxed);
      header->barrier_sense.store(my_sense, std::memory_order_release);
      return;
    }
    const auto deadline = op_deadline();
    int spins = 0;
    while (header->barrier_sense.load(std::memory_order_acquire) !=
           my_sense) {
      sync_poison();
      if (Clock::now() >= deadline) {
        std::ostringstream msg;
        msg << "barrier timed out after " << options_.op_timeout_ms
            << " ms on rank " << rank_ << " (a peer never arrived)";
        poison(-1, msg.str());
        throw_poisoned();
      }
      backoff(spins);
    }
  }

 protected:
  void do_send(int dest, int tag, const void* data,
               std::size_t bytes) override {
    if (dest == rank_) {
      const auto* begin = static_cast<const unsigned char*>(data);
      pending_[{rank_, tag}].emplace_back(begin, begin + bytes);
      return;  // no wire crossed
    }
    FrameHeader header{tag, 0, static_cast<std::uint64_t>(bytes)};
    ShmChannel* channel = segment_->channel(rank_, dest, size_);
    write_blocking(channel, dest, &header, sizeof(header));
    if (bytes > 0) write_blocking(channel, dest, data, bytes);
    add_wire_bytes(sizeof(header) + bytes);
  }

  void do_recv(int source, int tag, void* data,
               std::size_t expected_bytes) override {
    const auto deadline = op_deadline();
    const std::pair<int, int> key{source, tag};
    int spins = 0;
    for (;;) {
      auto it = pending_.find(key);
      if (it != pending_.end() && !it->second.empty()) {
        std::vector<unsigned char> payload = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) pending_.erase(it);
        if (payload.size() != expected_bytes) {
          std::ostringstream msg;
          msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
              << rank_ << ": size mismatch: posted " << expected_bytes
              << " bytes but the matched message carries " << payload.size()
              << " bytes (send/recv count mismatch)";
          throw CommError(rank_, msg.str());
        }
        if (expected_bytes > 0) {
          std::memcpy(data, payload.data(), expected_bytes);
        }
        return;
      }
      if (drain_all()) {
        spins = 0;
        continue;
      }
      sync_poison();
      if (Clock::now() >= deadline) {
        std::ostringstream msg;
        msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
            << rank_ << " timed out after " << options_.op_timeout_ms
            << " ms (peer dead or never sent)";
        poison(source, msg.str());
        throw_poisoned();
      }
      backoff(spins);
    }
  }

  void announce_poison(int failed_rank,
                       const std::string& reason) noexcept override {
    if (segment_ == nullptr) return;  // failed before establish()
    ShmHeader* header = segment_->header();
    int expected = 0;
    if (header->poison_claim.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      const std::size_t n = std::min(reason.size(), kReasonBytes - 1);
      std::memcpy(header->poison_reason, reason.data(), n);
      header->poison_reason[n] = '\0';
      header->poison_word.store(failed_rank + 2, std::memory_order_release);
    }
  }

 private:
  [[nodiscard]] Clock::time_point op_deadline() const {
    return Clock::now() + std::chrono::milliseconds(options_.op_timeout_ms);
  }

  static void backoff(int& spins) {
    // The dev box is 1-core: get off the CPU fast so the peer can run.
    if (spins < 16) {
      ++spins;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Observe a remote (or local) poison word; throws CommError if the
  /// world is dead.
  void sync_poison() {
    const int word =
        segment_->header()->poison_word.load(std::memory_order_acquire);
    if (word != 0) {
      poison_->try_set(word - 2, segment_->header()->poison_reason);
    }
    if (poison_->poisoned()) throw_poisoned();
  }

  /// Copy `bytes` into the src->dest ring, chunked past wrap, draining
  /// inbound traffic whenever the ring is full — that is what makes the
  /// collectives' send-then-recv schedules deadlock-free for payloads
  /// larger than the ring.
  void write_blocking(ShmChannel* channel, int dest, const void* data,
                      std::size_t bytes) {
    const auto* src = static_cast<const unsigned char*>(data);
    std::size_t written = 0;
    const auto deadline = op_deadline();
    int spins = 0;
    while (written < bytes) {
      const std::uint64_t head =
          channel->head.load(std::memory_order_relaxed);
      const std::uint64_t tail = channel->tail.load(std::memory_order_acquire);
      const std::size_t space =
          kRingBytes - static_cast<std::size_t>(head - tail);
      if (space == 0) {
        if (!drain_all()) {
          sync_poison();
          if (Clock::now() >= deadline) {
            std::ostringstream msg;
            msg << "send to rank " << dest << " stalled for "
                << options_.op_timeout_ms
                << " ms on rank " << rank_ << " (peer not draining)";
            poison(dest, msg.str());
            throw_poisoned();
          }
          backoff(spins);
        }
        continue;
      }
      spins = 0;
      const std::size_t n = std::min(space, bytes - written);
      const std::size_t at = static_cast<std::size_t>(head) % kRingBytes;
      const std::size_t first = std::min(n, kRingBytes - at);
      std::memcpy(channel->ring + at, src + written, first);
      if (first < n) std::memcpy(channel->ring, src + written + first, n - first);
      channel->head.store(head + n, std::memory_order_release);
      written += n;
    }
  }

  /// Drain every inbound ring into the local pending queues. Returns true
  /// when any byte moved.
  bool drain_all() {
    bool progress = false;
    for (int src = 0; src < size_; ++src) {
      if (src == rank_) continue;
      progress |= drain_channel(src);
    }
    return progress;
  }

  bool drain_channel(int src) {
    ShmChannel* channel = segment_->channel(src, rank_, size_);
    ChannelParse& parse = parse_[static_cast<std::size_t>(src)];
    const std::uint64_t head = channel->head.load(std::memory_order_acquire);
    std::uint64_t tail = channel->tail.load(std::memory_order_relaxed);
    if (head == tail) return false;
    while (tail < head) {
      const std::size_t avail = static_cast<std::size_t>(head - tail);
      const std::size_t at = static_cast<std::size_t>(tail) % kRingBytes;
      if (!parse.have_header) {
        const std::size_t want = sizeof(FrameHeader) - parse.header_got;
        const std::size_t n = std::min({want, avail, kRingBytes - at});
        std::memcpy(reinterpret_cast<unsigned char*>(&parse.header) +
                        parse.header_got,
                    channel->ring + at, n);
        parse.header_got += n;
        tail += n;
        if (parse.header_got == sizeof(FrameHeader)) {
          parse.have_header = true;
          parse.payload.resize(
              static_cast<std::size_t>(parse.header.size));
          parse.payload_got = 0;
          if (parse.header.size == 0) complete_frame(src, parse);
        }
      } else {
        const std::size_t want = parse.payload.size() - parse.payload_got;
        const std::size_t n = std::min({want, avail, kRingBytes - at});
        std::memcpy(parse.payload.data() + parse.payload_got,
                    channel->ring + at, n);
        parse.payload_got += n;
        tail += n;
        if (parse.payload_got == parse.payload.size()) {
          complete_frame(src, parse);
        }
      }
    }
    channel->tail.store(tail, std::memory_order_release);
    return true;
  }

  void complete_frame(int src, ChannelParse& parse) {
    pending_[{src, parse.header.tag}].push_back(std::move(parse.payload));
    parse = ChannelParse{};
  }

  TransportOptions options_;
  std::shared_ptr<Segment> segment_;
  std::vector<ChannelParse> parse_;
  std::map<std::pair<int, int>, std::deque<std::vector<unsigned char>>>
      pending_;
  int local_sense_ = 0;
};

}  // namespace
}  // namespace streambrain::comm

namespace streambrain::comm::detail {

std::vector<std::unique_ptr<Transport>> make_shm_world(
    int world, const TransportOptions& base) {
  TransportOptions options = base;
  options.backend = Backend::kShm;
  options.world = world;
  if (options.session.empty()) options.session = generate_session();
  auto poison = std::make_shared<PoisonState>();
  auto segment = create_segment(options.session, world);
  // All ranks live in this process and already hold the mapping; drop the
  // name immediately so nothing can leak.
  ::shm_unlink(segment->name().c_str());
  std::vector<std::unique_ptr<Transport>> ranks;
  ranks.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    options.rank = r;
    ranks.push_back(std::make_unique<ShmTransport>(options, poison, segment));
  }
  return ranks;
}

std::unique_ptr<Transport> make_shm_transport(const TransportOptions& options) {
  if (options.session.empty()) {
    throw std::invalid_argument(
        "shm transport: a session id is required so the ranks can "
        "rendezvous (set SB_COMM_SESSION or TransportOptions::session)");
  }
  return std::make_unique<ShmTransport>(
      options, std::make_shared<PoisonState>(), nullptr);
}

}  // namespace streambrain::comm::detail
