// TCP backend: ranks are processes on one or many hosts, frames are
// length-prefixed over a full mesh of sockets. Establishment is
// deadlock-free by construction: every rank's listener exists before any
// connect is attempted (pre-bound by the factory in thread mode; bound at
// the top of establish() in multi-process mode, with connect retry +
// exponential backoff up to connect_timeout_ms), lower ranks accept,
// higher ranks connect, and a hello frame identifies the connector. The
// data plane is nonblocking: a blocked send keeps draining inbound
// traffic (so pairwise exchanges larger than the socket buffers cannot
// deadlock), a peer's EOF marks it dead, and any operation that then
// needs that peer poisons the world with a CommError naming it. Poison
// crosses the wire as a dedicated frame kind, broadcast best-effort to
// every peer. The barrier is a dissemination barrier over 1-byte tokens
// on a reserved tag.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "comm/transport_internal.hpp"

namespace streambrain::comm {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kHelloMagic = 0x53624843u;  // "SbHC"
constexpr std::uint32_t kData = 0;
constexpr std::uint32_t kPoison = 1;

struct FrameHeader {
  std::int32_t tag;     // kPoison frames carry the failed rank here
  std::uint32_t kind;   // kData | kPoison
  std::uint64_t size;   // payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 16);

struct Hello {
  std::uint32_t magic;
  std::uint32_t rank;
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw CommError(-1, what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Collective chunks are latency-sensitive and self-batched; Nagle only
  // adds round trips.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int bind_listener(const char* host, int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr =
      (host == nullptr || *host == '\0') ? htonl(INADDR_ANY)
                                         : ::inet_addr(host);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind(port " + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("listen");
  }
  return fd;
}

int bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

/// Incremental frame parser for one inbound socket.
struct PeerParse {
  bool have_header = false;
  FrameHeader header{};
  std::size_t header_got = 0;
  std::vector<unsigned char> payload;
  std::size_t payload_got = 0;
};

struct Peer {
  int fd = -1;
  bool closed = false;
  PeerParse parse;
};

class TcpTransport final : public Transport {
 public:
  TcpTransport(const TransportOptions& options,
               std::shared_ptr<PoisonState> poison, int listen_fd)
      : Transport(options.rank, options.world, std::move(poison)),
        options_(options),
        listen_fd_(listen_fd),
        peers_(static_cast<std::size_t>(options.world)) {}

  ~TcpTransport() override {
    for (Peer& peer : peers_) {
      if (peer.fd >= 0) ::close(peer.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kTcp;
  }

  void establish() override {
    if (size_ == 1) {
      close_listener();
      return;
    }
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.connect_timeout_ms);
    resolve_ports();
    if (listen_fd_ < 0) {
      listen_fd_ = bind_listener(nullptr, ports_[static_cast<std::size_t>(rank_)],
                                 size_ + 8);
    }
    // Connect to every lower rank (their listeners are already bound, so
    // the kernel completes handshakes without waiting for their accept),
    // then accept every higher rank and identify it by its hello.
    for (int peer = 0; peer < rank_; ++peer) connect_to(peer, deadline);
    for (int n = rank_ + 1; n < size_; ++n) accept_one(deadline);
    close_listener();
    for (int peer = 0; peer < size_; ++peer) {
      if (peer == rank_) continue;
      set_nonblocking(peers_[static_cast<std::size_t>(peer)].fd);
      set_nodelay(peers_[static_cast<std::size_t>(peer)].fd);
    }
  }

  void barrier() override {
    check_healthy();
    if (size_ == 1) return;
    // Dissemination barrier: after round k every rank has transitively
    // heard from 2^(k+1) predecessors; ceil(log2(P)) rounds synchronize
    // everyone. Tokens ride the reserved barrier tag; FIFO per channel
    // keeps back-to-back barriers from stealing each other's tokens.
    unsigned char token = 1;
    for (int hop = 1; hop < size_; hop <<= 1) {
      const int to = (rank_ + hop) % size_;
      const int from = (rank_ - hop % size_ + size_) % size_;
      do_send(to, detail::kBarrierTag, &token, 1);
      do_recv(from, detail::kBarrierTag, &token, 1);
    }
  }

 protected:
  void do_send(int dest, int tag, const void* data,
               std::size_t bytes) override {
    if (dest == rank_) {
      const auto* begin = static_cast<const unsigned char*>(data);
      pending_[{rank_, tag}].emplace_back(begin, begin + bytes);
      return;  // no wire crossed
    }
    const FrameHeader header{tag, kData, static_cast<std::uint64_t>(bytes)};
    write_all(dest, &header, sizeof(header));
    if (bytes > 0) write_all(dest, data, bytes);
    add_wire_bytes(sizeof(header) + bytes);
  }

  void do_recv(int source, int tag, void* data,
               std::size_t expected_bytes) override {
    const auto deadline = op_deadline();
    const std::pair<int, int> key{source, tag};
    for (;;) {
      auto it = pending_.find(key);
      if (it != pending_.end() && !it->second.empty()) {
        std::vector<unsigned char> payload = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) pending_.erase(it);
        if (payload.size() != expected_bytes) {
          std::ostringstream msg;
          msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
              << rank_ << ": size mismatch: posted " << expected_bytes
              << " bytes but the matched message carries " << payload.size()
              << " bytes (send/recv count mismatch)";
          throw CommError(rank_, msg.str());
        }
        if (expected_bytes > 0) {
          std::memcpy(data, payload.data(), expected_bytes);
        }
        return;
      }
      if (poison_->poisoned()) throw_poisoned();
      if (source != rank_ && peers_[static_cast<std::size_t>(source)].closed) {
        std::ostringstream msg;
        msg << "rank " << source << " closed its connection while rank "
            << rank_ << " was waiting to recv(tag=" << tag
            << ") (peer process died?)";
        poison(source, msg.str());
        throw_poisoned();
      }
      progress(20);
      if (Clock::now() >= deadline) {
        std::ostringstream msg;
        msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
            << rank_ << " timed out after " << options_.op_timeout_ms
            << " ms (peer never sent)";
        poison(source, msg.str());
        throw_poisoned();
      }
    }
  }

  void announce_poison(int failed_rank,
                       const std::string& reason) noexcept override {
    // Best-effort, nonblocking: a dying rank must not hang trying to
    // report that the world is dead. Peers that miss the frame fall back
    // to EOF detection or their own op timeout.
    const FrameHeader header{failed_rank, kPoison,
                             static_cast<std::uint64_t>(reason.size())};
    for (int peer = 0; peer < size_; ++peer) {
      if (peer == rank_) continue;
      const Peer& p = peers_[static_cast<std::size_t>(peer)];
      if (p.fd < 0 || p.closed) continue;
      // One small frame; either it fits in the socket buffer or we drop it.
      if (::send(p.fd, &header, sizeof(header), MSG_NOSIGNAL | MSG_DONTWAIT) ==
          static_cast<ssize_t>(sizeof(header))) {
        (void)::send(p.fd, reason.data(), reason.size(),
                     MSG_NOSIGNAL | MSG_DONTWAIT);
      }
    }
  }

 private:
  [[nodiscard]] Clock::time_point op_deadline() const {
    return Clock::now() + std::chrono::milliseconds(options_.op_timeout_ms);
  }

  void close_listener() {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void resolve_ports() {
    if (!options_.ports.empty()) {
      if (static_cast<int>(options_.ports.size()) != size_) {
        throw std::invalid_argument(
            "tcp transport: ports list must have one entry per rank");
      }
      ports_ = options_.ports;
    } else if (options_.base_port > 0) {
      ports_.resize(static_cast<std::size_t>(size_));
      for (int r = 0; r < size_; ++r) ports_[static_cast<std::size_t>(r)] =
          options_.base_port + r;
    } else {
      throw std::invalid_argument(
          "tcp transport: set ports (one per rank) or base_port so the "
          "mesh can rendezvous");
    }
  }

  [[nodiscard]] std::string peer_host(int peer) const {
    if (static_cast<std::size_t>(peer) < options_.hosts.size()) {
      return options_.hosts[static_cast<std::size_t>(peer)];
    }
    return "127.0.0.1";
  }

  void connect_to(int peer, Clock::time_point deadline) {
    const std::string host = peer_host(peer);
    const std::string port =
        std::to_string(ports_[static_cast<std::size_t>(peer)]);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &found) != 0 ||
        found == nullptr) {
      throw CommError(-1, "getaddrinfo(" + host + ":" + port + ") failed");
    }
    std::chrono::milliseconds backoff{5};
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        ::freeaddrinfo(found);
        throw_errno("socket");
      }
      if (::connect(fd, found->ai_addr, found->ai_addrlen) == 0) {
        ::freeaddrinfo(found);
        const Hello hello{kHelloMagic, static_cast<std::uint32_t>(rank_)};
        if (!send_exact(fd, &hello, sizeof(hello), deadline)) {
          ::close(fd);
          throw CommError(peer, "tcp handshake with rank " +
                                    std::to_string(peer) + " failed");
        }
        peers_[static_cast<std::size_t>(peer)].fd = fd;
        return;
      }
      ::close(fd);
      if (Clock::now() >= deadline) {
        ::freeaddrinfo(found);
        throw CommError(
            peer, "rank " + std::to_string(rank_) + " could not connect to "
                      "rank " + std::to_string(peer) + " at " + host + ":" +
                      port + " within " +
                      std::to_string(options_.connect_timeout_ms) +
                      " ms (peer never started listening?)");
      }
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds{200});
    }
  }

  void accept_one(Clock::time_point deadline) {
    for (;;) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 50);
      if (ready > 0) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          throw_errno("accept");
        }
        Hello hello{};
        if (!recv_exact(fd, &hello, sizeof(hello), deadline) ||
            hello.magic != kHelloMagic ||
            hello.rank >= static_cast<std::uint32_t>(size_)) {
          ::close(fd);  // not one of ours
          continue;
        }
        peers_[hello.rank].fd = fd;
        return;
      }
      if (Clock::now() >= deadline) {
        throw CommError(-1, "rank " + std::to_string(rank_) +
                                " timed out waiting for a peer to connect "
                                "(not all ranks were launched?)");
      }
    }
  }

  static bool send_exact(int fd, const void* data, std::size_t bytes,
                         Clock::time_point deadline) {
    const auto* src = static_cast<const unsigned char*>(data);
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n =
          ::send(fd, src + done, bytes - done, MSG_NOSIGNAL);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
        if (Clock::now() >= deadline) return false;
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 20);
        continue;
      }
      return false;
    }
    return true;
  }

  static bool recv_exact(int fd, void* data, std::size_t bytes,
                         Clock::time_point deadline) {
    auto* dst = static_cast<unsigned char*>(data);
    std::size_t done = 0;
    while (done < bytes) {
      const ssize_t n = ::recv(fd, dst + done, bytes - done, 0);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
        if (Clock::now() >= deadline) return false;
        pollfd pfd{fd, POLLIN, 0};
        (void)::poll(&pfd, 1, 20);
        continue;
      }
      return false;  // EOF or hard error
    }
    return true;
  }

  void write_all(int dest, const void* data, std::size_t bytes) {
    Peer& peer = peers_[static_cast<std::size_t>(dest)];
    if (peer.fd < 0 || peer.closed) {
      std::ostringstream msg;
      msg << "send to rank " << dest << " failed on rank " << rank_
          << ": connection is closed (peer process died?)";
      poison(dest, msg.str());
      throw_poisoned();
    }
    const auto* src = static_cast<const unsigned char*>(data);
    std::size_t done = 0;
    const auto deadline = op_deadline();
    while (done < bytes) {
      const ssize_t n =
          ::send(peer.fd, src + done, bytes - done, MSG_NOSIGNAL);
      if (n > 0) {
        done += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        // Socket buffer full: drain inbound while blocked so pairwise
        // exchanges of large payloads cannot deadlock.
        progress(0);
        if (poison_->poisoned()) throw_poisoned();
        if (Clock::now() >= deadline) {
          std::ostringstream msg;
          msg << "send to rank " << dest << " stalled for "
              << options_.op_timeout_ms << " ms on rank " << rank_
              << " (peer not draining)";
          poison(dest, msg.str());
          throw_poisoned();
        }
        pollfd pfd{peer.fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 20);
        continue;
      }
      std::ostringstream msg;
      msg << "send to rank " << dest << " failed on rank " << rank_ << ": "
          << (n < 0 ? std::strerror(errno) : "connection closed");
      peer.closed = true;
      poison(dest, msg.str());
      throw_poisoned();
    }
  }

  /// Drain readable sockets into the pending queues; waits up to
  /// `wait_ms` for something to arrive.
  void progress(int wait_ms) {
    std::vector<pollfd> pfds;
    std::vector<int> owners;
    pfds.reserve(static_cast<std::size_t>(size_));
    owners.reserve(static_cast<std::size_t>(size_));
    for (int peer = 0; peer < size_; ++peer) {
      const Peer& p = peers_[static_cast<std::size_t>(peer)];
      if (peer == rank_ || p.fd < 0 || p.closed) continue;
      pfds.push_back({p.fd, POLLIN, 0});
      owners.push_back(peer);
    }
    if (pfds.empty()) return;
    const int ready = ::poll(pfds.data(), pfds.size(), wait_ms);
    if (ready <= 0) return;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        drain_peer(owners[i]);
      }
    }
  }

  void drain_peer(int src) {
    Peer& peer = peers_[static_cast<std::size_t>(src)];
    unsigned char buffer[16384];
    for (;;) {
      const ssize_t n = ::recv(peer.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        feed(src, buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF (orderly close at teardown, or the peer died). Only an
      // operation that actually needs this peer turns it into poison.
      peer.closed = true;
      return;
    }
  }

  void feed(int src, const unsigned char* data, std::size_t bytes) {
    PeerParse& parse = peers_[static_cast<std::size_t>(src)].parse;
    std::size_t at = 0;
    while (at < bytes) {
      if (!parse.have_header) {
        const std::size_t want = sizeof(FrameHeader) - parse.header_got;
        const std::size_t n = std::min(want, bytes - at);
        std::memcpy(reinterpret_cast<unsigned char*>(&parse.header) +
                        parse.header_got,
                    data + at, n);
        parse.header_got += n;
        at += n;
        if (parse.header_got == sizeof(FrameHeader)) {
          parse.have_header = true;
          parse.payload.resize(static_cast<std::size_t>(parse.header.size));
          parse.payload_got = 0;
          if (parse.header.size == 0) complete_frame(src, parse);
        }
      } else {
        const std::size_t want = parse.payload.size() - parse.payload_got;
        const std::size_t n = std::min(want, bytes - at);
        std::memcpy(parse.payload.data() + parse.payload_got, data + at, n);
        parse.payload_got += n;
        at += n;
        if (parse.payload_got == parse.payload.size()) {
          complete_frame(src, parse);
        }
      }
    }
  }

  void complete_frame(int src, PeerParse& parse) {
    if (parse.header.kind == kPoison) {
      const std::string reason(parse.payload.begin(), parse.payload.end());
      // poison() re-broadcasts, so the claim survives even if the origin
      // died before reaching every peer; duplicates are no-ops.
      poison(parse.header.tag, reason);
      parse = PeerParse{};
      return;
    }
    pending_[{src, parse.header.tag}].push_back(std::move(parse.payload));
    parse = PeerParse{};
  }

  TransportOptions options_;
  int listen_fd_;
  std::vector<int> ports_;
  std::vector<Peer> peers_;
  std::map<std::pair<int, int>, std::deque<std::vector<unsigned char>>>
      pending_;
};

}  // namespace
}  // namespace streambrain::comm

namespace streambrain::comm::detail {

std::vector<std::unique_ptr<Transport>> make_tcp_world(
    int world, const TransportOptions& base) {
  TransportOptions options = base;
  options.backend = Backend::kTcp;
  options.world = world;
  auto poison = std::make_shared<PoisonState>();
  // Pre-bind every rank's loopback listener on an ephemeral port so the
  // connect/accept dance cannot race and no fixed ports are consumed.
  std::vector<int> fds;
  std::vector<int> ports;
  fds.reserve(static_cast<std::size_t>(world));
  ports.reserve(static_cast<std::size_t>(world));
  try {
    for (int r = 0; r < world; ++r) {
      const int fd = bind_listener("127.0.0.1", 0, world + 8);
      fds.push_back(fd);
      ports.push_back(bound_port(fd));
    }
  } catch (...) {
    for (const int fd : fds) ::close(fd);
    throw;
  }
  options.ports = ports;
  options.hosts.clear();
  std::vector<std::unique_ptr<Transport>> ranks;
  ranks.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    options.rank = r;
    ranks.push_back(std::make_unique<TcpTransport>(options, poison, fds[r]));
  }
  return ranks;
}

std::unique_ptr<Transport> make_tcp_transport(const TransportOptions& options) {
  return std::make_unique<TcpTransport>(
      options, std::make_shared<PoisonState>(), -1);
}

}  // namespace streambrain::comm::detail
