#pragma once
// Hierarchical (two-level) collectives: ranks on one host reduce over
// shared memory, one leader per host exchanges over the TCP ring, and
// the result fans back out intra-host. This is the topology a real
// multi-host BCPNN deployment uses — the expensive wire only carries one
// contribution per host instead of one per rank, so inter-host traffic
// shrinks by a factor of ranks_per_host.
//
// Exactness: the hierarchical sum associates (intra-host first, then
// across hosts), which differs from a global flat reduction by floating-
// point rounding in general — but is exact for min/max and for the
// zero-padded disjoint-shard payloads DistributedTrainer reduces, the
// same argument that makes its results rank-count invariant.

#include <cstddef>
#include <functional>

#include "comm/communicator.hpp"

namespace streambrain::comm {

struct HierarchicalOptions {
  int hosts = 2;
  int ranks_per_host = 2;
  /// Inter-host allreduce algorithm (the intra-host stage is always the
  /// deterministic flat reduction).
  AllreduceAlgorithm inter_algorithm = AllreduceAlgorithm::kRing;
  /// Seeds timeouts for both the shm worlds and the leader TCP mesh.
  TransportOptions base;
};

/// One global rank's view of a two-level world: an intra-host shm
/// communicator shared by the host's ranks, plus (leaders only) an
/// inter-host TCP communicator. Valid only inside run_hierarchical().
class HierarchicalComm {
 public:
  HierarchicalComm(Communicator& intra, Communicator* inter, int host,
                   int hosts)
      : intra_(&intra), inter_(inter), host_(host), hosts_(hosts) {}

  [[nodiscard]] int host() const noexcept { return host_; }
  [[nodiscard]] int hosts() const noexcept { return hosts_; }
  [[nodiscard]] int local_rank() const noexcept { return intra_->rank(); }
  [[nodiscard]] int ranks_per_host() const noexcept { return intra_->size(); }
  [[nodiscard]] int global_rank() const noexcept {
    return host_ * intra_->size() + intra_->rank();
  }
  [[nodiscard]] int world() const noexcept { return hosts_ * intra_->size(); }
  [[nodiscard]] bool is_leader() const noexcept { return inter_ != nullptr; }

  /// The intra-host (shm) communicator; every rank has one.
  [[nodiscard]] Communicator& intra() noexcept { return *intra_; }
  /// The inter-host (tcp) communicator; nullptr off the leader.
  [[nodiscard]] Communicator* inter() noexcept { return inter_; }

  /// Two-level allreduce: intra-host flat reduce (deterministic, shm),
  /// leaders allreduce across hosts (tcp, `inter_algorithm`), intra-host
  /// broadcast of the global result.
  void allreduce(float* data, std::size_t count, ReduceOp op,
                 AllreduceAlgorithm inter_algorithm = AllreduceAlgorithm::kRing);

  /// allreduce(kSum) divided by the global world size.
  void allreduce_mean(float* data, std::size_t count);

  /// Synchronize every rank on every host.
  void barrier();

 private:
  Communicator* intra_;
  Communicator* inter_;
  int host_;
  int hosts_;
};

/// Spawn hosts*ranks_per_host rank threads over real shm segments (one
/// per simulated host) and a real TCP loopback mesh between the leaders,
/// run `body` on each global rank, join, and return byte counters indexed
/// by global rank (host-major). A rank failure poisons both levels and
/// rethrows the original exception, exactly like run_transport.
RunStats run_hierarchical(const HierarchicalOptions& options,
                          const std::function<void(HierarchicalComm&)>& body);

}  // namespace streambrain::comm
