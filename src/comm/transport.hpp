#pragma once
// comm::Transport — the byte-moving substrate under the collectives.
//
// One collective implementation (collectives.cpp) runs over three
// interchangeable backends:
//   kInProcess — ranks are threads, messages are in-process mailboxes
//                (the original simulated-MPI substrate).
//   kShm       — ranks are processes on one host; messages cross POSIX
//                shared-memory SPSC rings (shm_open + mmap).
//   kTcp       — ranks are processes on one or many hosts; messages are
//                length-prefixed frames over a full TCP mesh with
//                connect retry/backoff and receive timeouts.
// The algorithms, schedules, and logical byte models are identical per
// backend — only the wire changes — which is what makes the conformance
// suite (test_comm_property) runnable per backend and fit_distributed
// bit-identical across them.
//
// Fault model: a world is *poisonable*. The first failure (rank
// exception, peer disconnect, timeout, destroyed pending Request) claims
// the world's poison state; every rank blocked in — or later entering —
// a transport operation aborts with a CommError naming the failed rank
// instead of hanging.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::comm {

enum class Backend { kInProcess, kShm, kTcp };

/// Short name for reports/benchmarks ("inproc" / "shm" / "tcp").
const char* backend_name(Backend backend) noexcept;

/// A failed or aborted communication operation. failed_rank() names the
/// rank the failure was attributed to (-1 when unknown, e.g. a barrier
/// timeout where the missing rank cannot be identified).
class CommError : public std::runtime_error {
 public:
  CommError(int failed_rank, const std::string& what)
      : std::runtime_error(what), failed_rank_(failed_rank) {}

  [[nodiscard]] int failed_rank() const noexcept { return failed_rank_; }

 private:
  int failed_rank_ = -1;
};

/// Endpoint configuration for one rank of a world. Thread-mode runners
/// (run_transport) fill most of this in; multi-process ranks read it from
/// SB_COMM_* environment variables via options_from_env().
struct TransportOptions {
  Backend backend = Backend::kInProcess;
  int rank = 0;
  int world = 1;
  /// Rendezvous id shared by all ranks of one world: the shm segment
  /// name suffix (kShm) — auto-generated when empty in thread mode.
  std::string session;
  /// kTcp: one address per rank ("127.0.0.1" for every rank when empty).
  std::vector<std::string> hosts;
  /// kTcp: explicit listen port per rank; wins over base_port.
  std::vector<int> ports;
  /// kTcp: rank r listens on base_port + r when `ports` is empty.
  int base_port = 0;
  /// Mesh/segment establishment budget (connect retry + backoff).
  int connect_timeout_ms = 10000;
  /// Per blocking operation (recv / barrier / blocked send) budget;
  /// expiring poisons the world instead of hanging.
  int op_timeout_ms = 60000;
};

/// Options for this process's rank, read from SB_COMM_RANK, SB_COMM_WORLD,
/// SB_COMM_BACKEND, SB_COMM_SESSION, SB_COMM_HOSTS, SB_COMM_PORTS,
/// SB_COMM_BASE_PORT, SB_COMM_CONNECT_TIMEOUT_MS, SB_COMM_OP_TIMEOUT_MS —
/// the contract tools/sb_launch speaks.
TransportOptions options_from_env();

/// True when SB_COMM_WORLD and SB_COMM_RANK are both set (the process was
/// started by a multi-process launcher).
bool env_world_configured() noexcept;

/// Shared first-failure-wins poison flag. Thread-mode worlds share one
/// instance across all ranks; multi-process ranks each own one, fed by
/// the backend's cross-process signal (shm poison word / TCP poison
/// frame).
class PoisonState {
 public:
  /// Claim the poison slot; only the first caller wins. Safe to call from
  /// any thread, any number of times.
  bool try_set(int failed_rank, const std::string& reason) noexcept;

  [[nodiscard]] bool poisoned() const noexcept {
    return set_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int failed_rank() const noexcept {
    return set_.load(std::memory_order_acquire)
               ? failed_rank_.load(std::memory_order_relaxed)
               : -1;
  }
  [[nodiscard]] std::string reason() const;

 private:
  std::atomic<bool> set_{false};
  std::atomic<int> failed_rank_{-1};
  mutable sb::Mutex mutex_;
  std::string reason_ GUARDED_BY(mutex_);
};

/// One rank's endpoint into a world: point-to-point byte frames matched
/// by (source, tag), a barrier, poison propagation, and byte accounting.
/// Collectives (comm::Communicator) are built on top and never touch the
/// wire directly. A Transport instance belongs to exactly one rank and is
/// not thread-safe; cross-rank state is synchronized internally.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Bring up the wire (attach the shm segment / connect the TCP mesh).
  /// Called once per rank, from the rank's own thread, before any other
  /// operation; all ranks must establish concurrently.
  virtual void establish() {}

  /// Blocking send of `bytes` bytes to `dest` under `tag`. Sends to self
  /// are delivered locally. While blocked on a full wire buffer the
  /// transport keeps draining inbound traffic, so pairwise exchanges of
  /// payloads larger than any buffer cannot deadlock.
  void send(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocking receive of the next (source, tag) frame. Throws a
  /// descriptive CommError when the matched frame's payload size differs
  /// from `expected_bytes` (send/recv count mismatch), and when the world
  /// is poisoned, the peer dies, or op_timeout expires.
  void recv(int source, int tag, void* data, std::size_t expected_bytes);

  /// Synchronize all ranks; aborts with CommError on poison/timeout.
  virtual void barrier() = 0;

  /// Mark the whole world failed: wakes every blocked rank (local and,
  /// for shm/tcp, remote) which then throw CommError. First failure wins;
  /// later calls are no-ops. noexcept — safe from destructors.
  void poison(int failed_rank, const std::string& reason) noexcept;

  [[nodiscard]] bool poisoned() const noexcept { return poison_->poisoned(); }
  [[nodiscard]] int poisoned_rank() const noexcept {
    return poison_->failed_rank();
  }
  /// Throws the CommError describing the poisoned world.
  [[noreturn]] void throw_poisoned() const;

  // -- Byte accounting. Logical bytes are the backend-independent cost
  // model the collectives charge (what bench/report formulas assert);
  // wire bytes are what this backend actually moved between ranks
  // (payloads + frame overhead; zero for self-sends). Single-writer (the
  // owning rank); readers synchronize via thread join.
  void add_logical_bytes(std::uint64_t bytes) noexcept {
    logical_bytes_ += bytes;
  }
  [[nodiscard]] std::uint64_t logical_bytes_sent() const noexcept {
    return logical_bytes_;
  }
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return wire_bytes_;
  }

 protected:
  Transport(int rank, int size, std::shared_ptr<PoisonState> poison);

  /// Backend wire implementations behind the poison-checking wrappers.
  virtual void do_send(int dest, int tag, const void* data,
                       std::size_t bytes) = 0;
  virtual void do_recv(int source, int tag, void* data,
                       std::size_t expected_bytes) = 0;
  /// Propagate a poison claim beyond the local PoisonState (wake local
  /// waiters, set the shm segment word, send TCP poison frames).
  virtual void announce_poison(int failed_rank,
                               const std::string& reason) noexcept = 0;

  void add_wire_bytes(std::uint64_t bytes) noexcept { wire_bytes_ += bytes; }
  void check_healthy() const;
  void check_peer(int peer, const char* op) const;

  const int rank_;
  const int size_;
  const std::shared_ptr<PoisonState> poison_;

 private:
  std::uint64_t logical_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
};

/// Connected endpoint for one rank of a (usually multi-process) world.
/// Blocks in establish() until the world is up or connect_timeout_ms
/// expires. Thread-mode callers should prefer run_transport().
std::unique_ptr<Transport> make_transport(const TransportOptions& options);

}  // namespace streambrain::comm
