// In-process backend: ranks are threads in one process, frames are
// vectors pushed through mutex-guarded per-channel mailboxes. This is the
// original simulated-MPI substrate refactored onto comm::Transport — the
// reference the shm and tcp backends are conformance-tested against, and
// the backend every comm::run() world uses.

#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "comm/transport_internal.hpp"
#include "util/annotated_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace streambrain::comm {
namespace {

using Clock = std::chrono::steady_clock;

// Poll granularity for blocked waits: long enough to sleep the 1-core dev
// box, short enough that poison/timeout is observed promptly.
constexpr std::chrono::milliseconds kWaitSlice{20};

/// State shared by every rank of one in-process world.
struct InprocState {
  // Sense-reversing barrier: the last arriver flips `sense` and releases
  // the epoch; waiters wait for the flip, so back-to-back barriers cannot
  // release each other's waiters.
  sb::Mutex barrier_mutex;
  sb::CondVar barrier_cv;
  int arrived GUARDED_BY(barrier_mutex) = 0;
  bool sense GUARDED_BY(barrier_mutex) = false;

  // Mailboxes: FIFO per (source, dest, tag) channel, so receives match
  // out of order across tags but in order within one.
  sb::Mutex mail_mutex;
  sb::CondVar mail_cv;
  std::map<std::tuple<int, int, int>, std::deque<std::vector<unsigned char>>>
      mailboxes GUARDED_BY(mail_mutex);
};

class InprocTransport final : public Transport {
 public:
  InprocTransport(int rank, int size, std::shared_ptr<PoisonState> poison,
                  std::shared_ptr<InprocState> state, int op_timeout_ms)
      : Transport(rank, size, std::move(poison)),
        state_(std::move(state)),
        op_timeout_(op_timeout_ms) {}

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kInProcess;
  }

  void barrier() override {
    check_healthy();
    if (size_ == 1) return;
    const auto deadline = Clock::now() + op_timeout_;
    sb::MutexLock lock(state_->barrier_mutex);
    const bool epoch_sense = !state_->sense;
    ++state_->arrived;
    if (state_->arrived == size_) {
      state_->arrived = 0;
      state_->sense = epoch_sense;
      state_->barrier_cv.notify_all();
      return;
    }
    while (state_->sense != epoch_sense) {
      if (poisoned()) {
        lock.unlock();
        throw_poisoned();
      }
      if (!state_->barrier_cv.wait_for(state_->barrier_mutex, kWaitSlice) &&
          Clock::now() >= deadline) {
        lock.unlock();
        std::ostringstream msg;
        msg << "barrier timed out after " << op_timeout_.count()
            << " ms on rank " << rank_ << " (a peer never arrived)";
        poison(-1, msg.str());
        throw_poisoned();
      }
    }
  }

 protected:
  void do_send(int dest, int tag, const void* data,
               std::size_t bytes) override {
    const auto* begin = static_cast<const unsigned char*>(data);
    {
      sb::MutexLock lock(state_->mail_mutex);
      state_->mailboxes[{rank_, dest, tag}].emplace_back(begin, begin + bytes);
      state_->mail_cv.notify_all();
    }
    if (dest != rank_) add_wire_bytes(bytes);
  }

  void do_recv(int source, int tag, void* data,
               std::size_t expected_bytes) override {
    const auto deadline = Clock::now() + op_timeout_;
    const std::tuple<int, int, int> key{source, rank_, tag};
    sb::MutexLock lock(state_->mail_mutex);
    for (;;) {
      auto it = state_->mailboxes.find(key);
      if (it != state_->mailboxes.end() && !it->second.empty()) {
        std::vector<unsigned char> payload = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) state_->mailboxes.erase(it);
        lock.unlock();
        if (payload.size() != expected_bytes) {
          std::ostringstream msg;
          msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
              << rank_ << ": size mismatch: posted " << expected_bytes
              << " bytes but the matched message carries " << payload.size()
              << " bytes (send/recv count mismatch)";
          throw CommError(rank_, msg.str());
        }
        if (expected_bytes > 0) std::memcpy(data, payload.data(), expected_bytes);
        return;
      }
      if (poisoned()) {
        lock.unlock();
        throw_poisoned();
      }
      if (!state_->mail_cv.wait_for(state_->mail_mutex, kWaitSlice) &&
          Clock::now() >= deadline) {
        lock.unlock();
        std::ostringstream msg;
        msg << "recv(source=" << source << ", tag=" << tag << ") on rank "
            << rank_ << " timed out after " << op_timeout_.count()
            << " ms (peer never sent)";
        poison(source, msg.str());
        throw_poisoned();
      }
    }
  }

  void announce_poison(int /*failed_rank*/,
                       const std::string& /*reason*/) noexcept override {
    // Wake every blocked rank. Taking each mutex before notifying closes
    // the check-poison-then-sleep race: a waiter either sees the flag
    // before sleeping or is woken by this notify.
    {
      sb::MutexLock lock(state_->barrier_mutex);
      state_->barrier_cv.notify_all();
    }
    {
      sb::MutexLock lock(state_->mail_mutex);
      state_->mail_cv.notify_all();
    }
  }

 private:
  std::shared_ptr<InprocState> state_;
  std::chrono::milliseconds op_timeout_;
};

}  // namespace
}  // namespace streambrain::comm

namespace streambrain::comm::detail {

std::vector<std::unique_ptr<Transport>> make_inproc_world(
    int world, const TransportOptions& base) {
  auto poison = std::make_shared<PoisonState>();
  auto state = std::make_shared<InprocState>();
  std::vector<std::unique_ptr<Transport>> ranks;
  ranks.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.push_back(std::make_unique<InprocTransport>(
        r, world, poison, state, base.op_timeout_ms));
  }
  return ranks;
}

}  // namespace streambrain::comm::detail
