// Backend-independent half of comm::: the collective algorithms, byte
// cost model, rank runners, and the transport factory. Everything here
// speaks only Transport::send/recv/barrier, so the flat/ring schedules
// (and therefore the floating-point associations and the logical byte
// charges) are identical on every backend — the property the per-backend
// conformance suite pins down.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "comm/communicator.hpp"
#include "comm/transport_internal.hpp"
#include "util/log.hpp"

namespace streambrain::comm {

const char* algorithm_name(AllreduceAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case AllreduceAlgorithm::kFlat:
      return "flat";
    case AllreduceAlgorithm::kRing:
      return "ring";
  }
  return "?";
}

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kInProcess:
      return "inproc";
    case Backend::kShm:
      return "shm";
    case Backend::kTcp:
      return "tcp";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PoisonState

bool PoisonState::try_set(int failed_rank, const std::string& reason) noexcept {
  const sb::MutexLock lock(mutex_);
  if (set_.load(std::memory_order_acquire)) return false;
  try {
    reason_ = reason;
  } catch (...) {
    // Allocation failure: poison with an empty reason rather than not at
    // all — fail-fast beats a descriptive hang.
  }
  failed_rank_.store(failed_rank, std::memory_order_relaxed);
  set_.store(true, std::memory_order_release);
  return true;
}

std::string PoisonState::reason() const {
  const sb::MutexLock lock(mutex_);
  return reason_;
}

// ---------------------------------------------------------------------------
// Transport base

Transport::Transport(int rank, int size, std::shared_ptr<PoisonState> poison)
    : rank_(rank), size_(size), poison_(std::move(poison)) {}

void Transport::send(int dest, int tag, const void* data, std::size_t bytes) {
  check_healthy();
  check_peer(dest, "send");
  do_send(dest, tag, data, bytes);
}

void Transport::recv(int source, int tag, void* data,
                     std::size_t expected_bytes) {
  check_healthy();
  check_peer(source, "recv");
  do_recv(source, tag, data, expected_bytes);
}

void Transport::poison(int failed_rank, const std::string& reason) noexcept {
  if (poison_->try_set(failed_rank, reason)) {
    announce_poison(failed_rank, reason);
  }
}

void Transport::throw_poisoned() const {
  const int failed = poison_->failed_rank();
  std::ostringstream msg;
  msg << "communication aborted on rank " << rank_ << ": world poisoned";
  if (failed >= 0) msg << " by rank " << failed;
  const std::string why = poison_->reason();
  if (!why.empty()) msg << ": " << why;
  throw CommError(failed, msg.str());
}

void Transport::check_healthy() const {
  if (poison_->poisoned()) throw_poisoned();
}

void Transport::check_peer(int peer, const char* op) const {
  if (peer < 0 || peer >= size_) {
    std::ostringstream msg;
    msg << op << ": peer rank " << peer << " out of range [0, " << size_
        << ")";
    throw std::invalid_argument(msg.str());
  }
}

// ---------------------------------------------------------------------------
// Environment contract (the language tools/sb_launch speaks)

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    throw std::invalid_argument(std::string(name) + ": '" + value +
                                "' is not an integer");
  }
  return static_cast<int>(parsed);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = (comma == std::string::npos) ? text.size() : comma;
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

Backend parse_backend(const std::string& name) {
  if (name == "inproc") return Backend::kInProcess;
  if (name == "shm") return Backend::kShm;
  if (name == "tcp") return Backend::kTcp;
  throw std::invalid_argument("unknown comm backend '" + name +
                              "' (expected inproc, shm, or tcp)");
}

}  // namespace

TransportOptions options_from_env() {
  TransportOptions options;
  options.rank = env_int("SB_COMM_RANK", 0);
  options.world = env_int("SB_COMM_WORLD", 1);
  if (const char* backend = std::getenv("SB_COMM_BACKEND")) {
    options.backend = parse_backend(backend);
  } else {
    options.backend = Backend::kShm;
  }
  if (const char* session = std::getenv("SB_COMM_SESSION")) {
    options.session = session;
  }
  if (const char* hosts = std::getenv("SB_COMM_HOSTS")) {
    options.hosts = split_csv(hosts);
  }
  if (const char* ports = std::getenv("SB_COMM_PORTS")) {
    for (const std::string& port : split_csv(ports)) {
      std::size_t parsed = 0;
      const int value = std::stoi(port, &parsed);
      if (parsed != port.size()) {
        throw std::invalid_argument("SB_COMM_PORTS: '" + port +
                                    "' is not an integer");
      }
      options.ports.push_back(value);
    }
  }
  options.base_port = env_int("SB_COMM_BASE_PORT", options.base_port);
  options.connect_timeout_ms =
      env_int("SB_COMM_CONNECT_TIMEOUT_MS", options.connect_timeout_ms);
  options.op_timeout_ms =
      env_int("SB_COMM_OP_TIMEOUT_MS", options.op_timeout_ms);
  return options;
}

bool env_world_configured() noexcept {
  return std::getenv("SB_COMM_WORLD") != nullptr &&
         std::getenv("SB_COMM_RANK") != nullptr;
}

namespace detail {

std::string generate_session() {
  static std::atomic<std::uint64_t> counter{0};
  return std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Factory

namespace {

std::vector<std::unique_ptr<Transport>> make_world(
    Backend backend, int size, const TransportOptions& base) {
  switch (backend) {
    case Backend::kInProcess:
      return detail::make_inproc_world(size, base);
    case Backend::kShm:
      return detail::make_shm_world(size, base);
    case Backend::kTcp:
      return detail::make_tcp_world(size, base);
  }
  throw std::invalid_argument("make_world: unknown backend");
}

}  // namespace

std::unique_ptr<Transport> make_transport(const TransportOptions& options) {
  if (options.world <= 0) {
    throw std::invalid_argument("make_transport: world size must be positive");
  }
  if (options.rank < 0 || options.rank >= options.world) {
    throw std::invalid_argument("make_transport: rank out of range");
  }
  switch (options.backend) {
    case Backend::kInProcess:
      if (options.world != 1) {
        throw std::invalid_argument(
            "make_transport: the in-process backend cannot span processes; "
            "use run()/run_transport() for threads-as-ranks worlds");
      }
      return std::move(detail::make_inproc_world(1, options)[0]);
    case Backend::kShm:
      return detail::make_shm_transport(options);
    case Backend::kTcp:
      return detail::make_tcp_transport(options);
  }
  throw std::invalid_argument("make_transport: unknown backend");
}

// ---------------------------------------------------------------------------
// Request

Request::Request(Request&& other) noexcept
    : transport_(other.transport_), complete_(std::move(other.complete_)) {
  other.transport_ = nullptr;
  other.complete_ = nullptr;
}

namespace {

void abandon_pending(Transport* transport) noexcept {
  std::ostringstream msg;
  msg << "comm::Request destroyed while pending";
  if (transport != nullptr) msg << " on rank " << transport->rank();
  msg << "; peers would block in the collective forever — poisoning the "
         "world so they fail fast (call wait() before dropping a Request)";
  SB_LOG_ERROR() << msg.str();
  if (transport != nullptr) {
    transport->poison(transport->rank(), msg.str());
  }
}

}  // namespace

Request& Request::operator=(Request&& other) noexcept {
  if (this != &other) {
    if (complete_) abandon_pending(transport_);
    transport_ = other.transport_;
    complete_ = std::move(other.complete_);
    other.transport_ = nullptr;
    other.complete_ = nullptr;
  }
  return *this;
}

Request::~Request() {
  if (complete_) abandon_pending(transport_);
}

void Request::wait() {
  if (!complete_) return;
  // Clear first so a throwing collective cannot be re-entered.
  std::function<void()> complete = std::move(complete_);
  complete_ = nullptr;
  complete();
}

// ---------------------------------------------------------------------------
// Collectives

namespace {

template <typename T>
void apply_reduce(T* acc, const T* other, std::size_t count,
                  ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] += other[i];
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::min(acc[i], other[i]);
      }
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = std::max(acc[i], other[i]);
      }
      break;
  }
}

// Flat allreduce: pairwise exchange (round s: send to rank+s, receive
// from rank-s), then every rank reduces the P contributions in rank
// order into a private accumulator — rank 0's values first, so the
// result is bitwise equal to a serial left-to-right reduction and
// identical on every rank. Cost: (P-1)*n elements sent per rank.
template <typename T>
void allreduce_flat(Transport& t, T* data, std::size_t count, ReduceOp op) {
  const int rank = t.rank();
  const int size = t.size();
  if (size == 1) return;
  if (count == 0) {
    t.barrier();  // stay collective even with nothing to move
    return;
  }
  const std::size_t bytes = count * sizeof(T);
  std::vector<T> slots(static_cast<std::size_t>(size) * count);
  std::copy(data, data + count,
            slots.begin() + static_cast<std::size_t>(rank) * count);
  for (int s = 1; s < size; ++s) {
    const int dest = (rank + s) % size;
    const int src = (rank - s + size) % size;
    t.send(dest, detail::kCollTag, data, bytes);
    t.recv(src, detail::kCollTag,
           slots.data() + static_cast<std::size_t>(src) * count, bytes);
  }
  std::copy(slots.begin(), slots.begin() + count, data);
  for (int r = 1; r < size; ++r) {
    apply_reduce(data, slots.data() + static_cast<std::size_t>(r) * count,
                 count, op);
  }
  t.add_logical_bytes(static_cast<std::uint64_t>(count * sizeof(T)) *
                      static_cast<std::uint64_t>(size - 1));
}

// Ring allreduce: chunked reduce-scatter (step s: push the chunk
// accumulated last step to the next rank, fold the chunk arriving from
// the previous rank) followed by a ring allgather of the completed
// chunks. After the reduce-scatter, rank r owns the fully reduced chunk
// (r+1) mod P. The schedule is fixed, so the per-element association is
// deterministic (it differs from kFlat by rounding only). Cost:
// 2*(P-1)/P*n elements per rank.
template <typename T>
void allreduce_ring(Transport& t, T* data, std::size_t count, ReduceOp op) {
  const int rank = t.rank();
  const int size = t.size();
  if (size == 1) return;
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  const auto chunk_begin = [count, size](int c) {
    return count * static_cast<std::size_t>(c) / static_cast<std::size_t>(size);
  };
  const auto wrap = [size](int c) { return ((c % size) + size) % size; };

  std::vector<T> work(data, data + count);
  std::vector<T> incoming(count);

  for (int s = 1; s < size; ++s) {
    const int send_chunk = wrap(rank - s + 1);
    const int recv_chunk = wrap(rank - s);
    const std::size_t s0 = chunk_begin(send_chunk);
    const std::size_t s1 = chunk_begin(send_chunk + 1);
    const std::size_t r0 = chunk_begin(recv_chunk);
    const std::size_t r1 = chunk_begin(recv_chunk + 1);
    if (s1 > s0) {
      t.send(next, detail::kCollTag, work.data() + s0, (s1 - s0) * sizeof(T));
    }
    if (r1 > r0) {
      t.recv(prev, detail::kCollTag, incoming.data(), (r1 - r0) * sizeof(T));
      apply_reduce(work.data() + r0, incoming.data(), r1 - r0, op);
    }
  }
  for (int s = 1; s < size; ++s) {
    const int send_chunk = wrap(rank + 2 - s);
    const int recv_chunk = wrap(rank + 1 - s);
    const std::size_t s0 = chunk_begin(send_chunk);
    const std::size_t s1 = chunk_begin(send_chunk + 1);
    const std::size_t r0 = chunk_begin(recv_chunk);
    const std::size_t r1 = chunk_begin(recv_chunk + 1);
    if (s1 > s0) {
      t.send(next, detail::kCollTag, work.data() + s0, (s1 - s0) * sizeof(T));
    }
    if (r1 > r0) {
      t.recv(prev, detail::kCollTag, work.data() + r0, (r1 - r0) * sizeof(T));
    }
  }
  std::copy(work.begin(), work.end(), data);

  t.add_logical_bytes(static_cast<std::uint64_t>(
      2.0 * (size - 1) / static_cast<double>(size) *
      static_cast<double>(count * sizeof(T))));
}

}  // namespace

void Communicator::barrier() { transport_->barrier(); }

template <typename T>
void Communicator::allreduce_dispatch(T* data, std::size_t count, ReduceOp op,
                                      AllreduceAlgorithm algorithm) {
  if (algorithm == AllreduceAlgorithm::kRing) {
    allreduce_ring(*transport_, data, count, op);
  } else {
    allreduce_flat(*transport_, data, count, op);
  }
}

void Communicator::allreduce(float* data, std::size_t count, ReduceOp op,
                             AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce(double* data, std::size_t count, ReduceOp op,
                             AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce(std::uint64_t* data, std::size_t count,
                             ReduceOp op, AllreduceAlgorithm algorithm) {
  allreduce_dispatch(data, count, op, algorithm);
}

void Communicator::allreduce_mean(float* data, std::size_t count,
                                  AllreduceAlgorithm algorithm) {
  allreduce(data, count, ReduceOp::kSum, algorithm);
  const float inv = 1.0f / static_cast<float>(size());
  for (std::size_t i = 0; i < count; ++i) data[i] *= inv;
}

void Communicator::allreduce_mean(double* data, std::size_t count,
                                  AllreduceAlgorithm algorithm) {
  allreduce(data, count, ReduceOp::kSum, algorithm);
  const double inv = 1.0 / static_cast<double>(size());
  for (std::size_t i = 0; i < count; ++i) data[i] *= inv;
}

Request Communicator::iallreduce(float* data, std::size_t count, ReduceOp op,
                                 AllreduceAlgorithm algorithm) {
  return Request(transport_, [this, data, count, op, algorithm] {
    allreduce(data, count, op, algorithm);
  });
}

Request Communicator::iallreduce(double* data, std::size_t count, ReduceOp op,
                                 AllreduceAlgorithm algorithm) {
  return Request(transport_, [this, data, count, op, algorithm] {
    allreduce(data, count, op, algorithm);
  });
}

void Communicator::broadcast(float* data, std::size_t count, int root) {
  const int rank = this->rank();
  const int size = this->size();
  if (size == 1 || count == 0) return;
  const std::size_t bytes = count * sizeof(float);
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r != root) transport_->send(r, detail::kCollTag, data, bytes);
    }
    transport_->add_logical_bytes(static_cast<std::uint64_t>(bytes) *
                                  static_cast<std::uint64_t>(size - 1));
  } else {
    transport_->recv(root, detail::kCollTag, data, bytes);
  }
}

void Communicator::allgather(const float* data, std::size_t count,
                             float* out) {
  const int rank = this->rank();
  const int size = this->size();
  if (count == 0) return;
  std::copy(data, data + count, out + static_cast<std::size_t>(rank) * count);
  const std::size_t bytes = count * sizeof(float);
  for (int s = 1; s < size; ++s) {
    const int dest = (rank + s) % size;
    const int src = (rank - s + size) % size;
    transport_->send(dest, detail::kCollTag, data, bytes);
    transport_->recv(src, detail::kCollTag,
                     out + static_cast<std::size_t>(src) * count, bytes);
  }
  transport_->add_logical_bytes(static_cast<std::uint64_t>(bytes) *
                                static_cast<std::uint64_t>(size - 1));
}

void Communicator::gather(const float* data, std::size_t count, float* out,
                          int root) {
  const int rank = this->rank();
  const int size = this->size();
  if (count == 0) return;
  const std::size_t bytes = count * sizeof(float);
  if (rank == root) {
    std::copy(data, data + count,
              out + static_cast<std::size_t>(root) * count);
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      transport_->recv(r, detail::kCollTag,
                       out + static_cast<std::size_t>(r) * count, bytes);
    }
  } else {
    transport_->send(root, detail::kCollTag, data, bytes);
    transport_->add_logical_bytes(bytes);
  }
}

void Communicator::scatter(const float* data, std::size_t count, float* out,
                           int root) {
  const int rank = this->rank();
  const int size = this->size();
  if (count == 0) return;
  const std::size_t bytes = count * sizeof(float);
  if (rank == root) {
    for (int r = 0; r < size; ++r) {
      if (r == root) continue;
      transport_->send(r, detail::kCollTag,
                       data + static_cast<std::size_t>(r) * count, bytes);
    }
    std::copy(data + static_cast<std::size_t>(root) * count,
              data + static_cast<std::size_t>(root + 1) * count, out);
    transport_->add_logical_bytes(static_cast<std::uint64_t>(bytes) *
                                  static_cast<std::uint64_t>(size - 1));
  } else {
    transport_->recv(root, detail::kCollTag, out, bytes);
  }
}

void Communicator::reduce_scatter(const float* data, std::size_t count,
                                  float* out) {
  const int rank = this->rank();
  const int size = this->size();
  if (count == 0) return;
  if (size == 1) {
    std::copy(data, data + count, out);
    return;
  }
  const std::size_t bytes = count * sizeof(float);
  // All-to-all of destination blocks, then every rank reduces its own
  // block in rank order (deterministic, rank 0's values first — the same
  // association as allreduce-then-slice).
  std::vector<float> slots(static_cast<std::size_t>(size) * count);
  std::copy(data + static_cast<std::size_t>(rank) * count,
            data + static_cast<std::size_t>(rank + 1) * count,
            slots.begin() + static_cast<std::size_t>(rank) * count);
  for (int s = 1; s < size; ++s) {
    const int dest = (rank + s) % size;
    const int src = (rank - s + size) % size;
    transport_->send(dest, detail::kCollTag,
                     data + static_cast<std::size_t>(dest) * count, bytes);
    transport_->recv(src, detail::kCollTag,
                     slots.data() + static_cast<std::size_t>(src) * count,
                     bytes);
  }
  std::copy(slots.begin(), slots.begin() + count, out);
  for (int r = 1; r < size; ++r) {
    const float* block = slots.data() + static_cast<std::size_t>(r) * count;
    for (std::size_t i = 0; i < count; ++i) out[i] += block[i];
  }
  transport_->add_logical_bytes(static_cast<std::uint64_t>(
      static_cast<double>(size - 1) / size * static_cast<double>(count) *
      static_cast<double>(size) * sizeof(float)));
}

void Communicator::send(const float* data, std::size_t count, int dest,
                        int tag) {
  if (tag < 0) {
    throw std::invalid_argument(
        "send: user tags must be non-negative (negative tags are reserved "
        "for collectives)");
  }
  transport_->send(dest, tag, data, count * sizeof(float));
  transport_->add_logical_bytes(
      static_cast<std::uint64_t>(count * sizeof(float)));
}

void Communicator::recv(float* data, std::size_t count, int source, int tag) {
  if (tag < 0) {
    throw std::invalid_argument(
        "recv: user tags must be non-negative (negative tags are reserved "
        "for collectives)");
  }
  transport_->recv(source, tag, data, count * sizeof(float));
}

// ---------------------------------------------------------------------------
// Runners

RunStats run_transport(Backend backend, int size,
                       const std::function<void(Communicator&)>& body,
                       const TransportOptions& base) {
  if (size <= 0) {
    throw std::invalid_argument("comm::run: world size must be positive");
  }
  auto ranks = make_world(backend, size, base);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    Transport* transport = ranks[static_cast<std::size_t>(r)].get();
    threads.emplace_back([transport, &body, &errors, r] {
      try {
        transport->establish();
        Communicator comm(*transport);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        std::string reason = "rank " + std::to_string(r) + " failed: ";
        try {
          throw;
        } catch (const std::exception& e) {
          reason += e.what();
        } catch (...) {
          reason += "unknown exception";
        }
        // Poisoning wakes every peer blocked in a collective; they abort
        // with CommError, so join() below always returns.
        transport->poison(r, reason);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Surface the origin failure, not a survivor's secondary CommError: the
  // poison record names the first rank to fail, and its own exception is
  // the one worth reading.
  const int origin = ranks.front()->poisoned_rank();
  if (origin >= 0 && origin < size && errors[static_cast<std::size_t>(origin)]) {
    std::rethrow_exception(errors[static_cast<std::size_t>(origin)]);
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  if (ranks.front()->poisoned()) {
    // Poisoned without any rank throwing (e.g. a pending Request dropped
    // by a body that then returned normally).
    ranks.front()->throw_poisoned();
  }

  RunStats stats;
  stats.bytes_per_rank.reserve(static_cast<std::size_t>(size));
  stats.wire_bytes_per_rank.reserve(static_cast<std::size_t>(size));
  for (const auto& transport : ranks) {
    stats.bytes_per_rank.push_back(transport->logical_bytes_sent());
    stats.wire_bytes_per_rank.push_back(transport->wire_bytes_sent());
    stats.total_bytes += transport->logical_bytes_sent();
    stats.total_wire_bytes += transport->wire_bytes_sent();
  }
  return stats;
}

RunStats run_reported(int size,
                      const std::function<void(Communicator&)>& body) {
  return run_transport(Backend::kInProcess, size, body);
}

void run(int size, const std::function<void(Communicator&)>& body) {
  (void)run_transport(Backend::kInProcess, size, body);
}

// ---------------------------------------------------------------------------
// Multi-process endpoints

Endpoint::Endpoint(const TransportOptions& options)
    : transport_(make_transport(options)),
      comm_(std::make_unique<Communicator>(*transport_)) {
  transport_->establish();
}

Endpoint connect(const TransportOptions& options) { return Endpoint(options); }

Endpoint connect_env() { return connect(options_from_env()); }

}  // namespace streambrain::comm
