#pragma once
// Message-passing substrate with MPI semantics over pluggable transports.
//
// The paper's MPI backend exists to show that BCPNN's local learning makes
// data-parallel training communication-light (one trace reduction per
// batch). This substrate reproduces that communication pattern exactly:
// collectives have MPI semantics, reductions are deterministic (fixed
// schedules), and every operation accounts the bytes that cross the
// network, so benchmarks can report communication volume per epoch. The
// same collective schedules run over threads-as-ranks mailboxes, POSIX
// shared memory, or a TCP mesh (see transport.hpp) — and a rank failure
// poisons the world so peers fail fast with comm::CommError instead of
// hanging in a collective.
//
// Two allreduce algorithms are available, selectable per call so
// benchmarks can compare them on the same payload:
//   kFlat — pairwise exchange; every rank reduces all contributions in
//           rank order into a private accumulator. Association is rank 0
//           first, so the result is bitwise identical to a serial
//           left-to-right reduction. Logical cost: (P-1)*n elements sent
//           per rank.
//   kRing — bandwidth-optimal chunked ring (reduce-scatter phase then
//           allgather phase). Association differs from kFlat by floating-
//           point rounding only. Logical cost: 2*(P-1)/P*n elements per
//           rank.
//
// Usage (threads-as-ranks, any backend):
//   comm::run_transport(comm::Backend::kShm, 4, [](comm::Communicator& c) {
//     std::vector<float> grads = ...;
//     c.allreduce_mean(grads.data(), grads.size());
//   });
// Multi-process ranks (launched by tools/sb_launch) instead do:
//   comm::Endpoint ep = comm::connect_env();
//   body(ep.comm());

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/transport.hpp"

namespace streambrain::comm {

enum class ReduceOp { kSum, kMin, kMax };

enum class AllreduceAlgorithm { kFlat, kRing };

/// Short name for reports/benchmarks ("flat" / "ring").
const char* algorithm_name(AllreduceAlgorithm algorithm) noexcept;

class Communicator;

/// Handle for a nonblocking collective. The operation completes inside
/// wait(), which every participating rank must call in the same relative
/// order as the iallreduce that produced it (MPI nonblocking semantics).
/// wait() is idempotent. Destroying a pending Request is a bug that real
/// MPI punishes with a silent peer deadlock — here it logs loudly and
/// poisons the world, so every rank aborts with CommError instead.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept;
  Request& operator=(Request&& other) noexcept;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request();

  /// Complete the collective (no-op when already completed or empty).
  void wait();

  /// True while the collective has not completed.
  [[nodiscard]] bool pending() const noexcept { return bool(complete_); }

 private:
  friend class Communicator;
  Request(Transport* transport, std::function<void()> complete)
      : transport_(transport), complete_(std::move(complete)) {}
  Transport* transport_ = nullptr;
  std::function<void()> complete_;
};

/// Per-rank handle over a connected Transport. Valid only while the
/// transport outlives it (inside run_transport()'s closure, or alongside
/// the owning Endpoint).
class Communicator {
 public:
  explicit Communicator(Transport& transport) : transport_(&transport) {}

  [[nodiscard]] int rank() const noexcept { return transport_->rank(); }
  [[nodiscard]] int size() const noexcept { return transport_->size(); }
  [[nodiscard]] Backend backend() const noexcept {
    return transport_->backend();
  }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

  /// Synchronize all ranks.
  void barrier();

  /// Element-wise reduction across ranks; result replicated to all ranks.
  /// Deterministic: the schedule (and thus the floating-point
  /// association) is fixed per algorithm regardless of thread timing.
  void allreduce(float* data, std::size_t count, ReduceOp op,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);
  void allreduce(double* data, std::size_t count, ReduceOp op,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);
  void allreduce(std::uint64_t* data, std::size_t count, ReduceOp op,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);

  /// allreduce(kSum) followed by division by world size.
  void allreduce_mean(float* data, std::size_t count,
                      AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);
  void allreduce_mean(double* data, std::size_t count,
                      AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);

  /// Nonblocking allreduce: returns immediately; the reduction happens
  /// collectively inside Request::wait() (progress-at-wait semantics, as
  /// in MPI implementations without a progress thread). The caller may
  /// compute on unrelated data between issue and wait; `data` must stay
  /// untouched and alive until the wait returns.
  [[nodiscard]] Request iallreduce(
      float* data, std::size_t count, ReduceOp op,
      AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);
  [[nodiscard]] Request iallreduce(
      double* data, std::size_t count, ReduceOp op,
      AllreduceAlgorithm algorithm = AllreduceAlgorithm::kFlat);

  /// Copy `count` elements from `root`'s buffer to every rank.
  void broadcast(float* data, std::size_t count, int root);

  /// Concatenate each rank's `count` elements into `out` (size*count) on
  /// every rank, ordered by rank.
  void allgather(const float* data, std::size_t count, float* out);

  /// Root receives every rank's `count` elements concatenated in rank
  /// order (`out` is only written on the root, size*count elements).
  void gather(const float* data, std::size_t count, float* out, int root);

  /// Root distributes `count` elements to each rank from its size*count
  /// buffer (read only on the root).
  void scatter(const float* data, std::size_t count, float* out, int root);

  /// Element-wise sum-reduce of size*count inputs; rank r receives the
  /// r-th `count`-element block of the reduced vector. Deterministic.
  void reduce_scatter(const float* data, std::size_t count, float* out);

  /// Blocking point-to-point. Matching is by (source, tag); tags must be
  /// non-negative (negative tags are reserved for the collectives).
  /// Sending to self is allowed and delivered locally.
  void send(const float* data, std::size_t count, int dest, int tag);
  void recv(float* data, std::size_t count, int source, int tag);

  /// Bytes this rank has logically sent so far (the backend-independent
  /// cost model the benchmarks assert).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return transport_->logical_bytes_sent();
  }
  /// Bytes this rank actually pushed over its backend's wire (payloads +
  /// frame overhead; 0 for self-sends and for single-rank worlds).
  [[nodiscard]] std::uint64_t wire_bytes_sent() const noexcept {
    return transport_->wire_bytes_sent();
  }

 private:
  template <typename T>
  void allreduce_dispatch(T* data, std::size_t count, ReduceOp op,
                          AllreduceAlgorithm algorithm);

  Transport* transport_;
};

/// Per-run communication accounting, captured after all ranks joined.
struct RunStats {
  std::uint64_t total_bytes = 0;              ///< logical, sum over ranks
  std::vector<std::uint64_t> bytes_per_rank;  ///< logical, indexed by rank
  std::uint64_t total_wire_bytes = 0;         ///< on-the-wire, sum
  std::vector<std::uint64_t> wire_bytes_per_rank;  ///< on-the-wire
};

/// Spawn `size` rank threads over the in-process backend, invoke
/// `body(comm)` on each, join them all. A rank failure poisons the world
/// (peers abort with CommError) and the *original* exception is rethrown
/// after every thread joined.
void run(int size, const std::function<void(Communicator&)>& body);

/// Like run(), but returns the true per-rank byte counters so callers can
/// report honest totals even when traffic is asymmetric across ranks.
RunStats run_reported(int size,
                      const std::function<void(Communicator&)>& body);

/// Threads-as-ranks execution over any backend: builds a `size`-rank
/// world of `backend` transports (loopback TCP mesh / private shm
/// segment), runs `body` on each rank thread, joins, returns the byte
/// counters. `base` seeds timeouts/session/ports; rank/world are filled
/// in per rank. This is how the conformance suite and DistributedTrainer
/// exercise the real wire without multi-process launch.
RunStats run_transport(Backend backend, int size,
                       const std::function<void(Communicator&)>& body,
                       const TransportOptions& base = {});

/// Owns one connected rank endpoint (transport + communicator) of a
/// multi-process world. The constructor blocks until the world is
/// established or connect_timeout_ms expires.
class Endpoint {
 public:
  explicit Endpoint(const TransportOptions& options);
  Endpoint(Endpoint&&) noexcept = default;
  Endpoint& operator=(Endpoint&&) noexcept = default;

  [[nodiscard]] Communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }

 private:
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Communicator> comm_;
};

/// Connect this process's rank into a world described by `options`.
Endpoint connect(const TransportOptions& options);

/// connect(options_from_env()) — the multi-process entry point used by
/// binaries launched under tools/sb_launch.
Endpoint connect_env();

}  // namespace streambrain::comm
